# Empty compiler generated dependencies file for tuning_and_calibration.
# This may be replaced when dependencies are built.
