file(REMOVE_RECURSE
  "CMakeFiles/tuning_and_calibration.dir/tuning_and_calibration.cpp.o"
  "CMakeFiles/tuning_and_calibration.dir/tuning_and_calibration.cpp.o.d"
  "tuning_and_calibration"
  "tuning_and_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_and_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
