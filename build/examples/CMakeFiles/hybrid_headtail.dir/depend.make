# Empty dependencies file for hybrid_headtail.
# This may be replaced when dependencies are built.
