file(REMOVE_RECURSE
  "CMakeFiles/hybrid_headtail.dir/hybrid_headtail.cpp.o"
  "CMakeFiles/hybrid_headtail.dir/hybrid_headtail.cpp.o.d"
  "hybrid_headtail"
  "hybrid_headtail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_headtail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
