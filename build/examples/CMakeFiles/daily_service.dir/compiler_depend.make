# Empty compiler generated dependencies file for daily_service.
# This may be replaced when dependencies are built.
