file(REMOVE_RECURSE
  "CMakeFiles/daily_service.dir/daily_service.cpp.o"
  "CMakeFiles/daily_service.dir/daily_service.cpp.o.d"
  "daily_service"
  "daily_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
