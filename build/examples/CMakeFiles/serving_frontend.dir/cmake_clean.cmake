file(REMOVE_RECURSE
  "CMakeFiles/serving_frontend.dir/serving_frontend.cpp.o"
  "CMakeFiles/serving_frontend.dir/serving_frontend.cpp.o.d"
  "serving_frontend"
  "serving_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
