
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/serving_frontend.cpp" "examples/CMakeFiles/serving_frontend.dir/serving_frontend.cpp.o" "gcc" "examples/CMakeFiles/serving_frontend.dir/serving_frontend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/sigmund_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sigmund_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sigmund_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/sigmund_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sigmund_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sigmund_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sfs/CMakeFiles/sigmund_sfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sigmund_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
