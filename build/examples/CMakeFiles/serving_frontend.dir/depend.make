# Empty dependencies file for serving_frontend.
# This may be replaced when dependencies are built.
