file(REMOVE_RECURSE
  "CMakeFiles/cold_start.dir/cold_start.cpp.o"
  "CMakeFiles/cold_start.dir/cold_start.cpp.o.d"
  "cold_start"
  "cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
