file(REMOVE_RECURSE
  "CMakeFiles/e3_map_sampling.dir/e3_map_sampling.cpp.o"
  "CMakeFiles/e3_map_sampling.dir/e3_map_sampling.cpp.o.d"
  "e3_map_sampling"
  "e3_map_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_map_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
