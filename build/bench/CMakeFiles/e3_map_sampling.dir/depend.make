# Empty dependencies file for e3_map_sampling.
# This may be replaced when dependencies are built.
