# Empty compiler generated dependencies file for e4_adagrad_vs_sgd.
# This may be replaced when dependencies are built.
