file(REMOVE_RECURSE
  "CMakeFiles/e4_adagrad_vs_sgd.dir/e4_adagrad_vs_sgd.cpp.o"
  "CMakeFiles/e4_adagrad_vs_sgd.dir/e4_adagrad_vs_sgd.cpp.o.d"
  "e4_adagrad_vs_sgd"
  "e4_adagrad_vs_sgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_adagrad_vs_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
