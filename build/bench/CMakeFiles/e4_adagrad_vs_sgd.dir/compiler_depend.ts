# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e4_adagrad_vs_sgd.
