# Empty dependencies file for e11_shuffle_balance.
# This may be replaced when dependencies are built.
