file(REMOVE_RECURSE
  "CMakeFiles/e11_shuffle_balance.dir/e11_shuffle_balance.cpp.o"
  "CMakeFiles/e11_shuffle_balance.dir/e11_shuffle_balance.cpp.o.d"
  "e11_shuffle_balance"
  "e11_shuffle_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_shuffle_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
