# Empty dependencies file for e6_binpacking.
# This may be replaced when dependencies are built.
