file(REMOVE_RECURSE
  "CMakeFiles/e6_binpacking.dir/e6_binpacking.cpp.o"
  "CMakeFiles/e6_binpacking.dir/e6_binpacking.cpp.o.d"
  "e6_binpacking"
  "e6_binpacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_binpacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
