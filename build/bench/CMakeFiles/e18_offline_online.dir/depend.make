# Empty dependencies file for e18_offline_online.
# This may be replaced when dependencies are built.
