file(REMOVE_RECURSE
  "CMakeFiles/e18_offline_online.dir/e18_offline_online.cpp.o"
  "CMakeFiles/e18_offline_online.dir/e18_offline_online.cpp.o.d"
  "e18_offline_online"
  "e18_offline_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e18_offline_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
