file(REMOVE_RECURSE
  "CMakeFiles/e17_feature_coverage.dir/e17_feature_coverage.cpp.o"
  "CMakeFiles/e17_feature_coverage.dir/e17_feature_coverage.cpp.o.d"
  "e17_feature_coverage"
  "e17_feature_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e17_feature_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
