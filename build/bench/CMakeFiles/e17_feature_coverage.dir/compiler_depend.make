# Empty compiler generated dependencies file for e17_feature_coverage.
# This may be replaced when dependencies are built.
