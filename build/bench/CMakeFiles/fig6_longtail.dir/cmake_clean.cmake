file(REMOVE_RECURSE
  "CMakeFiles/fig6_longtail.dir/fig6_longtail.cpp.o"
  "CMakeFiles/fig6_longtail.dir/fig6_longtail.cpp.o.d"
  "fig6_longtail"
  "fig6_longtail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_longtail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
