# Empty compiler generated dependencies file for fig6_longtail.
# This may be replaced when dependencies are built.
