# Empty compiler generated dependencies file for e14_tuner_vs_grid.
# This may be replaced when dependencies are built.
