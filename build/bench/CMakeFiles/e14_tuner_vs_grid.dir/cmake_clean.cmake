file(REMOVE_RECURSE
  "CMakeFiles/e14_tuner_vs_grid.dir/e14_tuner_vs_grid.cpp.o"
  "CMakeFiles/e14_tuner_vs_grid.dir/e14_tuner_vs_grid.cpp.o.d"
  "e14_tuner_vs_grid"
  "e14_tuner_vs_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_tuner_vs_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
