# Empty compiler generated dependencies file for e8_hybrid_coverage.
# This may be replaced when dependencies are built.
