file(REMOVE_RECURSE
  "CMakeFiles/e8_hybrid_coverage.dir/e8_hybrid_coverage.cpp.o"
  "CMakeFiles/e8_hybrid_coverage.dir/e8_hybrid_coverage.cpp.o.d"
  "e8_hybrid_coverage"
  "e8_hybrid_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_hybrid_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
