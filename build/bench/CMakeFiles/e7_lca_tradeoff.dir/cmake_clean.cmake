file(REMOVE_RECURSE
  "CMakeFiles/e7_lca_tradeoff.dir/e7_lca_tradeoff.cpp.o"
  "CMakeFiles/e7_lca_tradeoff.dir/e7_lca_tradeoff.cpp.o.d"
  "e7_lca_tradeoff"
  "e7_lca_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_lca_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
