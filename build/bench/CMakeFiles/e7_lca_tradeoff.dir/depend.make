# Empty dependencies file for e7_lca_tradeoff.
# This may be replaced when dependencies are built.
