file(REMOVE_RECURSE
  "CMakeFiles/e13_bpr_vs_wrmf.dir/e13_bpr_vs_wrmf.cpp.o"
  "CMakeFiles/e13_bpr_vs_wrmf.dir/e13_bpr_vs_wrmf.cpp.o.d"
  "e13_bpr_vs_wrmf"
  "e13_bpr_vs_wrmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_bpr_vs_wrmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
