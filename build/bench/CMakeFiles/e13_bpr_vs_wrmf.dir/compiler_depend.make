# Empty compiler generated dependencies file for e13_bpr_vs_wrmf.
# This may be replaced when dependencies are built.
