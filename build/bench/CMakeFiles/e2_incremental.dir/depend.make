# Empty dependencies file for e2_incremental.
# This may be replaced when dependencies are built.
