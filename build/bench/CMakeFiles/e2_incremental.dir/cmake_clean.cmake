file(REMOVE_RECURSE
  "CMakeFiles/e2_incremental.dir/e2_incremental.cpp.o"
  "CMakeFiles/e2_incremental.dir/e2_incremental.cpp.o.d"
  "e2_incremental"
  "e2_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
