# Empty compiler generated dependencies file for e9_hogwild.
# This may be replaced when dependencies are built.
