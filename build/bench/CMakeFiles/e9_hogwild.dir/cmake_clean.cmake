file(REMOVE_RECURSE
  "CMakeFiles/e9_hogwild.dir/e9_hogwild.cpp.o"
  "CMakeFiles/e9_hogwild.dir/e9_hogwild.cpp.o.d"
  "e9_hogwild"
  "e9_hogwild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_hogwild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
