# Empty dependencies file for e10_serving.
# This may be replaced when dependencies are built.
