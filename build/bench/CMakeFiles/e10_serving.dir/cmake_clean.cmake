file(REMOVE_RECURSE
  "CMakeFiles/e10_serving.dir/e10_serving.cpp.o"
  "CMakeFiles/e10_serving.dir/e10_serving.cpp.o.d"
  "e10_serving"
  "e10_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
