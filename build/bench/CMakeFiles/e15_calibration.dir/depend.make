# Empty dependencies file for e15_calibration.
# This may be replaced when dependencies are built.
