file(REMOVE_RECURSE
  "CMakeFiles/e15_calibration.dir/e15_calibration.cpp.o"
  "CMakeFiles/e15_calibration.dir/e15_calibration.cpp.o.d"
  "e15_calibration"
  "e15_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
