file(REMOVE_RECURSE
  "CMakeFiles/e16_data_migration.dir/e16_data_migration.cpp.o"
  "CMakeFiles/e16_data_migration.dir/e16_data_migration.cpp.o.d"
  "e16_data_migration"
  "e16_data_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e16_data_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
