# Empty dependencies file for e16_data_migration.
# This may be replaced when dependencies are built.
