# Empty dependencies file for e12_negative_sampling.
# This may be replaced when dependencies are built.
