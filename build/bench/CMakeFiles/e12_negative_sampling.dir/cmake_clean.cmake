file(REMOVE_RECURSE
  "CMakeFiles/e12_negative_sampling.dir/e12_negative_sampling.cpp.o"
  "CMakeFiles/e12_negative_sampling.dir/e12_negative_sampling.cpp.o.d"
  "e12_negative_sampling"
  "e12_negative_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_negative_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
