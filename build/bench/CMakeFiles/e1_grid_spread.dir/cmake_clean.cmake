file(REMOVE_RECURSE
  "CMakeFiles/e1_grid_spread.dir/e1_grid_spread.cpp.o"
  "CMakeFiles/e1_grid_spread.dir/e1_grid_spread.cpp.o.d"
  "e1_grid_spread"
  "e1_grid_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_grid_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
