# Empty dependencies file for e1_grid_spread.
# This may be replaced when dependencies are built.
