# Empty compiler generated dependencies file for e5_preemptible_cost.
# This may be replaced when dependencies are built.
