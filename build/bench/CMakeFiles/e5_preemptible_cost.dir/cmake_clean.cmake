file(REMOVE_RECURSE
  "CMakeFiles/e5_preemptible_cost.dir/e5_preemptible_cost.cpp.o"
  "CMakeFiles/e5_preemptible_cost.dir/e5_preemptible_cost.cpp.o.d"
  "e5_preemptible_cost"
  "e5_preemptible_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_preemptible_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
