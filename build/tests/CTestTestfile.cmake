# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sfs_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/sampler_evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/cooccurrence_test[1]_include.cmake")
include("/root/repo/build/tests/candidate_inference_test[1]_include.cmake")
include("/root/repo/build/tests/grid_search_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/jobs_test[1]_include.cmake")
include("/root/repo/build/tests/service_serving_test[1]_include.cmake")
include("/root/repo/build/tests/wrmf_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_calibration_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_placement_test[1]_include.cmake")
include("/root/repo/build/tests/funnel_test[1]_include.cmake")
include("/root/repo/build/tests/gradient_check_test[1]_include.cmake")
include("/root/repo/build/tests/tiered_quality_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_ab_test[1]_include.cmake")
include("/root/repo/build/tests/longitudinal_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/localfs_multicell_test[1]_include.cmake")
