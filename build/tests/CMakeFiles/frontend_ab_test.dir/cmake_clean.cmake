file(REMOVE_RECURSE
  "CMakeFiles/frontend_ab_test.dir/frontend_ab_test.cc.o"
  "CMakeFiles/frontend_ab_test.dir/frontend_ab_test.cc.o.d"
  "frontend_ab_test"
  "frontend_ab_test.pdb"
  "frontend_ab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_ab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
