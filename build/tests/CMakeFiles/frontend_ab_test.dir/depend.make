# Empty dependencies file for frontend_ab_test.
# This may be replaced when dependencies are built.
