# Empty dependencies file for tuner_calibration_test.
# This may be replaced when dependencies are built.
