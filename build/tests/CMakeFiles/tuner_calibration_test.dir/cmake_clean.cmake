file(REMOVE_RECURSE
  "CMakeFiles/tuner_calibration_test.dir/tuner_calibration_test.cc.o"
  "CMakeFiles/tuner_calibration_test.dir/tuner_calibration_test.cc.o.d"
  "tuner_calibration_test"
  "tuner_calibration_test.pdb"
  "tuner_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
