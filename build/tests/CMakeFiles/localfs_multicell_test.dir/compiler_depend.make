# Empty compiler generated dependencies file for localfs_multicell_test.
# This may be replaced when dependencies are built.
