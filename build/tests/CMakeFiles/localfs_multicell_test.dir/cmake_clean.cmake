file(REMOVE_RECURSE
  "CMakeFiles/localfs_multicell_test.dir/localfs_multicell_test.cc.o"
  "CMakeFiles/localfs_multicell_test.dir/localfs_multicell_test.cc.o.d"
  "localfs_multicell_test"
  "localfs_multicell_test.pdb"
  "localfs_multicell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localfs_multicell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
