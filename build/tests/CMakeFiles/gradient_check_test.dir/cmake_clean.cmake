file(REMOVE_RECURSE
  "CMakeFiles/gradient_check_test.dir/gradient_check_test.cc.o"
  "CMakeFiles/gradient_check_test.dir/gradient_check_test.cc.o.d"
  "gradient_check_test"
  "gradient_check_test.pdb"
  "gradient_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradient_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
