# Empty compiler generated dependencies file for gradient_check_test.
# This may be replaced when dependencies are built.
