# Empty compiler generated dependencies file for tiered_quality_test.
# This may be replaced when dependencies are built.
