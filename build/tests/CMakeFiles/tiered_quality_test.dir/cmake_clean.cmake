file(REMOVE_RECURSE
  "CMakeFiles/tiered_quality_test.dir/tiered_quality_test.cc.o"
  "CMakeFiles/tiered_quality_test.dir/tiered_quality_test.cc.o.d"
  "tiered_quality_test"
  "tiered_quality_test.pdb"
  "tiered_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
