file(REMOVE_RECURSE
  "CMakeFiles/wrmf_test.dir/wrmf_test.cc.o"
  "CMakeFiles/wrmf_test.dir/wrmf_test.cc.o.d"
  "wrmf_test"
  "wrmf_test.pdb"
  "wrmf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrmf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
