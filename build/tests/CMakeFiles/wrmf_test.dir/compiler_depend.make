# Empty compiler generated dependencies file for wrmf_test.
# This may be replaced when dependencies are built.
