file(REMOVE_RECURSE
  "CMakeFiles/funnel_test.dir/funnel_test.cc.o"
  "CMakeFiles/funnel_test.dir/funnel_test.cc.o.d"
  "funnel_test"
  "funnel_test.pdb"
  "funnel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/funnel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
