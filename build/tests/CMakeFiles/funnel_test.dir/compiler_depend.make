# Empty compiler generated dependencies file for funnel_test.
# This may be replaced when dependencies are built.
