file(REMOVE_RECURSE
  "CMakeFiles/candidate_inference_test.dir/candidate_inference_test.cc.o"
  "CMakeFiles/candidate_inference_test.dir/candidate_inference_test.cc.o.d"
  "candidate_inference_test"
  "candidate_inference_test.pdb"
  "candidate_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
