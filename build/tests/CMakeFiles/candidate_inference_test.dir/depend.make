# Empty dependencies file for candidate_inference_test.
# This may be replaced when dependencies are built.
