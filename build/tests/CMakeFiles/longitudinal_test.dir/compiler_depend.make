# Empty compiler generated dependencies file for longitudinal_test.
# This may be replaced when dependencies are built.
