file(REMOVE_RECURSE
  "CMakeFiles/longitudinal_test.dir/longitudinal_test.cc.o"
  "CMakeFiles/longitudinal_test.dir/longitudinal_test.cc.o.d"
  "longitudinal_test"
  "longitudinal_test.pdb"
  "longitudinal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
