file(REMOVE_RECURSE
  "CMakeFiles/cooccurrence_test.dir/cooccurrence_test.cc.o"
  "CMakeFiles/cooccurrence_test.dir/cooccurrence_test.cc.o.d"
  "cooccurrence_test"
  "cooccurrence_test.pdb"
  "cooccurrence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooccurrence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
