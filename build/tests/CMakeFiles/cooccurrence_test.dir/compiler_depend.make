# Empty compiler generated dependencies file for cooccurrence_test.
# This may be replaced when dependencies are built.
