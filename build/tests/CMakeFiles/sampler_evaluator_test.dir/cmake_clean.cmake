file(REMOVE_RECURSE
  "CMakeFiles/sampler_evaluator_test.dir/sampler_evaluator_test.cc.o"
  "CMakeFiles/sampler_evaluator_test.dir/sampler_evaluator_test.cc.o.d"
  "sampler_evaluator_test"
  "sampler_evaluator_test.pdb"
  "sampler_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
