# Empty dependencies file for sampler_evaluator_test.
# This may be replaced when dependencies are built.
