# Empty dependencies file for service_serving_test.
# This may be replaced when dependencies are built.
