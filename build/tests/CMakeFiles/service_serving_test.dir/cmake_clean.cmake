file(REMOVE_RECURSE
  "CMakeFiles/service_serving_test.dir/service_serving_test.cc.o"
  "CMakeFiles/service_serving_test.dir/service_serving_test.cc.o.d"
  "service_serving_test"
  "service_serving_test.pdb"
  "service_serving_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_serving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
