# Empty compiler generated dependencies file for serialization_placement_test.
# This may be replaced when dependencies are built.
