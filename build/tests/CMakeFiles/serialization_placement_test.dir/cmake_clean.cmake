file(REMOVE_RECURSE
  "CMakeFiles/serialization_placement_test.dir/serialization_placement_test.cc.o"
  "CMakeFiles/serialization_placement_test.dir/serialization_placement_test.cc.o.d"
  "serialization_placement_test"
  "serialization_placement_test.pdb"
  "serialization_placement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialization_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
