file(REMOVE_RECURSE
  "CMakeFiles/sfs_test.dir/sfs_test.cc.o"
  "CMakeFiles/sfs_test.dir/sfs_test.cc.o.d"
  "sfs_test"
  "sfs_test.pdb"
  "sfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
