# Empty dependencies file for sfs_test.
# This may be replaced when dependencies are built.
