# Empty dependencies file for jobs_test.
# This may be replaced when dependencies are built.
