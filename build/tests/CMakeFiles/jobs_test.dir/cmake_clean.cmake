file(REMOVE_RECURSE
  "CMakeFiles/jobs_test.dir/jobs_test.cc.o"
  "CMakeFiles/jobs_test.dir/jobs_test.cc.o.d"
  "jobs_test"
  "jobs_test.pdb"
  "jobs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
