add_test([=[LongitudinalTest.FiveDaysOfProduction]=]  /root/repo/build/tests/longitudinal_test [==[--gtest_filter=LongitudinalTest.FiveDaysOfProduction]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[LongitudinalTest.FiveDaysOfProduction]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  longitudinal_test_TESTS LongitudinalTest.FiveDaysOfProduction)
