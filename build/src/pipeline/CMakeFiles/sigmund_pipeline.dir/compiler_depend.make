# Empty compiler generated dependencies file for sigmund_pipeline.
# This may be replaced when dependencies are built.
