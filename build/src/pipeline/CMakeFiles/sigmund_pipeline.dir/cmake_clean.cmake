file(REMOVE_RECURSE
  "CMakeFiles/sigmund_pipeline.dir/binpack.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/binpack.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/checkpoint.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/checkpoint.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/config_record.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/config_record.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/data_placement.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/data_placement.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/inference_job.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/inference_job.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/quality_monitor.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/quality_monitor.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/registry.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/registry.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/service.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/service.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/sweep.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/sweep.cc.o.d"
  "CMakeFiles/sigmund_pipeline.dir/training_job.cc.o"
  "CMakeFiles/sigmund_pipeline.dir/training_job.cc.o.d"
  "libsigmund_pipeline.a"
  "libsigmund_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmund_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
