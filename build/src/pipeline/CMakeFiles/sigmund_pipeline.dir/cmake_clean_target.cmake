file(REMOVE_RECURSE
  "libsigmund_pipeline.a"
)
