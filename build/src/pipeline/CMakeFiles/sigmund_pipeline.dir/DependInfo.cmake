
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/binpack.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/binpack.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/binpack.cc.o.d"
  "/root/repo/src/pipeline/checkpoint.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/checkpoint.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/checkpoint.cc.o.d"
  "/root/repo/src/pipeline/config_record.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/config_record.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/config_record.cc.o.d"
  "/root/repo/src/pipeline/data_placement.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/data_placement.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/data_placement.cc.o.d"
  "/root/repo/src/pipeline/inference_job.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/inference_job.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/inference_job.cc.o.d"
  "/root/repo/src/pipeline/quality_monitor.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/quality_monitor.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/quality_monitor.cc.o.d"
  "/root/repo/src/pipeline/registry.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/registry.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/registry.cc.o.d"
  "/root/repo/src/pipeline/service.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/service.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/service.cc.o.d"
  "/root/repo/src/pipeline/sweep.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/sweep.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/sweep.cc.o.d"
  "/root/repo/src/pipeline/training_job.cc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/training_job.cc.o" "gcc" "src/pipeline/CMakeFiles/sigmund_pipeline.dir/training_job.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sigmund_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sigmund_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/sfs/CMakeFiles/sigmund_sfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sigmund_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/sigmund_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sigmund_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sigmund_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
