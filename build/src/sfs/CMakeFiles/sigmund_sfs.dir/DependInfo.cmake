
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfs/local_filesystem.cc" "src/sfs/CMakeFiles/sigmund_sfs.dir/local_filesystem.cc.o" "gcc" "src/sfs/CMakeFiles/sigmund_sfs.dir/local_filesystem.cc.o.d"
  "/root/repo/src/sfs/mem_filesystem.cc" "src/sfs/CMakeFiles/sigmund_sfs.dir/mem_filesystem.cc.o" "gcc" "src/sfs/CMakeFiles/sigmund_sfs.dir/mem_filesystem.cc.o.d"
  "/root/repo/src/sfs/shared_filesystem.cc" "src/sfs/CMakeFiles/sigmund_sfs.dir/shared_filesystem.cc.o" "gcc" "src/sfs/CMakeFiles/sigmund_sfs.dir/shared_filesystem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sigmund_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
