file(REMOVE_RECURSE
  "CMakeFiles/sigmund_sfs.dir/local_filesystem.cc.o"
  "CMakeFiles/sigmund_sfs.dir/local_filesystem.cc.o.d"
  "CMakeFiles/sigmund_sfs.dir/mem_filesystem.cc.o"
  "CMakeFiles/sigmund_sfs.dir/mem_filesystem.cc.o.d"
  "CMakeFiles/sigmund_sfs.dir/shared_filesystem.cc.o"
  "CMakeFiles/sigmund_sfs.dir/shared_filesystem.cc.o.d"
  "libsigmund_sfs.a"
  "libsigmund_sfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmund_sfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
