# Empty compiler generated dependencies file for sigmund_sfs.
# This may be replaced when dependencies are built.
