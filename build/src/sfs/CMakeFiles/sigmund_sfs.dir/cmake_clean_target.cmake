file(REMOVE_RECURSE
  "libsigmund_sfs.a"
)
