file(REMOVE_RECURSE
  "libsigmund_mapreduce.a"
)
