file(REMOVE_RECURSE
  "CMakeFiles/sigmund_mapreduce.dir/mapreduce.cc.o"
  "CMakeFiles/sigmund_mapreduce.dir/mapreduce.cc.o.d"
  "libsigmund_mapreduce.a"
  "libsigmund_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmund_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
