# Empty compiler generated dependencies file for sigmund_mapreduce.
# This may be replaced when dependencies are built.
