# Empty dependencies file for sigmund_cluster.
# This may be replaced when dependencies are built.
