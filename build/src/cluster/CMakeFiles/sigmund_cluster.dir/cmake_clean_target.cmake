file(REMOVE_RECURSE
  "libsigmund_cluster.a"
)
