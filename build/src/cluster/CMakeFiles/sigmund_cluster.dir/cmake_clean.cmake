file(REMOVE_RECURSE
  "CMakeFiles/sigmund_cluster.dir/cluster.cc.o"
  "CMakeFiles/sigmund_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/sigmund_cluster.dir/cost_model.cc.o"
  "CMakeFiles/sigmund_cluster.dir/cost_model.cc.o.d"
  "CMakeFiles/sigmund_cluster.dir/simulation.cc.o"
  "CMakeFiles/sigmund_cluster.dir/simulation.cc.o.d"
  "libsigmund_cluster.a"
  "libsigmund_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmund_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
