file(REMOVE_RECURSE
  "CMakeFiles/sigmund_data.dir/catalog.cc.o"
  "CMakeFiles/sigmund_data.dir/catalog.cc.o.d"
  "CMakeFiles/sigmund_data.dir/ctr_simulator.cc.o"
  "CMakeFiles/sigmund_data.dir/ctr_simulator.cc.o.d"
  "CMakeFiles/sigmund_data.dir/retailer_data.cc.o"
  "CMakeFiles/sigmund_data.dir/retailer_data.cc.o.d"
  "CMakeFiles/sigmund_data.dir/serialization.cc.o"
  "CMakeFiles/sigmund_data.dir/serialization.cc.o.d"
  "CMakeFiles/sigmund_data.dir/taxonomy.cc.o"
  "CMakeFiles/sigmund_data.dir/taxonomy.cc.o.d"
  "CMakeFiles/sigmund_data.dir/types.cc.o"
  "CMakeFiles/sigmund_data.dir/types.cc.o.d"
  "CMakeFiles/sigmund_data.dir/world_generator.cc.o"
  "CMakeFiles/sigmund_data.dir/world_generator.cc.o.d"
  "libsigmund_data.a"
  "libsigmund_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmund_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
