file(REMOVE_RECURSE
  "libsigmund_data.a"
)
