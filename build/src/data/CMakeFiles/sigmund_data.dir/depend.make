# Empty dependencies file for sigmund_data.
# This may be replaced when dependencies are built.
