
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/catalog.cc" "src/data/CMakeFiles/sigmund_data.dir/catalog.cc.o" "gcc" "src/data/CMakeFiles/sigmund_data.dir/catalog.cc.o.d"
  "/root/repo/src/data/ctr_simulator.cc" "src/data/CMakeFiles/sigmund_data.dir/ctr_simulator.cc.o" "gcc" "src/data/CMakeFiles/sigmund_data.dir/ctr_simulator.cc.o.d"
  "/root/repo/src/data/retailer_data.cc" "src/data/CMakeFiles/sigmund_data.dir/retailer_data.cc.o" "gcc" "src/data/CMakeFiles/sigmund_data.dir/retailer_data.cc.o.d"
  "/root/repo/src/data/serialization.cc" "src/data/CMakeFiles/sigmund_data.dir/serialization.cc.o" "gcc" "src/data/CMakeFiles/sigmund_data.dir/serialization.cc.o.d"
  "/root/repo/src/data/taxonomy.cc" "src/data/CMakeFiles/sigmund_data.dir/taxonomy.cc.o" "gcc" "src/data/CMakeFiles/sigmund_data.dir/taxonomy.cc.o.d"
  "/root/repo/src/data/types.cc" "src/data/CMakeFiles/sigmund_data.dir/types.cc.o" "gcc" "src/data/CMakeFiles/sigmund_data.dir/types.cc.o.d"
  "/root/repo/src/data/world_generator.cc" "src/data/CMakeFiles/sigmund_data.dir/world_generator.cc.o" "gcc" "src/data/CMakeFiles/sigmund_data.dir/world_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sigmund_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
