file(REMOVE_RECURSE
  "libsigmund_core.a"
)
