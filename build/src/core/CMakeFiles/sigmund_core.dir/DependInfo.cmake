
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ab_experiment.cc" "src/core/CMakeFiles/sigmund_core.dir/ab_experiment.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/ab_experiment.cc.o.d"
  "/root/repo/src/core/calibration.cc" "src/core/CMakeFiles/sigmund_core.dir/calibration.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/calibration.cc.o.d"
  "/root/repo/src/core/candidate_selector.cc" "src/core/CMakeFiles/sigmund_core.dir/candidate_selector.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/candidate_selector.cc.o.d"
  "/root/repo/src/core/cooccurrence.cc" "src/core/CMakeFiles/sigmund_core.dir/cooccurrence.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/cooccurrence.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/sigmund_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/funnel.cc" "src/core/CMakeFiles/sigmund_core.dir/funnel.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/funnel.cc.o.d"
  "/root/repo/src/core/grid_search.cc" "src/core/CMakeFiles/sigmund_core.dir/grid_search.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/grid_search.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/core/CMakeFiles/sigmund_core.dir/hybrid.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/hybrid.cc.o.d"
  "/root/repo/src/core/hyperparams.cc" "src/core/CMakeFiles/sigmund_core.dir/hyperparams.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/hyperparams.cc.o.d"
  "/root/repo/src/core/inference.cc" "src/core/CMakeFiles/sigmund_core.dir/inference.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/inference.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/sigmund_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/model.cc.o.d"
  "/root/repo/src/core/negative_sampler.cc" "src/core/CMakeFiles/sigmund_core.dir/negative_sampler.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/negative_sampler.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/sigmund_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/training_data.cc" "src/core/CMakeFiles/sigmund_core.dir/training_data.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/training_data.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/sigmund_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/tuner.cc.o.d"
  "/root/repo/src/core/wrmf.cc" "src/core/CMakeFiles/sigmund_core.dir/wrmf.cc.o" "gcc" "src/core/CMakeFiles/sigmund_core.dir/wrmf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sigmund_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sigmund_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
