# Empty compiler generated dependencies file for sigmund_core.
# This may be replaced when dependencies are built.
