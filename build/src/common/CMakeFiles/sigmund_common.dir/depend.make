# Empty dependencies file for sigmund_common.
# This may be replaced when dependencies are built.
