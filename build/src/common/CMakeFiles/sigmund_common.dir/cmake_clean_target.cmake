file(REMOVE_RECURSE
  "libsigmund_common.a"
)
