file(REMOVE_RECURSE
  "CMakeFiles/sigmund_common.dir/clock.cc.o"
  "CMakeFiles/sigmund_common.dir/clock.cc.o.d"
  "CMakeFiles/sigmund_common.dir/logging.cc.o"
  "CMakeFiles/sigmund_common.dir/logging.cc.o.d"
  "CMakeFiles/sigmund_common.dir/random.cc.o"
  "CMakeFiles/sigmund_common.dir/random.cc.o.d"
  "CMakeFiles/sigmund_common.dir/status.cc.o"
  "CMakeFiles/sigmund_common.dir/status.cc.o.d"
  "CMakeFiles/sigmund_common.dir/string_util.cc.o"
  "CMakeFiles/sigmund_common.dir/string_util.cc.o.d"
  "CMakeFiles/sigmund_common.dir/thread_pool.cc.o"
  "CMakeFiles/sigmund_common.dir/thread_pool.cc.o.d"
  "libsigmund_common.a"
  "libsigmund_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmund_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
