# Empty compiler generated dependencies file for sigmund_serving.
# This may be replaced when dependencies are built.
