file(REMOVE_RECURSE
  "libsigmund_serving.a"
)
