file(REMOVE_RECURSE
  "CMakeFiles/sigmund_serving.dir/frontend.cc.o"
  "CMakeFiles/sigmund_serving.dir/frontend.cc.o.d"
  "CMakeFiles/sigmund_serving.dir/store.cc.o"
  "CMakeFiles/sigmund_serving.dir/store.cc.o.d"
  "CMakeFiles/sigmund_serving.dir/tiered_store.cc.o"
  "CMakeFiles/sigmund_serving.dir/tiered_store.cc.o.d"
  "libsigmund_serving.a"
  "libsigmund_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmund_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
