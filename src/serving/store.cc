#include "serving/store.h"

#include <algorithm>
#include <mutex>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/funnel.h"

namespace sigmund::serving {

std::shared_ptr<const RecommendationStore::Shard>
RecommendationStore::BuildShard(
    std::vector<core::ItemRecommendations> recommendations) {
  auto shard = std::make_shared<Shard>();
  // Index by query item; the vector is addressed directly by item id.
  data::ItemIndex max_item = -1;
  for (const core::ItemRecommendations& recs : recommendations) {
    max_item = std::max(max_item, recs.query);
  }
  shard->by_item.resize(max_item + 1);
  for (core::ItemRecommendations& recs : recommendations) {
    data::ItemIndex query = recs.query;
    shard->by_item[query] = std::move(recs);
  }
  return shard;
}

void RecommendationStore::Retire(Entry* entry, int64_t keep) const {
  const size_t retained =
      static_cast<size_t>(std::max(1, options_.retained_versions));
  auto it = entry->versions.begin();
  while (entry->versions.size() > retained && it != entry->versions.end()) {
    if (it->first == entry->active || it->first == keep) {
      ++it;
      continue;
    }
    it = entry->versions.erase(it);
  }
}

int64_t RecommendationStore::StageRetailer(
    data::RetailerId retailer,
    std::vector<core::ItemRecommendations> recommendations, int64_t version) {
  std::shared_ptr<const Shard> shard = BuildShard(std::move(recommendations));
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = entries_[retailer];
  if (version <= 0) version = entry.next_version;
  entry.next_version = std::max(entry.next_version, version + 1);
  entry.versions[version] = std::move(shard);
  // A staged-but-never-activated pile must not grow unboundedly either;
  // the staged version itself is always kept.
  Retire(&entry, version);
  return version;
}

void RecommendationStore::LoadRetailer(
    data::RetailerId retailer,
    std::vector<core::ItemRecommendations> recommendations) {
  const int64_t version = StageRetailer(retailer, std::move(recommendations));
  SIGCHECK(ActivateVersion(retailer, version).ok());
}

Status RecommendationStore::ActivateVersion(data::RetailerId retailer,
                                            int64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end() || it->second.versions.count(version) == 0) {
    return NotFoundError(StrFormat(
        "retailer %d has no resident batch version %lld", retailer,
        static_cast<long long>(version)));
  }
  it->second.active = version;
  Retire(&it->second, version);
  return OkStatus();
}

Status RecommendationStore::RollbackRetailer(data::RetailerId retailer,
                                             int64_t version) {
  // Pure pointer flip: the target version is already resident in memory,
  // so no filesystem is touched and nothing is reloaded.
  return ActivateVersion(retailer, version);
}

Status RecommendationStore::DiscardVersion(data::RetailerId retailer,
                                           int64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end() || it->second.versions.count(version) == 0) {
    return NotFoundError(StrFormat(
        "retailer %d has no resident batch version %lld", retailer,
        static_cast<long long>(version)));
  }
  if (it->second.active == version) {
    return FailedPreconditionError(StrFormat(
        "batch version %lld is active for retailer %d; activate another "
        "version before discarding it",
        static_cast<long long>(version), retailer));
  }
  it->second.versions.erase(version);
  return OkStatus();
}

StatusOr<int64_t> RecommendationStore::StageRetailerFromFile(
    data::RetailerId retailer, const sfs::SharedFileSystem& fs,
    const std::string& path, const RetryPolicy& policy,
    sfs::ReliableIoCounters* io, int64_t version) {
  // Batch-load latency + outcome counters when observability is wired in
  // through the caller's ReliableIoCounters.
  obs::MetricRegistry* metrics = io != nullptr ? io->metrics : nullptr;
  const Clock* clock = nullptr;
  int64_t start_micros = 0;
  if (metrics != nullptr) {
    clock = io->clock != nullptr ? io->clock : RealClock::Get();
    start_micros = clock->NowMicros();
  }
  auto finish = [&](const char* outcome,
                    StatusOr<int64_t> result) -> StatusOr<int64_t> {
    if (metrics != nullptr) {
      metrics->GetHistogram("serving_batch_load_micros")
          ->Observe(static_cast<double>(clock->NowMicros() - start_micros));
      metrics->GetCounter("serving_batch_loads_total", {{"outcome", outcome}})
          ->Add(1);
    }
    return result;
  };
  RetryStats* retry_stats = io != nullptr ? &io->retry : nullptr;
  StatusOr<std::string> blob =
      RetryWithPolicy<std::string>(policy, retry_stats, [&] {
        return fs.Read(path);
      });
  if (!blob.ok()) return finish("error", blob.status());
  std::string payload;
  if (LooksLikeChecksummedFrame(*blob)) {
    StatusOr<std::string> unwrapped = ReadChecksummedFrame(*blob);
    if (!unwrapped.ok()) {
      // Torn or bit-rotted batch: refuse it and keep serving the previous
      // version of this retailer's recommendations.
      if (io != nullptr) io->CountCorruptionDetected();
      return finish("rejected", unwrapped.status());
    }
    payload = std::move(unwrapped).value();
  } else {
    payload = std::move(blob).value();  // legacy unframed batch
  }
  std::vector<core::ItemRecommendations> recommendations;
  for (const std::string& line : StrSplit(payload, '\n')) {
    if (line.empty()) continue;
    StatusOr<core::ItemRecommendations> recs =
        core::ItemRecommendations::Deserialize(line);
    if (!recs.ok()) {
      // The frame checked out but a record does not decode: still a
      // corrupt batch from serving's point of view. Previous data stays.
      if (io != nullptr) io->CountCorruptionDetected();
      return finish("rejected",
                    DataLossError(StrFormat(
                        "corrupt recommendation batch %s: %s", path.c_str(),
                        recs.status().message().c_str())));
    }
    recommendations.push_back(std::move(recs).value());
  }
  const int64_t staged =
      StageRetailer(retailer, std::move(recommendations), version);
  return finish("ok", staged);
}

Status RecommendationStore::LoadRetailerFromFile(
    data::RetailerId retailer, const sfs::SharedFileSystem& fs,
    const std::string& path, const RetryPolicy& policy,
    sfs::ReliableIoCounters* io, int64_t version) {
  StatusOr<int64_t> staged =
      StageRetailerFromFile(retailer, fs, path, policy, io, version);
  if (!staged.ok()) return staged.status();
  return ActivateVersion(retailer, *staged);
}

std::shared_ptr<const RecommendationStore::Shard>
RecommendationStore::FindShard(data::RetailerId retailer,
                               int64_t version) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end()) return nullptr;
  const Entry& entry = it->second;
  const int64_t wanted = version <= 0 ? entry.active : version;
  if (wanted == 0) return nullptr;
  auto shard = entry.versions.find(wanted);
  return shard == entry.versions.end() ? nullptr : shard->second;
}

StatusOr<std::vector<core::ScoredItem>> RecommendationStore::LookupInShard(
    const Shard* shard, data::RetailerId retailer, data::ItemIndex item,
    RecommendationKind kind) const {
  if (shard == nullptr) {
    return NotFoundError(StrFormat("retailer %d not loaded", retailer));
  }
  if (item < 0 ||
      item >= static_cast<data::ItemIndex>(shard->by_item.size())) {
    return NotFoundError(StrFormat("no recommendations for item %d", item));
  }
  const core::ItemRecommendations& recs = shard->by_item[item];
  return kind == RecommendationKind::kViewBased ? recs.view_based
                                                : recs.purchase_based;
}

StatusOr<std::vector<core::ScoredItem>> RecommendationStore::Lookup(
    data::RetailerId retailer, data::ItemIndex item,
    RecommendationKind kind) const {
  return LookupAtVersion(retailer, item, kind, /*version=*/0);
}

StatusOr<std::vector<core::ScoredItem>> RecommendationStore::LookupAtVersion(
    data::RetailerId retailer, data::ItemIndex item, RecommendationKind kind,
    int64_t version) const {
  std::shared_ptr<const Shard> shard = FindShard(retailer, version);
  return LookupInShard(shard.get(), retailer, item, kind);
}

StatusOr<std::vector<core::ScoredItem>> RecommendationStore::ServeContext(
    data::RetailerId retailer, const core::Context& context) const {
  return ServeContextAtVersion(retailer, context, /*version=*/0);
}

StatusOr<std::vector<core::ScoredItem>>
RecommendationStore::ServeContextAtVersion(data::RetailerId retailer,
                                           const core::Context& context,
                                           int64_t version) const {
  if (context.empty()) {
    return InvalidArgumentError("empty context");
  }
  const core::ContextEntry& latest = context.back();
  // After a purchase decision (cart/conversion), show accessories;
  // before it, show substitutes (Fig. 1).
  const bool post_purchase =
      latest.action == data::ActionType::kCart ||
      latest.action == data::ActionType::kConversion;
  if (post_purchase) {
    return LookupAtVersion(retailer, latest.item,
                           RecommendationKind::kPurchaseBased, version);
  }
  std::shared_ptr<const Shard> shard = FindShard(retailer, version);
  if (shard == nullptr) {
    return NotFoundError(StrFormat("retailer %d not loaded", retailer));
  }
  // Browsing: a late-funnel user gets the facet-constrained variant.
  if (core::ClassifyFunnelStage(context, /*catalog=*/nullptr, {}) ==
      core::FunnelStage::kLate) {
    const data::ItemIndex item = latest.item;
    if (item >= 0 &&
        item < static_cast<data::ItemIndex>(shard->by_item.size()) &&
        !shard->by_item[item].view_based_late.empty()) {
      return shard->by_item[item].view_based_late;
    }
  }
  return LookupInShard(shard.get(), retailer, latest.item,
                       RecommendationKind::kViewBased);
}

StatusOr<std::vector<core::ScoredItem>>
RecommendationStore::LookupLateFunnel(data::RetailerId retailer,
                                      data::ItemIndex item) const {
  std::shared_ptr<const Shard> shard = FindShard(retailer, /*version=*/0);
  if (shard == nullptr) {
    return NotFoundError(StrFormat("retailer %d not loaded", retailer));
  }
  if (item < 0 ||
      item >= static_cast<data::ItemIndex>(shard->by_item.size())) {
    return NotFoundError(StrFormat("no recommendations for item %d", item));
  }
  const core::ItemRecommendations& recs = shard->by_item[item];
  if (!recs.view_based_late.empty()) return recs.view_based_late;
  return recs.view_based;
}

int RecommendationStore::num_retailers() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int count = 0;
  for (const auto& [retailer, entry] : entries_) {
    if (entry.active != 0) ++count;
  }
  return count;
}

int64_t RecommendationStore::num_items() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [retailer, entry] : entries_) {
    if (entry.active == 0) continue;
    auto shard = entry.versions.find(entry.active);
    if (shard == entry.versions.end()) continue;
    total += static_cast<int64_t>(shard->second->by_item.size());
  }
  return total;
}

int64_t RecommendationStore::RetailerVersion(data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  return it == entries_.end() ? 0 : it->second.active;
}

int64_t RecommendationStore::LatestVersion(data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end() || it->second.versions.empty()) return 0;
  return it->second.versions.rbegin()->first;
}

std::vector<int64_t> RecommendationStore::RetainedVersions(
    data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<int64_t> versions;
  auto it = entries_.find(retailer);
  if (it == entries_.end()) return versions;
  versions.reserve(it->second.versions.size());
  for (const auto& [version, shard] : it->second.versions) {
    versions.push_back(version);
  }
  return versions;
}

int64_t RecommendationStore::NextVersion(data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  return it == entries_.end() ? 1 : it->second.next_version;
}

void RecommendationStore::EnsureNextVersion(data::RetailerId retailer,
                                            int64_t next_version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = entries_[retailer];
  entry.next_version = std::max(entry.next_version, next_version);
}

}  // namespace sigmund::serving
