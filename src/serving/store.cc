#include "serving/store.h"

#include <algorithm>
#include <mutex>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/funnel.h"

namespace sigmund::serving {

void RecommendationStore::LoadRetailer(
    data::RetailerId retailer,
    std::vector<core::ItemRecommendations> recommendations) {
  auto shard = std::make_shared<Shard>();
  // Index by query item; the vector is addressed directly by item id.
  data::ItemIndex max_item = -1;
  for (const core::ItemRecommendations& recs : recommendations) {
    max_item = std::max(max_item, recs.query);
  }
  shard->by_item.resize(max_item + 1);
  for (core::ItemRecommendations& recs : recommendations) {
    data::ItemIndex query = recs.query;
    shard->by_item[query] = std::move(recs);
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = shards_.find(retailer);
  shard->version = it == shards_.end() ? 1 : it->second->version + 1;
  shards_[retailer] = std::move(shard);
}

Status RecommendationStore::LoadRetailerFromFile(
    data::RetailerId retailer, const sfs::SharedFileSystem& fs,
    const std::string& path, const RetryPolicy& policy,
    sfs::ReliableIoCounters* io) {
  // Batch-load latency + outcome counters when observability is wired in
  // through the caller's ReliableIoCounters.
  obs::MetricRegistry* metrics = io != nullptr ? io->metrics : nullptr;
  const Clock* clock = nullptr;
  int64_t start_micros = 0;
  if (metrics != nullptr) {
    clock = io->clock != nullptr ? io->clock : RealClock::Get();
    start_micros = clock->NowMicros();
  }
  auto finish = [&](const char* outcome, Status status) {
    if (metrics != nullptr) {
      metrics->GetHistogram("serving_batch_load_micros")
          ->Observe(static_cast<double>(clock->NowMicros() - start_micros));
      metrics->GetCounter("serving_batch_loads_total", {{"outcome", outcome}})
          ->Add(1);
    }
    return status;
  };
  RetryStats* retry_stats = io != nullptr ? &io->retry : nullptr;
  StatusOr<std::string> blob =
      RetryWithPolicy<std::string>(policy, retry_stats, [&] {
        return fs.Read(path);
      });
  if (!blob.ok()) return finish("error", blob.status());
  std::string payload;
  if (LooksLikeChecksummedFrame(*blob)) {
    StatusOr<std::string> unwrapped = ReadChecksummedFrame(*blob);
    if (!unwrapped.ok()) {
      // Torn or bit-rotted batch: refuse it and keep serving the previous
      // version of this retailer's recommendations.
      if (io != nullptr) io->CountCorruptionDetected();
      return finish("rejected", unwrapped.status());
    }
    payload = std::move(unwrapped).value();
  } else {
    payload = std::move(blob).value();  // legacy unframed batch
  }
  std::vector<core::ItemRecommendations> recommendations;
  for (const std::string& line : StrSplit(payload, '\n')) {
    if (line.empty()) continue;
    StatusOr<core::ItemRecommendations> recs =
        core::ItemRecommendations::Deserialize(line);
    if (!recs.ok()) {
      // The frame checked out but a record does not decode: still a
      // corrupt batch from serving's point of view. Previous data stays.
      if (io != nullptr) io->CountCorruptionDetected();
      return finish("rejected",
                    DataLossError(StrFormat(
                        "corrupt recommendation batch %s: %s", path.c_str(),
                        recs.status().message().c_str())));
    }
    recommendations.push_back(std::move(recs).value());
  }
  LoadRetailer(retailer, std::move(recommendations));
  return finish("ok", OkStatus());
}

StatusOr<std::vector<core::ScoredItem>> RecommendationStore::Lookup(
    data::RetailerId retailer, data::ItemIndex item,
    RecommendationKind kind) const {
  std::shared_ptr<Shard> shard;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = shards_.find(retailer);
    if (it == shards_.end()) {
      return NotFoundError(StrFormat("retailer %d not loaded", retailer));
    }
    shard = it->second;
  }
  if (item < 0 || item >= static_cast<data::ItemIndex>(
                              shard->by_item.size())) {
    return NotFoundError(StrFormat("no recommendations for item %d", item));
  }
  const core::ItemRecommendations& recs = shard->by_item[item];
  return kind == RecommendationKind::kViewBased ? recs.view_based
                                                : recs.purchase_based;
}

StatusOr<std::vector<core::ScoredItem>> RecommendationStore::ServeContext(
    data::RetailerId retailer, const core::Context& context) const {
  if (context.empty()) {
    return InvalidArgumentError("empty context");
  }
  const core::ContextEntry& latest = context.back();
  // After a purchase decision (cart/conversion), show accessories;
  // before it, show substitutes (Fig. 1).
  const bool post_purchase =
      latest.action == data::ActionType::kCart ||
      latest.action == data::ActionType::kConversion;
  if (post_purchase) {
    return Lookup(retailer, latest.item,
                  RecommendationKind::kPurchaseBased);
  }
  // Browsing: a late-funnel user gets the facet-constrained variant.
  if (core::ClassifyFunnelStage(context, /*catalog=*/nullptr, {}) ==
      core::FunnelStage::kLate) {
    return LookupLateFunnel(retailer, latest.item);
  }
  return Lookup(retailer, latest.item, RecommendationKind::kViewBased);
}

StatusOr<std::vector<core::ScoredItem>>
RecommendationStore::LookupLateFunnel(data::RetailerId retailer,
                                      data::ItemIndex item) const {
  std::shared_ptr<Shard> shard;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = shards_.find(retailer);
    if (it == shards_.end()) {
      return NotFoundError(StrFormat("retailer %d not loaded", retailer));
    }
    shard = it->second;
  }
  if (item < 0 ||
      item >= static_cast<data::ItemIndex>(shard->by_item.size())) {
    return NotFoundError(StrFormat("no recommendations for item %d", item));
  }
  const core::ItemRecommendations& recs = shard->by_item[item];
  if (!recs.view_based_late.empty()) return recs.view_based_late;
  return recs.view_based;
}

int RecommendationStore::num_retailers() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(shards_.size());
}

int64_t RecommendationStore::num_items() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [retailer, shard] : shards_) {
    total += static_cast<int64_t>(shard->by_item.size());
  }
  return total;
}

int64_t RecommendationStore::RetailerVersion(data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = shards_.find(retailer);
  return it == shards_.end() ? 0 : it->second->version;
}

}  // namespace sigmund::serving
