#include "serving/replicated_store.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace sigmund::serving {

ReplicatedStoreGroup::ReplicatedStoreGroup(const Options& options,
                                           obs::MetricRegistry* metrics)
    : options_(options), metrics_(metrics) {
  if (options_.hedge_budget_ratio >= 0.0) {
    RetryBudget::Options budget;
    budget.ratio = options_.hedge_budget_ratio;
    budget.initial_tokens = options_.hedge_budget_initial_tokens;
    budget.max_tokens = options_.hedge_budget_max_tokens;
    hedge_budget_ = std::make_unique<RetryBudget>(budget);
  }
  const int n = std::max(1, options_.num_replicas);
  replicas_.reserve(n);
  for (int i = 0; i < n; ++i) {
    replicas_.push_back(
        std::make_unique<RecommendationStore>(options_.store));
  }
  states_.resize(n);
}

std::string ReplicatedStoreGroup::HeartbeatPath(int replica) {
  return StrFormat("serving/heartbeat/replica%d", replica);
}

int64_t ReplicatedStoreGroup::ReadMicros(int replica) const {
  if (options_.replica_read_micros.empty()) return 150;
  const size_t i = std::min(static_cast<size_t>(replica),
                            options_.replica_read_micros.size() - 1);
  return options_.replica_read_micros[i];
}

std::vector<int> ReplicatedStoreGroup::ServingOrder(
    data::RetailerId retailer, data::ItemIndex item) const {
  const int n = num_replicas();
  // Deterministic preference: a stable hash of (retailer, item) spreads
  // load across replicas and makes chaos reruns byte-identical.
  const int preferred = static_cast<int>(
      SplitMix64(static_cast<uint64_t>(retailer) * 0x9E3779B97F4A7C15ULL ^
                 static_cast<uint64_t>(item + 1)) %
      static_cast<uint64_t>(n));
  std::vector<int> order;
  order.reserve(n);
  std::lock_guard<std::mutex> lock(mu_);
  auto collect = [&](auto eligible) {
    order.clear();
    for (int step = 0; step < n; ++step) {
      const int i = (preferred + step) % n;
      if (eligible(states_[i])) order.push_back(i);
    }
  };
  collect([](const ReplicaState& s) {
    return s.alive && !s.draining && s.probe_ok;
  });
  if (order.empty()) {
    // Every replica is draining or failing probes: fall back to whatever
    // is alive rather than refusing to serve.
    collect([](const ReplicaState& s) { return s.alive; });
  }
  return order;
}

StatusOr<std::vector<core::ScoredItem>> ReplicatedStoreGroup::ServeContext(
    data::RetailerId retailer, const core::Context& context) const {
  return ServeContext(retailer, context, obs::TraceContext());
}

StatusOr<std::vector<core::ScoredItem>> ReplicatedStoreGroup::ServeContext(
    data::RetailerId retailer, const core::Context& context,
    obs::TraceContext trace) const {
  if (context.empty()) {
    return InvalidArgumentError("empty context");
  }
  const data::ItemIndex item = context.back().item;
  const int n = num_replicas();
  const int preferred = static_cast<int>(
      SplitMix64(static_cast<uint64_t>(retailer) * 0x9E3779B97F4A7C15ULL ^
                 static_cast<uint64_t>(item + 1)) %
      static_cast<uint64_t>(n));
  std::vector<int> order = ServingOrder(retailer, item);
  if (order.empty()) {
    return UnavailableError("no serving replicas alive");
  }
  if (order.front() != preferred) {
    if (metrics_ != nullptr) {
      metrics_->GetCounter("serving_replica_failovers_total")->Add(1);
    }
    trace.Annotate("replica_failover",
                   StrFormat("%d->%d", preferred, order.front()));
  }
  trace.Annotate("replica", StrFormat("%d", order.front()));
  auto observe = [&](int64_t micros) {
    if (metrics_ != nullptr) {
      metrics_->GetHistogram("serving_replica_read_micros")
          ->Observe(static_cast<double>(micros));
    }
  };
  // Every read banks hedge-budget tokens; each hedge below spends one, so
  // hedging can never more than (1 + ratio)× the replica read volume.
  if (hedge_budget_ != nullptr) hedge_budget_->RecordRequest();
  bool hedge = options_.hedged_reads && order.size() >= 2;
  if (hedge && hedge_budget_ != nullptr && !hedge_budget_->TryWithdraw()) {
    hedge = false;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("serving_hedges_suppressed_total")->Add(1);
    }
    trace.Annotate("hedge", "suppressed_budget");
  }
  if (hedge) {
    // Hedge: read the two most-preferred replicas and serve the faster
    // copy (accounted micros; the replicas hold the same batch, so only
    // latency differs).
    const int first = order[0];
    const int second = order[1];
    StatusOr<std::vector<core::ScoredItem>> a =
        replicas_[first]->ServeContext(retailer, context);
    StatusOr<std::vector<core::ScoredItem>> b =
        replicas_[second]->ServeContext(retailer, context);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("serving_hedged_reads_total")->Add(1);
    }
    trace.Annotate("hedge", StrFormat("%d+%d", first, second));
    const bool backup_wins =
        b.ok() && (!a.ok() || ReadMicros(second) < ReadMicros(first));
    if (backup_wins) {
      if (metrics_ != nullptr) {
        metrics_->GetCounter("serving_hedge_wins_total")->Add(1);
      }
      trace.Annotate("hedge_winner", "backup");
    }
    observe(a.ok() && b.ok()
                ? std::min(ReadMicros(first), ReadMicros(second))
                : ReadMicros(backup_wins ? second : first));
    return backup_wins ? b : a;
  }
  const int chosen = order.front();
  observe(ReadMicros(chosen));
  return replicas_[chosen]->ServeContext(retailer, context);
}

int64_t ReplicatedStoreGroup::RetailerVersion(
    data::RetailerId retailer) const {
  return primary().RetailerVersion(retailer);
}

void ReplicatedStoreGroup::LoadRetailer(
    data::RetailerId retailer,
    const std::vector<core::ItemRecommendations>& recs) {
  std::vector<bool> alive;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ReplicaState& s : states_) alive.push_back(s.alive);
  }
  // One shared version number keeps replica chains aligned even when some
  // replica missed earlier loads while dead.
  int64_t version = 0;
  for (int i = 0; i < num_replicas(); ++i) {
    if (!alive[i]) continue;
    version = replicas_[i]->StageRetailer(retailer, recs, version);
    SIGCHECK(replicas_[i]->ActivateVersion(retailer, version).ok());
  }
}

Status ReplicatedStoreGroup::CutoverFollowersFromFile(
    data::RetailerId retailer, const sfs::SharedFileSystem& fs,
    const std::string& path, int64_t version, const RetryPolicy& policy,
    sfs::ReliableIoCounters* io) {
  auto count = [&](const char* outcome) {
    if (metrics_ != nullptr) {
      metrics_->GetCounter("serving_replica_cutovers_total",
                           {{"outcome", outcome}})
          ->Add(1);
    }
  };
  for (int i = 1; i < num_replicas(); ++i) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!states_[i].alive) {
        count("skipped_dead");
        continue;
      }
      states_[i].draining = true;
    }
    if (cutover_hook_) cutover_hook_(retailer, i);
    {
      // The hook (or anyone else) may have killed the replica while it
      // was draining; don't load a batch into a corpse.
      std::lock_guard<std::mutex> lock(mu_);
      if (!states_[i].alive) {
        states_[i].draining = false;
        count("skipped_dead");
        continue;
      }
    }
    Status loaded = replicas_[i]->LoadRetailerFromFile(retailer, fs, path,
                                                       policy, io, version);
    {
      std::lock_guard<std::mutex> lock(mu_);
      states_[i].draining = false;
      if (loaded.ok()) {
        // A replica that recovered enough to complete a cutover is
        // healthy again regardless of the last probe round.
        states_[i].probe_ok = true;
      } else if (loaded.code() != StatusCode::kDataLoss) {
        // Persistent read failure: keep the replica out of the rotation
        // until a probe sees it healthy again.
        states_[i].probe_ok = false;
      }
    }
    if (loaded.ok()) {
      count("ok");
    } else if (loaded.code() == StatusCode::kDataLoss) {
      // Corrupt batch: this replica keeps serving its previous version.
      count("rejected");
      SIGLOG(WARNING) << "replica " << i << " rejected batch v" << version
                      << " for retailer " << retailer << ": "
                      << loaded.ToString();
    } else {
      count("error");
      SIGLOG(WARNING) << "replica " << i << " cutover failed for retailer "
                      << retailer << ": " << loaded.ToString();
    }
  }
  return OkStatus();
}

Status ReplicatedStoreGroup::RollbackRetailer(data::RetailerId retailer,
                                              int64_t version) {
  std::vector<bool> alive;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ReplicaState& s : states_) alive.push_back(s.alive);
  }
  SIGMUND_RETURN_IF_ERROR(
      replicas_[0]->RollbackRetailer(retailer, version));
  for (int i = 1; i < num_replicas(); ++i) {
    if (!alive[i]) continue;
    // Best-effort on followers: a replica that never retained `version`
    // (e.g. it was dead when that batch shipped) keeps its current batch.
    Status rolled = replicas_[i]->RollbackRetailer(retailer, version);
    if (!rolled.ok()) {
      SIGLOG(WARNING) << "replica " << i << " cannot roll retailer "
                      << retailer << " back to v" << version << ": "
                      << rolled.ToString();
    }
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("serving_rollbacks_total")->Add(1);
  }
  return OkStatus();
}

void ReplicatedStoreGroup::KillReplica(int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  states_[replica].alive = false;
}

void ReplicatedStoreGroup::ReviveReplica(int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  states_[replica].alive = true;
  states_[replica].draining = false;
  states_[replica].probe_ok = true;
}

bool ReplicatedStoreGroup::ReplicaAlive(int replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_[replica].alive;
}

int ReplicatedStoreGroup::ServingReplicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const ReplicaState& s : states_) {
    if (s.alive && !s.draining && s.probe_ok) ++count;
  }
  return count;
}

Status ReplicatedStoreGroup::WriteHeartbeats(sfs::SharedFileSystem* fs,
                                             const RetryPolicy& policy) {
  std::vector<bool> alive;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ReplicaState& s : states_) alive.push_back(s.alive);
  }
  for (int i = 0; i < num_replicas(); ++i) {
    const std::string path = HeartbeatPath(i);
    if (alive[i]) {
      // Best-effort: a lost heartbeat shows up as a failed probe, which
      // is exactly what it should look like.
      (void)RetryWithPolicy(policy, nullptr, [&] {
        return fs->Write(path, "ok");
      });
    } else {
      (void)fs->Delete(path);  // a dead replica stops heartbeating
    }
  }
  return OkStatus();
}

void ReplicatedStoreGroup::ProbeReplicas(const sfs::SharedFileSystem& fs,
                                         const RetryPolicy& policy) {
  for (int i = 0; i < num_replicas(); ++i) {
    StatusOr<std::string> beat =
        RetryWithPolicy<std::string>(policy, nullptr, [&] {
          return fs.Read(HeartbeatPath(i));
        });
    std::lock_guard<std::mutex> lock(mu_);
    states_[i].probe_ok = beat.ok();
    if (!beat.ok() && metrics_ != nullptr) {
      metrics_->GetCounter("serving_replica_probe_failures_total")->Add(1);
    }
  }
}

}  // namespace sigmund::serving
