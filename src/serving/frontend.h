#ifndef SIGMUND_SERVING_FRONTEND_H_
#define SIGMUND_SERVING_FRONTEND_H_

#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/calibration.h"
#include "core/funnel.h"
#include "serving/admission.h"
#include "serving/store.h"

namespace sigmund::serving {

// One serving request: "recommendations given a user and the associated
// context" (§II-A of the paper).
struct RecommendationRequest {
  data::RetailerId retailer = 0;
  core::Context context;
  // Stable user identity for sticky experiment splits (retrieval A/B arm
  // assignment); -1 = anonymous, in which case the latest context item
  // stands in as the split key.
  data::UserIndex user = -1;
  int max_results = 10;
  // Minimum calibrated click probability to display a recommendation
  // (§VII future work); <= 0 disables thresholding (always show top-K).
  double display_threshold = 0.0;
  // Priority class for admission control: under overload the lowest class
  // is shed first (user-facing > canary > health-probe).
  RequestPriority priority = RequestPriority::kUserFacing;
  // Caller-owned request trace to annotate (inactive = none). When left
  // inactive and the frontend has a `request_tracer`, Handle() starts,
  // populates, and submits its own trace for the request.
  obs::TraceContext trace;
};

// Where the served list came from — the store itself, or a rung of the
// degradation ladder.
enum class ServingSource {
  kStore,           // healthy path
  kLastKnownGood,   // store failed; replayed this retailer's last good list
  kPopularity,      // no last-known-good either; static popularity list
  // Brownout rung 3: the store is healthy but the plane is saturated, so
  // the cached last-known-good list is served without a store call.
  kBrownoutLastKnownGood,
  // Healthy serve from the online embedding-retrieval plane (ANN index)
  // instead of the materialized store — the A/B treatment arm.
  kOnlineRetrieval,
};

const char* ServingSourceName(ServingSource source);

struct RecommendationResponse {
  std::vector<core::ScoredItem> items;
  // Diagnostics for logging/experimentation.
  core::FunnelStage funnel = core::FunnelStage::kEarly;
  bool post_purchase = false;
  int suppressed_by_threshold = 0;
  // Degradation diagnostics: true when the response was served from a
  // fallback instead of the store.
  bool degraded = false;
  ServingSource source = ServingSource::kStore;
  // The serving batch version the items came from: the store's active
  // version for kStore, the version cached alongside a last-known-good
  // list for kLastKnownGood, 0 for popularity fallbacks (which belong to
  // no snapshot). Makes every degraded/fallback/canary serve attributable
  // to a concrete snapshot in logs and RunProfile.
  int64_t batch_version = 0;
  // Brownout ladder rung this response was served under (0 = healthy;
  // 1 = max_results shrunk; 2 = calibration thresholding skipped too;
  // 3 = answered from last-known-good without touching the store).
  int brownout_rung = 0;
  // When the store lookup finished past the request deadline: how late it
  // was, in micros (0 otherwise). Lets brownout triggers key on the size
  // of tail overruns rather than just failure counts.
  int64_t overrun_micros = 0;
};

// The request path in front of the store: picks the right materialized
// list (pre/post purchase, early/late funnel), applies the calibrated
// display threshold, and truncates to max_results.
//
// Robustness (degradation ladder, serving rungs): a per-request deadline
// turns slow store lookups into failures; a per-retailer circuit breaker
// trips after `breaker_failure_threshold` consecutive store errors and
// short-circuits requests (no store call) until `breaker_open_seconds`
// pass, then lets one probe through (half-open); failed or
// short-circuited requests fall back to the retailer's last successfully
// served list, then to a static popularity list, before giving up and
// returning the error.
//
// Overload robustness (DESIGN.md §8): when an AdmissionController is
// wired in, every request passes admission first — shed requests return
// kResourceExhausted without touching the store — and the controller's
// sustained-pressure signal drives a brownout ladder that degrades
// response quality in rungs (shrink max_results, skip calibration
// thresholding, answer from last-known-good) before anything sheds.
// Transient store failures may be retried, but only inside a
// Finagle-style retry budget so retries can never multiply offered load.
//
// Thread-safe; the fallback cache and breaker state are internally
// synchronized, and the per-retailer state map is LRU-bounded by
// `max_retailer_states` so serving 100k retailers cannot leak memory.
class Frontend {
 public:
  struct Options {
    // Per-request deadline (microseconds on `clock`); 0 = none. A store
    // lookup that finishes past the deadline counts as a failure.
    int64_t request_deadline_micros = 0;
    // Consecutive store errors (per retailer) that trip the breaker;
    // 0 = breaker disabled.
    int breaker_failure_threshold = 0;
    // How long a tripped breaker stays open before the next probe.
    double breaker_open_seconds = 30.0;
    // Cache each retailer's last successful list and serve it when the
    // store fails or the breaker is open.
    bool fallback_to_last_known_good = true;

    // LRU cap on per-retailer state entries (breaker + fallback cache);
    // 0 = unbounded (legacy). Evictions are counted in
    // serving_state_evictions_total; the live size is the
    // serving_state_entries gauge.
    int max_retailer_states = 0;

    // Admission control (borrowed; null = accept everything, the legacy
    // behavior). Shed requests return kResourceExhausted and are counted
    // by reason/priority in serving_shed_total.
    AdmissionController* admission = nullptr;

    // Brownout ladder: rung thresholds on the controller's sustained
    // pressure signal (EWMA occupancy in [0, 1]). Rungs only engage when
    // `admission` is wired.
    double brownout_shrink_pressure = 0.85;      // rung 1
    double brownout_skip_threshold_pressure = 0.92;  // rung 2
    double brownout_serve_lkg_pressure = 0.97;   // rung 3
    // Rung >= 1 caps max_results at this.
    int brownout_max_results = 3;

    // Client retries of transient store failures per request; 0 = none.
    // Every retry must withdraw from `retry_budget`, so sustained retry
    // volume is capped at a fraction of real request volume.
    int store_retries = 0;
    RetryBudget::Options retry_budget;

    // Online retrieval plane (borrowed; null = off). When set, a sticky
    // hash split of (retailer, user) routes `retrieval_ab_fraction` of
    // requests to this reader (the ANN-index path) instead of the
    // materialized store — but only for retailers whose reader has an
    // active index version, so rolling an index back (version -> 0)
    // instantly returns the whole retailer to the materialized plane. A
    // retrieval lookup that fails falls back to the materialized store in
    // the same request before the degradation ladder is consulted.
    const ServingReader* retrieval_store = nullptr;
    // Fraction of eligible traffic served by the retrieval plane.
    // Monotone ramp-up: raising it only moves users *into* the arm.
    double retrieval_ab_fraction = 0.0;
    // Seed of the sticky split; changing it reshuffles arm membership.
    uint64_t retrieval_ab_seed = 0x5e72;

    // Request tracer (borrowed; null = tracing off). Every Handle() whose
    // request carries no caller trace builds one span tree — admission
    // decision, brownout rung, store lookup with retry/hedge annotations,
    // deadline overrun, fallback source — and submits it to the tracer's
    // tail sampler; kept traces become exemplars on
    // serving_request_micros. Requests that do carry a caller trace are
    // annotated in place (submission stays with the caller).
    obs::RequestTracer* request_tracer = nullptr;
  };

  // Test seam: replaces the store lookup (so tests can inject errors,
  // latency via a SimClock, or canned lists without a real store).
  using StoreLookup = std::function<StatusOr<std::vector<core::ScoredItem>>(
      data::RetailerId, const core::Context&)>;

  // `store` is required (unless a lookup override is installed) — any
  // ServingReader: a plain RecommendationStore or a ReplicatedStoreGroup.
  // `calibrator` may be nullptr (no thresholding). `metrics` (borrowed,
  // may be nullptr) turns on request observability: every Handle()
  // records a serving_request_micros latency sample and bumps
  // serving_requests_total{outcome=ok|shed|error, version=...} (version =
  // the serving batch version the request was answered from), plus the
  // breaker/fallback/admission counters described in Options. `clock` is
  // the time source for latency, deadlines and breaker cooldowns
  // (nullptr = RealClock).
  Frontend(const ServingReader* store,
           const core::ScoreCalibrator* calibrator,
           obs::MetricRegistry* metrics, const Clock* clock,
           const Options& options);
  Frontend(const ServingReader* store,
           const core::ScoreCalibrator* calibrator,
           obs::MetricRegistry* metrics = nullptr,
           const Clock* clock = nullptr);

  StatusOr<RecommendationResponse> Handle(
      const RecommendationRequest& request) const;

  // Installs a popularity fallback list for `retailer` — the ladder's
  // last rung, served when the store fails and no last-known-good list
  // exists yet.
  void SetPopularityFallback(data::RetailerId retailer,
                             std::vector<core::ScoredItem> items);

  // Replaces the store lookup (tests only).
  void SetLookupForTesting(StoreLookup lookup) {
    lookup_ = std::move(lookup);
  }

  // True if `retailer`'s circuit breaker is currently open (requests are
  // short-circuited to fallbacks).
  bool BreakerOpen(data::RetailerId retailer) const;

  // Live per-retailer state entries (breaker + fallback cache).
  int NumRetailerStates() const;

 private:
  // Per-retailer serving health: breaker state + fallback cache.
  struct RetailerState {
    int consecutive_failures = 0;
    bool breaker_open = false;
    double open_until_seconds = 0.0;
    bool has_last_known_good = false;
    std::vector<core::ScoredItem> last_known_good;
    // Batch version the cached last-known-good list was served from.
    int64_t last_known_good_version = 0;
    bool has_popularity = false;
    std::vector<core::ScoredItem> popularity;
    // Position in the LRU list (most-recent at front).
    std::list<data::RetailerId>::iterator lru_it;
  };

  // Finds-or-creates `retailer`'s state, marks it most-recently-used, and
  // LRU-evicts past the cap. Caller holds mu_.
  RetailerState& TouchLocked(data::RetailerId retailer) const;

  const ServingReader* store_;
  const core::ScoreCalibrator* calibrator_;
  const Clock* clock_;
  Options options_;
  StoreLookup lookup_;                // null = use store_->ServeContext
  obs::MetricRegistry* metrics_;      // null when metrics are off
  obs::Histogram* request_micros_;    // null when metrics are off
  obs::Counter* deadline_exceeded_;
  obs::Histogram* overrun_micros_;
  obs::Counter* breaker_trips_;
  obs::Counter* breaker_short_circuits_;
  obs::Counter* state_evictions_;
  obs::Gauge* state_entries_;
  obs::Counter* client_retries_;
  obs::Counter* retry_budget_exhausted_;
  mutable RetryBudget retry_budget_tokens_;

  mutable std::mutex mu_;
  mutable std::map<data::RetailerId, RetailerState> state_;
  mutable std::list<data::RetailerId> lru_;  // front = most recent
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_FRONTEND_H_
