#ifndef SIGMUND_SERVING_FRONTEND_H_
#define SIGMUND_SERVING_FRONTEND_H_

#include "common/clock.h"
#include "common/metrics.h"
#include "core/calibration.h"
#include "core/funnel.h"
#include "serving/store.h"

namespace sigmund::serving {

// One serving request: "recommendations given a user and the associated
// context" (§II-A of the paper).
struct RecommendationRequest {
  data::RetailerId retailer = 0;
  core::Context context;
  int max_results = 10;
  // Minimum calibrated click probability to display a recommendation
  // (§VII future work); <= 0 disables thresholding (always show top-K).
  double display_threshold = 0.0;
};

struct RecommendationResponse {
  std::vector<core::ScoredItem> items;
  // Diagnostics for logging/experimentation.
  core::FunnelStage funnel = core::FunnelStage::kEarly;
  bool post_purchase = false;
  int suppressed_by_threshold = 0;
};

// The request path in front of the store: picks the right materialized
// list (pre/post purchase, early/late funnel), applies the calibrated
// display threshold, and truncates to max_results. Stateless and
// thread-safe; all heavy computation already happened offline.
class Frontend {
 public:
  // `store` is required; `calibrator` may be nullptr (no thresholding).
  // `metrics` (borrowed, may be nullptr) turns on request observability:
  // every Handle() records a serving_request_micros latency sample and
  // bumps serving_requests_total{outcome=ok|error}. `clock` is the
  // latency time source (nullptr = RealClock).
  Frontend(const RecommendationStore* store,
           const core::ScoreCalibrator* calibrator,
           obs::MetricRegistry* metrics = nullptr,
           const Clock* clock = nullptr);

  StatusOr<RecommendationResponse> Handle(
      const RecommendationRequest& request) const;

 private:
  const RecommendationStore* store_;
  const core::ScoreCalibrator* calibrator_;
  const Clock* clock_;
  obs::Histogram* request_micros_;    // null when metrics are off
  obs::Counter* requests_ok_;
  obs::Counter* requests_error_;
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_FRONTEND_H_
