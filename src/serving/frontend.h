#ifndef SIGMUND_SERVING_FRONTEND_H_
#define SIGMUND_SERVING_FRONTEND_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "core/calibration.h"
#include "core/funnel.h"
#include "serving/store.h"

namespace sigmund::serving {

// One serving request: "recommendations given a user and the associated
// context" (§II-A of the paper).
struct RecommendationRequest {
  data::RetailerId retailer = 0;
  core::Context context;
  int max_results = 10;
  // Minimum calibrated click probability to display a recommendation
  // (§VII future work); <= 0 disables thresholding (always show top-K).
  double display_threshold = 0.0;
};

// Where the served list came from — the store itself, or a rung of the
// degradation ladder.
enum class ServingSource {
  kStore,           // healthy path
  kLastKnownGood,   // store failed; replayed this retailer's last good list
  kPopularity,      // no last-known-good either; static popularity list
};

const char* ServingSourceName(ServingSource source);

struct RecommendationResponse {
  std::vector<core::ScoredItem> items;
  // Diagnostics for logging/experimentation.
  core::FunnelStage funnel = core::FunnelStage::kEarly;
  bool post_purchase = false;
  int suppressed_by_threshold = 0;
  // Degradation diagnostics: true when the response was served from a
  // fallback instead of the store.
  bool degraded = false;
  ServingSource source = ServingSource::kStore;
  // The serving batch version the items came from: the store's active
  // version for kStore, the version cached alongside a last-known-good
  // list for kLastKnownGood, 0 for popularity fallbacks (which belong to
  // no snapshot). Makes every degraded/fallback/canary serve attributable
  // to a concrete snapshot in logs and RunProfile.
  int64_t batch_version = 0;
};

// The request path in front of the store: picks the right materialized
// list (pre/post purchase, early/late funnel), applies the calibrated
// display threshold, and truncates to max_results.
//
// Robustness (degradation ladder, serving rungs): a per-request deadline
// turns slow store lookups into failures; a per-retailer circuit breaker
// trips after `breaker_failure_threshold` consecutive store errors and
// short-circuits requests (no store call) until `breaker_open_seconds`
// pass, then lets one probe through (half-open); failed or
// short-circuited requests fall back to the retailer's last successfully
// served list, then to a static popularity list, before giving up and
// returning the error. Thread-safe; the fallback cache and breaker state
// are internally synchronized.
class Frontend {
 public:
  struct Options {
    // Per-request deadline (microseconds on `clock`); 0 = none. A store
    // lookup that finishes past the deadline counts as a failure.
    int64_t request_deadline_micros = 0;
    // Consecutive store errors (per retailer) that trip the breaker;
    // 0 = breaker disabled.
    int breaker_failure_threshold = 0;
    // How long a tripped breaker stays open before the next probe.
    double breaker_open_seconds = 30.0;
    // Cache each retailer's last successful list and serve it when the
    // store fails or the breaker is open.
    bool fallback_to_last_known_good = true;
  };

  // Test seam: replaces the store lookup (so tests can inject errors,
  // latency via a SimClock, or canned lists without a real store).
  using StoreLookup = std::function<StatusOr<std::vector<core::ScoredItem>>(
      data::RetailerId, const core::Context&)>;

  // `store` is required (unless a lookup override is installed) — any
  // ServingReader: a plain RecommendationStore or a ReplicatedStoreGroup.
  // `calibrator` may be nullptr (no thresholding). `metrics` (borrowed,
  // may be nullptr) turns on request observability: every Handle()
  // records a serving_request_micros latency sample and bumps
  // serving_requests_total{outcome=ok|error, version=...} (version = the
  // serving batch version the request was answered from), plus the
  // breaker/fallback counters described in Options. `clock` is the time
  // source for latency, deadlines and breaker cooldowns (nullptr =
  // RealClock).
  Frontend(const ServingReader* store,
           const core::ScoreCalibrator* calibrator,
           obs::MetricRegistry* metrics, const Clock* clock,
           const Options& options);
  Frontend(const ServingReader* store,
           const core::ScoreCalibrator* calibrator,
           obs::MetricRegistry* metrics = nullptr,
           const Clock* clock = nullptr);

  StatusOr<RecommendationResponse> Handle(
      const RecommendationRequest& request) const;

  // Installs a popularity fallback list for `retailer` — the ladder's
  // last rung, served when the store fails and no last-known-good list
  // exists yet.
  void SetPopularityFallback(data::RetailerId retailer,
                             std::vector<core::ScoredItem> items);

  // Replaces the store lookup (tests only).
  void SetLookupForTesting(StoreLookup lookup) {
    lookup_ = std::move(lookup);
  }

  // True if `retailer`'s circuit breaker is currently open (requests are
  // short-circuited to fallbacks).
  bool BreakerOpen(data::RetailerId retailer) const;

 private:
  // Per-retailer serving health: breaker state + fallback cache.
  struct RetailerState {
    int consecutive_failures = 0;
    bool breaker_open = false;
    double open_until_seconds = 0.0;
    bool has_last_known_good = false;
    std::vector<core::ScoredItem> last_known_good;
    // Batch version the cached last-known-good list was served from.
    int64_t last_known_good_version = 0;
    bool has_popularity = false;
    std::vector<core::ScoredItem> popularity;
  };

  const ServingReader* store_;
  const core::ScoreCalibrator* calibrator_;
  const Clock* clock_;
  Options options_;
  StoreLookup lookup_;                // null = use store_->ServeContext
  obs::MetricRegistry* metrics_;      // null when metrics are off
  obs::Histogram* request_micros_;    // null when metrics are off
  obs::Counter* deadline_exceeded_;
  obs::Counter* breaker_trips_;
  obs::Counter* breaker_short_circuits_;

  mutable std::mutex mu_;
  mutable std::map<data::RetailerId, RetailerState> state_;
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_FRONTEND_H_
