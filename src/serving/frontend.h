#ifndef SIGMUND_SERVING_FRONTEND_H_
#define SIGMUND_SERVING_FRONTEND_H_

#include "core/calibration.h"
#include "core/funnel.h"
#include "serving/store.h"

namespace sigmund::serving {

// One serving request: "recommendations given a user and the associated
// context" (§II-A of the paper).
struct RecommendationRequest {
  data::RetailerId retailer = 0;
  core::Context context;
  int max_results = 10;
  // Minimum calibrated click probability to display a recommendation
  // (§VII future work); <= 0 disables thresholding (always show top-K).
  double display_threshold = 0.0;
};

struct RecommendationResponse {
  std::vector<core::ScoredItem> items;
  // Diagnostics for logging/experimentation.
  core::FunnelStage funnel = core::FunnelStage::kEarly;
  bool post_purchase = false;
  int suppressed_by_threshold = 0;
};

// The request path in front of the store: picks the right materialized
// list (pre/post purchase, early/late funnel), applies the calibrated
// display threshold, and truncates to max_results. Stateless and
// thread-safe; all heavy computation already happened offline.
class Frontend {
 public:
  // `store` is required; `calibrator` may be nullptr (no thresholding).
  Frontend(const RecommendationStore* store,
           const core::ScoreCalibrator* calibrator)
      : store_(store), calibrator_(calibrator) {}

  StatusOr<RecommendationResponse> Handle(
      const RecommendationRequest& request) const;

 private:
  const RecommendationStore* store_;
  const core::ScoreCalibrator* calibrator_;
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_FRONTEND_H_
