#include "serving/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"

namespace sigmund::serving {
namespace {

enum EventKind : int {
  kOpenArrival = 0,
  kProbeArrival = 1,
  kCanaryArrival = 2,
  kClosedArrival = 3,
  kCompletion = 4,  // payload = request index
  kRetry = 5,       // payload = request index
  kSloTick = 6,     // periodic SLO evaluation (separate seq space)
};

// SLO ticks take their tie-break seqs from a disjoint space above every
// possible simulation seq, so enabling SLO evaluation cannot shift the
// FIFO order of same-micro simulation events — the decision_hash stays
// byte-identical with the engine on or off.
constexpr uint64_t kSloSeqBase = 1ULL << 62;

struct Event {
  int64_t time = 0;
  uint64_t seq = 0;  // tie-break so simultaneous events stay FIFO
  int kind = 0;
  int64_t payload = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct Request {
  RequestPriority priority = RequestPriority::kUserFacing;
  data::RetailerId retailer = 0;
  int64_t arrival_micros = 0;
  int64_t service_start_micros = 0;  // when it was admitted into a slot
  int64_t deadline_micros = 0;       // absolute; 0 = none
  int attempt = 0;
  bool closed_loop = false;
  obs::RequestTrace trace;     // inactive when tracing is off
  int64_t service_span = 0;    // open "service" span while in a slot
};

class Sim {
 public:
  Sim(const LoadGenOptions& options, obs::MetricRegistry* metrics)
      : options_(options),
        rng_(SplitMix64(options.seed ^ 0x5EEDF00DULL)),
        controller_(options.admission, metrics, &clock_),
        end_micros_(
            static_cast<int64_t>(options.duration_seconds * 1e6)) {
    hash_ = kFnv64OffsetBasis;
    // Tracing / SLO need a registry to record into; fall back to an
    // owned one when the caller passed none.
    registry_ = metrics != nullptr ? metrics : &owned_registry_;
    if (options_.trace_requests) {
      tracer_ = std::make_unique<obs::RequestTracer>(options_.trace,
                                                     registry_, &clock_);
    }
    if (options_.slo_enabled) {
      slo_ = std::make_unique<obs::SloEngine>(options_.slo, registry_);
    }
    // Zipf cumulative weights over retailers.
    const int n = std::max(1, options_.num_retailers);
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1),
                              options_.zipf_exponent);
      zipf_cdf_[r] = total;
    }
    for (int r = 0; r < n; ++r) zipf_cdf_[r] /= total;
    if (options_.retry_budget_ratio >= 0.0) {
      RetryBudget::Options budget;
      budget.ratio = options_.retry_budget_ratio;
      retry_budget_ = std::make_unique<RetryBudget>(budget);
    }
    if (tracer_ != nullptr || slo_ != nullptr) {
      // Cached instrument pointers — the hot path never takes the
      // registry lock. Only materialized when tracing/SLO is on, so the
      // baseline simulation does no extra work at all.
      requests_ok_ = registry_->GetCounter("serving_requests_total",
                                           {{"outcome", "ok"}});
      requests_late_ = registry_->GetCounter("serving_requests_total",
                                             {{"outcome", "late"}});
      requests_shed_ = registry_->GetCounter("serving_requests_total",
                                             {{"outcome", "shed"}});
      for (int p = 0; p < kNumRequestPriorities; ++p) {
        latency_hist_[p] = registry_->GetHistogram(
            "serving_latency_micros",
            {{"priority",
              RequestPriorityName(static_cast<RequestPriority>(p))}});
      }
    }
  }

  LoadGenReport Run() {
    // Prime the arrival streams. Closed users start staggered across one
    // think interval, so a million users don't arrive on the same micro.
    if (options_.open_rps > 0.0) {
      Schedule(NextArrivalGap(OpenRate(0)), kOpenArrival, 0);
    }
    if (options_.probe_rps > 0.0) {
      Schedule(NextArrivalGap(options_.probe_rps), kProbeArrival, 0);
    }
    if (options_.canary_rps > 0.0) {
      Schedule(NextArrivalGap(options_.canary_rps), kCanaryArrival, 0);
    }
    const int64_t think_micros =
        static_cast<int64_t>(options_.think_seconds * 1e6);
    for (int u = 0; u < options_.closed_users; ++u) {
      Schedule(rng_.Uniform(static_cast<uint64_t>(
                   std::max<int64_t>(1, think_micros))),
               kClosedArrival, u);
    }
    if (slo_ != nullptr) ScheduleSloTick(SloIntervalMicros());

    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      clock_.SetMicros(event.time);
      Dispatch(event);
    }
    return Finish();
  }

 private:
  LoadGenPriorityStats& Stats(RequestPriority priority) {
    return report_.priorities[static_cast<int>(priority)];
  }

  void Mix(uint64_t v) { hash_ = Fnv1a64Mix(hash_, v); }

  void Schedule(int64_t time, int kind, int64_t payload) {
    events_.push(Event{time, next_seq_++, kind, payload});
  }

  int64_t SloIntervalMicros() const {
    return std::max<int64_t>(
        1, static_cast<int64_t>(options_.slo_eval_interval_seconds * 1e6));
  }

  // SLO ticks draw seqs from kSloSeqBase so they sort after every
  // same-micro simulation event and never consume a simulation seq.
  void ScheduleSloTick(int64_t time) {
    events_.push(Event{time, kSloSeqBase + slo_seq_++, kSloTick, 0});
  }

  // Exponential inter-arrival gap for a Poisson stream at `rate`/sec.
  int64_t NextArrivalGap(double rate) {
    if (rate <= 0.0) return end_micros_ + 1;
    const double u = rng_.UniformDouble();
    const double gap_seconds = -std::log(1.0 - u) / rate;
    return std::max<int64_t>(1, static_cast<int64_t>(gap_seconds * 1e6));
  }

  double OpenRate(int64_t now) const {
    const double t = static_cast<double>(now) * 1e-6;
    double rate = options_.open_rps;
    if (options_.diurnal_amplitude != 0.0 &&
        options_.diurnal_period_seconds > 0.0) {
      rate *= 1.0 + options_.diurnal_amplitude *
                        std::sin(2.0 * M_PI * t /
                                 options_.diurnal_period_seconds);
    }
    if (options_.flash_at_seconds >= 0.0 &&
        t >= options_.flash_at_seconds &&
        t < options_.flash_at_seconds + options_.flash_duration_seconds) {
      rate *= options_.flash_factor;
    }
    return std::max(0.0, rate);
  }

  data::RetailerId ZipfRetailer() {
    const double u = rng_.UniformDouble();
    const auto it =
        std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return static_cast<data::RetailerId>(
        std::min<size_t>(it - zipf_cdf_.begin(), zipf_cdf_.size() - 1));
  }

  size_t MakeRequest(RequestPriority priority, int64_t now,
                     bool closed_loop) {
    Request request;
    request.priority = priority;
    request.retailer = ZipfRetailer();
    request.arrival_micros = now;
    request.deadline_micros =
        options_.deadline_micros > 0 ? now + options_.deadline_micros : 0;
    request.closed_loop = closed_loop;
    if (tracer_ != nullptr) {
      request.trace = tracer_->StartRequest(
          std::string("loadgen/") + RequestPriorityName(priority));
      request.trace.Annotate(0, "retailer",
                             std::to_string(request.retailer));
      ++report_.traces_started;
    }
    requests_.push_back(std::move(request));
    ++Stats(priority).offered;
    ++report_.total_offered;
    if (priority == RequestPriority::kUserFacing &&
        retry_budget_ != nullptr) {
      retry_budget_->RecordRequest();
    }
    return requests_.size() - 1;
  }

  int64_t ServiceMicros() {
    int64_t base = options_.service_micros;
    if (options_.service_jitter_micros > 0) {
      base += static_cast<int64_t>(rng_.Uniform(
          static_cast<uint64_t>(options_.service_jitter_micros + 1)));
    }
    // Past server capacity each in-flight request gets a fractional share
    // of the machine: this is the mechanism congestion collapse rides on.
    const double load =
        static_cast<double>(controller_.in_flight()) /
        static_cast<double>(std::max(1, options_.server_capacity));
    return static_cast<int64_t>(static_cast<double>(base) *
                                std::max(1.0, load));
  }

  void StartService(size_t index, int64_t now) {
    Request& request = requests_[index];
    ++Stats(request.priority).admitted;
    request.service_start_micros = now;
    if (request.trace.active()) {
      request.service_span = request.trace.StartSpan("service");
    }
    Schedule(now + ServiceMicros(), kCompletion,
             static_cast<int64_t>(index));
  }

  void HandleShed(size_t index, double occupancy, int64_t now,
                  ShedReason reason) {
    Request& request = requests_[index];
    ++Stats(request.priority).shed;
    ++report_.shed_by_reason[ShedReasonName(reason)];
    Mix(static_cast<uint64_t>(now));
    Mix(0xDEAD5EEDULL ^ static_cast<uint64_t>(reason));
    if (request.priority == RequestPriority::kUserFacing &&
        (reason == ShedReason::kWatermark ||
         reason == ShedReason::kQueueFull)) {
      report_.min_occupancy_user_shed =
          std::min(report_.min_occupancy_user_shed, occupancy);
    }
    // Client retry on shed (user-facing only): the retry-storm ingredient.
    if (request.priority == RequestPriority::kUserFacing &&
        request.attempt < options_.client_retries && now < end_micros_ &&
        (request.deadline_micros == 0 || now < request.deadline_micros)) {
      if (retry_budget_ != nullptr && !retry_budget_->TryWithdraw()) {
        ++report_.retries_suppressed;
        request.trace.Annotate(0, "retry", "suppressed_budget");
      } else {
        const int64_t backoff = static_cast<int64_t>(
            options_.retry_backoff_seconds * 1e6);
        Schedule(now + std::max<int64_t>(1, backoff), kRetry,
                 static_cast<int64_t>(index));
        return;  // the user is still waiting, not thinking
      }
    }
    // Terminal shed: the client gave up on this request.
    ++report_.terminal_sheds;
    if (requests_shed_ != nullptr) requests_shed_->Add(1);
    if (request.trace.active()) {
      request.trace.Annotate(0, "shed_reason", ShedReasonName(reason));
      request.trace.SetVerdict(obs::TraceVerdict::kShed);
      if (tracer_->Submit(std::move(request.trace))) {
        ++report_.traces_kept;
        ++report_.shed_traces_kept;  // == terminal_sheds: 100% kept
      }
    }
    FinishClosedLoop(index, now);
  }

  // A closed-loop user whose request reached a terminal state thinks,
  // then issues the next one.
  void FinishClosedLoop(size_t index, int64_t now) {
    if (!requests_[index].closed_loop || now >= end_micros_) return;
    const int64_t think = NextArrivalGap(
        options_.think_seconds > 0.0 ? 1.0 / options_.think_seconds : 0.0);
    Schedule(now + think, kClosedArrival, 0);
  }

  void OfferRequest(size_t index, int64_t now) {
    Request& request = requests_[index];
    const double occupancy = controller_.Occupancy();
    const AdmissionController::Admission admission = controller_.Offer(
        request.retailer, request.priority, request.deadline_micros,
        /*may_queue=*/true);
    Mix(static_cast<uint64_t>(now));
    Mix((static_cast<uint64_t>(request.priority) << 8) |
        static_cast<uint64_t>(admission.outcome));
    if (request.trace.active()) {
      // One "admission" span per offer (retries get their own), carrying
      // the queue/limiter state the decision saw.
      const int64_t span = request.trace.StartSpan("admission");
      request.trace.Annotate(span, "attempt",
                             std::to_string(request.attempt));
      request.trace.Annotate(span, "queue_depth",
                             std::to_string(admission.queue_depth));
      request.trace.Annotate(span, "in_flight",
                             std::to_string(admission.in_flight));
      request.trace.Annotate(span, "limit",
                             std::to_string(admission.limit));
      request.trace.Annotate(
          span, "outcome",
          admission.outcome == AdmissionController::Outcome::kAdmitted
              ? "admitted"
          : admission.outcome == AdmissionController::Outcome::kQueued
              ? "queued"
              : "shed");
      if (admission.outcome == AdmissionController::Outcome::kShed) {
        request.trace.Annotate(span, "shed_reason",
                               ShedReasonName(admission.reason));
      }
      request.trace.EndSpan(span);
    }
    switch (admission.outcome) {
      case AdmissionController::Outcome::kAdmitted:
        if (request.priority == RequestPriority::kHealthProbe) {
          report_.max_occupancy_probe_admitted =
              std::max(report_.max_occupancy_probe_admitted, occupancy);
        }
        StartService(index, now);
        return;
      case AdmissionController::Outcome::kQueued:
        queued_[admission.id] = index;
        return;
      case AdmissionController::Outcome::kShed:
        HandleShed(index, occupancy, now, admission.reason);
        return;
    }
  }

  void ProcessDrained(const AdmissionController::Drained& drained,
                      int64_t now) {
    for (const AdmissionController::Ticket& ticket : drained.admitted) {
      auto it = queued_.find(ticket.id);
      SIGCHECK(it != queued_.end());
      const size_t index = it->second;
      queued_.erase(it);
      if (requests_[index].priority == RequestPriority::kHealthProbe) {
        report_.max_occupancy_probe_admitted =
            std::max(report_.max_occupancy_probe_admitted,
                     controller_.Occupancy());
      }
      StartService(index, now);
    }
    for (const AdmissionController::Ticket& ticket : drained.shed) {
      auto it = queued_.find(ticket.id);
      SIGCHECK(it != queued_.end());
      const size_t index = it->second;
      queued_.erase(it);
      HandleShed(index, controller_.Occupancy(), now, ticket.shed_reason);
    }
  }

  void Complete(size_t index, int64_t now) {
    Request& request = requests_[index];
    const int64_t latency = now - request.arrival_micros;
    LoadGenPriorityStats& stats = Stats(request.priority);
    ++stats.completed;
    ++report_.total_completed;
    const bool good =
        request.deadline_micros == 0 || now <= request.deadline_micros;
    if (good) {
      ++stats.good;
      if (requests_ok_ != nullptr) requests_ok_->Add(1);
    } else {
      ++stats.late;
      ++report_.deadline_overruns;
      if (requests_late_ != nullptr) requests_late_->Add(1);
    }
    if (latency_hist_[static_cast<int>(request.priority)] != nullptr) {
      latency_hist_[static_cast<int>(request.priority)]->Observe(
          static_cast<double>(latency));
    }
    latencies_.push_back(latency);
    Mix(static_cast<uint64_t>(now));
    Mix(0xC0FFEEULL ^ static_cast<uint64_t>(latency));
    if (request.trace.active()) {
      request.trace.EndSpan(request.service_span);
      if (!good) {
        request.trace.Annotate(
            0, "overrun_micros",
            std::to_string(now - request.deadline_micros));
        request.trace.SetVerdict(obs::TraceVerdict::kDeadlineOverrun);
      }
      const uint64_t trace_id = request.trace.trace_id();
      if (tracer_->Submit(std::move(request.trace))) {
        ++report_.traces_kept;
        if (!good) ++report_.late_traces_kept;
        // Kept trace: make it the exemplar of the latency bucket this
        // completion landed in, so the p99 bucket links to a trace.
        if (latency_hist_[static_cast<int>(request.priority)] != nullptr) {
          latency_hist_[static_cast<int>(request.priority)]
              ->AttachExemplar(static_cast<double>(latency), trace_id);
        }
      }
    }
    // The limiter learns from SERVICE latency only; the end-to-end
    // latency above (which includes queue wait) is what the client sees
    // and what the goodput/deadline accounting uses.
    ProcessDrained(
        controller_.Release(now - request.service_start_micros), now);
    FinishClosedLoop(index, now);
  }

  void Dispatch(const Event& event) {
    switch (event.kind) {
      case kOpenArrival: {
        if (event.time >= end_micros_) return;
        OfferRequest(
            MakeRequest(RequestPriority::kUserFacing, event.time, false),
            event.time);
        const double rate = OpenRate(event.time);
        Schedule(event.time + NextArrivalGap(rate), kOpenArrival, 0);
        return;
      }
      case kProbeArrival: {
        if (event.time >= end_micros_) return;
        OfferRequest(
            MakeRequest(RequestPriority::kHealthProbe, event.time, false),
            event.time);
        Schedule(event.time + NextArrivalGap(options_.probe_rps),
                 kProbeArrival, 0);
        return;
      }
      case kCanaryArrival: {
        if (event.time >= end_micros_) return;
        OfferRequest(
            MakeRequest(RequestPriority::kCanary, event.time, false),
            event.time);
        Schedule(event.time + NextArrivalGap(options_.canary_rps),
                 kCanaryArrival, 0);
        return;
      }
      case kClosedArrival: {
        if (event.time >= end_micros_) return;
        OfferRequest(
            MakeRequest(RequestPriority::kUserFacing, event.time, true),
            event.time);
        return;
      }
      case kCompletion:
        Complete(static_cast<size_t>(event.payload), event.time);
        return;
      case kRetry: {
        const size_t index = static_cast<size_t>(event.payload);
        Request& request = requests_[index];
        ++request.attempt;
        ++Stats(request.priority).retries;
        OfferRequest(index, event.time);
        return;
      }
      case kSloTick: {
        slo_->Evaluate(registry_->Snapshot(), event.time);
        const int64_t next = event.time + SloIntervalMicros();
        if (next <= end_micros_) ScheduleSloTick(next);
        return;
      }
    }
  }

  LoadGenReport Finish() {
    report_.offered_rps = static_cast<double>(report_.total_offered) /
                          std::max(1e-9, options_.duration_seconds);
    int64_t good = 0;
    for (const LoadGenPriorityStats& stats : report_.priorities) {
      good += stats.good;
    }
    report_.goodput_rps = static_cast<double>(good) /
                          std::max(1e-9, options_.duration_seconds);
    if (!latencies_.empty()) {
      std::sort(latencies_.begin(), latencies_.end());
      report_.p50_latency_micros = static_cast<double>(
          latencies_[latencies_.size() / 2]);
      report_.p99_latency_micros = static_cast<double>(
          latencies_[latencies_.size() * 99 / 100]);
    }
    report_.final_concurrency_limit = controller_.concurrency_limit();
    report_.final_pressure = controller_.Pressure();
    report_.decision_hash = hash_;
    if (tracer_ != nullptr) {
      report_.kept_traces = tracer_->KeptTraces();
    }
    if (slo_ != nullptr) {
      report_.slo_alerts_fired = slo_->FiredTotal();
      report_.slo_alerts_resolved = slo_->ResolvedTotal();
      report_.slo_alerts = slo_->alert_log();
      report_.slo_json = slo_->ToJson();
    }
    return report_;
  }

  LoadGenOptions options_;
  SimClock clock_;
  Rng rng_;
  AdmissionController controller_;
  std::unique_ptr<RetryBudget> retry_budget_;
  int64_t end_micros_;

  // Tracing / SLO (null when disabled). owned_registry_ backs them when
  // the caller passed no registry of their own.
  obs::MetricRegistry owned_registry_;
  obs::MetricRegistry* registry_ = nullptr;
  std::unique_ptr<obs::RequestTracer> tracer_;
  std::unique_ptr<obs::SloEngine> slo_;
  obs::Counter* requests_ok_ = nullptr;
  obs::Counter* requests_late_ = nullptr;
  obs::Counter* requests_shed_ = nullptr;
  obs::Histogram* latency_hist_[kNumRequestPriorities] = {};
  uint64_t slo_seq_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  uint64_t next_seq_ = 0;
  std::vector<Request> requests_;
  std::unordered_map<uint64_t, size_t> queued_;
  std::vector<double> zipf_cdf_;
  std::vector<int64_t> latencies_;
  uint64_t hash_ = 0;
  LoadGenReport report_;
};

}  // namespace

LoadGenReport RunLoadGenerator(const LoadGenOptions& options,
                               obs::MetricRegistry* metrics) {
  Sim sim(options, metrics);
  return sim.Run();
}

}  // namespace sigmund::serving
