#include "serving/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace sigmund::serving {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

enum EventKind : int {
  kOpenArrival = 0,
  kProbeArrival = 1,
  kCanaryArrival = 2,
  kClosedArrival = 3,
  kCompletion = 4,  // payload = request index
  kRetry = 5,       // payload = request index
};

struct Event {
  int64_t time = 0;
  uint64_t seq = 0;  // tie-break so simultaneous events stay FIFO
  int kind = 0;
  int64_t payload = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct Request {
  RequestPriority priority = RequestPriority::kUserFacing;
  data::RetailerId retailer = 0;
  int64_t arrival_micros = 0;
  int64_t service_start_micros = 0;  // when it was admitted into a slot
  int64_t deadline_micros = 0;       // absolute; 0 = none
  int attempt = 0;
  bool closed_loop = false;
};

class Sim {
 public:
  Sim(const LoadGenOptions& options, obs::MetricRegistry* metrics)
      : options_(options),
        rng_(SplitMix64(options.seed ^ 0x5EEDF00DULL)),
        controller_(options.admission, metrics, &clock_),
        end_micros_(
            static_cast<int64_t>(options.duration_seconds * 1e6)) {
    hash_ = kFnvOffset;
    // Zipf cumulative weights over retailers.
    const int n = std::max(1, options_.num_retailers);
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1),
                              options_.zipf_exponent);
      zipf_cdf_[r] = total;
    }
    for (int r = 0; r < n; ++r) zipf_cdf_[r] /= total;
    if (options_.retry_budget_ratio >= 0.0) {
      RetryBudget::Options budget;
      budget.ratio = options_.retry_budget_ratio;
      retry_budget_ = std::make_unique<RetryBudget>(budget);
    }
  }

  LoadGenReport Run() {
    // Prime the arrival streams. Closed users start staggered across one
    // think interval, so a million users don't arrive on the same micro.
    if (options_.open_rps > 0.0) {
      Schedule(NextArrivalGap(OpenRate(0)), kOpenArrival, 0);
    }
    if (options_.probe_rps > 0.0) {
      Schedule(NextArrivalGap(options_.probe_rps), kProbeArrival, 0);
    }
    if (options_.canary_rps > 0.0) {
      Schedule(NextArrivalGap(options_.canary_rps), kCanaryArrival, 0);
    }
    const int64_t think_micros =
        static_cast<int64_t>(options_.think_seconds * 1e6);
    for (int u = 0; u < options_.closed_users; ++u) {
      Schedule(rng_.Uniform(static_cast<uint64_t>(
                   std::max<int64_t>(1, think_micros))),
               kClosedArrival, u);
    }

    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      clock_.SetMicros(event.time);
      Dispatch(event);
    }
    return Finish();
  }

 private:
  LoadGenPriorityStats& Stats(RequestPriority priority) {
    return report_.priorities[static_cast<int>(priority)];
  }

  void Mix(uint64_t v) {
    hash_ ^= v;
    hash_ *= kFnvPrime;
  }

  void Schedule(int64_t time, int kind, int64_t payload) {
    events_.push(Event{time, next_seq_++, kind, payload});
  }

  // Exponential inter-arrival gap for a Poisson stream at `rate`/sec.
  int64_t NextArrivalGap(double rate) {
    if (rate <= 0.0) return end_micros_ + 1;
    const double u = rng_.UniformDouble();
    const double gap_seconds = -std::log(1.0 - u) / rate;
    return std::max<int64_t>(1, static_cast<int64_t>(gap_seconds * 1e6));
  }

  double OpenRate(int64_t now) const {
    const double t = static_cast<double>(now) * 1e-6;
    double rate = options_.open_rps;
    if (options_.diurnal_amplitude != 0.0 &&
        options_.diurnal_period_seconds > 0.0) {
      rate *= 1.0 + options_.diurnal_amplitude *
                        std::sin(2.0 * M_PI * t /
                                 options_.diurnal_period_seconds);
    }
    if (options_.flash_at_seconds >= 0.0 &&
        t >= options_.flash_at_seconds &&
        t < options_.flash_at_seconds + options_.flash_duration_seconds) {
      rate *= options_.flash_factor;
    }
    return std::max(0.0, rate);
  }

  data::RetailerId ZipfRetailer() {
    const double u = rng_.UniformDouble();
    const auto it =
        std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return static_cast<data::RetailerId>(
        std::min<size_t>(it - zipf_cdf_.begin(), zipf_cdf_.size() - 1));
  }

  size_t MakeRequest(RequestPriority priority, int64_t now,
                     bool closed_loop) {
    Request request;
    request.priority = priority;
    request.retailer = ZipfRetailer();
    request.arrival_micros = now;
    request.deadline_micros =
        options_.deadline_micros > 0 ? now + options_.deadline_micros : 0;
    request.closed_loop = closed_loop;
    requests_.push_back(request);
    ++Stats(priority).offered;
    ++report_.total_offered;
    if (priority == RequestPriority::kUserFacing &&
        retry_budget_ != nullptr) {
      retry_budget_->RecordRequest();
    }
    return requests_.size() - 1;
  }

  int64_t ServiceMicros() {
    int64_t base = options_.service_micros;
    if (options_.service_jitter_micros > 0) {
      base += static_cast<int64_t>(rng_.Uniform(
          static_cast<uint64_t>(options_.service_jitter_micros + 1)));
    }
    // Past server capacity each in-flight request gets a fractional share
    // of the machine: this is the mechanism congestion collapse rides on.
    const double load =
        static_cast<double>(controller_.in_flight()) /
        static_cast<double>(std::max(1, options_.server_capacity));
    return static_cast<int64_t>(static_cast<double>(base) *
                                std::max(1.0, load));
  }

  void StartService(size_t index, int64_t now) {
    ++Stats(requests_[index].priority).admitted;
    requests_[index].service_start_micros = now;
    Schedule(now + ServiceMicros(), kCompletion,
             static_cast<int64_t>(index));
  }

  void HandleShed(size_t index, double occupancy, int64_t now,
                  ShedReason reason) {
    Request& request = requests_[index];
    ++Stats(request.priority).shed;
    ++report_.shed_by_reason[ShedReasonName(reason)];
    Mix(static_cast<uint64_t>(now));
    Mix(0xDEAD5EEDULL ^ static_cast<uint64_t>(reason));
    if (request.priority == RequestPriority::kUserFacing &&
        (reason == ShedReason::kWatermark ||
         reason == ShedReason::kQueueFull)) {
      report_.min_occupancy_user_shed =
          std::min(report_.min_occupancy_user_shed, occupancy);
    }
    // Client retry on shed (user-facing only): the retry-storm ingredient.
    if (request.priority == RequestPriority::kUserFacing &&
        request.attempt < options_.client_retries && now < end_micros_ &&
        (request.deadline_micros == 0 || now < request.deadline_micros)) {
      if (retry_budget_ != nullptr && !retry_budget_->TryWithdraw()) {
        ++report_.retries_suppressed;
      } else {
        const int64_t backoff = static_cast<int64_t>(
            options_.retry_backoff_seconds * 1e6);
        Schedule(now + std::max<int64_t>(1, backoff), kRetry,
                 static_cast<int64_t>(index));
        return;  // the user is still waiting, not thinking
      }
    }
    FinishClosedLoop(index, now);
  }

  // A closed-loop user whose request reached a terminal state thinks,
  // then issues the next one.
  void FinishClosedLoop(size_t index, int64_t now) {
    if (!requests_[index].closed_loop || now >= end_micros_) return;
    const int64_t think = NextArrivalGap(
        options_.think_seconds > 0.0 ? 1.0 / options_.think_seconds : 0.0);
    Schedule(now + think, kClosedArrival, 0);
  }

  void OfferRequest(size_t index, int64_t now) {
    Request& request = requests_[index];
    const double occupancy = controller_.Occupancy();
    const AdmissionController::Admission admission = controller_.Offer(
        request.retailer, request.priority, request.deadline_micros,
        /*may_queue=*/true);
    Mix(static_cast<uint64_t>(now));
    Mix((static_cast<uint64_t>(request.priority) << 8) |
        static_cast<uint64_t>(admission.outcome));
    switch (admission.outcome) {
      case AdmissionController::Outcome::kAdmitted:
        if (request.priority == RequestPriority::kHealthProbe) {
          report_.max_occupancy_probe_admitted =
              std::max(report_.max_occupancy_probe_admitted, occupancy);
        }
        StartService(index, now);
        return;
      case AdmissionController::Outcome::kQueued:
        queued_[admission.id] = index;
        return;
      case AdmissionController::Outcome::kShed:
        HandleShed(index, occupancy, now, admission.reason);
        return;
    }
  }

  void ProcessDrained(const AdmissionController::Drained& drained,
                      int64_t now) {
    for (const AdmissionController::Ticket& ticket : drained.admitted) {
      auto it = queued_.find(ticket.id);
      SIGCHECK(it != queued_.end());
      const size_t index = it->second;
      queued_.erase(it);
      if (requests_[index].priority == RequestPriority::kHealthProbe) {
        report_.max_occupancy_probe_admitted =
            std::max(report_.max_occupancy_probe_admitted,
                     controller_.Occupancy());
      }
      StartService(index, now);
    }
    for (const AdmissionController::Ticket& ticket : drained.shed) {
      auto it = queued_.find(ticket.id);
      SIGCHECK(it != queued_.end());
      const size_t index = it->second;
      queued_.erase(it);
      HandleShed(index, controller_.Occupancy(), now, ticket.shed_reason);
    }
  }

  void Complete(size_t index, int64_t now) {
    Request& request = requests_[index];
    const int64_t latency = now - request.arrival_micros;
    LoadGenPriorityStats& stats = Stats(request.priority);
    ++stats.completed;
    ++report_.total_completed;
    const bool good =
        request.deadline_micros == 0 || now <= request.deadline_micros;
    if (good) {
      ++stats.good;
    } else {
      ++stats.late;
    }
    latencies_.push_back(latency);
    Mix(static_cast<uint64_t>(now));
    Mix(0xC0FFEEULL ^ static_cast<uint64_t>(latency));
    // The limiter learns from SERVICE latency only; the end-to-end
    // latency above (which includes queue wait) is what the client sees
    // and what the goodput/deadline accounting uses.
    ProcessDrained(
        controller_.Release(now - request.service_start_micros), now);
    FinishClosedLoop(index, now);
  }

  void Dispatch(const Event& event) {
    switch (event.kind) {
      case kOpenArrival: {
        if (event.time >= end_micros_) return;
        OfferRequest(
            MakeRequest(RequestPriority::kUserFacing, event.time, false),
            event.time);
        const double rate = OpenRate(event.time);
        Schedule(event.time + NextArrivalGap(rate), kOpenArrival, 0);
        return;
      }
      case kProbeArrival: {
        if (event.time >= end_micros_) return;
        OfferRequest(
            MakeRequest(RequestPriority::kHealthProbe, event.time, false),
            event.time);
        Schedule(event.time + NextArrivalGap(options_.probe_rps),
                 kProbeArrival, 0);
        return;
      }
      case kCanaryArrival: {
        if (event.time >= end_micros_) return;
        OfferRequest(
            MakeRequest(RequestPriority::kCanary, event.time, false),
            event.time);
        Schedule(event.time + NextArrivalGap(options_.canary_rps),
                 kCanaryArrival, 0);
        return;
      }
      case kClosedArrival: {
        if (event.time >= end_micros_) return;
        OfferRequest(
            MakeRequest(RequestPriority::kUserFacing, event.time, true),
            event.time);
        return;
      }
      case kCompletion:
        Complete(static_cast<size_t>(event.payload), event.time);
        return;
      case kRetry: {
        const size_t index = static_cast<size_t>(event.payload);
        Request& request = requests_[index];
        ++request.attempt;
        ++Stats(request.priority).retries;
        OfferRequest(index, event.time);
        return;
      }
    }
  }

  LoadGenReport Finish() {
    report_.offered_rps = static_cast<double>(report_.total_offered) /
                          std::max(1e-9, options_.duration_seconds);
    int64_t good = 0;
    for (const LoadGenPriorityStats& stats : report_.priorities) {
      good += stats.good;
    }
    report_.goodput_rps = static_cast<double>(good) /
                          std::max(1e-9, options_.duration_seconds);
    if (!latencies_.empty()) {
      std::sort(latencies_.begin(), latencies_.end());
      report_.p50_latency_micros = static_cast<double>(
          latencies_[latencies_.size() / 2]);
      report_.p99_latency_micros = static_cast<double>(
          latencies_[latencies_.size() * 99 / 100]);
    }
    report_.final_concurrency_limit = controller_.concurrency_limit();
    report_.final_pressure = controller_.Pressure();
    report_.decision_hash = hash_;
    return report_;
  }

  LoadGenOptions options_;
  SimClock clock_;
  Rng rng_;
  AdmissionController controller_;
  std::unique_ptr<RetryBudget> retry_budget_;
  int64_t end_micros_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  uint64_t next_seq_ = 0;
  std::vector<Request> requests_;
  std::unordered_map<uint64_t, size_t> queued_;
  std::vector<double> zipf_cdf_;
  std::vector<int64_t> latencies_;
  uint64_t hash_ = 0;
  LoadGenReport report_;
};

}  // namespace

LoadGenReport RunLoadGenerator(const LoadGenOptions& options,
                               obs::MetricRegistry* metrics) {
  Sim sim(options, metrics);
  return sim.Run();
}

}  // namespace sigmund::serving
