#ifndef SIGMUND_SERVING_REPLICATED_STORE_H_
#define SIGMUND_SERVING_REPLICATED_STORE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/retry.h"
#include "serving/admission.h"
#include "serving/store.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::serving {

// N-way replicated serving plane: a group of RecommendationStore replicas
// fronted as one ServingReader. This is the rollout ladder's last layer
// (DESIGN.md §7): a daily refresh cuts replicas over one at a time
// (staggered, drained replica excluded from serving), so aggregate
// capacity never drops during the refresh; a dead replica is failed over
// transparently; health is probed through heartbeat files on the shared
// filesystem, so the existing SFS fault-injection machinery exercises the
// health-check path too.
//
// Requests are routed deterministically: a stable hash of (retailer,
// context item) picks the preferred replica; unhealthy/draining replicas
// are skipped down the preference order. Optional hedged reads consult
// the next replica as well and serve whichever copy answers faster (in
// accounted, simulated micros — nothing sleeps), trimming tail latency.
//
// Thread-safe: replica health flags live under a mutex; the replicas
// themselves are internally synchronized.
class ReplicatedStoreGroup : public ServingReader {
 public:
  struct Options {
    // Store replicas; 1 = no replication (the group degenerates to a
    // plain store).
    int num_replicas = 1;
    // Read the preferred and the next-preferred replica, serve the
    // faster copy (by accounted latency below).
    bool hedged_reads = false;
    // Finagle-style budget on hedges: every read deposits this fraction
    // of a token, every hedge withdraws one, so sustained hedging is
    // capped at `hedge_budget_ratio` × read volume and a slow store sees
    // at most (1 + ratio) × offered load. < 0 = unlimited (legacy).
    // Suppressed hedges are counted in serving_hedges_suppressed_total.
    double hedge_budget_ratio = -1.0;
    // Reserve/cap for the hedge budget (only read when the ratio >= 0).
    double hedge_budget_initial_tokens = 10.0;
    double hedge_budget_max_tokens = 1000.0;
    // Accounted per-replica read latency in simulated micros (capacity
    // planning; nothing sleeps). Index = replica; replicas past the end
    // of the vector use the last element; empty = 150 for all.
    std::vector<int64_t> replica_read_micros;
    // Per-replica version-chain options.
    RecommendationStore::Options store;
  };

  // `metrics` borrowed, may be null (observability off).
  explicit ReplicatedStoreGroup(const Options& options,
                                obs::MetricRegistry* metrics = nullptr);

  // --- ServingReader: the request path. The traced overload is the real
  // implementation: replica choice, failover, and hedge decisions are
  // annotated onto the request trace (no-ops on an inactive context).
  StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context) const override;
  StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context,
      obs::TraceContext trace) const override;
  // The primary's active version (the group's version authority).
  int64_t RetailerVersion(data::RetailerId retailer) const override;

  // Loads one batch into every live replica under one shared version
  // number and activates it everywhere (the non-canary in-memory path).
  void LoadRetailer(data::RetailerId retailer,
                    const std::vector<core::ItemRecommendations>& recs);

  // Staggered follower cutover: after the primary has activated
  // `version`, walks replicas 1..N-1 one at a time — drain (out of the
  // serving rotation), load the batch file pinned to `version`, activate,
  // undrain. At most one replica is ever out of rotation, so aggregate
  // serving capacity never drops below N-1 during a refresh. A dead
  // replica is skipped; a corrupt read (kDataLoss) leaves that replica on
  // its previous batch; a persistent read error marks the replica
  // unhealthy until the next successful probe. Outcomes are counted in
  // serving_replica_cutovers_total{outcome=...}.
  Status CutoverFollowersFromFile(data::RetailerId retailer,
                                  const sfs::SharedFileSystem& fs,
                                  const std::string& path, int64_t version,
                                  const RetryPolicy& policy = {},
                                  sfs::ReliableIoCounters* io = nullptr);

  // Rolls every live replica that retains `version` back to it — pure
  // pointer flips, no SFS I/O. Fails if the primary cannot roll back.
  Status RollbackRetailer(data::RetailerId retailer, int64_t version);

  // --- Replica lifecycle / health.
  void KillReplica(int replica);
  void ReviveReplica(int replica);
  bool ReplicaAlive(int replica) const;
  // Replicas currently in the serving rotation (alive, not draining,
  // passing probes).
  int ServingReplicas() const;

  // Heartbeats: each live replica writes its heartbeat file; probing
  // reads them back and takes replicas whose heartbeat is unreadable out
  // of the rotation (probe failures are counted). Routing heartbeats
  // through `fs` means an injected-fault filesystem exercises the health
  // checks exactly like every other SFS client.
  Status WriteHeartbeats(sfs::SharedFileSystem* fs,
                         const RetryPolicy& policy = {});
  void ProbeReplicas(const sfs::SharedFileSystem& fs,
                     const RetryPolicy& policy = {});
  static std::string HeartbeatPath(int replica);

  // Test seam: called after a follower is drained, right before its batch
  // load — the window where chaos tests kill a replica mid-cutover.
  void SetCutoverHookForTesting(
      std::function<void(data::RetailerId, int)> hook) {
    cutover_hook_ = std::move(hook);
  }

  RecommendationStore* primary() { return replicas_.front().get(); }
  const RecommendationStore& primary() const { return *replicas_.front(); }
  RecommendationStore* replica(int i) { return replicas_[i].get(); }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }

 private:
  struct ReplicaState {
    bool alive = true;
    bool draining = false;
    bool probe_ok = true;
  };

  // Preference-ordered list of replicas eligible to serve (retailer,
  // item); falls back to merely-alive replicas when none pass every
  // health check, so a noisy probe can degrade but never zero the
  // rotation.
  std::vector<int> ServingOrder(data::RetailerId retailer,
                                data::ItemIndex item) const;

  int64_t ReadMicros(int replica) const;

  Options options_;
  obs::MetricRegistry* metrics_;
  // Null when hedge_budget_ratio < 0 (unlimited hedging). RetryBudget is
  // internally synchronized, so the const ServeContext path can spend it.
  mutable std::unique_ptr<RetryBudget> hedge_budget_;
  std::vector<std::unique_ptr<RecommendationStore>> replicas_;
  std::function<void(data::RetailerId, int)> cutover_hook_;

  mutable std::mutex mu_;
  std::vector<ReplicaState> states_;
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_REPLICATED_STORE_H_
