#include "serving/admission.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace sigmund::serving {

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kHealthProbe:
      return "health_probe";
    case RequestPriority::kCanary:
      return "canary";
    case RequestPriority::kUserFacing:
      return "user_facing";
  }
  return "unknown";
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kRateLimited:
      return "rate_limited";
    case ShedReason::kWatermark:
      return "watermark";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kQueueDeadline:
      return "queue_deadline";
    case ShedReason::kCodel:
      return "codel";
  }
  return "unknown";
}

// --- TokenBucket -------------------------------------------------------------

bool TokenBucket::TryTake(int64_t now_micros, double cost) {
  if (rate_ <= 0.0) return true;  // disabled
  if (!started_) {
    started_ = true;
    last_micros_ = now_micros;
  }
  if (now_micros > last_micros_) {
    tokens_ = std::min(
        burst_, tokens_ + static_cast<double>(now_micros - last_micros_) *
                              1e-6 * rate_);
    last_micros_ = now_micros;
  }
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

// --- RetryBudget -------------------------------------------------------------

RetryBudget::RetryBudget(const Options& options)
    : options_(options), tokens_(options.initial_tokens) {}

void RetryBudget::RecordRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(options_.max_tokens, tokens_ + options_.ratio);
}

bool RetryBudget::TryWithdraw(double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

// --- AdaptiveConcurrencyLimiter ----------------------------------------------

AdaptiveConcurrencyLimiter::AdaptiveConcurrencyLimiter(const Options& options)
    : options_(options),
      limit_(static_cast<double>(options.initial_limit)) {}

void AdaptiveConcurrencyLimiter::Record(int64_t latency_micros) {
  const double sample = static_cast<double>(latency_micros);
  smoothed_ = smoothed_ == 0.0
                  ? sample
                  : (1.0 - options_.ewma_alpha) * smoothed_ +
                        options_.ewma_alpha * sample;
  if (min_latency_ == 0 || latency_micros < min_latency_) {
    min_latency_ = latency_micros;
  }
  if (++samples_in_window_ < std::max(1, options_.window)) return;
  samples_in_window_ = 0;
  if (smoothed_ <= static_cast<double>(options_.target_latency_micros)) {
    limit_ += options_.additive_increase;
  } else {
    limit_ *= options_.multiplicative_decrease;
  }
  limit_ = std::clamp(limit_, static_cast<double>(options_.min_limit),
                      static_cast<double>(options_.max_limit));
}

double AdaptiveConcurrencyLimiter::EstimatedQueue() const {
  if (min_latency_ == 0 || smoothed_ <= 0.0) return 0.0;
  return limit_ * (1.0 - static_cast<double>(min_latency_) / smoothed_);
}

// --- AdmissionController -----------------------------------------------------

AdmissionController::AdmissionController(const Options& options,
                                         obs::MetricRegistry* metrics,
                                         const Clock* clock)
    : options_(options),
      metrics_(metrics),
      clock_(clock != nullptr ? clock : RealClock::Get()),
      limiter_(options.limiter) {
  if (metrics_ != nullptr) {
    limit_gauge_ = metrics_->GetGauge("serving_concurrency_limit");
    limit_gauge_->Set(static_cast<double>(limiter_.limit()));
    queue_gauge_ = metrics_->GetGauge("serving_admission_queue_depth");
    pressure_gauge_ = metrics_->GetGauge("serving_admission_pressure");
    in_flight_gauge_ = metrics_->GetGauge("serving_limiter_in_flight");
  }
}

void AdmissionController::SampleLocked(Admission* admission) {
  admission->in_flight = in_flight_;
  admission->queue_depth = queue_size_;
  admission->limit = limiter_.limit();
  admission->pressure = pressure_;
  // Per-request gauge sampling: every admission decision refreshes the
  // queue-depth and in-flight gauges, so the exposition shows the state
  // the latest request saw (not just the last queue operation).
  if (queue_gauge_ != nullptr) {
    queue_gauge_->Set(static_cast<double>(queue_size_));
  }
  if (in_flight_gauge_ != nullptr) {
    in_flight_gauge_->Set(static_cast<double>(in_flight_));
  }
}

double AdmissionController::OccupancyLocked() const {
  const double capacity =
      static_cast<double>(limiter_.limit() + options_.queue_capacity);
  if (capacity <= 0.0) return 1.0;
  return std::min(1.0,
                  static_cast<double>(in_flight_ + queue_size_) / capacity);
}

void AdmissionController::UpdatePressureLocked() {
  pressure_ = (1.0 - options_.pressure_alpha) * pressure_ +
              options_.pressure_alpha * OccupancyLocked();
  if (pressure_gauge_ != nullptr) pressure_gauge_->Set(pressure_);
}

void AdmissionController::CountShed(RequestPriority priority,
                                    ShedReason reason) {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetCounter("serving_shed_total",
                   {{"priority", RequestPriorityName(priority)},
                    {"reason", ShedReasonName(reason)}})
      ->Add(1);
}

void AdmissionController::CountAdmitted(RequestPriority priority) {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetCounter("serving_admitted_total",
                   {{"priority", RequestPriorityName(priority)}})
      ->Add(1);
}

AdmissionController::Admission AdmissionController::Offer(
    data::RetailerId retailer, RequestPriority priority,
    int64_t deadline_micros, bool may_queue) {
  const int64_t now = clock_->NowMicros();
  Admission admission;
  std::lock_guard<std::mutex> lock(mu_);
  UpdatePressureLocked();

  // Rate limit (user-facing traffic only; see Options).
  if (priority == RequestPriority::kUserFacing &&
      options_.retailer_tokens_per_second > 0.0) {
    auto [it, inserted] = buckets_.try_emplace(
        retailer, options_.retailer_tokens_per_second,
        options_.retailer_burst);
    if (!it->second.TryTake(now)) {
      admission.reason = ShedReason::kRateLimited;
      CountShed(priority, admission.reason);
      SampleLocked(&admission);
      return admission;
    }
  }

  // Priority watermark: probes and canaries are refused before the plane
  // is anywhere near full, so the capacity that is left under pressure is
  // spent on user traffic.
  const double occupancy = OccupancyLocked();
  const double watermark = priority == RequestPriority::kHealthProbe
                               ? options_.probe_watermark
                           : priority == RequestPriority::kCanary
                               ? options_.canary_watermark
                               : 2.0;  // user-facing: no watermark
  if (occupancy >= watermark) {
    admission.reason = ShedReason::kWatermark;
    CountShed(priority, admission.reason);
    SampleLocked(&admission);
    return admission;
  }

  if (in_flight_ < limiter_.limit()) {
    ++in_flight_;
    admission.outcome = Outcome::kAdmitted;
    CountAdmitted(priority);
    SampleLocked(&admission);
    return admission;
  }

  if (!may_queue || options_.queue_capacity <= 0) {
    admission.reason = ShedReason::kQueueFull;
    CountShed(priority, admission.reason);
    SampleLocked(&admission);
    return admission;
  }

  // Queue, evicting a lower-priority waiter when full.
  if (queue_size_ >= options_.queue_capacity) {
    int victim = -1;
    for (int p = 0; p < static_cast<int>(priority); ++p) {
      if (!queues_[p].empty()) {
        victim = p;
        break;
      }
    }
    if (victim < 0) {
      admission.reason = ShedReason::kQueueFull;
      CountShed(priority, admission.reason);
      SampleLocked(&admission);
      return admission;
    }
    // Evict the youngest waiter of the lowest class — it has the least
    // time invested and its class is losing a slot either way.
    CountShed(queues_[victim].back().priority, ShedReason::kQueueFull);
    queues_[victim].pop_back();
    --queue_size_;
  }
  Ticket ticket;
  ticket.id = next_ticket_++;
  ticket.priority = priority;
  ticket.retailer = retailer;
  ticket.enqueue_micros = now;
  ticket.deadline_micros = deadline_micros;
  queues_[static_cast<int>(priority)].push_back(ticket);
  ++queue_size_;
  admission.outcome = Outcome::kQueued;
  admission.id = ticket.id;
  SampleLocked(&admission);
  return admission;
}

void AdmissionController::DrainLocked(Drained* drained) {
  const int64_t now = clock_->NowMicros();
  while (queue_size_ > 0 && in_flight_ < limiter_.limit()) {
    // Highest priority class first, FIFO within the class.
    int p = kNumRequestPriorities - 1;
    while (queues_[p].empty()) --p;
    Ticket head = queues_[p].front();

    // A waiter whose deadline already passed is dead weight: the client
    // gave up, serving it would burn a slot for zero goodput.
    if (head.deadline_micros > 0 && now > head.deadline_micros) {
      queues_[p].pop_front();
      --queue_size_;
      head.shed_reason = ShedReason::kQueueDeadline;
      CountShed(head.priority, head.shed_reason);
      drained->shed.push_back(head);
      continue;
    }

    // CoDel-style standing-queue control on the sojourn time of the
    // request being dequeued: brief bursts pass untouched, but a sojourn
    // above target for a whole interval means the queue is not draining —
    // shed the head (freshest information: it waited the longest).
    const int64_t sojourn = now - head.enqueue_micros;
    if (sojourn > options_.codel_target_micros) {
      if (codel_first_above_micros_ == 0) {
        codel_first_above_micros_ = now;
      } else if (now - codel_first_above_micros_ >=
                 options_.codel_interval_micros) {
        codel_first_above_micros_ = now;  // one shed per interval
        queues_[p].pop_front();
        --queue_size_;
        head.shed_reason = ShedReason::kCodel;
        CountShed(head.priority, head.shed_reason);
        drained->shed.push_back(head);
        continue;
      }
    } else {
      codel_first_above_micros_ = 0;
    }

    queues_[p].pop_front();
    --queue_size_;
    ++in_flight_;
    CountAdmitted(head.priority);
    drained->admitted.push_back(head);
  }
  if (queue_gauge_ != nullptr) {
    queue_gauge_->Set(static_cast<double>(queue_size_));
  }
}

AdmissionController::Drained AdmissionController::Release(
    int64_t latency_micros) {
  Drained drained;
  std::lock_guard<std::mutex> lock(mu_);
  SIGCHECK(in_flight_ > 0);
  --in_flight_;
  limiter_.Record(latency_micros);
  if (limit_gauge_ != nullptr) {
    limit_gauge_->Set(static_cast<double>(limiter_.limit()));
  }
  DrainLocked(&drained);
  UpdatePressureLocked();
  if (in_flight_gauge_ != nullptr) {
    in_flight_gauge_->Set(static_cast<double>(in_flight_));
  }
  return drained;
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_size_;
}

int AdmissionController::concurrency_limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limiter_.limit();
}

double AdmissionController::Occupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return OccupancyLocked();
}

double AdmissionController::Pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pressure_;
}

}  // namespace sigmund::serving
