#ifndef SIGMUND_SERVING_STORE_H_
#define SIGMUND_SERVING_STORE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "core/inference.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::serving {

// Which of the two materialized lists a request wants (Fig. 1: substitutes
// before the purchase decision, accessories/complements after).
enum class RecommendationKind {
  kViewBased = 0,
  kPurchaseBased = 1,
};

// The serving store (§II-A, §V): an in-memory map from (retailer, item) to
// pre-materialized recommendation lists, refreshed by whole-retailer batch
// updates whenever the inference job completes. Serving does no model
// computation — the paper's "very lightweight computation at serving
// time".
//
// Thread-safe: lookups take a shared lock; batch loads swap a retailer's
// shard under an exclusive lock.
class RecommendationStore {
 public:
  RecommendationStore() = default;

  // Atomically replaces all recommendations for `retailer`.
  // `recommendations` must be sorted by query item (as produced by the
  // inference job).
  void LoadRetailer(data::RetailerId retailer,
                    std::vector<core::ItemRecommendations> recommendations);

  // Batch-loads a retailer from the inference job's SFS output file
  // (newline-separated serialized ItemRecommendations, optionally wrapped
  // in a CRC frame — unframed legacy files still load). Transient read
  // errors are retried per `policy`. A corrupt batch (bad CRC or an
  // undecodable record) is rejected with kDataLoss and the retailer's
  // previously loaded recommendations stay live — a bad refresh must
  // never take down serving. `io`, if given, accumulates retry and
  // corruption counters.
  Status LoadRetailerFromFile(data::RetailerId retailer,
                              const sfs::SharedFileSystem& fs,
                              const std::string& path,
                              const RetryPolicy& policy = {},
                              sfs::ReliableIoCounters* io = nullptr);

  // Recommendations for one query item. kNotFound when the retailer or
  // item has no materialized list.
  StatusOr<std::vector<core::ScoredItem>> Lookup(
      data::RetailerId retailer, data::ItemIndex item,
      RecommendationKind kind) const;

  // Serves a user context: uses the most recent context entry; a
  // conversion/cart context gets purchase-based (accessory)
  // recommendations, otherwise view-based (substitutes). Late-funnel
  // contexts (classified catalog-free, §III-D1) get the facet-constrained
  // substitute variant when the inference job materialized one.
  StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context) const;

  // Late-funnel substitute list for one item; falls back to the regular
  // view-based list when no late variant was materialized.
  StatusOr<std::vector<core::ScoredItem>> LookupLateFunnel(
      data::RetailerId retailer, data::ItemIndex item) const;

  // Number of retailers currently loaded / total materialized lists.
  int num_retailers() const;
  int64_t num_items() const;

  // Batch-update version counter for `retailer` (0 = never loaded).
  int64_t RetailerVersion(data::RetailerId retailer) const;

 private:
  struct Shard {
    std::vector<core::ItemRecommendations> by_item;  // index = query item
    int64_t version = 0;
  };

  mutable std::shared_mutex mu_;
  std::map<data::RetailerId, std::shared_ptr<Shard>> shards_;
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_STORE_H_
