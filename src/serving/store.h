#ifndef SIGMUND_SERVING_STORE_H_
#define SIGMUND_SERVING_STORE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/inference.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::serving {

// Which of the two materialized lists a request wants (Fig. 1: substitutes
// before the purchase decision, accessories/complements after).
enum class RecommendationKind {
  kViewBased = 0,
  kPurchaseBased = 1,
};

// Read-side interface of the serving plane: everything a request path
// needs from a store, whether it is a single RecommendationStore or a
// replicated group fronting several. Lets the Frontend (and tests) stay
// agnostic to the replication topology.
class ServingReader {
 public:
  virtual ~ServingReader() = default;

  // Serves a user context from the currently active batch.
  virtual StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context) const = 0;

  // Trace-aware variant: implementations that make routing decisions
  // (replica choice, failover, hedging) annotate them onto `trace`. The
  // default forwards to the untraced overload, so plain stores need not
  // care; an inactive context is always a no-op.
  virtual StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context,
      obs::TraceContext trace) const {
    (void)trace;
    return ServeContext(retailer, context);
  }

  // Active batch version for `retailer` (0 = never loaded).
  virtual int64_t RetailerVersion(data::RetailerId retailer) const = 0;
};

// The serving store (§II-A, §V): an in-memory map from (retailer, item) to
// pre-materialized recommendation lists, refreshed by whole-retailer batch
// updates whenever the inference job completes. Serving does no model
// computation — the paper's "very lightweight computation at serving
// time".
//
// Safe rollout: each batch load is a *version*; the store retains the last
// `retained_versions` per retailer, so activation and rollback are pure
// pointer flips — no SFS I/O, no rebuild. A new batch can be staged
// (resident but not serving) for canary evaluation, then activated or
// discarded.
//
// Thread-safe: lookups take a shared lock and copy out a shared_ptr to an
// immutable shard, so a concurrent activation/rollback can never expose a
// torn or mixed-version list; batch loads swap the active pointer under an
// exclusive lock.
class RecommendationStore : public ServingReader {
 public:
  struct Options {
    // Batch versions retained per retailer (including the active one);
    // older versions are evicted on activation. Minimum 1.
    int retained_versions = 3;
  };

  RecommendationStore() = default;
  explicit RecommendationStore(const Options& options) : options_(options) {}

  // Atomically replaces all recommendations for `retailer`: stages the
  // batch as the next version and activates it immediately (the
  // non-canary path). `recommendations` must be sorted by query item (as
  // produced by the inference job).
  void LoadRetailer(data::RetailerId retailer,
                    std::vector<core::ItemRecommendations> recommendations);

  // Stages a batch as a resident but *not yet serving* version and
  // returns its version number. `version` 0 auto-assigns the next number
  // in the retailer's sequence; a positive `version` pins it (used to
  // keep replica version numbering aligned during cutover).
  int64_t StageRetailer(data::RetailerId retailer,
                        std::vector<core::ItemRecommendations> recommendations,
                        int64_t version = 0);

  // Batch-loads a retailer from the inference job's SFS output file
  // (newline-separated serialized ItemRecommendations, optionally wrapped
  // in a CRC frame — unframed legacy files still load). Transient read
  // errors are retried per `policy`. A corrupt batch (bad CRC or an
  // undecodable record) is rejected with kDataLoss and the retailer's
  // previously loaded recommendations stay live — a bad refresh must
  // never take down serving. `io`, if given, accumulates retry and
  // corruption counters. Stages + activates in one step.
  Status LoadRetailerFromFile(data::RetailerId retailer,
                              const sfs::SharedFileSystem& fs,
                              const std::string& path,
                              const RetryPolicy& policy = {},
                              sfs::ReliableIoCounters* io = nullptr,
                              int64_t version = 0);

  // Like LoadRetailerFromFile but only stages the batch (canary path):
  // the previously active version keeps serving until ActivateVersion.
  // Returns the staged version number.
  StatusOr<int64_t> StageRetailerFromFile(data::RetailerId retailer,
                                          const sfs::SharedFileSystem& fs,
                                          const std::string& path,
                                          const RetryPolicy& policy = {},
                                          sfs::ReliableIoCounters* io = nullptr,
                                          int64_t version = 0);

  // Flips the active pointer to a resident version (O(1), no SFS I/O).
  // Evicts versions beyond the retention window. kNotFound if the
  // version is not resident.
  Status ActivateVersion(data::RetailerId retailer, int64_t version);

  // Instant rollback to a retained previous version — a pure pointer
  // flip, by design doing no SFS I/O and no batch reload.
  Status RollbackRetailer(data::RetailerId retailer, int64_t version);

  // Drops a resident non-active version (e.g. a canary that failed).
  // kFailedPrecondition if `version` is currently active.
  Status DiscardVersion(data::RetailerId retailer, int64_t version);

  // Recommendations for one query item. kNotFound when the retailer or
  // item has no materialized list.
  StatusOr<std::vector<core::ScoredItem>> Lookup(
      data::RetailerId retailer, data::ItemIndex item,
      RecommendationKind kind) const;

  // Like Lookup, but against a specific resident version (<= 0 = the
  // active one). Canary traffic reads the staged version through this.
  StatusOr<std::vector<core::ScoredItem>> LookupAtVersion(
      data::RetailerId retailer, data::ItemIndex item,
      RecommendationKind kind, int64_t version) const;

  // Serves a user context: uses the most recent context entry; a
  // conversion/cart context gets purchase-based (accessory)
  // recommendations, otherwise view-based (substitutes). Late-funnel
  // contexts (classified catalog-free, §III-D1) get the facet-constrained
  // substitute variant when the inference job materialized one.
  StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context) const override;

  // ServeContext against a specific resident version (<= 0 = active).
  StatusOr<std::vector<core::ScoredItem>> ServeContextAtVersion(
      data::RetailerId retailer, const core::Context& context,
      int64_t version) const;

  // Late-funnel substitute list for one item; falls back to the regular
  // view-based list when no late variant was materialized.
  StatusOr<std::vector<core::ScoredItem>> LookupLateFunnel(
      data::RetailerId retailer, data::ItemIndex item) const;

  // Number of retailers currently active / total materialized lists in
  // active batches.
  int num_retailers() const;
  int64_t num_items() const;

  // Active batch version for `retailer` (0 = never activated).
  int64_t RetailerVersion(data::RetailerId retailer) const override;

  // Highest resident (staged or active) version; 0 when none.
  int64_t LatestVersion(data::RetailerId retailer) const;

  // All resident versions, ascending.
  std::vector<int64_t> RetainedVersions(data::RetailerId retailer) const;

  // The version number the next auto-assigned stage would receive. The
  // run ledger logs it in the StageIntent before staging, so recovery
  // knows which versioned batch file an uncommitted intent refers to.
  int64_t NextVersion(data::RetailerId retailer) const;

  // Raises the auto-assignment counter to at least `next_version`
  // (never lowers it). Crash rehydration restores the counter through
  // this: re-staging only the *retained* versions would under-count when
  // the crashed process had also assigned (and discarded) higher ones.
  void EnsureNextVersion(data::RetailerId retailer, int64_t next_version);

 private:
  struct Shard {
    std::vector<core::ItemRecommendations> by_item;  // index = query item
  };

  // Per-retailer version chain: resident shards keyed by version, the
  // active pointer, and the auto-assignment counter.
  struct Entry {
    std::map<int64_t, std::shared_ptr<const Shard>> versions;
    int64_t active = 0;
    int64_t next_version = 1;
  };

  static std::shared_ptr<const Shard> BuildShard(
      std::vector<core::ItemRecommendations> recommendations);

  // Shard for (retailer, version); version <= 0 = active. Null when not
  // resident.
  std::shared_ptr<const Shard> FindShard(data::RetailerId retailer,
                                         int64_t version) const;

  // Evicts versions beyond the retention window (caller holds mu_
  // exclusively). Never evicts the active version or `keep`.
  void Retire(Entry* entry, int64_t keep) const;

  StatusOr<std::vector<core::ScoredItem>> LookupInShard(
      const Shard* shard, data::RetailerId retailer, data::ItemIndex item,
      RecommendationKind kind) const;

  Options options_;
  mutable std::shared_mutex mu_;
  std::map<data::RetailerId, Entry> entries_;
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_STORE_H_
