#ifndef SIGMUND_SERVING_LOADGEN_H_
#define SIGMUND_SERVING_LOADGEN_H_

#include <stdint.h>

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/slo.h"
#include "common/trace.h"
#include "serving/admission.h"

namespace sigmund::serving {

// Deterministic discrete-event load harness for the admission-controlled
// serving plane (DESIGN.md §8). Simulates millions of users against an
// AdmissionController over a SimClock — nothing sleeps, and a same-seed
// rerun replays byte-identical arrivals, admissions, sheds and
// completions (asserted via LoadGenReport::decision_hash).
//
// Traffic model:
//  - Open-loop user-facing arrivals at `open_rps` (exponential
//    inter-arrival), optionally modulated by a diurnal sine and a flash
//    crowd window — load that does NOT slow down when the server does,
//    which is what makes congestion collapse possible.
//  - A closed-loop population of `closed_users`, each issuing a request,
//    thinking for ~`think_seconds`, and repeating — load with natural
//    back-pressure.
//  - Low-priority probe and canary streams at fixed rates, used to check
//    that shedding is strictly priority-ordered.
//  - Client retries on shed with backoff — the retry-storm ingredient —
//    optionally capped by a client-side retry budget.
//
// Service model: the simulated backend serves `server_capacity` requests
// at full speed; past that, service time inflates linearly with
// concurrency (each in-flight request gets a 1/c share of the machine).
// So an unprotected plane (huge static concurrency limit) melts under
// sustained overload, while the adaptive limiter holds latency near its
// target and goodput near capacity.
struct LoadGenOptions {
  uint64_t seed = 1;
  double duration_seconds = 60.0;

  // --- Traffic mix.
  int num_retailers = 100;
  // Power-law retailer popularity: retailer r drawn ∝ 1/(r+1)^exponent.
  double zipf_exponent = 1.1;
  double open_rps = 0.0;
  int closed_users = 0;
  double think_seconds = 1.0;
  double probe_rps = 0.0;
  double canary_rps = 0.0;

  // --- Load shape (applies to the open-loop stream).
  // rate(t) = open_rps × (1 + amplitude·sin(2πt/period)) × flash(t).
  double diurnal_amplitude = 0.0;
  double diurnal_period_seconds = 86400.0;
  // flash(t) = flash_factor inside [flash_at, flash_at + flash_duration).
  double flash_at_seconds = -1.0;
  double flash_duration_seconds = 0.0;
  double flash_factor = 1.0;

  // --- Client retry behavior on shed responses (user-facing only).
  int client_retries = 0;
  double retry_backoff_seconds = 0.05;
  // Client-side retry budget ratio; < 0 = unlimited retries (storm mode).
  double retry_budget_ratio = -1.0;

  // --- Service model.
  int64_t service_micros = 2000;
  int64_t service_jitter_micros = 500;
  int server_capacity = 16;
  // End-to-end deadline per request (arrival-relative); 0 = none. A
  // completion past its deadline is counted, but not goodput.
  int64_t deadline_micros = 50000;

  // The admission plane under test. An "unprotected" baseline is modeled
  // by pinning min/max/initial limit to a huge value.
  AdmissionController::Options admission;

  // --- Request tracing (tail-based sampling). Provably passive: every
  // keep decision is a pure hash of (trace id, trace.seed), so enabling
  // tracing changes neither the simulation RNG stream nor any admission
  // decision — decision_hash is byte-identical with tracing on or off.
  bool trace_requests = false;
  obs::RequestTracer::Options trace;

  // --- SLO burn-rate evaluation over the run's metrics. Evaluation
  // events live in their own event-sequence space, so enabling them
  // never perturbs the tie-break order of simulation events (passivity,
  // again asserted via decision_hash).
  bool slo_enabled = false;
  obs::SloEngine::Options slo;
  double slo_eval_interval_seconds = 0.25;
};

struct LoadGenPriorityStats {
  int64_t offered = 0;    // fresh arrivals (retries not included)
  int64_t retries = 0;    // re-offers after a shed
  int64_t admitted = 0;   // entered service
  int64_t shed = 0;       // refused (immediately or from the queue)
  int64_t completed = 0;
  int64_t good = 0;       // completed within deadline
  int64_t late = 0;
};

struct LoadGenReport {
  LoadGenPriorityStats priorities[kNumRequestPriorities];
  std::map<std::string, int64_t> shed_by_reason;
  int64_t total_offered = 0;
  int64_t total_completed = 0;
  double offered_rps = 0.0;
  // Good (in-deadline) completions per second of simulated time — THE
  // overload metric: stays near capacity on a healthy plane, falls toward
  // zero in congestion collapse.
  double goodput_rps = 0.0;
  double p50_latency_micros = 0.0;
  double p99_latency_micros = 0.0;
  // Strict priority-ordered shedding evidence: every probe admission
  // happened at occupancy <= this ...
  double max_occupancy_probe_admitted = 0.0;
  // ... and every user-facing *capacity* shed (watermark or queue-full;
  // deadline/CoDel sheds are timing, not priority) at occupancy >= this
  // (2.0 = no user request was ever capacity-shed). Ordered shedding ⇒
  // the first stays below the second.
  double min_occupancy_user_shed = 2.0;
  int64_t retries_suppressed = 0;  // blocked by the client retry budget
  int final_concurrency_limit = 0;
  double final_pressure = 0.0;
  // FNV-1a over every (time, stream, outcome) decision; byte-identical
  // across same-seed reruns.
  uint64_t decision_hash = 0;

  // --- Tracing (zero / empty unless trace_requests). A request is
  // "terminally shed" when its final outcome was a shed (no retry left);
  // the tail sampler keeps 100% of those, so terminal_sheds ==
  // shed_traces_kept, and likewise every late completion is kept.
  int64_t traces_started = 0;
  int64_t traces_kept = 0;
  int64_t terminal_sheds = 0;
  int64_t shed_traces_kept = 0;
  int64_t deadline_overruns = 0;  // completions past their deadline
  int64_t late_traces_kept = 0;
  // Kept traces, oldest first (bounded by trace.max_kept_traces).
  std::vector<obs::RequestTraceRecord> kept_traces;

  // --- SLO alerting (zero / empty unless slo_enabled).
  int64_t slo_alerts_fired = 0;
  int64_t slo_alerts_resolved = 0;
  std::vector<obs::AlertEvent> slo_alerts;
  std::string slo_json;  // SloEngine::ToJson(); "" when disabled
};

// Runs one simulation. `metrics` (borrowed, may be null) receives the
// AdmissionController's counters/gauges, so a DailyReport built around a
// load test shows the shed/brownout story end to end.
LoadGenReport RunLoadGenerator(const LoadGenOptions& options,
                               obs::MetricRegistry* metrics = nullptr);

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_LOADGEN_H_
