#include "serving/frontend.h"

#include "common/logging.h"

namespace sigmund::serving {

Frontend::Frontend(const RecommendationStore* store,
                   const core::ScoreCalibrator* calibrator,
                   obs::MetricRegistry* metrics, const Clock* clock)
    : store_(store),
      calibrator_(calibrator),
      clock_(clock != nullptr ? clock : RealClock::Get()),
      request_micros_(metrics != nullptr
                          ? metrics->GetHistogram("serving_request_micros")
                          : nullptr),
      requests_ok_(metrics != nullptr
                       ? metrics->GetCounter("serving_requests_total",
                                             {{"outcome", "ok"}})
                       : nullptr),
      requests_error_(metrics != nullptr
                          ? metrics->GetCounter("serving_requests_total",
                                                {{"outcome", "error"}})
                          : nullptr) {}

StatusOr<RecommendationResponse> Frontend::Handle(
    const RecommendationRequest& request) const {
  SIGCHECK(store_ != nullptr);
  const int64_t start_micros =
      request_micros_ != nullptr ? clock_->NowMicros() : 0;
  // Records the request outcome + latency on every return path.
  auto finish = [&](auto result) {
    if (request_micros_ != nullptr) {
      request_micros_->Observe(
          static_cast<double>(clock_->NowMicros() - start_micros));
      (result.ok() ? requests_ok_ : requests_error_)->Add(1);
    }
    return result;
  };
  if (request.context.empty()) {
    return finish(StatusOr<RecommendationResponse>(
        InvalidArgumentError("empty context")));
  }
  if (request.max_results <= 0) {
    return finish(StatusOr<RecommendationResponse>(
        InvalidArgumentError("max_results must be positive")));
  }

  RecommendationResponse response;
  const core::ContextEntry& latest = request.context.back();
  response.post_purchase =
      latest.action == data::ActionType::kCart ||
      latest.action == data::ActionType::kConversion;
  response.funnel =
      core::ClassifyFunnelStage(request.context, /*catalog=*/nullptr, {});

  StatusOr<std::vector<core::ScoredItem>> list =
      store_->ServeContext(request.retailer, request.context);
  if (!list.ok()) {
    return finish(StatusOr<RecommendationResponse>(list.status()));
  }

  for (const core::ScoredItem& item : *list) {
    if (static_cast<int>(response.items.size()) >= request.max_results) {
      break;
    }
    if (calibrator_ != nullptr && request.display_threshold > 0.0 &&
        !calibrator_->ShouldDisplay(item.score, request.display_threshold)) {
      ++response.suppressed_by_threshold;
      continue;
    }
    response.items.push_back(item);
  }
  return finish(StatusOr<RecommendationResponse>(std::move(response)));
}

}  // namespace sigmund::serving
