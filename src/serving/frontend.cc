#include "serving/frontend.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/retry.h"

namespace sigmund::serving {

const char* ServingSourceName(ServingSource source) {
  switch (source) {
    case ServingSource::kStore:
      return "store";
    case ServingSource::kLastKnownGood:
      return "last_known_good";
    case ServingSource::kPopularity:
      return "popularity";
    case ServingSource::kBrownoutLastKnownGood:
      return "brownout_last_known_good";
    case ServingSource::kOnlineRetrieval:
      return "online_retrieval";
  }
  return "unknown";
}

Frontend::Frontend(const ServingReader* store,
                   const core::ScoreCalibrator* calibrator,
                   obs::MetricRegistry* metrics, const Clock* clock,
                   const Options& options)
    : store_(store),
      calibrator_(calibrator),
      clock_(clock != nullptr ? clock : RealClock::Get()),
      options_(options),
      metrics_(metrics),
      request_micros_(metrics != nullptr
                          ? metrics->GetHistogram("serving_request_micros")
                          : nullptr),
      deadline_exceeded_(
          metrics != nullptr
              ? metrics->GetCounter("serving_deadline_exceeded_total")
              : nullptr),
      overrun_micros_(
          metrics != nullptr
              ? metrics->GetHistogram("serving_deadline_overrun_micros")
              : nullptr),
      breaker_trips_(metrics != nullptr
                         ? metrics->GetCounter("serving_breaker_trips_total")
                         : nullptr),
      breaker_short_circuits_(
          metrics != nullptr
              ? metrics->GetCounter("serving_breaker_short_circuits_total")
              : nullptr),
      state_evictions_(
          metrics != nullptr
              ? metrics->GetCounter("serving_state_evictions_total")
              : nullptr),
      state_entries_(metrics != nullptr
                         ? metrics->GetGauge("serving_state_entries")
                         : nullptr),
      client_retries_(
          metrics != nullptr
              ? metrics->GetCounter("serving_client_retries_total")
              : nullptr),
      retry_budget_exhausted_(
          metrics != nullptr
              ? metrics->GetCounter("serving_retry_budget_exhausted_total")
              : nullptr),
      retry_budget_tokens_(options.retry_budget) {}

Frontend::Frontend(const ServingReader* store,
                   const core::ScoreCalibrator* calibrator,
                   obs::MetricRegistry* metrics, const Clock* clock)
    : Frontend(store, calibrator, metrics, clock, Options()) {}

Frontend::RetailerState& Frontend::TouchLocked(
    data::RetailerId retailer) const {
  auto [it, inserted] = state_.try_emplace(retailer);
  if (inserted) {
    lru_.push_front(retailer);
    it->second.lru_it = lru_.begin();
  } else if (it->second.lru_it != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  if (options_.max_retailer_states > 0 &&
      static_cast<int>(state_.size()) > options_.max_retailer_states) {
    // The just-touched entry sits at the LRU front, so the victim is
    // always some other retailer — the one coldest for the longest.
    const data::RetailerId victim = lru_.back();
    lru_.pop_back();
    state_.erase(victim);
    if (state_evictions_ != nullptr) state_evictions_->Add(1);
  }
  if (state_entries_ != nullptr) {
    state_entries_->Set(static_cast<double>(state_.size()));
  }
  return it->second;
}

void Frontend::SetPopularityFallback(data::RetailerId retailer,
                                     std::vector<core::ScoredItem> items) {
  std::lock_guard<std::mutex> lock(mu_);
  RetailerState& state = TouchLocked(retailer);
  state.popularity = std::move(items);
  state.has_popularity = true;
}

bool Frontend::BreakerOpen(data::RetailerId retailer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(retailer);
  return it != state_.end() && it->second.breaker_open &&
         clock_->NowSeconds() < it->second.open_until_seconds;
}

int Frontend::NumRetailerStates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(state_.size());
}

StatusOr<RecommendationResponse> Frontend::Handle(
    const RecommendationRequest& request) const {
  SIGCHECK(store_ != nullptr || lookup_ != nullptr);
  const int64_t start_micros = clock_->NowMicros();
  // The serving batch version this request is answered from; starts as
  // the retailer's active version and is rewritten when a fallback serves
  // an older snapshot. Labels the per-request counters so every serve —
  // healthy or degraded — is attributable to a concrete snapshot.
  int64_t batch_version =
      store_ != nullptr ? store_->RetailerVersion(request.retailer) : 0;
  bool admitted = false;
  // Request tracing: annotate the caller's trace when one is attached,
  // else start our own (submitted in finish; kept ones become exemplars).
  obs::RequestTrace owned_trace;
  obs::TraceContext trace = request.trace;
  if (!trace.active() && options_.request_tracer != nullptr) {
    owned_trace = options_.request_tracer->StartRequest("serving/handle");
    trace = owned_trace.Context();
  }
  // Set when the store lookup finished past the request deadline — drives
  // the kDeadlineOverrun verdict even when a fallback then serves.
  bool overran_deadline = false;
  // Which plane answered: "materialized" (the store), "online_retrieval"
  // (the ANN index), or "fallback" (any degradation-ladder rung). Labels
  // serving_requests_total so the A/B arms are separable in RunProfile.
  const char* serving_path = "materialized";
  // Records the request outcome + latency on every return path, and gives
  // the admission slot back with the observed latency so the concurrency
  // limiter learns from every admitted request.
  auto finish = [&](StatusOr<RecommendationResponse> result) {
    const int64_t latency = clock_->NowMicros() - start_micros;
    if (admitted && options_.admission != nullptr) {
      options_.admission->Release(latency);
    }
    if (trace.active()) {
      // Verdict precedence: shed > deadline overrun > error > healthy
      // (SetVerdict never downgrades a caller-set verdict to healthy).
      obs::TraceVerdict verdict = obs::TraceVerdict::kHealthy;
      if (!result.ok() &&
          result.status().code() == StatusCode::kResourceExhausted) {
        verdict = obs::TraceVerdict::kShed;
      } else if (overran_deadline) {
        verdict = obs::TraceVerdict::kDeadlineOverrun;
      } else if (!result.ok()) {
        verdict = obs::TraceVerdict::kError;
      }
      trace.SetVerdict(verdict);
    }
    if (metrics_ != nullptr) {
      request_micros_->Observe(static_cast<double>(latency));
      const char* outcome =
          result.ok() ? "ok"
          : result.status().code() == StatusCode::kResourceExhausted
              ? "shed"
              : "error";
      metrics_
          ->GetCounter("serving_requests_total",
                       {{"outcome", outcome},
                        {"path", serving_path},
                        {"version", std::to_string(batch_version)}})
          ->Add(1);
    }
    if (owned_trace.active() && options_.request_tracer != nullptr) {
      const uint64_t trace_id = owned_trace.trace_id();
      if (options_.request_tracer->Submit(std::move(owned_trace)) &&
          request_micros_ != nullptr) {
        // Kept trace: link the latency bucket this request landed in to
        // the trace, so the exposition's p99 resolves to a real request.
        request_micros_->AttachExemplar(static_cast<double>(latency),
                                        trace_id);
      }
    }
    return result;
  };
  if (request.context.empty()) {
    return finish(InvalidArgumentError("empty context"));
  }
  if (request.max_results <= 0) {
    return finish(InvalidArgumentError("max_results must be positive"));
  }

  // Admission: shed requests return kResourceExhausted without touching
  // the store (or the per-retailer breaker/fallback state). The Frontend
  // is synchronous, so a request is admitted or shed — never queued.
  const int64_t deadline_micros =
      options_.request_deadline_micros > 0
          ? start_micros + options_.request_deadline_micros
          : 0;
  if (options_.admission != nullptr) {
    const int64_t admission_span = trace.StartSpan("admission");
    const obs::TraceContext admission_ctx{trace.trace, admission_span};
    const AdmissionController::Admission admission =
        options_.admission->Offer(request.retailer, request.priority,
                                  deadline_micros, /*may_queue=*/false);
    if (admission_ctx.active()) {
      // The queue/limiter picture the decision saw, sampled atomically
      // with it — what a shed trace needs to explain itself.
      admission_ctx.Annotate("priority",
                             RequestPriorityName(request.priority));
      admission_ctx.Annotate("queue_depth",
                             std::to_string(admission.queue_depth));
      admission_ctx.Annotate("in_flight",
                             std::to_string(admission.in_flight));
      admission_ctx.Annotate("limit", std::to_string(admission.limit));
      admission_ctx.Annotate("pressure",
                             std::to_string(admission.pressure));
    }
    if (admission.outcome != AdmissionController::Outcome::kAdmitted) {
      admission_ctx.Annotate("outcome", "shed");
      admission_ctx.Annotate("shed_reason",
                             ShedReasonName(admission.reason));
      trace.EndSpan(admission_span);
      return finish(ResourceExhaustedError(
          std::string("request shed: ") + ShedReasonName(admission.reason)));
    }
    admission_ctx.Annotate("outcome", "admitted");
    trace.EndSpan(admission_span);
    admitted = true;
  }

  RecommendationResponse response;
  const core::ContextEntry& latest = request.context.back();
  response.post_purchase =
      latest.action == data::ActionType::kCart ||
      latest.action == data::ActionType::kConversion;
  response.funnel =
      core::ClassifyFunnelStage(request.context, /*catalog=*/nullptr, {});

  // Online-retrieval A/B arm: a sticky, seed-stable hash split of
  // (retailer, user) sends retrieval_ab_fraction of traffic to the ANN
  // index — but only when the retailer actually has an active index, so
  // a rollback (version -> 0) instantly returns it to the materialized
  // plane without touching the split.
  bool retrieval_arm = false;
  int64_t retrieval_version = 0;
  if (options_.retrieval_store != nullptr &&
      options_.retrieval_ab_fraction > 0.0) {
    retrieval_version =
        options_.retrieval_store->RetailerVersion(request.retailer);
    if (retrieval_version > 0) {
      // Anonymous requests key on the latest context item instead (high
      // bit set so item keys can never collide with user keys).
      const uint64_t subject =
          request.user >= 0
              ? static_cast<uint64_t>(request.user)
              : 0x8000000000000000ULL |
                    static_cast<uint64_t>(static_cast<uint32_t>(latest.item));
      const uint64_t key = Fnv1a64Mix(
          Fnv1a64Mix(kFnv64OffsetBasis,
                     static_cast<uint64_t>(request.retailer)),
          subject);
      retrieval_arm = HashSplit(options_.retrieval_ab_seed, key,
                                options_.retrieval_ab_fraction);
      if (retrieval_arm) trace.Annotate("ab_arm", "online_retrieval");
    }
  }

  // Brownout ladder: under sustained limiter pressure the response gets
  // cheaper before anything sheds — fewer results (rung 1), no calibration
  // thresholding (rung 2), last-known-good without a store call (rung 3).
  int rung = 0;
  if (options_.admission != nullptr) {
    const double pressure = options_.admission->Pressure();
    if (pressure >= options_.brownout_serve_lkg_pressure) {
      rung = 3;
    } else if (pressure >= options_.brownout_skip_threshold_pressure) {
      rung = 2;
    } else if (pressure >= options_.brownout_shrink_pressure) {
      rung = 1;
    }
  }
  response.brownout_rung = rung;
  if (rung > 0) {
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter("serving_brownout_total",
                       {{"rung", std::to_string(rung)}})
          ->Add(1);
    }
    trace.Annotate("brownout_rung", std::to_string(rung));
  }
  const int effective_max =
      rung >= 1 ? std::max(1, std::min(request.max_results,
                                       options_.brownout_max_results))
                : request.max_results;
  const bool apply_threshold = rung < 2;

  // Applies display thresholding + truncation and finishes the request.
  auto deliver = [&](const std::vector<core::ScoredItem>& list,
                     ServingSource source) {
    response.source = source;
    response.degraded = source != ServingSource::kStore &&
                        source != ServingSource::kOnlineRetrieval;
    response.batch_version = batch_version;
    serving_path = source == ServingSource::kOnlineRetrieval
                       ? "online_retrieval"
                   : source == ServingSource::kStore ? "materialized"
                                                     : "fallback";
    trace.Annotate("source", ServingSourceName(source));
    for (const core::ScoredItem& item : list) {
      if (static_cast<int>(response.items.size()) >= effective_max) {
        break;
      }
      if (apply_threshold && calibrator_ != nullptr &&
          request.display_threshold > 0.0 &&
          !calibrator_->ShouldDisplay(item.score,
                                      request.display_threshold)) {
        ++response.suppressed_by_threshold;
        continue;
      }
      response.items.push_back(item);
    }
    return finish(std::move(response));
  };

  // Serves the degradation ladder after a store failure (or an open
  // breaker): last-known-good list, then popularity, then the error.
  auto count_fallback = [&](const char* source) {
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter("serving_fallbacks_total",
                       {{"source", source},
                        {"version", std::to_string(batch_version)}})
          ->Add(1);
    }
  };
  auto fall_back = [&](const Status& error) {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = TouchLocked(request.retailer);
    if (options_.fallback_to_last_known_good && state.has_last_known_good) {
      // The replayed list belongs to the snapshot it was cached from, not
      // to whatever the store considers active now.
      batch_version = state.last_known_good_version;
      count_fallback("last_known_good");
      return deliver(state.last_known_good, ServingSource::kLastKnownGood);
    }
    if (state.has_popularity) {
      batch_version = 0;  // the static list belongs to no snapshot
      count_fallback("popularity");
      return deliver(state.popularity, ServingSource::kPopularity);
    }
    return finish(StatusOr<RecommendationResponse>(error));
  };

  // Brownout rung 3: the plane is saturated, so answer from the cached
  // last-known-good list without spending a store lookup — the cheapest
  // response that is still this retailer's own ranking. Retailers with no
  // cached list yet fall through to the normal path.
  if (rung >= 3 && options_.fallback_to_last_known_good) {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = TouchLocked(request.retailer);
    if (state.has_last_known_good) {
      batch_version = state.last_known_good_version;
      count_fallback("brownout_last_known_good");
      return deliver(state.last_known_good,
                     ServingSource::kBrownoutLastKnownGood);
    }
  }

  // Circuit breaker: while open, don't even touch the store. Once the
  // cooldown passes, let this request through as the half-open probe.
  const bool breaker_enabled = options_.breaker_failure_threshold > 0;
  bool short_circuited = false;
  if (breaker_enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = TouchLocked(request.retailer);
    if (state.breaker_open &&
        clock_->NowSeconds() < state.open_until_seconds) {
      if (breaker_short_circuits_ != nullptr) {
        breaker_short_circuits_->Add(1);
      }
      short_circuited = true;
    }
    // Past the cooldown the request proceeds as the half-open probe: a
    // success below closes the breaker, a failure re-opens it.
  }
  if (short_circuited) {
    trace.Annotate("breaker", "short_circuit");
    return fall_back(UnavailableError("circuit breaker open"));
  }

  bool served_from_retrieval = false;
  auto do_lookup = [&]() -> StatusOr<std::vector<core::ScoredItem>> {
    // A/B treatment: try the ANN plane first. A retrieval failure never
    // costs the user the request — it demotes this request back to the
    // materialized store (counted, so a sick index is visible) and the
    // normal ladder takes over from there.
    if (retrieval_arm) {
      const int64_t retrieval_span = trace.StartSpan("retrieval_lookup");
      const obs::TraceContext retrieval_ctx{trace.trace, retrieval_span};
      StatusOr<std::vector<core::ScoredItem>> result =
          options_.retrieval_store->ServeContext(request.retailer,
                                                 request.context,
                                                 retrieval_ctx);
      if (result.ok()) {
        trace.EndSpan(retrieval_span);
        served_from_retrieval = true;
        batch_version = retrieval_version;
        return result;
      }
      retrieval_ctx.Annotate("error", result.status().message());
      trace.EndSpan(retrieval_span);
      if (metrics_ != nullptr) {
        metrics_->GetCounter("serving_retrieval_fallbacks_total")->Add(1);
      }
      retrieval_arm = false;  // retries go straight to the store
    }
    const int64_t lookup_span = trace.StartSpan("store_lookup");
    const obs::TraceContext lookup_ctx{trace.trace, lookup_span};
    StatusOr<std::vector<core::ScoredItem>> result =
        lookup_ != nullptr
            ? lookup_(request.retailer, request.context)
            : store_->ServeContext(request.retailer, request.context,
                                   lookup_ctx);
    if (!result.ok()) {
      lookup_ctx.Annotate("error", result.status().message());
    }
    trace.EndSpan(lookup_span);
    return result;
  };
  if (options_.store_retries > 0) retry_budget_tokens_.RecordRequest();
  StatusOr<std::vector<core::ScoredItem>> list = do_lookup();
  // Budgeted client retries: each attempt must withdraw a token banked by
  // real request volume, so a failing store sees at most
  // (1 + retry_budget.ratio) × offered load — retries can never become a
  // storm that finishes the backend off. Shed responses
  // (kResourceExhausted) are deliberately not retryable.
  for (int attempt = 0;
       attempt < options_.store_retries && !list.ok() &&
       IsRetryableError(list.status());
       ++attempt) {
    if (!retry_budget_tokens_.TryWithdraw()) {
      if (retry_budget_exhausted_ != nullptr) retry_budget_exhausted_->Add(1);
      trace.Annotate("retry_budget", "exhausted");
      break;
    }
    if (client_retries_ != nullptr) client_retries_->Add(1);
    trace.Annotate("retry_attempt", std::to_string(attempt + 1));
    list = do_lookup();
  }

  // Deadline: a lookup that finished too late is as bad as one that
  // failed — the client has already given up. The overrun size feeds a
  // histogram so tail blowups are visible, not just counted.
  if (list.ok() && options_.request_deadline_micros > 0) {
    const int64_t elapsed = clock_->NowMicros() - start_micros;
    if (elapsed > options_.request_deadline_micros) {
      if (deadline_exceeded_ != nullptr) deadline_exceeded_->Add(1);
      response.overrun_micros = elapsed - options_.request_deadline_micros;
      if (overrun_micros_ != nullptr) {
        overrun_micros_->Observe(
            static_cast<double>(response.overrun_micros));
      }
      overran_deadline = true;
      trace.Annotate("overrun_micros",
                     std::to_string(response.overrun_micros));
      list = UnavailableError("request deadline exceeded");
    }
  }

  if (list.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = TouchLocked(request.retailer);
    state.consecutive_failures = 0;
    state.breaker_open = false;
    if (options_.fallback_to_last_known_good) {
      state.last_known_good = *list;
      state.has_last_known_good = true;
      state.last_known_good_version = batch_version;
    }
    return deliver(*list, served_from_retrieval
                              ? ServingSource::kOnlineRetrieval
                              : ServingSource::kStore);
  }

  // Store failure: advance the breaker, then descend the ladder.
  {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = TouchLocked(request.retailer);
    ++state.consecutive_failures;
    if (breaker_enabled &&
        state.consecutive_failures >= options_.breaker_failure_threshold) {
      state.breaker_open = true;
      state.open_until_seconds =
          clock_->NowSeconds() + options_.breaker_open_seconds;
      if (breaker_trips_ != nullptr) breaker_trips_->Add(1);
    }
  }
  return fall_back(list.status());
}

}  // namespace sigmund::serving
