#include "serving/frontend.h"

#include <string>
#include <utility>

#include "common/logging.h"

namespace sigmund::serving {

const char* ServingSourceName(ServingSource source) {
  switch (source) {
    case ServingSource::kStore:
      return "store";
    case ServingSource::kLastKnownGood:
      return "last_known_good";
    case ServingSource::kPopularity:
      return "popularity";
  }
  return "unknown";
}

Frontend::Frontend(const ServingReader* store,
                   const core::ScoreCalibrator* calibrator,
                   obs::MetricRegistry* metrics, const Clock* clock,
                   const Options& options)
    : store_(store),
      calibrator_(calibrator),
      clock_(clock != nullptr ? clock : RealClock::Get()),
      options_(options),
      metrics_(metrics),
      request_micros_(metrics != nullptr
                          ? metrics->GetHistogram("serving_request_micros")
                          : nullptr),
      deadline_exceeded_(
          metrics != nullptr
              ? metrics->GetCounter("serving_deadline_exceeded_total")
              : nullptr),
      breaker_trips_(metrics != nullptr
                         ? metrics->GetCounter("serving_breaker_trips_total")
                         : nullptr),
      breaker_short_circuits_(
          metrics != nullptr
              ? metrics->GetCounter("serving_breaker_short_circuits_total")
              : nullptr) {}

Frontend::Frontend(const ServingReader* store,
                   const core::ScoreCalibrator* calibrator,
                   obs::MetricRegistry* metrics, const Clock* clock)
    : Frontend(store, calibrator, metrics, clock, Options()) {}

void Frontend::SetPopularityFallback(data::RetailerId retailer,
                                     std::vector<core::ScoredItem> items) {
  std::lock_guard<std::mutex> lock(mu_);
  RetailerState& state = state_[retailer];
  state.popularity = std::move(items);
  state.has_popularity = true;
}

bool Frontend::BreakerOpen(data::RetailerId retailer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(retailer);
  return it != state_.end() && it->second.breaker_open &&
         clock_->NowSeconds() < it->second.open_until_seconds;
}

StatusOr<RecommendationResponse> Frontend::Handle(
    const RecommendationRequest& request) const {
  SIGCHECK(store_ != nullptr || lookup_ != nullptr);
  const int64_t start_micros = clock_->NowMicros();
  // The serving batch version this request is answered from; starts as
  // the retailer's active version and is rewritten when a fallback serves
  // an older snapshot. Labels the per-request counters so every serve —
  // healthy or degraded — is attributable to a concrete snapshot.
  int64_t batch_version =
      store_ != nullptr ? store_->RetailerVersion(request.retailer) : 0;
  // Records the request outcome + latency on every return path.
  auto finish = [&](StatusOr<RecommendationResponse> result) {
    if (metrics_ != nullptr) {
      request_micros_->Observe(
          static_cast<double>(clock_->NowMicros() - start_micros));
      metrics_
          ->GetCounter("serving_requests_total",
                       {{"outcome", result.ok() ? "ok" : "error"},
                        {"version", std::to_string(batch_version)}})
          ->Add(1);
    }
    return result;
  };
  if (request.context.empty()) {
    return finish(InvalidArgumentError("empty context"));
  }
  if (request.max_results <= 0) {
    return finish(InvalidArgumentError("max_results must be positive"));
  }

  RecommendationResponse response;
  const core::ContextEntry& latest = request.context.back();
  response.post_purchase =
      latest.action == data::ActionType::kCart ||
      latest.action == data::ActionType::kConversion;
  response.funnel =
      core::ClassifyFunnelStage(request.context, /*catalog=*/nullptr, {});

  // Applies display thresholding + truncation and finishes the request.
  auto deliver = [&](const std::vector<core::ScoredItem>& list,
                     ServingSource source) {
    response.source = source;
    response.degraded = source != ServingSource::kStore;
    response.batch_version = batch_version;
    for (const core::ScoredItem& item : list) {
      if (static_cast<int>(response.items.size()) >= request.max_results) {
        break;
      }
      if (calibrator_ != nullptr && request.display_threshold > 0.0 &&
          !calibrator_->ShouldDisplay(item.score,
                                      request.display_threshold)) {
        ++response.suppressed_by_threshold;
        continue;
      }
      response.items.push_back(item);
    }
    return finish(std::move(response));
  };

  // Serves the degradation ladder after a store failure (or an open
  // breaker): last-known-good list, then popularity, then the error.
  auto count_fallback = [&](const char* source) {
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter("serving_fallbacks_total",
                       {{"source", source},
                        {"version", std::to_string(batch_version)}})
          ->Add(1);
    }
  };
  auto fall_back = [&](const Status& error) {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = state_[request.retailer];
    if (options_.fallback_to_last_known_good && state.has_last_known_good) {
      // The replayed list belongs to the snapshot it was cached from, not
      // to whatever the store considers active now.
      batch_version = state.last_known_good_version;
      count_fallback("last_known_good");
      return deliver(state.last_known_good, ServingSource::kLastKnownGood);
    }
    if (state.has_popularity) {
      batch_version = 0;  // the static list belongs to no snapshot
      count_fallback("popularity");
      return deliver(state.popularity, ServingSource::kPopularity);
    }
    return finish(StatusOr<RecommendationResponse>(error));
  };

  // Circuit breaker: while open, don't even touch the store. Once the
  // cooldown passes, let this request through as the half-open probe.
  const bool breaker_enabled = options_.breaker_failure_threshold > 0;
  bool short_circuited = false;
  if (breaker_enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = state_[request.retailer];
    if (state.breaker_open &&
        clock_->NowSeconds() < state.open_until_seconds) {
      if (breaker_short_circuits_ != nullptr) {
        breaker_short_circuits_->Add(1);
      }
      short_circuited = true;
    }
    // Past the cooldown the request proceeds as the half-open probe: a
    // success below closes the breaker, a failure re-opens it.
  }
  if (short_circuited) {
    return fall_back(UnavailableError("circuit breaker open"));
  }

  StatusOr<std::vector<core::ScoredItem>> list =
      lookup_ != nullptr
          ? lookup_(request.retailer, request.context)
          : store_->ServeContext(request.retailer, request.context);

  // Deadline: a lookup that finished too late is as bad as one that
  // failed — the client has already given up.
  if (list.ok() && options_.request_deadline_micros > 0 &&
      clock_->NowMicros() - start_micros > options_.request_deadline_micros) {
    if (deadline_exceeded_ != nullptr) deadline_exceeded_->Add(1);
    list = UnavailableError("request deadline exceeded");
  }

  if (list.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = state_[request.retailer];
    state.consecutive_failures = 0;
    state.breaker_open = false;
    if (options_.fallback_to_last_known_good) {
      state.last_known_good = *list;
      state.has_last_known_good = true;
      state.last_known_good_version = batch_version;
    }
    return deliver(*list, ServingSource::kStore);
  }

  // Store failure: advance the breaker, then descend the ladder.
  {
    std::lock_guard<std::mutex> lock(mu_);
    RetailerState& state = state_[request.retailer];
    ++state.consecutive_failures;
    if (breaker_enabled &&
        state.consecutive_failures >= options_.breaker_failure_threshold) {
      state.breaker_open = true;
      state.open_until_seconds =
          clock_->NowSeconds() + options_.breaker_open_seconds;
      if (breaker_trips_ != nullptr) breaker_trips_->Add(1);
    }
  }
  return fall_back(list.status());
}

}  // namespace sigmund::serving
