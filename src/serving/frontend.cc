#include "serving/frontend.h"

#include "common/logging.h"

namespace sigmund::serving {

StatusOr<RecommendationResponse> Frontend::Handle(
    const RecommendationRequest& request) const {
  SIGCHECK(store_ != nullptr);
  if (request.context.empty()) {
    return InvalidArgumentError("empty context");
  }
  if (request.max_results <= 0) {
    return InvalidArgumentError("max_results must be positive");
  }

  RecommendationResponse response;
  const core::ContextEntry& latest = request.context.back();
  response.post_purchase =
      latest.action == data::ActionType::kCart ||
      latest.action == data::ActionType::kConversion;
  response.funnel =
      core::ClassifyFunnelStage(request.context, /*catalog=*/nullptr, {});

  StatusOr<std::vector<core::ScoredItem>> list =
      store_->ServeContext(request.retailer, request.context);
  if (!list.ok()) return list.status();

  for (const core::ScoredItem& item : *list) {
    if (static_cast<int>(response.items.size()) >= request.max_results) {
      break;
    }
    if (calibrator_ != nullptr && request.display_threshold > 0.0 &&
        !calibrator_->ShouldDisplay(item.score, request.display_threshold)) {
      ++response.suppressed_by_threshold;
      continue;
    }
    response.items.push_back(item);
  }
  return response;
}

}  // namespace sigmund::serving
