#ifndef SIGMUND_SERVING_ADMISSION_H_
#define SIGMUND_SERVING_ADMISSION_H_

#include <stdint.h>

#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "data/types.h"

namespace sigmund::serving {

// ---------------------------------------------------------------------------
// Overload robustness for the serving plane (DESIGN.md §8).
//
// The Frontend on its own accepts unbounded concurrent load: past the
// store's capacity every request slows every other request down until
// nothing finishes inside its deadline — classic congestion collapse,
// where offered load keeps rising and *goodput* (requests completed in
// time) falls to zero. This header is the missing control loop:
//
//   AdmissionController  per-retailer token buckets, a global adaptive
//                        concurrency limiter, a bounded deadline-aware
//                        queue with CoDel-style shedding, and priority
//                        classes so probe traffic sheds strictly before
//                        user traffic.
//   RetryBudget          Finagle-style token budget so client retries and
//                        hedged reads can never multiply offered load past
//                        a configured fraction of real traffic.
//
// Everything is driven by an injected Clock, so the million-user load
// harness (loadgen.h) runs over SimClock and same-seed reruns make
// byte-identical admit/shed decisions.
// ---------------------------------------------------------------------------

// Priority class of a serving request. Higher value = more important;
// under pressure the lowest class is shed first (health probes are
// synthetic, canary traffic is sacrificial by definition, user-facing
// requests shed only when nothing else is left to shed).
enum class RequestPriority {
  kHealthProbe = 0,
  kCanary = 1,
  kUserFacing = 2,
};
inline constexpr int kNumRequestPriorities = 3;

const char* RequestPriorityName(RequestPriority priority);

// Why a request was shed (the `reason` label on serving_shed_total).
enum class ShedReason {
  kNone = 0,
  kRateLimited,    // the retailer's token bucket was empty
  kWatermark,      // occupancy above this priority class's admission bar
  kQueueFull,      // queue at capacity with nothing lower-priority to evict
  kQueueDeadline,  // deadline passed while waiting for a slot
  kCodel,          // standing queue: sojourn above target for a whole interval
};

const char* ShedReasonName(ShedReason reason);

// Deterministic token bucket: `rate` tokens/second accrue up to `burst`.
// Refill is computed from clock micros (nothing sleeps), so identical
// request timings yield identical admit decisions. Not internally
// synchronized — the AdmissionController guards its buckets.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double tokens_per_second, double burst)
      : rate_(tokens_per_second), burst_(burst), tokens_(burst) {}

  // Takes `cost` tokens if available at `now_micros`; false = rate-limited.
  bool TryTake(int64_t now_micros, double cost = 1.0);

  double tokens() const { return tokens_; }

 private:
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  int64_t last_micros_ = 0;
  bool started_ = false;
};

// Finagle-style retry budget: every real request deposits `ratio` tokens,
// every retry (or hedge) withdraws one. Sustained retry volume is thereby
// capped at `ratio` × request volume no matter how hard clients hammer —
// a retry storm cannot multiply offered load onto an already-melting
// backend. `initial_tokens` is a small reserve so a cold or low-traffic
// process can still afford the occasional retry. Thread-safe.
class RetryBudget {
 public:
  struct Options {
    double ratio = 0.1;           // tokens deposited per recorded request
    double initial_tokens = 10.0; // starting reserve
    double max_tokens = 1000.0;   // cap on banked tokens
  };

  RetryBudget() : RetryBudget(Options()) {}
  explicit RetryBudget(const Options& options);

  void RecordRequest();
  // True = the retry/hedge is inside budget (a token was withdrawn).
  bool TryWithdraw(double cost = 1.0);

  double tokens() const;

 private:
  mutable std::mutex mu_;
  Options options_;
  double tokens_;
};

// Global adaptive concurrency limiter, AIMD on observed latency against a
// target (TCP-Vegas style: the no-load latency is tracked as min_latency
// and `EstimatedQueue()` = limit × (1 − min/smoothed) estimates how much
// of the window is standing queue). Every `window` completed requests:
// smoothed latency at or under target → limit += additive_increase;
// over target → limit ×= multiplicative_decrease. Not internally
// synchronized — the AdmissionController guards it.
class AdaptiveConcurrencyLimiter {
 public:
  struct Options {
    int initial_limit = 32;
    int min_limit = 1;
    int max_limit = 1024;
    // The latency the limiter defends. Completions above it shrink the
    // window multiplicatively. Feed it SERVICE latency (time from
    // admission to completion), never time spent waiting in this
    // controller's own queue — otherwise shrinking the limit lengthens
    // the queue wait, which reads as higher latency, which shrinks the
    // limit again: a death spiral down to min_limit.
    int64_t target_latency_micros = 20000;
    double additive_increase = 1.0;
    double multiplicative_decrease = 0.85;
    int window = 32;           // samples per adjustment
    double ewma_alpha = 0.2;   // smoothing of observed latency
  };

  AdaptiveConcurrencyLimiter() : AdaptiveConcurrencyLimiter(Options()) {}
  explicit AdaptiveConcurrencyLimiter(const Options& options);

  // Feeds one completed request's observed latency (service + queueing).
  void Record(int64_t latency_micros);

  int limit() const { return static_cast<int>(limit_); }
  double smoothed_latency_micros() const { return smoothed_; }
  int64_t min_latency_micros() const { return min_latency_; }
  // Vegas-style standing-queue estimate in request slots.
  double EstimatedQueue() const;

 private:
  Options options_;
  double limit_;
  double smoothed_ = 0.0;
  int64_t min_latency_ = 0;  // 0 = no sample yet
  int samples_in_window_ = 0;
};

// The serving plane's admission decision, end to end: token-bucket rate
// limits per retailer, the global adaptive concurrency limiter, priority
// watermarks, and a bounded deadline-aware priority queue with
// CoDel-style shedding of standing queues.
//
// Two usage modes share one instance:
//  - The synchronous Frontend path calls Offer(..., may_queue=false):
//    the request is admitted (slot taken) or shed, never queued.
//  - The event-driven load harness calls Offer(..., may_queue=true) and
//    feeds completions to Release(), which returns the queued requests
//    that were admitted into the freed slot (and any shed while waiting).
//
// Shedding is strictly priority-ordered: a class is refused admission
// once occupancy — (in_flight + queued) / (limit + queue_capacity) —
// reaches its watermark (probes first, canaries second), and when the
// queue is full the lowest-priority queued request is evicted before a
// higher-priority arrival is shed. Thread-safe.
class AdmissionController {
 public:
  struct Options {
    // Per-retailer token bucket over *user-facing* traffic; <= 0 disables
    // rate limiting. (Probe/canary volume is bounded by watermarks
    // instead, so synthetic traffic can never eat a retailer's tokens and
    // invert the shed order.)
    double retailer_tokens_per_second = 0.0;
    double retailer_burst = 50.0;

    AdaptiveConcurrencyLimiter::Options limiter;

    // Bounded request queue; 0 = no queue (saturation sheds immediately,
    // the right setting for the synchronous Frontend path).
    int queue_capacity = 0;
    // CoDel-style standing-queue control: once the sojourn time of
    // dequeued requests stays above `codel_target_micros` for a full
    // `codel_interval_micros`, the queue head is shed (and keeps being
    // shed once per interval until the sojourn drops back under target).
    int64_t codel_target_micros = 5000;
    int64_t codel_interval_micros = 100000;

    // Admission watermarks: the occupancy at-or-above which the class is
    // shed. User-facing traffic has no watermark — it sheds only when the
    // limiter and queue are genuinely full.
    double probe_watermark = 0.7;
    double canary_watermark = 0.9;

    // EWMA horizon of the occupancy signal exposed as Pressure() — the
    // input to the Frontend's brownout ladder. Updated on every
    // Offer/Release, so "sustained" pressure rises smoothly instead of
    // flapping per request.
    double pressure_alpha = 0.05;
  };

  // One request's identity while it waits in (or is shed from) the queue.
  struct Ticket {
    uint64_t id = 0;
    RequestPriority priority = RequestPriority::kUserFacing;
    data::RetailerId retailer = 0;
    int64_t enqueue_micros = 0;
    int64_t deadline_micros = 0;  // absolute; 0 = none
    ShedReason shed_reason = ShedReason::kNone;  // set on the shed list
  };

  enum class Outcome { kAdmitted = 0, kQueued = 1, kShed = 2 };

  struct Admission {
    Outcome outcome = Outcome::kShed;
    ShedReason reason = ShedReason::kNone;
    uint64_t id = 0;  // ticket id for queued requests
    // Controller state sampled at decision time (race-free: taken under
    // the controller lock in the same critical section as the decision),
    // so shed traces can annotate exactly the queue/limiter picture the
    // decision saw.
    int in_flight = 0;     // after this decision
    int queue_depth = 0;   // after this decision
    int limit = 0;         // concurrency limit at decision time
    double pressure = 0;   // EWMA pressure after this decision
  };

  // What a completion freed up: queued requests admitted into the slot
  // (start serving them now) and requests shed while draining (deadline
  // passed or CoDel fired).
  struct Drained {
    std::vector<Ticket> admitted;
    std::vector<Ticket> shed;
  };

  // `metrics` borrowed, may be null. `clock` null = RealClock.
  AdmissionController(const Options& options, obs::MetricRegistry* metrics,
                      const Clock* clock);

  // Admission decision for one request. `deadline_micros` is absolute on
  // the controller's clock (0 = none) and bounds time spent queued.
  // `may_queue=false` (synchronous callers) turns would-queue into a shed.
  Admission Offer(data::RetailerId retailer, RequestPriority priority,
                  int64_t deadline_micros = 0, bool may_queue = true);

  // One admitted request finished after `latency_micros` of SERVICE time
  // (admission to completion — not queue wait; see Options on the death
  // spiral): frees its slot, feeds the limiter, drains the queue.
  Drained Release(int64_t latency_micros);

  int in_flight() const;
  int queue_depth() const;
  int concurrency_limit() const;
  // (in_flight + queued) / (limit + queue_capacity), in [0, 1].
  double Occupancy() const;
  // EWMA of occupancy — the brownout ladder's "sustained pressure" input.
  double Pressure() const;

 private:
  double OccupancyLocked() const;
  void UpdatePressureLocked();
  // Samples queue depth / in-flight / limit / pressure into `admission`
  // and refreshes the per-request gauges. Caller holds mu_.
  void SampleLocked(Admission* admission);
  void CountShed(RequestPriority priority, ShedReason reason);
  void CountAdmitted(RequestPriority priority);
  // Pops deadline-expired / CoDel-shed heads and admits queued requests
  // into free slots. Caller holds mu_.
  void DrainLocked(Drained* drained);

  Options options_;
  obs::MetricRegistry* metrics_;
  const Clock* clock_;
  obs::Gauge* limit_gauge_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;
  obs::Gauge* pressure_gauge_ = nullptr;
  obs::Gauge* in_flight_gauge_ = nullptr;

  mutable std::mutex mu_;
  AdaptiveConcurrencyLimiter limiter_;
  std::map<data::RetailerId, TokenBucket> buckets_;
  // FIFO per priority class; drain pops the highest class first, queue
  // overflow evicts from the lowest non-empty class below the arrival.
  std::deque<Ticket> queues_[kNumRequestPriorities];
  int queue_size_ = 0;
  int in_flight_ = 0;
  uint64_t next_ticket_ = 1;
  double pressure_ = 0.0;
  // CoDel state: when the head sojourn first exceeded target (0 = it is
  // currently under target).
  int64_t codel_first_above_micros_ = 0;
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_ADMISSION_H_
