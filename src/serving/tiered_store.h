#ifndef SIGMUND_SERVING_TIERED_STORE_H_
#define SIGMUND_SERVING_TIERED_STORE_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/inference.h"
#include "serving/store.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::serving {

// Two-tier serving store: the paper's serving system "leverages
// main-memory and flash to serve low-latency requests" (§II-A). Head
// items — the bulk of traffic — are pinned in memory; the long tail lives
// on flash (modeled by the shared filesystem) behind a small LRU cache.
//
// Batch-updated per retailer like RecommendationStore; thread-safe.
class TieredStore {
 public:
  struct Options {
    // Fraction of each retailer's items (by popularity) pinned in memory.
    double hot_fraction = 0.10;
    // LRU entries shared across retailers for flash-read results.
    int cache_capacity = 4096;
    // Accounted (not slept) flash read latency, for capacity planning.
    int64_t flash_read_micros = 120;
  };

  struct Stats {
    int64_t memory_hits = 0;
    int64_t cache_hits = 0;
    int64_t flash_reads = 0;
    int64_t simulated_flash_micros = 0;

    double FlashReadFraction() const {
      int64_t total = memory_hits + cache_hits + flash_reads;
      return total > 0 ? static_cast<double>(flash_reads) / total : 0.0;
    }
  };

  // `fs` is the flash tier; borrowed.
  TieredStore(sfs::SharedFileSystem* fs, const Options& options)
      : fs_(fs), options_(options) {}

  // Batch-loads one retailer: writes every item's recommendations to the
  // flash tier (under a fresh per-retailer version directory) and pins
  // the top hot_fraction items by `popularity` (same length as the
  // catalog) in memory. Replaces any previous version and garbage-
  // collects the previous version's flash files, so repeated reloads keep
  // the flash-tier file count bounded by the catalog size. Files whose
  // delete hit a transient error are retried on the next load.
  Status LoadRetailer(data::RetailerId retailer,
                      const std::vector<core::ItemRecommendations>& recs,
                      const std::vector<int64_t>& popularity);

  // Serving lookup: memory -> LRU cache -> flash.
  StatusOr<std::vector<core::ScoredItem>> Lookup(data::RetailerId retailer,
                                                 data::ItemIndex item,
                                                 RecommendationKind kind);

  Stats stats() const;

  // Bytes pinned in memory vs. resident on flash for one retailer.
  struct Footprint {
    int64_t hot_items = 0;
    int64_t flash_items = 0;
  };
  StatusOr<Footprint> RetailerFootprint(data::RetailerId retailer) const;

  // Flash files are laid out per batch version —
  // flash/r<retailer>/v<version>/i<item> — so a reload writes into a
  // fresh directory and the stale one can be GC'd wholesale.
  static std::string FlashPath(data::RetailerId retailer, int64_t version,
                               data::ItemIndex item);
  static std::string FlashRoot(data::RetailerId retailer);

 private:
  struct HotShard {
    // item -> recommendations, for pinned items only.
    std::unordered_map<data::ItemIndex, core::ItemRecommendations> pinned;
    int total_items = 0;
    // Flash version this shard's tier-3 files live under.
    int64_t version = 0;
  };

  using CacheKey = std::pair<data::RetailerId, data::ItemIndex>;
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const {
      return std::hash<int64_t>()((static_cast<int64_t>(key.first) << 32) ^
                                  static_cast<uint32_t>(key.second));
    }
  };

  // Inserts into the LRU (caller holds mu_).
  void CacheInsert(const CacheKey& key, core::ItemRecommendations recs);

  // Deletes every flash file of `retailer` not under `keep_version`;
  // failed deletes land in pending_gc_ for the next load to retry.
  void CollectStaleFlash(data::RetailerId retailer, int64_t keep_version);

  sfs::SharedFileSystem* fs_;
  Options options_;
  mutable std::mutex mu_;
  std::map<data::RetailerId, HotShard> hot_;
  // Stale flash paths whose delete failed transiently; retried on the
  // next LoadRetailer (any retailer). Guarded by mu_.
  std::vector<std::string> pending_gc_;
  // LRU: most-recent at front.
  std::list<std::pair<CacheKey, core::ItemRecommendations>> lru_;
  std::unordered_map<CacheKey, decltype(lru_)::iterator, CacheKeyHash>
      cache_index_;
  Stats stats_;
};

}  // namespace sigmund::serving

#endif  // SIGMUND_SERVING_TIERED_STORE_H_
