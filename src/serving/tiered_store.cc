#include "serving/tiered_store.h"

#include <algorithm>
#include <iterator>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::serving {

std::string TieredStore::FlashPath(data::RetailerId retailer, int64_t version,
                                   data::ItemIndex item) {
  return StrFormat("flash/r%d/v%lld/i%d", retailer,
                   static_cast<long long>(version), item);
}

std::string TieredStore::FlashRoot(data::RetailerId retailer) {
  return StrFormat("flash/r%d/", retailer);
}

void TieredStore::CollectStaleFlash(data::RetailerId retailer,
                                    int64_t keep_version) {
  // Gather this retailer's stale files plus any deletes that failed on a
  // previous pass, then retire them. List/Delete failures are tolerated:
  // whatever survives is retried on the next load.
  const std::string keep_prefix =
      StrFormat("flash/r%d/v%lld/", retailer,
                static_cast<long long>(keep_version));
  std::vector<std::string> stale;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stale.swap(pending_gc_);
  }
  StatusOr<std::vector<std::string>> files = fs_->List(FlashRoot(retailer));
  if (files.ok()) {
    for (std::string& path : *files) {
      if (path.compare(0, keep_prefix.size(), keep_prefix) != 0) {
        stale.push_back(std::move(path));
      }
    }
  }
  std::vector<std::string> still_pending;
  for (const std::string& path : stale) {
    Status deleted = fs_->Delete(path);
    if (!deleted.ok() && deleted.code() != StatusCode::kNotFound) {
      still_pending.push_back(path);
    }
  }
  if (!still_pending.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_gc_.insert(pending_gc_.end(),
                       std::make_move_iterator(still_pending.begin()),
                       std::make_move_iterator(still_pending.end()));
  }
}

Status TieredStore::LoadRetailer(
    data::RetailerId retailer,
    const std::vector<core::ItemRecommendations>& recs,
    const std::vector<int64_t>& popularity) {
  // Pick the hot set by popularity.
  std::vector<data::ItemIndex> order;
  order.reserve(recs.size());
  for (const core::ItemRecommendations& rec : recs) order.push_back(rec.query);
  std::sort(order.begin(), order.end(),
            [&popularity](data::ItemIndex a, data::ItemIndex b) {
              int64_t pa = a < static_cast<data::ItemIndex>(popularity.size())
                               ? popularity[a]
                               : 0;
              int64_t pb = b < static_cast<data::ItemIndex>(popularity.size())
                               ? popularity[b]
                               : 0;
              if (pa != pb) return pa > pb;
              return a < b;
            });
  const size_t hot_count = static_cast<size_t>(
      options_.hot_fraction * static_cast<double>(order.size()));
  std::unordered_map<data::ItemIndex, bool> is_hot;
  for (size_t n = 0; n < order.size(); ++n) is_hot[order[n]] = n < hot_count;

  // Everything goes to flash (the authoritative copy) under a fresh
  // version directory; hot items are additionally pinned in memory.
  HotShard shard;
  shard.total_items = static_cast<int>(recs.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto prev = hot_.find(retailer);
    shard.version = prev == hot_.end() ? 1 : prev->second.version + 1;
  }
  for (const core::ItemRecommendations& rec : recs) {
    SIGMUND_RETURN_IF_ERROR(fs_->Write(
        FlashPath(retailer, shard.version, rec.query), rec.Serialize()));
    if (is_hot[rec.query]) shard.pinned.emplace(rec.query, rec);
  }

  const int64_t version = shard.version;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hot_[retailer] = std::move(shard);
    // Drop stale cache entries for this retailer (batch-update semantics).
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->first.first == retailer) {
        cache_index_.erase(it->first);
        it = lru_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Retire the previous version's flash files now that the new shard is
  // live; lookups racing the swap already resolve to the new version.
  CollectStaleFlash(retailer, version);
  return OkStatus();
}

void TieredStore::CacheInsert(const CacheKey& key,
                              core::ItemRecommendations recs) {
  lru_.emplace_front(key, std::move(recs));
  cache_index_[key] = lru_.begin();
  while (static_cast<int>(lru_.size()) > options_.cache_capacity) {
    cache_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

StatusOr<std::vector<core::ScoredItem>> TieredStore::Lookup(
    data::RetailerId retailer, data::ItemIndex item,
    RecommendationKind kind) {
  auto pick = [kind](const core::ItemRecommendations& recs) {
    return kind == RecommendationKind::kViewBased ? recs.view_based
                                                  : recs.purchase_based;
  };

  int64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto shard = hot_.find(retailer);
    if (shard == hot_.end()) {
      return NotFoundError(StrFormat("retailer %d not loaded", retailer));
    }
    if (item < 0 || item >= shard->second.total_items) {
      return NotFoundError(StrFormat("no recommendations for item %d", item));
    }
    version = shard->second.version;
    // Tier 1: pinned memory.
    auto pinned = shard->second.pinned.find(item);
    if (pinned != shard->second.pinned.end()) {
      ++stats_.memory_hits;
      return pick(pinned->second);
    }
    // Tier 2: LRU cache over flash.
    CacheKey key{retailer, item};
    auto cached = cache_index_.find(key);
    if (cached != cache_index_.end()) {
      // Move to front.
      lru_.splice(lru_.begin(), lru_, cached->second);
      ++stats_.cache_hits;
      return pick(lru_.front().second);
    }
  }

  // Tier 3: flash read (outside the lock; reads are the slow path).
  StatusOr<std::string> bytes = fs_->Read(FlashPath(retailer, version, item));
  if (!bytes.ok()) return bytes.status();
  StatusOr<core::ItemRecommendations> recs =
      core::ItemRecommendations::Deserialize(*bytes);
  if (!recs.ok()) return recs.status();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.flash_reads;
  stats_.simulated_flash_micros += options_.flash_read_micros;
  std::vector<core::ScoredItem> result = pick(*recs);
  CacheInsert(CacheKey{retailer, item}, std::move(recs).value());
  return result;
}

TieredStore::Stats TieredStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

StatusOr<TieredStore::Footprint> TieredStore::RetailerFootprint(
    data::RetailerId retailer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto shard = hot_.find(retailer);
  if (shard == hot_.end()) {
    return NotFoundError(StrFormat("retailer %d not loaded", retailer));
  }
  Footprint footprint;
  footprint.hot_items = static_cast<int64_t>(shard->second.pinned.size());
  footprint.flash_items = shard->second.total_items;
  return footprint;
}

}  // namespace sigmund::serving
