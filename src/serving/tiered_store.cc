#include "serving/tiered_store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::serving {

std::string TieredStore::FlashPath(data::RetailerId retailer,
                                   data::ItemIndex item) {
  return StrFormat("flash/r%d/i%d", retailer, item);
}

Status TieredStore::LoadRetailer(
    data::RetailerId retailer,
    const std::vector<core::ItemRecommendations>& recs,
    const std::vector<int64_t>& popularity) {
  // Pick the hot set by popularity.
  std::vector<data::ItemIndex> order;
  order.reserve(recs.size());
  for (const core::ItemRecommendations& rec : recs) order.push_back(rec.query);
  std::sort(order.begin(), order.end(),
            [&popularity](data::ItemIndex a, data::ItemIndex b) {
              int64_t pa = a < static_cast<data::ItemIndex>(popularity.size())
                               ? popularity[a]
                               : 0;
              int64_t pb = b < static_cast<data::ItemIndex>(popularity.size())
                               ? popularity[b]
                               : 0;
              if (pa != pb) return pa > pb;
              return a < b;
            });
  const size_t hot_count = static_cast<size_t>(
      options_.hot_fraction * static_cast<double>(order.size()));
  std::unordered_map<data::ItemIndex, bool> is_hot;
  for (size_t n = 0; n < order.size(); ++n) is_hot[order[n]] = n < hot_count;

  // Everything goes to flash (the authoritative copy); hot items are
  // additionally pinned in memory.
  HotShard shard;
  shard.total_items = static_cast<int>(recs.size());
  for (const core::ItemRecommendations& rec : recs) {
    SIGMUND_RETURN_IF_ERROR(
        fs_->Write(FlashPath(retailer, rec.query), rec.Serialize()));
    if (is_hot[rec.query]) shard.pinned.emplace(rec.query, rec);
  }

  std::lock_guard<std::mutex> lock(mu_);
  hot_[retailer] = std::move(shard);
  // Drop stale cache entries for this retailer (batch-update semantics).
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.first == retailer) {
      cache_index_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  return OkStatus();
}

void TieredStore::CacheInsert(const CacheKey& key,
                              core::ItemRecommendations recs) {
  lru_.emplace_front(key, std::move(recs));
  cache_index_[key] = lru_.begin();
  while (static_cast<int>(lru_.size()) > options_.cache_capacity) {
    cache_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

StatusOr<std::vector<core::ScoredItem>> TieredStore::Lookup(
    data::RetailerId retailer, data::ItemIndex item,
    RecommendationKind kind) {
  auto pick = [kind](const core::ItemRecommendations& recs) {
    return kind == RecommendationKind::kViewBased ? recs.view_based
                                                  : recs.purchase_based;
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto shard = hot_.find(retailer);
    if (shard == hot_.end()) {
      return NotFoundError(StrFormat("retailer %d not loaded", retailer));
    }
    if (item < 0 || item >= shard->second.total_items) {
      return NotFoundError(StrFormat("no recommendations for item %d", item));
    }
    // Tier 1: pinned memory.
    auto pinned = shard->second.pinned.find(item);
    if (pinned != shard->second.pinned.end()) {
      ++stats_.memory_hits;
      return pick(pinned->second);
    }
    // Tier 2: LRU cache over flash.
    CacheKey key{retailer, item};
    auto cached = cache_index_.find(key);
    if (cached != cache_index_.end()) {
      // Move to front.
      lru_.splice(lru_.begin(), lru_, cached->second);
      ++stats_.cache_hits;
      return pick(lru_.front().second);
    }
  }

  // Tier 3: flash read (outside the lock; reads are the slow path).
  StatusOr<std::string> bytes = fs_->Read(FlashPath(retailer, item));
  if (!bytes.ok()) return bytes.status();
  StatusOr<core::ItemRecommendations> recs =
      core::ItemRecommendations::Deserialize(*bytes);
  if (!recs.ok()) return recs.status();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.flash_reads;
  stats_.simulated_flash_micros += options_.flash_read_micros;
  std::vector<core::ScoredItem> result = pick(*recs);
  CacheInsert(CacheKey{retailer, item}, std::move(recs).value());
  return result;
}

TieredStore::Stats TieredStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

StatusOr<TieredStore::Footprint> TieredStore::RetailerFootprint(
    data::RetailerId retailer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto shard = hot_.find(retailer);
  if (shard == hot_.end()) {
    return NotFoundError(StrFormat("retailer %d not loaded", retailer));
  }
  Footprint footprint;
  footprint.hot_items = static_cast<int64_t>(shard->second.pinned.size());
  footprint.flash_items = shard->second.total_items;
  return footprint;
}

}  // namespace sigmund::serving
