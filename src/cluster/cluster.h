#ifndef SIGMUND_CLUSTER_CLUSTER_H_
#define SIGMUND_CLUSTER_CLUSTER_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "cluster/cost_model.h"

namespace sigmund::cluster {

// A physical machine in a cell. Sigmund trains one retailer per machine
// at a time (Section IV-B2), so a machine executes a single task slot;
// its CPU count determines how many Hogwild threads that task may use.
struct Machine {
  int id = 0;
  double cpus = 4.0;
  double ram_gb = 32.0;
};

// A datacenter ("cell" in Borg terminology) with some number of machines
// available at a given priority class.
struct Cell {
  std::string name;
  std::vector<Machine> machines;

  // Returns a cell with `num_machines` identical machines.
  static Cell Uniform(const std::string& name, int num_machines, double cpus,
                      double ram_gb);
};

// A set of cells with spare capacity. The training and inference jobs are
// split into one MapReduce per cell (Section IV-B1).
struct Cluster {
  std::vector<Cell> cells;

  int TotalMachines() const;
};

}  // namespace sigmund::cluster

#endif  // SIGMUND_CLUSTER_CLUSTER_H_
