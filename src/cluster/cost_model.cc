#include "cluster/cost_model.h"

namespace sigmund::cluster {

double CostModel::PricePerCpuHour(VmPriority priority) const {
  if (priority == VmPriority::kPreemptible) {
    return regular_price_per_cpu_hour_ * (1.0 - preemptible_discount_);
  }
  return regular_price_per_cpu_hour_;
}

double CostModel::Price(const VmSpec& spec, double seconds) const {
  return PricePerCpuHour(spec.priority) * spec.cpus * (seconds / 3600.0);
}

}  // namespace sigmund::cluster
