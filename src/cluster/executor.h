#ifndef SIGMUND_CLUSTER_EXECUTOR_H_
#define SIGMUND_CLUSTER_EXECUTOR_H_

#include <stdint.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "cluster/lease.h"

namespace sigmund::cluster {

// The preemptible-cell execution runtime (§IV-B): hands out revocable
// machine leases to logical tasks, tracks per-task eviction counts, and
// escalates a task that has been evicted too often from preemptible to
// regular priority so it can still finish by the daily deadline.
//
// Protocol, from the task holder's point of view:
//
//   MachineLease lease = executor->Acquire(key, clock.NowSeconds());
//   ... do work, advancing the clock ...
//   switch (lease.Check(clock.NowSeconds())) {
//     case kHeld:            keep working
//     case kEvictionNotice:  flush a final checkpoint, then
//                            executor->OnEviction(key, /*within_grace=*/true)
//     case kRevoked:         machine already gone:
//                            executor->OnEviction(key, /*within_grace=*/false)
//   }
//   lease = executor->Acquire(key, clock.NowSeconds());   // fresh machine
//
// Deterministic: eviction times depend only on (seed, task key,
// incarnation), never on thread scheduling. Thread-safe: map tasks on
// pool threads share one executor.
class PreemptibleExecutor {
 public:
  struct Options {
    ChurnConfig churn;
    // Priority a task starts at (escalation can only raise it).
    LeasePriority initial_priority = LeasePriority::kPreemptible;
  };

  // Aggregate counters, readable while the executor is in use.
  struct Stats {
    std::atomic<int64_t> leases_preemptible{0};
    std::atomic<int64_t> leases_regular{0};
    std::atomic<int64_t> evictions{0};        // grace + hard
    std::atomic<int64_t> grace_evictions{0};  // holder saw the notice window
    std::atomic<int64_t> hard_evictions{0};   // holder missed the window
    std::atomic<int64_t> escalations{0};
  };

  explicit PreemptibleExecutor(const Options& options) : options_(options) {}

  // True when leases can actually be revoked (churn configured and the
  // initial priority is preemptible). When false, Acquire still works but
  // every lease is a stable regular machine.
  bool churn_enabled() const {
    return options_.churn.preemption_rate_per_hour > 0.0 &&
           options_.initial_priority == LeasePriority::kPreemptible;
  }

  // Grants a lease for the next incarnation of `task_key`, starting at
  // `now_seconds` on the holder's clock.
  MachineLease Acquire(const std::string& task_key, double now_seconds);

  // The holder reports that its lease was revoked. `within_grace` records
  // whether the holder caught the eviction notice inside the grace window
  // (i.e. had the chance to write a final checkpoint). Returns true if
  // this eviction escalated the task to regular priority.
  bool OnEviction(const std::string& task_key, bool within_grace);

  // Current priority of `task_key` (initial priority if never seen).
  LeasePriority TaskPriority(const std::string& task_key) const;

  // Evictions suffered by `task_key` so far.
  int EvictionCount(const std::string& task_key) const;

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  struct TaskState {
    int64_t incarnations = 0;
    int evictions = 0;
    LeasePriority priority = LeasePriority::kPreemptible;
  };

  Options options_;
  Stats stats_;
  mutable std::mutex mu_;
  std::map<std::string, TaskState> tasks_;
};

}  // namespace sigmund::cluster

#endif  // SIGMUND_CLUSTER_EXECUTOR_H_
