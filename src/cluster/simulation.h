#ifndef SIGMUND_CLUSTER_SIMULATION_H_
#define SIGMUND_CLUSTER_SIMULATION_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "common/random.h"

namespace sigmund::cluster {

// A unit of simulated work (e.g. training one model, or scoring one
// retailer's inventory). `work_seconds` is single-machine wall time.
struct SimTask {
  int64_t id = 0;
  double work_seconds = 0.0;
};

// Fault-tolerance & scheduling policy for a simulated job.
struct SimJobConfig {
  VmSpec vm;

  // Mean preemptions per VM-hour when vm.priority == kPreemptible.
  // Regular VMs are never preempted. Borg-style preemption is memoryless,
  // so we model inter-preemption times as exponential.
  double preemption_rate_per_hour = 0.5;

  // Interval between asynchronous checkpoints, in seconds of task runtime.
  // <= 0 disables checkpointing (a preempted task restarts from scratch).
  // The paper schedules checkpoints on a fixed *time* interval, not a fixed
  // iteration count (Section IV-B3).
  double checkpoint_interval_seconds = 300.0;

  // Wall-time cost of writing one checkpoint ("very fast ... negligible
  // compared to the training time" — but configurable so experiments can
  // probe the trade-off).
  double checkpoint_write_seconds = 1.0;

  // Overhead of rescheduling + restoring state after a preemption.
  double restart_overhead_seconds = 30.0;

  uint64_t seed = 42;
};

// Outcome of a simulated job.
struct SimJobStats {
  double makespan_seconds = 0.0;   // finish time of the last task
  double busy_vm_seconds = 0.0;    // billable VM time, incl. redone work
  double lost_work_seconds = 0.0;  // work redone because of preemptions
  double checkpoint_seconds = 0.0; // time spent writing checkpoints
  int64_t num_preemptions = 0;
  double cost_dollars = 0.0;

  std::string ToString() const;
};

// Discrete-event simulator for a bag-of-tasks job on one cell's machines.
//
// Scheduling is list scheduling: tasks are assigned, in the order given,
// to the machine that frees up earliest. This matches the paper's setup:
// the order of `tasks` IS the (possibly randomly permuted) order of config
// records in the MapReduce input, so permutation-based load balancing
// (Section IV-B1) and first-fit-decreasing bin-packing (Section IV-C1)
// are both expressible by ordering the input.
//
// Preemptions: while a task runs on a preemptible VM, inter-preemption
// times are drawn Exp(rate). On preemption the task loses all progress
// since its last checkpoint and is re-queued (list scheduling again), plus
// a restart overhead. With checkpointing disabled it restarts from zero.
class SimJobRunner {
 public:
  SimJobRunner(const Cell& cell, const CostModel& cost_model)
      : num_machines_(static_cast<int>(cell.machines.size())),
        cost_model_(cost_model) {}

  // Runs `tasks` to completion and returns aggregate stats.
  SimJobStats Run(const std::vector<SimTask>& tasks,
                  const SimJobConfig& config) const;

 private:
  int num_machines_;
  CostModel cost_model_;
};

// Lower bound on makespan for a bag of tasks on `machines` machines:
// max(longest task, total work / machines). Useful for reporting
// scheduling efficiency.
double MakespanLowerBound(const std::vector<SimTask>& tasks, int machines);

}  // namespace sigmund::cluster

#endif  // SIGMUND_CLUSTER_SIMULATION_H_
