#ifndef SIGMUND_CLUSTER_COST_MODEL_H_
#define SIGMUND_CLUSTER_COST_MODEL_H_

#include <stdint.h>

namespace sigmund::cluster {

// VM priority classes, mirroring Borg / public-cloud offerings (Section
// II-B of the paper): regular VMs are never torn down; preemptible VMs are
// substantially cheaper but can be preempted at any time.
enum class VmPriority {
  kRegular = 0,
  kPreemptible = 1,
};

// Shape of a VM request. The paper notes high-memory instances correlate
// with high CPU ("four CPUs and 32GB rather than one CPU with 32GB").
struct VmSpec {
  double cpus = 1.0;
  double ram_gb = 4.0;
  VmPriority priority = VmPriority::kRegular;
};

// Linear pricing model. Defaults approximate the paper's claim that the
// cost advantage of preemptible resources "can be nearly 70%": the
// preemptible price is 30% of the regular price.
class CostModel {
 public:
  CostModel() = default;
  CostModel(double regular_price_per_cpu_hour, double preemptible_discount)
      : regular_price_per_cpu_hour_(regular_price_per_cpu_hour),
        preemptible_discount_(preemptible_discount) {}

  // Price of running `spec` for `seconds`, in dollars.
  double Price(const VmSpec& spec, double seconds) const;

  // Price per cpu-hour for the given priority.
  double PricePerCpuHour(VmPriority priority) const;

  double regular_price_per_cpu_hour() const {
    return regular_price_per_cpu_hour_;
  }
  double preemptible_discount() const { return preemptible_discount_; }

 private:
  double regular_price_per_cpu_hour_ = 0.04;  // ~n1-standard on-demand
  double preemptible_discount_ = 0.70;        // preemptible = 30% of regular
};

}  // namespace sigmund::cluster

#endif  // SIGMUND_CLUSTER_COST_MODEL_H_
