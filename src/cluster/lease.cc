#include "cluster/lease.h"

#include "common/hash.h"

namespace sigmund::cluster {

const char* LeasePriorityName(LeasePriority priority) {
  switch (priority) {
    case LeasePriority::kPreemptible:
      return "preemptible";
    case LeasePriority::kRegular:
      return "regular";
  }
  return "unknown";
}

MachineLease::State MachineLease::Check(double now_seconds) const {
  if (now_seconds < eviction_at_seconds_) return State::kHeld;
  if (now_seconds < grace_deadline_seconds_) return State::kEvictionNotice;
  return State::kRevoked;
}

uint64_t StableHash64(const std::string& text) { return Fnv1a64(text); }

}  // namespace sigmund::cluster
