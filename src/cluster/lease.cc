#include "cluster/lease.h"

namespace sigmund::cluster {

const char* LeasePriorityName(LeasePriority priority) {
  switch (priority) {
    case LeasePriority::kPreemptible:
      return "preemptible";
    case LeasePriority::kRegular:
      return "regular";
  }
  return "unknown";
}

MachineLease::State MachineLease::Check(double now_seconds) const {
  if (now_seconds < eviction_at_seconds_) return State::kHeld;
  if (now_seconds < grace_deadline_seconds_) return State::kEvictionNotice;
  return State::kRevoked;
}

uint64_t StableHash64(const std::string& text) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : text) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

}  // namespace sigmund::cluster
