#ifndef SIGMUND_CLUSTER_LEASE_H_
#define SIGMUND_CLUSTER_LEASE_H_

#include <stdint.h>

#include <limits>
#include <string>

namespace sigmund::cluster {

// Priority class of a leased machine. Preemptible machines can be
// revoked at any moment (Borg-style eviction); regular machines are
// stable for the lifetime of the lease (§IV-B of the paper: Sigmund runs
// almost entirely on pre-emptible resources, escalating only when it
// must).
enum class LeasePriority {
  kPreemptible = 0,
  kRegular = 1,
};

const char* LeasePriorityName(LeasePriority priority);

// Machine-churn model for a preemptible cell. Inter-preemption times are
// exponential (memoryless Borg evictions, same model as
// SimJobConfig::preemption_rate_per_hour), measured in the *holder's*
// simulated seconds — the same timeline that drives checkpoint cadence.
struct ChurnConfig {
  // Mean preemptions per VM-hour for preemptible leases. <= 0 disables
  // churn entirely (every lease behaves like a regular machine).
  double preemption_rate_per_hour = 0.0;

  // Length of the eviction-grace window: once the eviction notice fires,
  // the holder has this many (simulated) seconds of continued machine
  // access to flush a final checkpoint before the machine is revoked. A
  // holder that only notices past the window took a hard eviction and
  // loses everything since its last durable checkpoint.
  double eviction_grace_seconds = 5.0;

  // After this many evictions, a task escalates from preemptible to
  // regular priority and is never evicted again (tail retailers must
  // still meet the daily deadline). <= 0 = never escalate.
  int escalate_after_evictions = 3;

  // Simulated seconds of rescheduling + environment setup charged to a
  // task each time it restarts on a fresh machine.
  double restart_overhead_seconds = 0.0;

  // Seed for the deterministic churn schedule. Eviction times are drawn
  // per (seed, task key, incarnation), so the schedule is independent of
  // thread interleaving — a requirement for byte-identical reruns.
  uint64_t seed = 42;
};

// A revocable grant of one machine to one task incarnation.
//
// The lease is driven by the holder's clock: the eviction time is drawn
// when the lease is granted, and the holder polls Check(now) as its
// simulated time advances. State machine:
//
//   kHeld            now < eviction_at
//   kEvictionNotice  eviction_at <= now < eviction_at + grace
//   kRevoked         now >= eviction_at + grace
//
// During kEvictionNotice the machine still works — this is the window in
// which training flushes its eviction-grace checkpoint. A
// default-constructed lease is a regular machine: never evicted.
class MachineLease {
 public:
  enum class State { kHeld = 0, kEvictionNotice = 1, kRevoked = 2 };

  MachineLease() = default;

  State Check(double now_seconds) const;

  LeasePriority priority() const { return priority_; }
  bool preemptible() const {
    return priority_ == LeasePriority::kPreemptible;
  }
  // +inf for a lease that will never be evicted.
  double eviction_at_seconds() const { return eviction_at_seconds_; }
  double grace_deadline_seconds() const { return grace_deadline_seconds_; }
  // 0-based count of leases granted to this task before this one.
  int64_t incarnation() const { return incarnation_; }
  const std::string& task_key() const { return task_key_; }

 private:
  friend class PreemptibleExecutor;

  static constexpr double kNever = std::numeric_limits<double>::infinity();

  std::string task_key_;
  LeasePriority priority_ = LeasePriority::kRegular;
  double eviction_at_seconds_ = kNever;
  double grace_deadline_seconds_ = kNever;
  int64_t incarnation_ = 0;
};

// Deterministic, platform-stable 64-bit string hash (FNV-1a, delegating
// to common/hash.h). std::hash is implementation-defined, which would
// make churn schedules differ across standard libraries.
uint64_t StableHash64(const std::string& text);

}  // namespace sigmund::cluster

#endif  // SIGMUND_CLUSTER_LEASE_H_
