#include "cluster/cluster.h"

namespace sigmund::cluster {

Cell Cell::Uniform(const std::string& name, int num_machines, double cpus,
                   double ram_gb) {
  Cell cell;
  cell.name = name;
  cell.machines.reserve(num_machines);
  for (int i = 0; i < num_machines; ++i) {
    cell.machines.push_back(Machine{i, cpus, ram_gb});
  }
  return cell;
}

int Cluster::TotalMachines() const {
  int total = 0;
  for (const Cell& cell : cells) {
    total += static_cast<int>(cell.machines.size());
  }
  return total;
}

}  // namespace sigmund::cluster
