#include "cluster/executor.h"

#include <cmath>

#include "common/random.h"

namespace sigmund::cluster {

MachineLease PreemptibleExecutor::Acquire(const std::string& task_key,
                                          double now_seconds) {
  int64_t incarnation = 0;
  LeasePriority priority;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        tasks_.emplace(task_key, TaskState{0, 0, options_.initial_priority});
    incarnation = it->second.incarnations++;
    priority = it->second.priority;
  }

  MachineLease lease;
  lease.task_key_ = task_key;
  lease.priority_ = priority;
  lease.incarnation_ = incarnation;

  const double rate = options_.churn.preemption_rate_per_hour;
  if (priority == LeasePriority::kPreemptible && rate > 0.0) {
    // Exponential inter-preemption time, drawn from a stream keyed by
    // (seed, task, incarnation) so the schedule is independent of which
    // worker thread runs the task and of other tasks' progress.
    Rng rng(SplitMix64(options_.churn.seed) ^
            SplitMix64(StableHash64(task_key)) ^
            SplitMix64(static_cast<uint64_t>(incarnation) * 0x9e3779b9ULL +
                       1));
    const double lambda = rate / 3600.0;
    const double u = std::max(rng.UniformDouble(), 1e-300);
    const double inter_preemption = -std::log(u) / lambda;
    lease.eviction_at_seconds_ = now_seconds + inter_preemption;
    lease.grace_deadline_seconds_ =
        lease.eviction_at_seconds_ +
        std::max(0.0, options_.churn.eviction_grace_seconds);
    stats_.leases_preemptible.fetch_add(1);
  } else {
    stats_.leases_regular.fetch_add(1);
  }
  return lease;
}

bool PreemptibleExecutor::OnEviction(const std::string& task_key,
                                     bool within_grace) {
  stats_.evictions.fetch_add(1);
  if (within_grace) {
    stats_.grace_evictions.fetch_add(1);
  } else {
    stats_.hard_evictions.fetch_add(1);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      tasks_.emplace(task_key, TaskState{0, 0, options_.initial_priority});
  TaskState& task = it->second;
  ++task.evictions;
  const int threshold = options_.churn.escalate_after_evictions;
  if (threshold > 0 && task.evictions >= threshold &&
      task.priority == LeasePriority::kPreemptible) {
    task.priority = LeasePriority::kRegular;
    stats_.escalations.fetch_add(1);
    return true;
  }
  return false;
}

LeasePriority PreemptibleExecutor::TaskPriority(
    const std::string& task_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task_key);
  return it != tasks_.end() ? it->second.priority
                            : options_.initial_priority;
}

int PreemptibleExecutor::EvictionCount(const std::string& task_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task_key);
  return it != tasks_.end() ? it->second.evictions : 0;
}

}  // namespace sigmund::cluster
