#include "cluster/simulation.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::cluster {

namespace {

// State of one logical task while it makes (possibly repeated) attempts.
struct PendingTask {
  int64_t id = 0;
  double work_left = 0.0;  // work not yet durably checkpointed
  int attempts = 0;
  double ready_time = 0.0;  // earliest time the next attempt may start
};

// Earliest-free machine queue entry.
struct MachineSlot {
  double free_time = 0.0;
  int machine = 0;
  bool operator>(const MachineSlot& other) const {
    return free_time > other.free_time ||
           (free_time == other.free_time && machine > other.machine);
  }
};

// Work progress durably saved after `work_time` seconds of execution:
// the k-th checkpoint captures progress k*interval and becomes durable
// write_seconds later (checkpoints are asynchronous).
double LastDurableProgress(double work_time, double work_left,
                           double interval, double write_seconds) {
  if (interval <= 0.0) return 0.0;
  double k = std::floor((work_time - write_seconds) / interval);
  if (k < 0) return 0.0;
  return std::min(k * interval, work_left);
}

}  // namespace

std::string SimJobStats::ToString() const {
  return StrFormat(
      "makespan=%.1fs busy=%.1fs lost=%.1fs checkpoints=%.1fs "
      "preemptions=%lld cost=$%.4f",
      makespan_seconds, busy_vm_seconds, lost_work_seconds,
      checkpoint_seconds, static_cast<long long>(num_preemptions),
      cost_dollars);
}

SimJobStats SimJobRunner::Run(const std::vector<SimTask>& tasks,
                              const SimJobConfig& config) const {
  SIGCHECK_GT(num_machines_, 0);
  SimJobStats stats;
  Rng rng(config.seed);

  std::deque<PendingTask> pending;
  for (const SimTask& t : tasks) {
    SIGCHECK_GE(t.work_seconds, 0.0);
    pending.push_back(PendingTask{t.id, t.work_seconds, 0, 0.0});
  }

  std::priority_queue<MachineSlot, std::vector<MachineSlot>,
                      std::greater<MachineSlot>>
      machines;
  for (int m = 0; m < num_machines_; ++m) machines.push({0.0, m});

  const bool preemptible =
      config.vm.priority == VmPriority::kPreemptible &&
      config.preemption_rate_per_hour > 0.0;
  const double lambda = config.preemption_rate_per_hour / 3600.0;

  while (!pending.empty()) {
    PendingTask task = pending.front();
    pending.pop_front();
    MachineSlot slot = machines.top();
    machines.pop();

    const double start = std::max(slot.free_time, task.ready_time);
    const double overhead =
        task.attempts == 0 ? 0.0 : config.restart_overhead_seconds;
    const double full_duration = overhead + task.work_left;

    double preempt_at = std::numeric_limits<double>::infinity();
    if (preemptible) {
      // Exponential inter-preemption time (memoryless Borg-style evictions).
      double u = std::max(rng.UniformDouble(), 1e-300);
      preempt_at = -std::log(u) / lambda;
    }

    if (preempt_at >= full_duration) {
      // Attempt runs to completion.
      const double finish = start + full_duration;
      stats.busy_vm_seconds += full_duration;
      if (config.checkpoint_interval_seconds > 0.0) {
        stats.checkpoint_seconds +=
            std::floor(task.work_left / config.checkpoint_interval_seconds) *
            config.checkpoint_write_seconds;
      }
      stats.makespan_seconds = std::max(stats.makespan_seconds, finish);
      machines.push({finish, slot.machine});
    } else {
      // Preempted mid-attempt.
      ++stats.num_preemptions;
      stats.busy_vm_seconds += preempt_at;
      const double work_time = std::max(0.0, preempt_at - overhead);
      const double saved = LastDurableProgress(
          work_time, task.work_left, config.checkpoint_interval_seconds,
          config.checkpoint_write_seconds);
      stats.lost_work_seconds += work_time - saved;
      if (config.checkpoint_interval_seconds > 0.0) {
        stats.checkpoint_seconds +=
            std::floor(saved / config.checkpoint_interval_seconds) *
            config.checkpoint_write_seconds;
      }
      task.work_left -= saved;
      ++task.attempts;
      task.ready_time = start + preempt_at;
      pending.push_back(task);
      machines.push({start + preempt_at, slot.machine});
    }
  }

  stats.cost_dollars = cost_model_.Price(config.vm, stats.busy_vm_seconds);
  return stats;
}

double MakespanLowerBound(const std::vector<SimTask>& tasks, int machines) {
  SIGCHECK_GT(machines, 0);
  double longest = 0.0;
  double total = 0.0;
  for (const SimTask& t : tasks) {
    longest = std::max(longest, t.work_seconds);
    total += t.work_seconds;
  }
  return std::max(longest, total / machines);
}

}  // namespace sigmund::cluster
