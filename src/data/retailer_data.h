#ifndef SIGMUND_DATA_RETAILER_DATA_H_
#define SIGMUND_DATA_RETAILER_DATA_H_

#include <stdint.h>

#include <vector>

#include "data/catalog.h"
#include "data/types.h"

namespace sigmund::data {

// Everything Sigmund knows about one retailer: the catalog and the
// per-user interaction histories (time-ordered). Each retailer is a fully
// independent recommendation problem instance.
struct RetailerData {
  RetailerId id = 0;
  Catalog catalog;
  // histories[u] = user u's interactions, ascending by timestamp.
  std::vector<std::vector<Interaction>> histories;

  int num_users() const { return static_cast<int>(histories.size()); }
  int num_items() const { return catalog.num_items(); }
  int64_t TotalInteractions() const;

  // Interactions per item of the given action type (popularity counts).
  std::vector<int64_t> ItemActionCounts(ActionType action) const;
  // Counts across all action types.
  std::vector<int64_t> ItemPopularity() const;
};

// One hold-out evaluation example: the user's remaining (training) history
// is the context; `held_out` is the final item they interacted with.
struct HoldoutExample {
  UserIndex user = 0;
  ItemIndex held_out = kInvalidItem;
};

// Train/test split of one retailer's data.
struct TrainTestSplit {
  // Training histories; for held-out users the last interaction is removed.
  std::vector<std::vector<Interaction>> train;
  std::vector<HoldoutExample> holdout;
};

// Leave-last-out split (§III-C2): for every user with more than
// `min_interactions` interactions, hold out the final item in their
// sequence. Users at or below the threshold contribute all events to
// training and none to the hold-out set.
TrainTestSplit SplitLeaveLastOut(const RetailerData& data,
                                 int min_interactions = 2);

}  // namespace sigmund::data

#endif  // SIGMUND_DATA_RETAILER_DATA_H_
