#ifndef SIGMUND_DATA_TAXONOMY_H_
#define SIGMUND_DATA_TAXONOMY_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "data/types.h"

namespace sigmund::data {

// A product taxonomy: a rooted tree of categories (Fig. 3 of the paper).
// Category 0 is always the root. Items live in (typically leaf) categories;
// the least-common-ancestor distance between categories drives both the
// hierarchical additive feature model (§III-B4) and candidate selection
// (§III-D1).
//
// Not thread-safe during construction; immutable use is thread-safe.
class Taxonomy {
 public:
  // Creates a taxonomy containing only the root category ("root").
  Taxonomy();

  // Adds a category under `parent` and returns its id. `parent` must exist.
  CategoryId AddCategory(const std::string& name, CategoryId parent);

  int num_categories() const { return static_cast<int>(parents_.size()); }
  CategoryId root() const { return 0; }
  CategoryId parent(CategoryId c) const;
  const std::string& name(CategoryId c) const;
  int depth(CategoryId c) const;  // root has depth 0
  const std::vector<CategoryId>& children(CategoryId c) const;
  bool IsLeaf(CategoryId c) const;

  // Path from `c` to the root, inclusive of both (c first). The
  // hierarchical additive item model sums embeddings along this path.
  std::vector<CategoryId> PathToRoot(CategoryId c) const;

  // Least common ancestor of two categories.
  CategoryId Lca(CategoryId a, CategoryId b) const;

  // The paper's LCA distance, from the perspective of an item in category
  // `a`: 1 + (number of edges from `a` up to lca(a, b) minus 1)... concretely
  // depth(a) - depth(lca) + 1, so that two items in the same category are at
  // distance 1, siblings' items at distance 2, etc. (matches Fig. 3:
  // d(Nexus 5X, Nexus 6P) = 1, d(Nexus 5X, iPhone 6) = 2).
  int LcaDistance(CategoryId a, CategoryId b) const;

  // All categories whose items are within LCA distance <= k of category
  // `c` — i.e. the categories in the subtree of `c`'s (k-1)-th ancestor.
  std::vector<CategoryId> CategoriesWithinLca(CategoryId c, int k) const;

  // All leaf categories, in id order.
  std::vector<CategoryId> Leaves() const;

  // Generates a random taxonomy: a tree of the given depth where each
  // internal node has [min_fanout, max_fanout] children. Items should be
  // assigned to the returned taxonomy's leaves.
  static Taxonomy Random(int tree_depth, int min_fanout, int max_fanout,
                         Rng* rng);

 private:
  std::vector<CategoryId> parents_;   // parents_[0] == 0 (root loops)
  std::vector<int> depths_;
  std::vector<std::string> names_;
  std::vector<std::vector<CategoryId>> children_;
};

}  // namespace sigmund::data

#endif  // SIGMUND_DATA_TAXONOMY_H_
