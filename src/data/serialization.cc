#include "data/serialization.h"

#include "common/binary_io.h"
#include "common/logging.h"

namespace sigmund::data {

namespace {

constexpr uint32_t kMagic = 0x53444154U;  // "SDAT"
constexpr uint32_t kVersion = 1;

// Fixed-size wire forms. Fields are ordered (and explicitly padded) so
// the structs have no hidden padding bytes — memcpy'd serialization must
// be deterministic.
struct WireItem {
  double price = 0.0;
  CategoryId category = 0;
  BrandId brand = 0;
  int32_t facet = 0;
  int32_t pad = 0;
};
static_assert(sizeof(WireItem) == 24);

struct WireEvent {
  int64_t timestamp = 0;
  UserIndex user = 0;
  ItemIndex item = 0;
  int32_t action = 0;
  int32_t pad = 0;
};
static_assert(sizeof(WireEvent) == 24);

}  // namespace

std::string SerializeRetailerData(const RetailerData& data) {
  BinaryWriter writer;
  writer.Write(kMagic);
  writer.Write(kVersion);
  writer.Write<int32_t>(data.id);

  // Taxonomy: parent per category (root first), names.
  const Taxonomy& taxonomy = data.catalog.taxonomy();
  writer.Write<int32_t>(taxonomy.num_categories());
  for (CategoryId c = 0; c < taxonomy.num_categories(); ++c) {
    writer.Write<CategoryId>(taxonomy.parent(c));
    writer.WriteString(taxonomy.name(c));
  }

  // Catalog items.
  std::vector<WireItem> items;
  items.reserve(data.catalog.num_items());
  for (ItemIndex i = 0; i < data.catalog.num_items(); ++i) {
    const Item& item = data.catalog.item(i);
    items.push_back(WireItem{item.price, item.category, item.brand,
                             item.facet, 0});
  }
  writer.WriteVector(items);

  // Histories.
  writer.Write<int32_t>(data.num_users());
  for (const auto& history : data.histories) {
    std::vector<WireEvent> events;
    events.reserve(history.size());
    for (const Interaction& event : history) {
      events.push_back(WireEvent{event.timestamp, event.user, event.item,
                                 static_cast<int32_t>(event.action), 0});
    }
    writer.WriteVector(events);
  }
  return writer.Take();
}

StatusOr<RetailerData> DeserializeRetailerData(const std::string& bytes) {
  BinaryReader reader(bytes);
  uint32_t magic = 0, version = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return DataLossError("bad retailer-data magic");
  }
  if (!reader.Read(&version) || version != kVersion) {
    return DataLossError("unsupported retailer-data version");
  }
  RetailerData data;
  int32_t id = 0;
  if (!reader.Read(&id)) return DataLossError("truncated retailer id");
  data.id = id;

  // Taxonomy. Category 0 is the implicit root created by the default
  // constructor; remaining categories must arrive in tree (parent-first)
  // order, which SerializeRetailerData guarantees.
  int32_t num_categories = 0;
  if (!reader.Read(&num_categories) || num_categories < 1) {
    return DataLossError("truncated taxonomy header");
  }
  Taxonomy taxonomy;
  {
    CategoryId parent = 0;
    std::string name;
    if (!reader.Read(&parent) || !reader.ReadString(&name)) {
      return DataLossError("truncated root category");
    }
  }
  for (CategoryId c = 1; c < num_categories; ++c) {
    CategoryId parent = 0;
    std::string name;
    if (!reader.Read(&parent) || !reader.ReadString(&name)) {
      return DataLossError("truncated taxonomy entry");
    }
    if (parent < 0 || parent >= c) {
      return DataLossError("taxonomy parent out of order");
    }
    taxonomy.AddCategory(name, parent);
  }

  // Catalog.
  std::vector<WireItem> items;
  if (!reader.ReadVector(&items)) return DataLossError("truncated items");
  Catalog catalog(std::move(taxonomy));
  for (const WireItem& wire : items) {
    if (wire.category < 0 ||
        wire.category >= catalog.taxonomy().num_categories()) {
      return DataLossError("item category out of range");
    }
    catalog.AddItem(Item{wire.category, wire.brand, wire.price, wire.facet});
  }
  catalog.Finalize();
  data.catalog = std::move(catalog);

  // Histories.
  int32_t num_users = 0;
  if (!reader.Read(&num_users) || num_users < 0) {
    return DataLossError("truncated user count");
  }
  data.histories.resize(num_users);
  for (int32_t u = 0; u < num_users; ++u) {
    std::vector<WireEvent> events;
    if (!reader.ReadVector(&events)) {
      return DataLossError("truncated history");
    }
    auto& history = data.histories[u];
    history.reserve(events.size());
    for (const WireEvent& wire : events) {
      if (wire.item < 0 || wire.item >= data.catalog.num_items() ||
          wire.action < 0 || wire.action >= kNumActionTypes) {
        return DataLossError("interaction out of range");
      }
      history.push_back(Interaction{wire.user, wire.item,
                                    static_cast<ActionType>(wire.action),
                                    wire.timestamp});
    }
  }
  if (!reader.Done()) return DataLossError("trailing bytes in shard");
  return data;
}

int64_t EstimateSerializedSize(const RetailerData& data) {
  int64_t size = 16 + 4;  // header
  const Taxonomy& taxonomy = data.catalog.taxonomy();
  for (CategoryId c = 0; c < taxonomy.num_categories(); ++c) {
    size += sizeof(CategoryId) + 8 + taxonomy.name(c).size();
  }
  size += 8 + static_cast<int64_t>(data.catalog.num_items()) *
                  sizeof(WireItem);
  size += 4;
  for (const auto& history : data.histories) {
    size += 8 + static_cast<int64_t>(history.size()) * sizeof(WireEvent);
  }
  return size;
}

}  // namespace sigmund::data
