#ifndef SIGMUND_DATA_SERIALIZATION_H_
#define SIGMUND_DATA_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "data/retailer_data.h"

namespace sigmund::data {

// Binary (de)serialization of a retailer's full dataset — taxonomy,
// catalog and interaction histories. This is the on-SFS format of a
// training-data shard: the pipeline migrates these blobs to the cell
// where training runs (§IV-B1 of the paper), with the byte counts feeding
// the FileTransferLedger.
std::string SerializeRetailerData(const RetailerData& data);

// Parses a shard; kDataLoss on any truncation/corruption. The returned
// catalog is finalized.
StatusOr<RetailerData> DeserializeRetailerData(const std::string& bytes);

// Size estimate without serializing (bytes), for placement planning.
int64_t EstimateSerializedSize(const RetailerData& data);

}  // namespace sigmund::data

#endif  // SIGMUND_DATA_SERIALIZATION_H_
