#include "data/ctr_simulator.h"

#include <cmath>

namespace sigmund::data {

double CtrSimulator::ClickProbability(UserIndex u, ItemIndex item,
                                      int position) const {
  double affinity = truth_->Affinity(u, item);
  double base =
      1.0 / (1.0 + std::exp(-config_.click_scale *
                            (affinity - config_.click_bias)));
  return std::pow(config_.position_discount, position) * base;
}

int CtrSimulator::SimulateImpression(UserIndex u,
                                     const std::vector<ItemIndex>& ranked,
                                     Rng* rng) const {
  for (size_t p = 0; p < ranked.size(); ++p) {
    if (rng->Bernoulli(ClickProbability(u, ranked[p], static_cast<int>(p)))) {
      return static_cast<int>(p);
    }
  }
  return -1;
}

}  // namespace sigmund::data
