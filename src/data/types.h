#ifndef SIGMUND_DATA_TYPES_H_
#define SIGMUND_DATA_TYPES_H_

#include <stdint.h>

#include <string>

namespace sigmund::data {

// Dense identifiers. Sigmund keeps every retailer's data and model fully
// separate (the paper's privacy guarantee), so item/user indices are dense
// *within* a retailer; the pair (RetailerId, ItemIndex) is the global item
// id used by the pipeline ("Item IDs contain the retailer ID", §IV-C).
using RetailerId = int32_t;
using ItemIndex = int32_t;
using UserIndex = int32_t;
using CategoryId = int32_t;
using BrandId = int32_t;

inline constexpr ItemIndex kInvalidItem = -1;
inline constexpr CategoryId kInvalidCategory = -1;
inline constexpr BrandId kUnknownBrand = -1;

// Implicit-feedback interaction types, in increasing strength order
// (§III-A): view < search < cart < conversion.
enum class ActionType : uint8_t {
  kView = 0,
  kSearch = 1,
  kCart = 2,
  kConversion = 3,
};

inline constexpr int kNumActionTypes = 4;

// Numeric strength used for tier constraints (higher = stronger intent).
inline int ActionStrength(ActionType action) {
  return static_cast<int>(action);
}

const char* ActionTypeName(ActionType action);

// One user-item interaction event.
struct Interaction {
  UserIndex user = 0;
  ItemIndex item = kInvalidItem;
  ActionType action = ActionType::kView;
  int64_t timestamp = 0;  // seconds since epoch (simulated)
};

// Composite global item id, e.g. for serving-store keys.
struct GlobalItemId {
  RetailerId retailer = 0;
  ItemIndex item = kInvalidItem;

  friend bool operator==(const GlobalItemId& a, const GlobalItemId& b) {
    return a.retailer == b.retailer && a.item == b.item;
  }
  friend bool operator<(const GlobalItemId& a, const GlobalItemId& b) {
    if (a.retailer != b.retailer) return a.retailer < b.retailer;
    return a.item < b.item;
  }
};

std::string ToString(const GlobalItemId& id);

}  // namespace sigmund::data

#endif  // SIGMUND_DATA_TYPES_H_
