#include "data/types.h"

#include "common/string_util.h"

namespace sigmund::data {

const char* ActionTypeName(ActionType action) {
  switch (action) {
    case ActionType::kView:
      return "view";
    case ActionType::kSearch:
      return "search";
    case ActionType::kCart:
      return "cart";
    case ActionType::kConversion:
      return "conversion";
  }
  return "unknown";
}

std::string ToString(const GlobalItemId& id) {
  return StrFormat("r%d/i%d", id.retailer, id.item);
}

}  // namespace sigmund::data
