#ifndef SIGMUND_DATA_CATALOG_H_
#define SIGMUND_DATA_CATALOG_H_

#include <string>
#include <vector>

#include "data/taxonomy.h"
#include "data/types.h"

namespace sigmund::data {

// Metadata a retailer provides about one product (§II-A). Brand and price
// may be missing — the paper observes brand coverage below 10% for many
// small retailers, which makes feature selection per retailer necessary.
struct Item {
  CategoryId category = kInvalidCategory;
  BrandId brand = kUnknownBrand;  // kUnknownBrand = not provided
  double price = 0.0;             // <= 0 = not provided
  // Facet for late-funnel candidate filtering (e.g. color); -1 = none.
  int32_t facet = -1;
};

// Buckets a price into one of `num_buckets` log-scale buckets; prices
// spanning [1, 10^6) map to evenly spaced log bands. Returns -1 for
// missing prices.
int PriceBucket(double price, int num_buckets);

inline constexpr int kDefaultPriceBuckets = 16;

// One retailer's product catalog: items plus the shared taxonomy they are
// classified into.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(Taxonomy taxonomy) : taxonomy_(std::move(taxonomy)) {}

  // Adds an item; returns its dense index.
  ItemIndex AddItem(const Item& item);

  int num_items() const { return static_cast<int>(items_.size()); }
  const Item& item(ItemIndex i) const;
  const Taxonomy& taxonomy() const { return taxonomy_; }
  Taxonomy* mutable_taxonomy() { return &taxonomy_; }

  int num_brands() const { return num_brands_; }

  // Fraction of items with a known brand / price (feature coverage, used
  // by per-retailer feature selection, §III-C).
  double BrandCoverage() const;
  double PriceCoverage() const;

  // Items grouped by category (lazily built; call Finalize() after the
  // last AddItem).
  const std::vector<ItemIndex>& ItemsInCategory(CategoryId c) const;

  // Builds the category -> items index. Must be called after construction
  // and before ItemsInCategory().
  void Finalize();

  // LCA distance between two items (distance between their categories).
  int LcaDistance(ItemIndex a, ItemIndex b) const;

 private:
  Taxonomy taxonomy_;
  std::vector<Item> items_;
  std::vector<std::vector<ItemIndex>> items_by_category_;
  int num_brands_ = 0;
  bool finalized_ = false;
};

}  // namespace sigmund::data

#endif  // SIGMUND_DATA_CATALOG_H_
