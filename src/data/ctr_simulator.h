#ifndef SIGMUND_DATA_CTR_SIMULATOR_H_
#define SIGMUND_DATA_CTR_SIMULATOR_H_

#include <vector>

#include "common/random.h"
#include "data/world_generator.h"

namespace sigmund::data {

// Simulates user click behaviour on a displayed recommendation list, using
// the hidden ground-truth preferences. Stands in for the paper's online
// CTR experiments (Fig. 6): the paper measured real clicks; we measure
// clicks from the same latent preferences that generated the training
// data, which preserves the head-vs-tail comparison between recommenders.
//
// Cascade model: the user scans positions top-down; at position p they
// click with probability discount^p * sigmoid(scale * (affinity - bias)),
// and stop after the first click.
class CtrSimulator {
 public:
  struct Config {
    double position_discount = 0.8;
    double click_scale = 1.5;
    double click_bias = 1.0;  // affinity level at which click prob = 50%
  };

  CtrSimulator(const GroundTruthModel* truth, const Config& config)
      : truth_(truth), config_(config) {}

  // Probability user `u` clicks `item` displayed at `position` (0-based),
  // conditioned on having reached that position.
  double ClickProbability(UserIndex u, ItemIndex item, int position) const;

  // Simulates one impression of `ranked` to user `u`. Returns the clicked
  // position, or -1 for no click.
  int SimulateImpression(UserIndex u, const std::vector<ItemIndex>& ranked,
                         Rng* rng) const;

 private:
  const GroundTruthModel* truth_;
  Config config_;
};

}  // namespace sigmund::data

#endif  // SIGMUND_DATA_CTR_SIMULATOR_H_
