#include "data/world_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sigmund::data {

namespace {

double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  SIGCHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t k = 0; k < a.size(); ++k) sum += a[k] * static_cast<double>(b[k]);
  return sum;
}

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

std::vector<float> GaussianVec(int dim, double sigma, Rng* rng) {
  std::vector<float> v(dim);
  for (int k = 0; k < dim; ++k) {
    v[k] = static_cast<float>(rng->Gaussian(0.0, sigma));
  }
  return v;
}

std::vector<float> AddVec(const std::vector<float>& a,
                          const std::vector<float>& b) {
  std::vector<float> v(a.size());
  for (size_t k = 0; k < a.size(); ++k) v[k] = a[k] + b[k];
  return v;
}

// Knuth Poisson sampler; fine for the small lambdas used here.
int SamplePoisson(double lambda, Rng* rng) {
  if (lambda <= 0.0) return 0;
  double limit = std::exp(-lambda);
  double product = rng->UniformDouble();
  int count = 0;
  while (product > limit) {
    product *= rng->UniformDouble();
    ++count;
  }
  return count;
}

// Geometric with mean `mean` (support 1, 2, ...).
int SampleLength(double mean, Rng* rng) {
  if (mean <= 1.0) return 1;
  double p = 1.0 / mean;
  int len = 1;
  while (!rng->Bernoulli(p) && len < 64) ++len;
  return len;
}

// Softmax-samples an index from `logits` at the given temperature.
size_t SampleSoftmax(const std::vector<double>& logits, double temperature,
                     Rng* rng) {
  SIGCHECK(!logits.empty());
  double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> weights(logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    weights[i] = std::exp((logits[i] - max_logit) / temperature);
  }
  size_t index = rng->WeightedIndex(weights);
  return index < logits.size() ? index : logits.size() - 1;
}

}  // namespace

double GroundTruthModel::Affinity(UserIndex u, ItemIndex i) const {
  return Dot(user_vecs[u], item_vecs[i]);
}

double GroundTruthModel::AffinityFor(const std::vector<float>& user_vec,
                                     ItemIndex i) const {
  return Dot(user_vec, item_vecs[i]);
}

int WorldGenerator::SampleCatalogSize(Rng* rng) const {
  // Bounded Pareto: inverse-CDF sampling.
  const double alpha = config_.size_pareto_alpha;
  const double lo = config_.min_items;
  const double hi = config_.max_items;
  double u = rng->UniformDouble();
  double la = std::pow(lo, alpha);
  double ha = std::pow(hi, alpha);
  double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return static_cast<int>(std::clamp(x, lo, hi));
}

namespace {

// Mutable per-retailer generation state shared between the initial
// generation and AdvanceOneDay.
struct SessionContext {
  const WorldConfig* config;
  RetailerWorld* world;
  std::vector<CategoryId> leaves;
  std::vector<double> leaf_weights;  // popularity skew across leaves
  Rng* rng;
};

// Samples a leaf category for user `u`, softmax over true affinity to the
// category centroid plus the global leaf weight.
CategoryId SampleLeafForUser(const SessionContext& ctx, UserIndex u) {
  const GroundTruthModel& truth = ctx.world->truth;
  std::vector<double> logits(ctx.leaves.size());
  for (size_t l = 0; l < ctx.leaves.size(); ++l) {
    logits[l] = Dot(truth.user_vecs[u], truth.category_vecs[ctx.leaves[l]]) +
                std::log(ctx.leaf_weights[l]);
  }
  return ctx.leaves[SampleSoftmax(logits, ctx.config->choice_temperature,
                                  ctx.rng)];
}

// Samples an item within `cat` for user `u` (softmax of affinity + item
// popularity bias). Returns kInvalidItem when the category is empty.
ItemIndex SampleItemInCategory(const SessionContext& ctx, UserIndex u,
                               CategoryId cat) {
  const auto& items = ctx.world->data.catalog.ItemsInCategory(cat);
  if (items.empty()) return kInvalidItem;
  const GroundTruthModel& truth = ctx.world->truth;
  std::vector<double> logits(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    logits[i] = truth.Affinity(u, items[i]) + truth.item_bias[items[i]];
  }
  return items[SampleSoftmax(logits, ctx.config->choice_temperature, ctx.rng)];
}

CategoryId RandomSiblingLeaf(const SessionContext& ctx, CategoryId cat) {
  const Taxonomy& taxonomy = ctx.world->data.catalog.taxonomy();
  CategoryId parent = taxonomy.parent(cat);
  const auto& siblings = taxonomy.children(parent);
  if (siblings.size() <= 1) return cat;
  for (int tries = 0; tries < 8; ++tries) {
    CategoryId pick = siblings[ctx.rng->Uniform(siblings.size())];
    if (pick != cat && taxonomy.IsLeaf(pick)) return pick;
  }
  return cat;
}

// Generates one browsing session for user `u` starting at `start_time`
// (seconds). Appends interactions to the user's history (not yet sorted).
// Returns the list of (item, time) conversions in re-purchasable
// categories, for repeat-purchase synthesis.
std::vector<std::pair<ItemIndex, int64_t>> GenerateSession(
    const SessionContext& ctx, UserIndex u, int64_t start_time) {
  const WorldConfig& config = *ctx.config;
  RetailerWorld& world = *ctx.world;
  const GroundTruthModel& truth = world.truth;
  std::vector<std::pair<ItemIndex, int64_t>> repurchases;

  CategoryId cat = SampleLeafForUser(ctx, u);
  int length = SampleLength(config.mean_session_length, ctx.rng);
  int64_t t = start_time;
  auto& history = world.data.histories[u];

  // Set when the user follows an exact bundle link to a specific item.
  ItemIndex forced_item = kInvalidItem;
  for (int step = 0; step < length; ++step) {
    ItemIndex item = forced_item != kInvalidItem
                         ? forced_item
                         : SampleItemInCategory(ctx, u, cat);
    forced_item = kInvalidItem;
    if (item == kInvalidItem) break;
    cat = world.data.catalog.item(item).category;
    history.push_back(Interaction{u, item, ActionType::kView, t});
    t += 30;

    // Funnel escalation, modulated by true affinity so stronger actions
    // carry stronger preference signal (what the tier constraints learn).
    const double boost = 2.0 * Sigmoid(truth.Affinity(u, item));
    bool converted = false;
    if (ctx.rng->Bernoulli(std::min(1.0, config.p_search_given_view * boost))) {
      history.push_back(Interaction{u, item, ActionType::kSearch, t});
      t += 30;
      if (ctx.rng->Bernoulli(
              std::min(1.0, config.p_cart_given_search * boost))) {
        history.push_back(Interaction{u, item, ActionType::kCart, t});
        t += 30;
        if (ctx.rng->Bernoulli(
                std::min(1.0, config.p_conversion_given_cart * boost))) {
          history.push_back(Interaction{u, item, ActionType::kConversion, t});
          t += 30;
          converted = true;
          CategoryId item_cat = world.data.catalog.item(item).category;
          if (truth.repurchasable[item_cat]) {
            repurchases.emplace_back(item, t);
          }
        }
      }
    }

    // Bundle link: browse straight to an exact partner item.
    if (!truth.bundle_partners.empty() &&
        !truth.bundle_partners[item].empty() &&
        ctx.rng->Bernoulli(config.p_bundle_follow)) {
      const auto& partners = truth.bundle_partners[item];
      forced_item = partners[ctx.rng->Uniform(partners.size())];
      continue;
    }

    // Next category.
    if (converted) {
      CategoryId item_cat = world.data.catalog.item(item).category;
      CategoryId complement = truth.complement_of[item_cat];
      if (complement != kInvalidCategory &&
          ctx.rng->Bernoulli(config.p_complement_after_conversion)) {
        cat = complement;
        continue;
      }
    }
    double r = ctx.rng->UniformDouble();
    if (r < config.p_stay_in_category) {
      // stay
    } else if (r < config.p_stay_in_category + config.p_jump_to_sibling) {
      cat = RandomSiblingLeaf(ctx, cat);
    } else {
      cat = ctx.leaves[ctx.rng->Uniform(ctx.leaves.size())];
    }
  }
  return repurchases;
}

// Appends repeat purchases for re-purchasable conversions.
void SynthesizeRepurchases(
    const SessionContext& ctx,
    const std::vector<std::pair<ItemIndex, int64_t>>& conversions,
    UserIndex u, int64_t horizon_seconds) {
  const GroundTruthModel& truth = ctx.world->truth;
  for (const auto& [item, time] : conversions) {
    CategoryId cat = ctx.world->data.catalog.item(item).category;
    double period_days = truth.repurchase_period_days[cat];
    int64_t t = time;
    for (;;) {
      double jitter = 1.0 + 0.3 * ctx.rng->Gaussian();
      t += static_cast<int64_t>(
          std::max(1.0, period_days * jitter) * 86400.0);
      if (t >= horizon_seconds) break;
      ctx.world->data.histories[u].push_back(
          Interaction{u, item, ActionType::kConversion, t});
    }
  }
}

// Adds `count` items to the catalog, drawing each item's leaf by the
// Zipf-ish leaf weights and its latent vector around the category centroid.
void AddItems(SessionContext* ctx, int count, double brand_coverage,
              const std::vector<std::vector<float>>& brand_vecs) {
  const WorldConfig& config = *ctx->config;
  RetailerWorld& world = *ctx->world;
  GroundTruthModel& truth = world.truth;
  for (int n = 0; n < count; ++n) {
    size_t leaf_index = ctx->rng->WeightedIndex(ctx->leaf_weights);
    if (leaf_index >= ctx->leaves.size()) leaf_index = 0;
    CategoryId cat = ctx->leaves[leaf_index];
    Item item;
    item.category = cat;
    if (ctx->rng->Bernoulli(brand_coverage)) {
      item.brand = static_cast<BrandId>(ctx->rng->Uniform(config.num_brands));
    }
    if (ctx->rng->Bernoulli(config.price_coverage)) {
      // Log-normal price around a category-dependent level.
      double level = 1.0 + 2.5 * (static_cast<double>(cat) /
                                  world.data.catalog.taxonomy().num_categories());
      item.price = std::pow(10.0, level + 0.4 * ctx->rng->Gaussian());
    }
    item.facet = static_cast<int32_t>(ctx->rng->Uniform(6));
    world.data.catalog.AddItem(item);

    std::vector<float> vec =
        AddVec(truth.category_vecs[cat],
               GaussianVec(config.true_dim, config.item_sigma, ctx->rng));
    if (item.brand != kUnknownBrand) {
      vec = AddVec(vec, brand_vecs[item.brand]);
    }
    truth.item_vecs.push_back(std::move(vec));
    truth.item_bias.push_back(
        static_cast<float>(ctx->rng->Gaussian(0.0, config.popularity_sigma)));
  }
  if (config.bundles_per_item > 0) {
    // Keep the table aligned; items added after the initial wiring (daily
    // churn) start with no bundle links.
    truth.bundle_partners.resize(truth.item_vecs.size());
  }
}

}  // namespace

RetailerWorld WorldGenerator::GenerateRetailer(RetailerId id,
                                               int num_items_override) const {
  Rng rng(SplitMix64(config_.seed * 0x9e3779b9ULL + 0xabcd) ^
          SplitMix64(static_cast<uint64_t>(id) + 1));
  RetailerWorld world;
  world.data.id = id;
  world.truth.dim = config_.true_dim;

  // --- Taxonomy and category latent structure.
  Taxonomy taxonomy = Taxonomy::Random(config_.taxonomy_depth,
                                       config_.min_fanout, config_.max_fanout,
                                       &rng);
  GroundTruthModel& truth = world.truth;
  truth.category_vecs.resize(taxonomy.num_categories());
  truth.category_vecs[0].assign(config_.true_dim, 0.0f);
  for (CategoryId c = 1; c < taxonomy.num_categories(); ++c) {
    // Tree order guarantees the parent's vector exists (parents have
    // smaller ids in Taxonomy::Random's BFS construction).
    truth.category_vecs[c] =
        AddVec(truth.category_vecs[taxonomy.parent(c)],
               GaussianVec(config_.true_dim, config_.category_sigma, &rng));
  }

  std::vector<CategoryId> leaves = taxonomy.Leaves();
  SIGCHECK(!leaves.empty());

  // Complements & re-purchasability per category.
  truth.complement_of.assign(taxonomy.num_categories(), kInvalidCategory);
  truth.repurchasable.assign(taxonomy.num_categories(), false);
  truth.repurchase_period_days.assign(taxonomy.num_categories(), 0.0);
  for (CategoryId leaf : leaves) {
    if (leaves.size() > 1 && rng.Bernoulli(0.7)) {
      for (int tries = 0; tries < 8; ++tries) {
        CategoryId other = leaves[rng.Uniform(leaves.size())];
        if (other != leaf) {
          truth.complement_of[leaf] = other;
          break;
        }
      }
    }
    if (rng.Bernoulli(config_.repurchasable_fraction)) {
      truth.repurchasable[leaf] = true;
      truth.repurchase_period_days[leaf] = std::max(
          2.0, config_.repurchase_period_days_mean * (0.5 + rng.UniformDouble()));
    }
  }

  world.data.catalog = Catalog(std::move(taxonomy));
  world.data.catalog.Finalize();

  // Zipf-ish weights over (shuffled) leaves: some categories dominate.
  std::vector<size_t> order(leaves.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<double> leaf_weights(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    leaf_weights[order[i]] = 1.0 / (i + 1.0);
  }

  SessionContext ctx{&config_, &world, leaves, leaf_weights, &rng};

  // --- Items.
  std::vector<std::vector<float>> brand_vecs(config_.num_brands);
  for (auto& v : brand_vecs) v = GaussianVec(config_.true_dim, config_.brand_sigma, &rng);
  const double brand_coverage =
      rng.UniformDouble(config_.brand_coverage_lo, config_.brand_coverage_hi);
  const int num_items = num_items_override > 0 ? num_items_override
                                               : SampleCatalogSize(&rng);
  AddItems(&ctx, num_items, brand_coverage, brand_vecs);

  // Wire exact browse-together bundle links (symmetric).
  if (config_.bundles_per_item > 0 && num_items > 1) {
    for (ItemIndex i = 0; i < num_items; ++i) {
      for (int b = 0; b < config_.bundles_per_item; ++b) {
        ItemIndex j = static_cast<ItemIndex>(rng.Uniform(num_items));
        if (j == i) continue;
        truth.bundle_partners[i].push_back(j);
        truth.bundle_partners[j].push_back(i);
      }
    }
  }

  // --- Users.
  int num_users = std::max(
      config_.min_users,
      static_cast<int>(config_.users_per_item *
                       std::pow(num_items, config_.users_item_exponent)));
  truth.user_vecs.resize(num_users);
  for (UserIndex u = 0; u < num_users; ++u) {
    // A user's taste centers on 1-2 leaf categories.
    size_t l1 = rng.WeightedIndex(leaf_weights);
    if (l1 >= leaves.size()) l1 = 0;
    std::vector<float> base = truth.category_vecs[leaves[l1]];
    if (rng.Bernoulli(0.5)) {
      size_t l2 = rng.WeightedIndex(leaf_weights);
      if (l2 >= leaves.size()) l2 = 0;
      const auto& second = truth.category_vecs[leaves[l2]];
      for (size_t k = 0; k < base.size(); ++k) {
        base[k] = 0.6f * base[k] + 0.4f * second[k];
      }
    }
    truth.user_vecs[u] =
        AddVec(base, GaussianVec(config_.true_dim, config_.user_sigma, &rng));
  }
  world.data.histories.resize(num_users);

  // --- Sessions.
  const int64_t horizon = static_cast<int64_t>(config_.days) * 86400;
  for (UserIndex u = 0; u < num_users; ++u) {
    int sessions = std::max(
        1, 1 + SamplePoisson(config_.mean_sessions_per_user - 1.0, &rng));
    std::vector<std::pair<ItemIndex, int64_t>> repurchases;
    for (int s = 0; s < sessions; ++s) {
      int64_t start = rng.UniformInt(0, horizon - 3600);
      auto conv = GenerateSession(ctx, u, start);
      repurchases.insert(repurchases.end(), conv.begin(), conv.end());
    }
    SynthesizeRepurchases(ctx, repurchases, u, horizon);
    std::sort(world.data.histories[u].begin(), world.data.histories[u].end(),
              [](const Interaction& a, const Interaction& b) {
                return a.timestamp < b.timestamp;
              });
  }

  return world;
}

std::vector<RetailerWorld> WorldGenerator::GenerateWorld() const {
  std::vector<RetailerWorld> worlds;
  worlds.reserve(config_.num_retailers);
  for (RetailerId id = 0; id < config_.num_retailers; ++id) {
    worlds.push_back(GenerateRetailer(id));
  }
  return worlds;
}

void AdvanceOneDay(const WorldGenerator& generator, RetailerWorld* world,
                   int new_items, uint64_t seed) {
  const WorldConfig& config = generator.config();
  Rng rng(SplitMix64(seed) ^ SplitMix64(world->data.id + 0x5151));

  // Rebuild the generation context for the existing world.
  std::vector<CategoryId> leaves = world->data.catalog.taxonomy().Leaves();
  std::vector<double> leaf_weights(leaves.size(), 1.0);
  // Recover the observed leaf popularity as the weight.
  std::vector<int64_t> popularity = world->data.ItemPopularity();
  for (size_t l = 0; l < leaves.size(); ++l) {
    int64_t count = 0;
    for (ItemIndex i : world->data.catalog.ItemsInCategory(leaves[l])) {
      count += popularity[i];
    }
    leaf_weights[l] = 1.0 + static_cast<double>(count);
  }
  SessionContext ctx{&config, world, leaves, leaf_weights, &rng};

  // New (cold) items appear in the catalog.
  std::vector<std::vector<float>> brand_vecs(config.num_brands);
  for (auto& v : brand_vecs) v = GaussianVec(config.true_dim, config.brand_sigma, &rng);
  AddItems(&ctx, new_items, 0.5, brand_vecs);

  // One more day of sessions for a subset of users.
  int64_t max_time = 0;
  for (const auto& history : world->data.histories) {
    for (const Interaction& event : history) {
      max_time = std::max(max_time, event.timestamp);
    }
  }
  const int64_t day_start = (max_time / 86400 + 1) * 86400;
  const double session_prob =
      std::min(1.0, config.mean_sessions_per_user / config.days);
  for (UserIndex u = 0; u < world->data.num_users(); ++u) {
    if (!rng.Bernoulli(session_prob)) continue;
    int64_t start = day_start + rng.UniformInt(0, 86400 - 3600);
    GenerateSession(ctx, u, start);
    std::sort(world->data.histories[u].begin(),
              world->data.histories[u].end(),
              [](const Interaction& a, const Interaction& b) {
                return a.timestamp < b.timestamp;
              });
  }
}

}  // namespace sigmund::data
