#include "data/catalog.h"

#include <cmath>

#include "common/logging.h"

namespace sigmund::data {

int PriceBucket(double price, int num_buckets) {
  if (price <= 0.0) return -1;
  // log10 range [0, 6) mapped onto num_buckets bands.
  double log_price = std::log10(std::max(price, 1.0));
  int bucket = static_cast<int>(log_price / 6.0 * num_buckets);
  return std::min(bucket, num_buckets - 1);
}

ItemIndex Catalog::AddItem(const Item& item) {
  SIGCHECK_GE(item.category, 0);
  SIGCHECK_LT(item.category, taxonomy_.num_categories());
  ItemIndex index = static_cast<ItemIndex>(items_.size());
  items_.push_back(item);
  if (item.brand >= num_brands_) num_brands_ = item.brand + 1;
  // Items may arrive after Finalize() (daily catalog churn); keep the
  // category index consistent.
  if (finalized_) items_by_category_[item.category].push_back(index);
  return index;
}

const Item& Catalog::item(ItemIndex i) const {
  SIGCHECK_GE(i, 0);
  SIGCHECK_LT(i, num_items());
  return items_[i];
}

double Catalog::BrandCoverage() const {
  if (items_.empty()) return 0.0;
  int covered = 0;
  for (const Item& item : items_) {
    if (item.brand != kUnknownBrand) ++covered;
  }
  return static_cast<double>(covered) / items_.size();
}

double Catalog::PriceCoverage() const {
  if (items_.empty()) return 0.0;
  int covered = 0;
  for (const Item& item : items_) {
    if (item.price > 0.0) ++covered;
  }
  return static_cast<double>(covered) / items_.size();
}

const std::vector<ItemIndex>& Catalog::ItemsInCategory(CategoryId c) const {
  SIGCHECK(finalized_);
  SIGCHECK_GE(c, 0);
  SIGCHECK_LT(c, taxonomy_.num_categories());
  return items_by_category_[c];
}

void Catalog::Finalize() {
  items_by_category_.assign(taxonomy_.num_categories(), {});
  for (ItemIndex i = 0; i < num_items(); ++i) {
    items_by_category_[items_[i].category].push_back(i);
  }
  finalized_ = true;
}

int Catalog::LcaDistance(ItemIndex a, ItemIndex b) const {
  return taxonomy_.LcaDistance(item(a).category, item(b).category);
}

}  // namespace sigmund::data
