#ifndef SIGMUND_DATA_WORLD_GENERATOR_H_
#define SIGMUND_DATA_WORLD_GENERATOR_H_

#include <stdint.h>

#include <vector>

#include "common/random.h"
#include "data/retailer_data.h"

namespace sigmund::data {

// Hidden preference model that generates a retailer's interaction data and
// later scores recommendation quality (simulated CTR). This replaces the
// paper's proprietary shopping logs; see DESIGN.md §1 for the substitution
// rationale.
struct GroundTruthModel {
  int dim = 8;
  // One latent vector per taxonomy category / item / user.
  std::vector<std::vector<float>> category_vecs;
  std::vector<std::vector<float>> item_vecs;
  std::vector<std::vector<float>> user_vecs;
  // Heavy-tailed per-item popularity bias added to choice logits; this is
  // what creates the head/tail structure of Fig. 6.
  std::vector<float> item_bias;
  // Item-specific association links ("bundles"): exact items users browse
  // together regardless of latent taste. This non-low-rank structure is
  // what real co-occurrence models excel at memorizing. Empty when
  // WorldConfig::bundles_per_item == 0.
  std::vector<std::vector<ItemIndex>> bundle_partners;
  // Per-leaf-category complement category (accessory relationship), e.g.
  // phones -> phone cases. kInvalidCategory when none.
  std::vector<CategoryId> complement_of;
  // Per-category re-purchasability flag and mean days between repurchases.
  std::vector<bool> repurchasable;
  std::vector<double> repurchase_period_days;

  // True (latent) affinity of user u for item i.
  double Affinity(UserIndex u, ItemIndex i) const;
  // Affinity of an arbitrary latent vector for item i.
  double AffinityFor(const std::vector<float>& user_vec, ItemIndex i) const;
};

// Knobs for the synthetic world. Defaults produce small retailers suitable
// for unit tests; benches scale them up.
struct WorldConfig {
  int num_retailers = 4;

  // Retailer catalog sizes follow a bounded Pareto distribution
  // ("hundreds of items ... to tens of millions", §I — scaled down).
  int min_items = 40;
  int max_items = 2000;
  double size_pareto_alpha = 1.1;

  // #users scales sublinearly with #items.
  double users_per_item = 2.0;
  double users_item_exponent = 0.85;
  int min_users = 30;

  // Taxonomy shape.
  int taxonomy_depth = 3;
  int min_fanout = 2;
  int max_fanout = 4;

  // Latent model.
  int true_dim = 8;
  double category_sigma = 0.55;  // per-level drift of category vectors
  double item_sigma = 0.30;      // item scatter around its category
  double user_sigma = 0.40;
  double popularity_sigma = 1.1;  // lognormal item-bias spread

  // Session / funnel behaviour.
  double mean_sessions_per_user = 3.0;
  double mean_session_length = 4.0;
  double p_search_given_view = 0.30;
  double p_cart_given_search = 0.35;
  double p_conversion_given_cart = 0.5;
  double p_stay_in_category = 0.55;
  double p_jump_to_sibling = 0.30;  // else jump to random leaf
  double p_complement_after_conversion = 0.6;
  double choice_temperature = 1.0;

  // Item-level bundle links (0 disables): each item gets this many exact
  // browse-together partners; after viewing an item, the user follows a
  // bundle link with probability p_bundle_follow.
  int bundles_per_item = 0;
  double p_bundle_follow = 0.35;

  // Metadata coverage: per-retailer brand coverage is drawn uniformly from
  // [brand_coverage_lo, brand_coverage_hi]; many small retailers end up
  // below 10% (§III-C).
  int num_brands = 24;
  // How strongly a brand shifts its items' latent vectors (brand-aware
  // shoppers, §III-B4).
  double brand_sigma = 0.25;
  double brand_coverage_lo = 0.05;
  double brand_coverage_hi = 0.95;
  double price_coverage = 0.9;

  // Re-purchasable categories (diapers, water, ...).
  double repurchasable_fraction = 0.12;
  double repurchase_period_days_mean = 14.0;

  int days = 28;  // history horizon

  uint64_t seed = 1;
};

// One generated retailer: observable data + the hidden truth that
// generated it (used only for evaluation, never for training).
struct RetailerWorld {
  RetailerData data;
  GroundTruthModel truth;
};

// Generates multi-retailer synthetic worlds. Deterministic given
// (config.seed, retailer id).
class WorldGenerator {
 public:
  explicit WorldGenerator(const WorldConfig& config) : config_(config) {}

  // Generates one retailer. `num_items_override` > 0 fixes the catalog
  // size (otherwise it is drawn from the Pareto size distribution).
  RetailerWorld GenerateRetailer(RetailerId id,
                                 int num_items_override = -1) const;

  // Generates config.num_retailers retailers with Pareto-distributed sizes.
  std::vector<RetailerWorld> GenerateWorld() const;

  // Draws a catalog size from the bounded Pareto distribution.
  int SampleCatalogSize(Rng* rng) const;

  const WorldConfig& config() const { return config_; }

 private:
  WorldConfig config_;
};

// Extends an existing retailer with one more day of interactions and
// `new_items` fresh (cold) items, simulating the daily data arrival that
// drives incremental training (§III-C3). New events are appended to
// `world->data.histories`; new items get truth vectors drawn around their
// category.
void AdvanceOneDay(const WorldGenerator& generator, RetailerWorld* world,
                   int new_items, uint64_t seed);

}  // namespace sigmund::data

#endif  // SIGMUND_DATA_WORLD_GENERATOR_H_
