#include "data/taxonomy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::data {

Taxonomy::Taxonomy() {
  parents_.push_back(0);
  depths_.push_back(0);
  names_.push_back("root");
  children_.emplace_back();
}

CategoryId Taxonomy::AddCategory(const std::string& name, CategoryId parent) {
  SIGCHECK_GE(parent, 0);
  SIGCHECK_LT(parent, num_categories());
  CategoryId id = static_cast<CategoryId>(parents_.size());
  parents_.push_back(parent);
  depths_.push_back(depths_[parent] + 1);
  names_.push_back(name);
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

CategoryId Taxonomy::parent(CategoryId c) const {
  SIGCHECK_GE(c, 0);
  SIGCHECK_LT(c, num_categories());
  return parents_[c];
}

const std::string& Taxonomy::name(CategoryId c) const {
  SIGCHECK_GE(c, 0);
  SIGCHECK_LT(c, num_categories());
  return names_[c];
}

int Taxonomy::depth(CategoryId c) const {
  SIGCHECK_GE(c, 0);
  SIGCHECK_LT(c, num_categories());
  return depths_[c];
}

const std::vector<CategoryId>& Taxonomy::children(CategoryId c) const {
  SIGCHECK_GE(c, 0);
  SIGCHECK_LT(c, num_categories());
  return children_[c];
}

bool Taxonomy::IsLeaf(CategoryId c) const { return children(c).empty(); }

std::vector<CategoryId> Taxonomy::PathToRoot(CategoryId c) const {
  SIGCHECK_GE(c, 0);
  SIGCHECK_LT(c, num_categories());
  std::vector<CategoryId> path;
  path.push_back(c);
  while (c != 0) {
    c = parents_[c];
    path.push_back(c);
  }
  return path;
}

CategoryId Taxonomy::Lca(CategoryId a, CategoryId b) const {
  SIGCHECK_GE(a, 0);
  SIGCHECK_LT(a, num_categories());
  SIGCHECK_GE(b, 0);
  SIGCHECK_LT(b, num_categories());
  while (depths_[a] > depths_[b]) a = parents_[a];
  while (depths_[b] > depths_[a]) b = parents_[b];
  while (a != b) {
    a = parents_[a];
    b = parents_[b];
  }
  return a;
}

int Taxonomy::LcaDistance(CategoryId a, CategoryId b) const {
  CategoryId lca = Lca(a, b);
  return depths_[a] - depths_[lca] + 1;
}

std::vector<CategoryId> Taxonomy::CategoriesWithinLca(CategoryId c,
                                                      int k) const {
  SIGCHECK_GE(k, 1);
  // Climb k-1 levels (clamped at the root), then collect that subtree.
  CategoryId top = c;
  for (int i = 1; i < k && top != 0; ++i) top = parents_[top];
  std::vector<CategoryId> result;
  std::vector<CategoryId> stack = {top};
  while (!stack.empty()) {
    CategoryId cur = stack.back();
    stack.pop_back();
    result.push_back(cur);
    for (CategoryId child : children_[cur]) stack.push_back(child);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<CategoryId> Taxonomy::Leaves() const {
  std::vector<CategoryId> leaves;
  for (CategoryId c = 0; c < num_categories(); ++c) {
    if (children_[c].empty()) leaves.push_back(c);
  }
  return leaves;
}

Taxonomy Taxonomy::Random(int tree_depth, int min_fanout, int max_fanout,
                          Rng* rng) {
  SIGCHECK_GE(tree_depth, 1);
  SIGCHECK_GE(min_fanout, 1);
  SIGCHECK_GE(max_fanout, min_fanout);
  Taxonomy taxonomy;
  std::vector<CategoryId> frontier = {taxonomy.root()};
  for (int level = 0; level < tree_depth; ++level) {
    std::vector<CategoryId> next;
    for (CategoryId parent : frontier) {
      int fanout = static_cast<int>(
          rng->UniformInt(min_fanout, max_fanout));
      for (int i = 0; i < fanout; ++i) {
        next.push_back(taxonomy.AddCategory(
            StrFormat("c%d_%d_%d", level + 1, parent, i), parent));
      }
    }
    frontier = std::move(next);
  }
  return taxonomy;
}

}  // namespace sigmund::data
