#include "data/retailer_data.h"

#include "common/logging.h"

namespace sigmund::data {

int64_t RetailerData::TotalInteractions() const {
  int64_t total = 0;
  for (const auto& history : histories) {
    total += static_cast<int64_t>(history.size());
  }
  return total;
}

std::vector<int64_t> RetailerData::ItemActionCounts(ActionType action) const {
  std::vector<int64_t> counts(num_items(), 0);
  for (const auto& history : histories) {
    for (const Interaction& event : history) {
      if (event.action == action) ++counts[event.item];
    }
  }
  return counts;
}

std::vector<int64_t> RetailerData::ItemPopularity() const {
  std::vector<int64_t> counts(num_items(), 0);
  for (const auto& history : histories) {
    for (const Interaction& event : history) ++counts[event.item];
  }
  return counts;
}

TrainTestSplit SplitLeaveLastOut(const RetailerData& data,
                                 int min_interactions) {
  TrainTestSplit split;
  split.train.resize(data.histories.size());
  for (UserIndex u = 0; u < data.num_users(); ++u) {
    const auto& history = data.histories[u];
    if (static_cast<int>(history.size()) > min_interactions) {
      split.train[u].assign(history.begin(), history.end() - 1);
      split.holdout.push_back(HoldoutExample{u, history.back().item});
    } else {
      split.train[u] = history;
    }
  }
  return split;
}

}  // namespace sigmund::data
