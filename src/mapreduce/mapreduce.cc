#include "mapreduce/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace sigmund::mapreduce {

namespace {

class IdentityReducerImpl : public Reducer {
 public:
  Status Reduce(const std::string& key, const std::vector<std::string>& values,
                const Emitter& emit) override {
    for (const std::string& v : values) emit(Record{key, v});
    return OkStatus();
  }
};

}  // namespace

std::unique_ptr<Reducer> IdentityReducer() {
  return std::make_unique<IdentityReducerImpl>();
}

void MapReduceJob::MirrorStatsToRegistry() {
  if (spec_.metrics == nullptr) return;
  const obs::Labels map_labels = {{"job", spec_.label}, {"phase", "map"}};
  const obs::Labels reduce_labels = {{"job", spec_.label},
                                     {"phase", "reduce"}};
  spec_.metrics->GetCounter("mapreduce_task_attempts_total", map_labels)
      ->Add(stats_.map_attempts);
  spec_.metrics->GetCounter("mapreduce_task_failures_total", map_labels)
      ->Add(stats_.map_failures);
  spec_.metrics->GetCounter("mapreduce_backup_attempts_total", map_labels)
      ->Add(stats_.map_backup_attempts);
  spec_.metrics->GetCounter("mapreduce_backups_won_total", map_labels)
      ->Add(stats_.map_backups_won);
  spec_.metrics->GetCounter("mapreduce_attempts_cancelled_total", map_labels)
      ->Add(stats_.map_attempts_cancelled);
  spec_.metrics->GetCounter("mapreduce_task_attempts_total", reduce_labels)
      ->Add(stats_.reduce_attempts);
  spec_.metrics->GetCounter("mapreduce_task_failures_total", reduce_labels)
      ->Add(stats_.reduce_failures);
  spec_.metrics->GetCounter("mapreduce_records_total", {{"job", spec_.label},
                                                        {"kind", "input"}})
      ->Add(stats_.input_records);
  spec_.metrics->GetCounter("mapreduce_records_total", {{"job", spec_.label},
                                                        {"kind", "output"}})
      ->Add(stats_.output_records);
}

std::vector<std::pair<int64_t, int64_t>> ComputeSplits(int64_t n, int pieces) {
  std::vector<std::pair<int64_t, int64_t>> splits;
  if (n <= 0 || pieces <= 0) return splits;
  const int64_t p = std::min<int64_t>(pieces, n);
  const int64_t base = n / p;
  const int64_t extra = n % p;
  int64_t begin = 0;
  for (int64_t i = 0; i < p; ++i) {
    int64_t len = base + (i < extra ? 1 : 0);
    splits.emplace_back(begin, begin + len);
    begin += len;
  }
  return splits;
}

MapReduceJob::MapReduceJob(const MapReduceSpec& spec,
                           MapperFactory mapper_factory,
                           ReducerFactory reducer_factory)
    : spec_(spec),
      mapper_factory_(std::move(mapper_factory)),
      reducer_factory_(std::move(reducer_factory)) {}

StatusOr<std::vector<Record>> MapReduceJob::Run(
    const std::vector<Record>& input) {
  if (spec_.num_map_tasks <= 0) {
    return InvalidArgumentError("num_map_tasks must be positive");
  }
  if (spec_.max_parallel_tasks <= 0) {
    return InvalidArgumentError("max_parallel_tasks must be positive");
  }
  stats_ = MapReduceStats{};
  stats_.input_records = static_cast<int64_t>(input.size());

  // Observability hooks (no-ops when unset). Task latency is sampled on
  // the worker threads; phase spans open/close on the calling thread.
  obs::Histogram* map_task_micros = nullptr;
  obs::Histogram* reduce_task_micros = nullptr;
  const Clock* clock = nullptr;
  if (spec_.metrics != nullptr) {
    const obs::Labels map_labels = {{"job", spec_.label}, {"phase", "map"}};
    const obs::Labels reduce_labels = {{"job", spec_.label},
                                       {"phase", "reduce"}};
    map_task_micros =
        spec_.metrics->GetHistogram("mapreduce_task_micros", map_labels);
    reduce_task_micros =
        spec_.metrics->GetHistogram("mapreduce_task_micros", reduce_labels);
    clock = spec_.clock != nullptr ? spec_.clock : RealClock::Get();
  }
  const std::string span_prefix =
      "mapreduce" + (spec_.label.empty() ? "" : "/" + spec_.label);

  // Mirror the final task counters into the registry exactly once per
  // Run, on every exit path (including errors).
  struct MirrorOnExit {
    MapReduceJob* job;
    ~MirrorOnExit() { job->MirrorStatsToRegistry(); }
  } mirror_on_exit{this};

  const auto splits =
      ComputeSplits(static_cast<int64_t>(input.size()), spec_.num_map_tasks);

  // --- Map phase. Each task attempt runs the whole split; on injected
  // failure its buffered output is discarded and the task retries. With
  // speculative_backups on, straggling tasks additionally get one backup
  // attempt chain once most of the phase has committed; the first chain
  // to commit wins and the loser cancels at its next record boundary.
  const size_t num_tasks = splits.size();
  std::vector<std::vector<Record>> map_outputs(num_tasks);
  std::mutex mu;
  Status first_error;
  std::atomic<int64_t> attempts{0};
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> backup_attempts{0};
  std::atomic<int64_t> backups_won{0};
  std::atomic<int64_t> attempts_cancelled{0};
  // committed[t] is written under `mu` but read lock-free on the record
  // loop's cancellation fast path.
  std::unique_ptr<std::atomic<char>[]> committed(
      new std::atomic<char>[num_tasks]);
  for (size_t t = 0; t < num_tasks; ++t) committed[t].store(0);
  std::vector<char> backup_launched(num_tasks, 0);  // guarded by mu
  std::atomic<size_t> committed_count{0};
  const bool speculate = spec_.speculative_backups && num_tasks >= 2;
  // Backups launch once this many tasks have committed (at least 1, and
  // always before the last task so there is a straggler left to clone).
  const size_t speculation_trigger = std::min(
      num_tasks - 1,
      std::max<size_t>(
          1, static_cast<size_t>(std::ceil(spec_.speculation_commit_fraction *
                                           static_cast<double>(num_tasks)))));

  ThreadPool pool(spec_.max_parallel_tasks);
  obs::Span map_span;
  if (spec_.tracer != nullptr) {
    map_span = spec_.tracer->StartSpan(span_prefix + "/map");
  }

  // One attempt chain (primary or backup) for map task `t`. Backups draw
  // their failure injections from a distinct stream so a deterministic
  // kill of the primary does not replay on its clone.
  std::function<void(size_t, bool)> run_map_chain;
  run_map_chain = [&](size_t t, bool is_backup) {
    Rng rng(SplitMix64(spec_.seed) ^
            (is_backup ? SplitMix64(0xbacc00ULL + t) : (0x9e37u + t)));
    for (int attempt = 0; attempt < spec_.max_attempts_per_task; ++attempt) {
      if (speculate && committed[t].load(std::memory_order_acquire) != 0) {
        return;  // the other chain already won
      }
      attempts.fetch_add(1);
      if (is_backup) backup_attempts.fetch_add(1);
      const int64_t attempt_start = clock != nullptr ? clock->NowMicros() : 0;
      // Decide upfront whether this attempt gets "preempted"; if so, at
      // which fraction of its split (output up to there is discarded).
      const bool fail = rng.Bernoulli(spec_.map_task_failure_prob);
      const double fail_frac = rng.UniformDouble();

      std::vector<Record> buffer;
      std::unique_ptr<Mapper> mapper = mapper_factory_();
      Emitter emit = [&buffer](Record r) { buffer.push_back(std::move(r)); };

      Status s = mapper->Start(static_cast<int>(t));
      const auto [begin, end] = splits[t];
      const int64_t kill_at =
          begin + static_cast<int64_t>((end - begin) * fail_frac);
      bool killed = false;
      bool cancelled = false;
      for (int64_t i = begin; s.ok() && i < end; ++i) {
        if (speculate && committed[t].load(std::memory_order_acquire) != 0) {
          cancelled = true;  // the other chain committed mid-split
          break;
        }
        if (fail && i >= kill_at) {
          killed = true;
          break;
        }
        s = mapper->Map(input[i], emit);
      }
      if (s.ok() && !killed && !cancelled) s = mapper->Finish(emit);

      if (map_task_micros != nullptr && clock != nullptr) {
        map_task_micros->Observe(
            static_cast<double>(clock->NowMicros() - attempt_start));
      }
      if (cancelled) {
        attempts_cancelled.fetch_add(1);
        return;  // buffer dropped; the winner's output stands
      }
      if (killed) {
        failures.fetch_add(1);
        continue;  // retry; buffer dropped
      }
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = s;
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (committed[t].load(std::memory_order_relaxed) != 0) {
          return;  // lost the commit race; discard
        }
        map_outputs[t] = std::move(buffer);
        committed[t].store(1, std::memory_order_release);
      }
      committed_count.fetch_add(1);
      if (is_backup) backups_won.fetch_add(1);
      // Straggler detection: once enough of the phase has committed,
      // clone every still-uncommitted task (once).
      if (speculate && committed_count.load() >= speculation_trigger) {
        std::lock_guard<std::mutex> lock(mu);
        for (size_t other = 0; other < num_tasks; ++other) {
          if (committed[other].load(std::memory_order_relaxed) == 0 &&
              backup_launched[other] == 0) {
            backup_launched[other] = 1;
            pool.Schedule([&run_map_chain, other] {
              run_map_chain(other, /*is_backup=*/true);
            });
          }
        }
      }
      return;
    }
    // This chain exhausted its attempts; the task as a whole failed only
    // if nobody else committed it.
    std::lock_guard<std::mutex> lock(mu);
    if (committed[t].load(std::memory_order_relaxed) == 0 &&
        first_error.ok()) {
      first_error = UnavailableError(StrFormat(
          "map task %zu exceeded %d attempts", t,
          spec_.max_attempts_per_task));
    }
  };

  for (size_t t = 0; t < num_tasks; ++t) {
    pool.Schedule([&run_map_chain, t] { run_map_chain(t, false); });
  }
  pool.Wait();
  map_span.End();
  stats_.map_attempts = attempts.load();
  stats_.map_failures = failures.load();
  stats_.map_backup_attempts = backup_attempts.load();
  stats_.map_backups_won = backups_won.load();
  stats_.map_attempts_cancelled = attempts_cancelled.load();
  if (!first_error.ok()) return first_error;

  int64_t mapped = 0;
  for (const auto& out : map_outputs) mapped += out.size();
  stats_.mapped_records = mapped;

  // --- Map-only job: concatenate split outputs in order.
  if (spec_.num_reduce_tasks <= 0) {
    std::vector<Record> result;
    result.reserve(mapped);
    for (auto& out : map_outputs) {
      for (Record& r : out) result.push_back(std::move(r));
    }
    stats_.output_records = static_cast<int64_t>(result.size());
    return result;
  }

  // --- Shuffle: partition by key hash, group values per key.
  obs::Span shuffle_span;
  if (spec_.tracer != nullptr) {
    shuffle_span = spec_.tracer->StartSpan(span_prefix + "/shuffle");
  }
  const int r_tasks = spec_.num_reduce_tasks;
  std::vector<std::map<std::string, std::vector<std::string>>> partitions(
      r_tasks);
  std::hash<std::string> hasher;
  for (auto& out : map_outputs) {
    for (Record& r : out) {
      int part = static_cast<int>(hasher(r.key) % r_tasks);
      partitions[part][r.key].push_back(std::move(r.value));
    }
  }

  shuffle_span.End();

  // --- Reduce phase. Mirrors the map phase's fault tolerance: a killed
  // attempt drops its buffer and reruns the whole partition, which is safe
  // because the shuffle buffers are immutable once built.
  obs::Span reduce_span;
  if (spec_.tracer != nullptr) {
    reduce_span = spec_.tracer->StartSpan(span_prefix + "/reduce");
  }
  std::vector<std::vector<Record>> reduce_outputs(r_tasks);
  std::atomic<int64_t> reduce_attempts{0};
  std::atomic<int64_t> reduce_failures{0};
  for (int p = 0; p < r_tasks; ++p) {
    pool.Schedule([&, p] {
      Rng rng(SplitMix64(spec_.seed) ^ (0x7ecau * static_cast<uint64_t>(p + 1)));
      const int64_t num_keys = static_cast<int64_t>(partitions[p].size());
      for (int attempt = 0; attempt < spec_.max_attempts_per_task; ++attempt) {
        reduce_attempts.fetch_add(1);
        const int64_t attempt_start =
            clock != nullptr ? clock->NowMicros() : 0;
        const bool fail = rng.Bernoulli(spec_.reduce_task_failure_prob);
        const double fail_frac = rng.UniformDouble();
        const int64_t kill_at = static_cast<int64_t>(num_keys * fail_frac);

        std::vector<Record> buffer;
        std::unique_ptr<Reducer> reducer = reducer_factory_();
        Emitter emit = [&buffer](Record r) { buffer.push_back(std::move(r)); };

        Status s = OkStatus();
        bool killed = false;
        int64_t key_index = 0;
        for (const auto& [key, values] : partitions[p]) {
          if (fail && key_index >= kill_at) {
            killed = true;
            break;
          }
          s = reducer->Reduce(key, values, emit);
          if (!s.ok()) break;
          ++key_index;
        }

        if (reduce_task_micros != nullptr && clock != nullptr) {
          reduce_task_micros->Observe(
              static_cast<double>(clock->NowMicros() - attempt_start));
        }
        if (killed) {
          reduce_failures.fetch_add(1);
          continue;  // retry; buffer dropped
        }
        if (!s.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          if (first_error.ok()) first_error = s;
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          reduce_outputs[p] = std::move(buffer);
        }
        return;
      }
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) {
        first_error = UnavailableError(StrFormat(
            "reduce task %d exceeded %d attempts", p,
            spec_.max_attempts_per_task));
      }
    });
  }
  pool.Wait();
  reduce_span.End();
  stats_.reduce_attempts = reduce_attempts.load();
  stats_.reduce_failures = reduce_failures.load();
  if (!first_error.ok()) return first_error;

  std::vector<Record> result;
  for (auto& out : reduce_outputs) {
    for (Record& r : out) result.push_back(std::move(r));
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const Record& a, const Record& b) { return a.key < b.key; });
  stats_.output_records = static_cast<int64_t>(result.size());
  return result;
}

}  // namespace sigmund::mapreduce
