#ifndef SIGMUND_MAPREDUCE_MAPREDUCE_H_
#define SIGMUND_MAPREDUCE_MAPREDUCE_H_

#include <stdint.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"

namespace sigmund::mapreduce {

// A key/value record, the unit of data flowing through a MapReduce.
struct Record {
  std::string key;
  std::string value;
};

// Emits an output record from a map or reduce call.
using Emitter = std::function<void(Record)>;

// User map logic. One Mapper instance is constructed per map-task
// *attempt* and sees the records of its input split in order, which is
// what lets Sigmund's inference mapper keep a per-retailer model loaded
// across consecutive records and reload only at retailer boundaries
// (Section IV-C2 of the paper).
class Mapper {
 public:
  virtual ~Mapper() = default;

  // Called once before the first record of the split.
  virtual Status Start(int task_id) {
    (void)task_id;
    return OkStatus();
  }

  // Called once per input record.
  virtual Status Map(const Record& input, const Emitter& emit) = 0;

  // Called once after the last record of the split (for flushing
  // combiner-style state).
  virtual Status Finish(const Emitter& emit) {
    (void)emit;
    return OkStatus();
  }
};

// User reduce logic: one call per distinct key with all its values.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual Status Reduce(const std::string& key,
                        const std::vector<std::string>& values,
                        const Emitter& emit) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

// Identity reducer: emits each (key, value) unchanged.
std::unique_ptr<Reducer> IdentityReducer();

struct MapReduceSpec {
  // Number of input splits (map tasks). Input records are partitioned into
  // this many contiguous chunks, preserving order.
  int num_map_tasks = 1;

  // Number of shuffle partitions (reduce tasks). 0 = map-only job: map
  // outputs are concatenated in split order with no shuffle.
  int num_reduce_tasks = 1;

  // Worker threads executing tasks concurrently (simulated machines).
  int max_parallel_tasks = 1;

  // Probability that a map-task attempt is killed before committing
  // (pre-emption injection). Failed attempts are retried from scratch with
  // their partial output discarded — standard MapReduce fault tolerance.
  double map_task_failure_prob = 0.0;

  // Same, for reduce-task attempts: a killed attempt discards its buffered
  // output and reruns its whole partition (reduce input survives in the
  // shuffle buffers, so retries are exact reruns).
  double reduce_task_failure_prob = 0.0;

  // Cap on attempts per task (map or reduce) before the whole job fails.
  int max_attempts_per_task = 10;

  // Straggler mitigation (Dean & Ghemawat's backup tasks): once at least
  // speculation_commit_fraction of the map tasks have committed, every
  // still-uncommitted map task gets one speculative backup attempt
  // scheduled alongside its primary attempt chain. The first attempt to
  // commit wins; the loser notices at its next record boundary and
  // discards its buffer. Requires the mapper to be safe to run twice
  // concurrently for the same split (pure, or idempotent side effects) —
  // which is why the side-effect-heavy training job leaves this off while
  // the read-only inference job can turn it on.
  bool speculative_backups = false;
  double speculation_commit_fraction = 0.75;

  uint64_t seed = 42;

  // --- Observability (all borrowed; null = off; never affects results).
  // When `metrics` is set, Run() records per-task-attempt latency into
  // mapreduce_task_micros{phase=map|reduce,job=<label>} and mirrors the
  // attempt/failure counters into mapreduce_task_*_total{...}. When
  // `tracer` is set, Run() wraps the map / shuffle / reduce phases in
  // spans (children of whatever span is open on the calling thread).
  obs::MetricRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  // Time source for task latency histograms (null = RealClock).
  const Clock* clock = nullptr;
  // Job label for metric dimensions, e.g. "training" or "inference/cell0".
  std::string label;
};

// Execution statistics for a completed job.
struct MapReduceStats {
  int64_t map_attempts = 0;
  int64_t map_failures = 0;
  // Speculative-execution accounting: backup attempts launched for
  // straggling map tasks, how many of those committed first, and attempts
  // (primary or backup) that noticed the task was already committed and
  // cancelled themselves mid-split.
  int64_t map_backup_attempts = 0;
  int64_t map_backups_won = 0;
  int64_t map_attempts_cancelled = 0;
  int64_t reduce_attempts = 0;
  int64_t reduce_failures = 0;
  int64_t input_records = 0;
  int64_t mapped_records = 0;   // records emitted by the map phase
  int64_t output_records = 0;   // records emitted by the reduce phase
};

// In-process MapReduce runtime. Deterministic given the spec seed.
//
// Example (word count):
//   MapReduceJob job(spec, [] { return std::make_unique<TokenMapper>(); },
//                    [] { return std::make_unique<SumReducer>(); });
//   StatusOr<std::vector<Record>> out = job.Run(input);
class MapReduceJob {
 public:
  MapReduceJob(const MapReduceSpec& spec, MapperFactory mapper_factory,
               ReducerFactory reducer_factory);

  // Runs the job; returns reduce output (or concatenated map output for a
  // map-only job). Reduce output is sorted by key.
  StatusOr<std::vector<Record>> Run(const std::vector<Record>& input);

  const MapReduceStats& stats() const { return stats_; }

 private:
  // Adds this run's task counters to the spec's registry (no-op when
  // observability is off). Called once per Run on every exit path.
  void MirrorStatsToRegistry();

  MapReduceSpec spec_;
  MapperFactory mapper_factory_;
  ReducerFactory reducer_factory_;
  MapReduceStats stats_;
};

// Splits [0, n) into `pieces` contiguous ranges as evenly as possible.
// Returns (begin, end) pairs; fewer than `pieces` if n < pieces.
std::vector<std::pair<int64_t, int64_t>> ComputeSplits(int64_t n, int pieces);

}  // namespace sigmund::mapreduce

#endif  // SIGMUND_MAPREDUCE_MAPREDUCE_H_
