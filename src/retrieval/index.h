#ifndef SIGMUND_RETRIEVAL_INDEX_H_
#define SIGMUND_RETRIEVAL_INDEX_H_

#include <stdint.h>

#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "core/inference.h"

namespace sigmund::retrieval {

// Per-query search accounting, surfaced as trace annotations and metrics
// by the online reader (how much of the catalog a request actually
// touched is the knob-tuning signal for nprobe/num_lists).
struct SearchStats {
  int lists_probed = 0;
  int64_t candidates_scanned = 0;
};

// Maximum-inner-product search over a fixed set of item vectors — the
// online alternative to materialized lists: instead of precomputing top-K
// per query item offline, the index holds the model's item factors and
// answers arbitrary query embeddings at request time (DESIGN.md §11).
//
// Implementations are immutable after construction and safe for
// concurrent Search calls. Results are sorted by descending score with
// ties broken by ascending item index, so same-seed runs are
// byte-identical regardless of thread interleaving.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual int dim() const = 0;
  virtual int num_items() const = 0;

  // Top-k items by dot product with `query` (dim() floats). `nprobe`
  // bounds how many coarse lists an approximate index scans; exact
  // implementations ignore it. `stats` (may be null) reports how much
  // work the query did.
  virtual std::vector<core::ScoredItem> Search(const float* query, int k,
                                               int nprobe,
                                               SearchStats* stats) const = 0;
};

// Brute force: scans every item. The recall-1.0 reference the ANN index
// is benchmarked and tested against, behind the same interface so the
// serving path can swap it in for tiny catalogs.
class ExactIndex : public VectorIndex {
 public:
  // `vectors` is num_items x dim, row-major; moved in.
  ExactIndex(std::vector<float> vectors, int dim);

  int dim() const override { return dim_; }
  int num_items() const override { return num_items_; }

  std::vector<core::ScoredItem> Search(const float* query, int k, int nprobe,
                                       SearchStats* stats) const override;

 private:
  int dim_ = 0;
  int num_items_ = 0;
  std::vector<float> vectors_;
};

// IVF-style approximate index: a coarse quantizer (seeded deterministic
// k-means over the item vectors) partitions the catalog into
// `num_lists` inverted lists; a query scores every centroid, probes the
// top `nprobe` lists, and exactly re-ranks only their members by dot
// product. Per-list storage is contiguous SoA (ids and vectors in
// separate flat arrays, grouped by list) so a probe is a pure sequential
// scan.
//
// Determinism: k-means uses strided initial centers and
// lowest-index tie-breaks, so the same (vectors, options) always builds
// a byte-identical index — a requirement for the versioned artifact's
// CRC to be reproducible across reruns.
class AnnIndex : public VectorIndex {
 public:
  struct Options {
    // Coarse-quantizer cells. Clamped to [1, num_items] at build time.
    int num_lists = 16;
    // Lloyd iterations of the k-means build.
    int kmeans_iters = 8;
    uint64_t seed = 1;
  };

  AnnIndex() = default;

  // Builds the index over `vectors` (num_items x dim, row-major).
  static AnnIndex Build(const std::vector<float>& vectors, int dim,
                        const Options& options);

  int dim() const override { return dim_; }
  int num_items() const override { return num_items_; }
  int num_lists() const { return num_lists_; }

  std::vector<core::ScoredItem> Search(const float* query, int k, int nprobe,
                                       SearchStats* stats) const override;

  // Payload (de)serialization; framing/checksumming is the artifact
  // layer's job. DeserializeFrom validates internal consistency and
  // returns kDataLoss on any truncated or incoherent encoding.
  void SerializeTo(BinaryWriter* writer) const;
  static StatusOr<AnnIndex> DeserializeFrom(BinaryReader* reader);

 private:
  int dim_ = 0;
  int num_items_ = 0;
  int num_lists_ = 0;
  std::vector<float> centroids_;      // num_lists x dim
  std::vector<int32_t> list_offsets_;  // num_lists + 1, into list_ids_
  // SoA list storage: ids and vectors grouped by list, contiguous per
  // list so a probe scans a single cache-friendly range.
  std::vector<int32_t> list_ids_;     // num_items (original item index)
  std::vector<float> list_vectors_;   // num_items x dim
};

}  // namespace sigmund::retrieval

#endif  // SIGMUND_RETRIEVAL_INDEX_H_
