#include "retrieval/reader.h"

#include <algorithm>
#include <utility>

namespace sigmund::retrieval {

OnlineRetrievalReader::OnlineRetrievalReader(const Options& options,
                                             obs::MetricRegistry* metrics)
    : options_(options), metrics_(metrics) {
  if (metrics_ != nullptr) {
    queries_ok_ = metrics_->GetCounter("retrieval_queries_total",
                                       {{"outcome", "ok"}});
    queries_error_ = metrics_->GetCounter("retrieval_queries_total",
                                          {{"outcome", "error"}});
    candidates_scanned_ =
        metrics_->GetHistogram("retrieval_candidates_scanned");
  }
}

int64_t OnlineRetrievalReader::StageArtifact(data::RetailerId retailer,
                                             IndexArtifact artifact,
                                             int64_t version) {
  auto shared = std::make_shared<const IndexArtifact>(std::move(artifact));
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = entries_[retailer];
  const int64_t assigned = version > 0 ? version : entry.next_version;
  entry.next_version = std::max(entry.next_version, assigned + 1);
  entry.versions[assigned] = std::move(shared);
  Retire(&entry, assigned);
  return assigned;
}

StatusOr<int64_t> OnlineRetrievalReader::StageFromFile(
    data::RetailerId retailer, const sfs::SharedFileSystem& fs,
    const std::string& path, const RetryPolicy& policy,
    sfs::ReliableIoCounters* io, int64_t version) {
  StatusOr<std::string> payload =
      sfs::ReadChecksummedFile(&fs, path, policy, io);
  if (!payload.ok()) return payload.status();
  StatusOr<IndexArtifact> artifact = IndexArtifact::Deserialize(*payload);
  if (!artifact.ok()) {
    // CRC passed but the payload is incoherent — count it with the same
    // severity as a torn frame: the artifact never becomes servable.
    if (io != nullptr) io->CountCorruptionDetected();
    return artifact.status();
  }
  return StageArtifact(retailer, std::move(artifact).value(), version);
}

Status OnlineRetrievalReader::ActivateVersion(data::RetailerId retailer,
                                              int64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end() || it->second.versions.count(version) == 0) {
    return NotFoundError("retrieval index version not resident");
  }
  it->second.active = version;
  Retire(&it->second, version);
  return OkStatus();
}

Status OnlineRetrievalReader::RollbackRetailer(data::RetailerId retailer,
                                               int64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end() || it->second.versions.count(version) == 0) {
    return NotFoundError("retrieval index version not resident");
  }
  it->second.active = version;
  return OkStatus();
}

Status OnlineRetrievalReader::DiscardVersion(data::RetailerId retailer,
                                             int64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end() || it->second.versions.count(version) == 0) {
    return NotFoundError("retrieval index version not resident");
  }
  if (it->second.active == version) {
    return FailedPreconditionError("cannot discard the active index");
  }
  it->second.versions.erase(version);
  return OkStatus();
}

std::shared_ptr<const IndexArtifact> OnlineRetrievalReader::FindArtifact(
    data::RetailerId retailer, int64_t version) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end()) return nullptr;
  const int64_t wanted = version > 0 ? version : it->second.active;
  if (wanted == 0) return nullptr;
  auto vit = it->second.versions.find(wanted);
  return vit != it->second.versions.end() ? vit->second : nullptr;
}

void OnlineRetrievalReader::Retire(Entry* entry, int64_t keep) const {
  const int retained = std::max(options_.retained_versions, 1);
  while (static_cast<int>(entry->versions.size()) > retained) {
    auto oldest = entry->versions.begin();
    if (oldest->first == entry->active || oldest->first == keep) break;
    entry->versions.erase(oldest);
  }
}

StatusOr<std::vector<core::ScoredItem>> OnlineRetrievalReader::ServeContext(
    data::RetailerId retailer, const core::Context& context) const {
  return ServeContextAtVersion(retailer, context, 0);
}

StatusOr<std::vector<core::ScoredItem>> OnlineRetrievalReader::ServeContext(
    data::RetailerId retailer, const core::Context& context,
    obs::TraceContext trace) const {
  return ServeContextAtVersion(retailer, context, 0, trace);
}

StatusOr<std::vector<core::ScoredItem>>
OnlineRetrievalReader::ServeContextAtVersion(data::RetailerId retailer,
                                             const core::Context& context,
                                             int64_t version,
                                             obs::TraceContext trace) const {
  if (context.empty()) {
    if (queries_error_ != nullptr) queries_error_->Add(1);
    return InvalidArgumentError("empty context");
  }
  std::shared_ptr<const IndexArtifact> artifact =
      FindArtifact(retailer, version);
  if (artifact == nullptr) {
    if (queries_error_ != nullptr) queries_error_->Add(1);
    return NotFoundError("no retrieval index for retailer");
  }

  std::vector<float> query(artifact->dim);
  artifact->QueryEmbedding(context, query.data());

  // Over-fetch by the context length so dropping already-seen items (the
  // query item itself would otherwise top the list) still leaves top_k.
  const int fetch =
      options_.top_k + static_cast<int>(std::min<size_t>(
                           context.size(), artifact->index.num_items()));
  SearchStats stats;
  std::vector<core::ScoredItem> found =
      artifact->index.Search(query.data(), fetch, options_.nprobe, &stats);

  std::vector<core::ScoredItem> items;
  items.reserve(options_.top_k);
  for (const core::ScoredItem& item : found) {
    if (static_cast<int>(items.size()) >= options_.top_k) break;
    bool seen = false;
    for (const core::ContextEntry& entry : context) {
      if (entry.item == item.item) {
        seen = true;
        break;
      }
    }
    if (!seen) items.push_back(item);
  }

  if (trace.active()) {
    trace.Annotate("nprobe", std::to_string(options_.nprobe));
    trace.Annotate("lists_probed", std::to_string(stats.lists_probed));
    trace.Annotate("candidates_scanned",
                   std::to_string(stats.candidates_scanned));
  }
  if (queries_ok_ != nullptr) queries_ok_->Add(1);
  if (candidates_scanned_ != nullptr) {
    candidates_scanned_->Observe(
        static_cast<double>(stats.candidates_scanned));
  }
  return items;
}

int64_t OnlineRetrievalReader::RetailerVersion(
    data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  return it != entries_.end() ? it->second.active : 0;
}

int64_t OnlineRetrievalReader::LatestVersion(data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  if (it == entries_.end() || it->second.versions.empty()) return 0;
  return it->second.versions.rbegin()->first;
}

std::vector<int64_t> OnlineRetrievalReader::RetainedVersions(
    data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<int64_t> versions;
  auto it = entries_.find(retailer);
  if (it != entries_.end()) {
    for (const auto& [version, artifact] : it->second.versions) {
      (void)artifact;
      versions.push_back(version);
    }
  }
  return versions;
}

int64_t OnlineRetrievalReader::NextVersion(data::RetailerId retailer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(retailer);
  return it == entries_.end() ? 1 : it->second.next_version;
}

void OnlineRetrievalReader::EnsureNextVersion(data::RetailerId retailer,
                                              int64_t next_version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = entries_[retailer];
  entry.next_version = std::max(entry.next_version, next_version);
}

}  // namespace sigmund::retrieval
