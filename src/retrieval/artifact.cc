#include "retrieval/artifact.h"

#include <algorithm>
#include <cmath>

#include "common/binary_io.h"
#include "common/string_util.h"

namespace sigmund::retrieval {

namespace {

// "SIDX" little-endian, the artifact's own magic inside the CRC frame —
// catches a checksummed-but-wrong blob (e.g. a model file staged at the
// index path) before any field is trusted.
constexpr uint32_t kArtifactMagic = 0x58444953u;
constexpr uint32_t kArtifactVersion = 1;

}  // namespace

void IndexArtifact::QueryEmbedding(const core::Context& context,
                                   float* out) const {
  for (int k = 0; k < dim; ++k) out[k] = 0.0f;
  if (context.empty() || context_window <= 0) return;

  const int n =
      std::min<int>(context_window, static_cast<int>(context.size()));
  const int start = static_cast<int>(context.size()) - n;
  // Normalized geometric decay, newest entry weighted 1 before
  // normalization — the same weights BprModel::ContextWeights computes.
  std::vector<float> weights(n);
  double total = 0.0;
  for (int j = 0; j < n; ++j) {
    const double w = std::pow(context_decay, n - 1 - j);
    weights[j] = static_cast<float>(w);
    total += w;
  }
  if (total > 0.0) {
    for (float& w : weights) w = static_cast<float>(w / total);
  }
  for (int j = 0; j < n; ++j) {
    const data::ItemIndex item = context[start + j].item;
    if (item < 0 || item >= num_context_rows) continue;
    const float* vc =
        context_vectors.data() + static_cast<size_t>(item) * dim;
    for (int k = 0; k < dim; ++k) out[k] += weights[j] * vc[k];
  }
}

std::string IndexArtifact::Serialize() const {
  BinaryWriter writer;
  writer.Write<uint32_t>(kArtifactMagic);
  writer.Write<uint32_t>(kArtifactVersion);
  writer.Write<int32_t>(retailer);
  writer.Write<int32_t>(dim);
  writer.Write<int32_t>(context_window);
  writer.Write<double>(context_decay);
  index.SerializeTo(&writer);
  writer.Write<int32_t>(num_context_rows);
  writer.WriteVector(context_vectors);
  return writer.Take();
}

StatusOr<IndexArtifact> IndexArtifact::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  uint32_t magic = 0, version = 0;
  if (!reader.Read(&magic) || magic != kArtifactMagic) {
    return DataLossError("bad index artifact magic");
  }
  if (!reader.Read(&version) || version != kArtifactVersion) {
    return DataLossError("unsupported index artifact version");
  }
  IndexArtifact artifact;
  int32_t retailer = 0, dim = 0, window = 0;
  if (!reader.Read(&retailer) || !reader.Read(&dim) ||
      !reader.Read(&window) || !reader.Read(&artifact.context_decay)) {
    return DataLossError("truncated index artifact header");
  }
  artifact.retailer = retailer;
  artifact.dim = dim;
  artifact.context_window = window;
  StatusOr<AnnIndex> index = AnnIndex::DeserializeFrom(&reader);
  if (!index.ok()) return index.status();
  artifact.index = std::move(index).value();
  int32_t context_rows = 0;
  if (!reader.Read(&context_rows) ||
      !reader.ReadVector(&artifact.context_vectors) || !reader.Done()) {
    return DataLossError("truncated index artifact payload");
  }
  artifact.num_context_rows = context_rows;
  if (dim <= 0 || window < 0 || artifact.index.dim() != dim ||
      context_rows < 0 ||
      artifact.context_vectors.size() !=
          static_cast<size_t>(context_rows) * static_cast<size_t>(dim)) {
    return DataLossError("inconsistent index artifact");
  }
  return artifact;
}

std::string IndexArtifactPath(data::RetailerId retailer) {
  return StrFormat("retrieval/r%d", retailer);
}

std::string IndexArtifactVersionPath(data::RetailerId retailer,
                                     int64_t version) {
  return StrFormat("retrieval/r%d.v%06lld", retailer,
                   static_cast<long long>(version));
}

IndexArtifact BuildArtifactFromModel(data::RetailerId retailer,
                                     const core::BprModel& model,
                                     const AnnIndex::Options& options) {
  const int dim = model.dim();
  const int n = model.num_items();
  std::vector<float> item_vectors(static_cast<size_t>(n) * dim);
  std::vector<float> phi(dim);
  for (int i = 0; i < n; ++i) {
    model.ItemRepresentation(static_cast<data::ItemIndex>(i), phi.data());
    std::copy_n(phi.data(), dim,
                item_vectors.data() + static_cast<size_t>(i) * dim);
  }
  return BuildArtifactFromFactors(
      retailer, item_vectors, model.context_embeddings().values(), dim,
      model.params().context_window, model.params().context_decay, options);
}

IndexArtifact BuildArtifactFromFactors(data::RetailerId retailer,
                                       const std::vector<float>& item_vectors,
                                       const std::vector<float>& query_vectors,
                                       int dim, int context_window,
                                       double context_decay,
                                       const AnnIndex::Options& options) {
  IndexArtifact artifact;
  artifact.retailer = retailer;
  artifact.dim = dim;
  artifact.context_window = context_window;
  artifact.context_decay = context_decay;
  artifact.index = AnnIndex::Build(item_vectors, dim, options);
  artifact.num_context_rows =
      dim > 0 ? static_cast<int>(query_vectors.size()) / dim : 0;
  artifact.context_vectors = query_vectors;
  return artifact;
}

}  // namespace sigmund::retrieval
