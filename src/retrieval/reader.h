#ifndef SIGMUND_RETRIEVAL_READER_H_
#define SIGMUND_RETRIEVAL_READER_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/inference.h"
#include "retrieval/artifact.h"
#include "serving/store.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::retrieval {

// The online retrieval plane's serving endpoint: a serving::ServingReader
// over versioned, immutable IndexArtifacts — so everything built for the
// materialized plane (Frontend degradation ladder, admission control,
// tracing, canary gating) applies to the ANN path unchanged.
//
// Versioning mirrors RecommendationStore: each staged artifact is a
// version in a per-retailer chain; Stage leaves the previous version
// serving, Activate/Rollback are O(1) pointer flips, and the last
// `retained_versions` stay resident for instant rollback. A corrupt
// artifact (bad CRC, torn frame, incoherent encoding) is rejected at
// stage time with kDataLoss and the previous version keeps serving.
//
// Thread-safe: queries copy out a shared_ptr to an immutable artifact
// under a shared lock; stage/activate/rollback swap pointers under an
// exclusive lock.
class OnlineRetrievalReader : public serving::ServingReader {
 public:
  struct Options {
    // Results per query.
    int top_k = 10;
    // Coarse lists probed per query (the recall/latency knob).
    int nprobe = 8;
    // Artifact versions retained per retailer (including active).
    int retained_versions = 3;
  };

  // `metrics` borrowed, may be null: queries land in
  // retrieval_queries_total{outcome} and scanned-candidate counts in the
  // retrieval_candidates_scanned histogram.
  explicit OnlineRetrievalReader(const Options& options,
                                 obs::MetricRegistry* metrics = nullptr);

  // Stages `artifact` as a resident, not-yet-serving version and returns
  // its version number (0 auto-assigns; positive pins).
  int64_t StageArtifact(data::RetailerId retailer, IndexArtifact artifact,
                        int64_t version = 0);

  // Reads a CRC-framed artifact from the shared filesystem and stages
  // it. kDataLoss (corrupt frame or incoherent payload) leaves the
  // retailer's existing versions untouched.
  StatusOr<int64_t> StageFromFile(data::RetailerId retailer,
                                  const sfs::SharedFileSystem& fs,
                                  const std::string& path,
                                  const RetryPolicy& policy = {},
                                  sfs::ReliableIoCounters* io = nullptr,
                                  int64_t version = 0);

  // Pointer flips, mirroring RecommendationStore semantics.
  Status ActivateVersion(data::RetailerId retailer, int64_t version);
  Status RollbackRetailer(data::RetailerId retailer, int64_t version);
  Status DiscardVersion(data::RetailerId retailer, int64_t version);

  // ServingReader: answers from the active artifact. kNotFound when the
  // retailer has no active index.
  StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context) const override;
  StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context,
      obs::TraceContext trace) const override;

  // Canary traffic reads a staged version through this (<= 0 = active).
  StatusOr<std::vector<core::ScoredItem>> ServeContextAtVersion(
      data::RetailerId retailer, const core::Context& context,
      int64_t version, obs::TraceContext trace = {}) const;

  int64_t RetailerVersion(data::RetailerId retailer) const override;
  int64_t LatestVersion(data::RetailerId retailer) const;
  std::vector<int64_t> RetainedVersions(data::RetailerId retailer) const;
  // Next auto-assigned version / counter restore for crash rehydration,
  // mirroring RecommendationStore (see store.h).
  int64_t NextVersion(data::RetailerId retailer) const;
  void EnsureNextVersion(data::RetailerId retailer, int64_t next_version);

  const Options& options() const { return options_; }

 private:
  struct Entry {
    std::map<int64_t, std::shared_ptr<const IndexArtifact>> versions;
    int64_t active = 0;
    int64_t next_version = 1;
  };

  std::shared_ptr<const IndexArtifact> FindArtifact(data::RetailerId retailer,
                                                    int64_t version) const;
  // Evicts beyond the retention window (caller holds mu_ exclusively);
  // never evicts the active version or `keep`.
  void Retire(Entry* entry, int64_t keep) const;

  Options options_;
  obs::MetricRegistry* metrics_;
  obs::Counter* queries_ok_ = nullptr;
  obs::Counter* queries_error_ = nullptr;
  obs::Histogram* candidates_scanned_ = nullptr;

  mutable std::shared_mutex mu_;
  std::map<data::RetailerId, Entry> entries_;
};

}  // namespace sigmund::retrieval

#endif  // SIGMUND_RETRIEVAL_READER_H_
