#include "retrieval/index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sigmund::retrieval {

namespace {

inline double Dot(const float* a, const float* b, int dim) {
  double sum = 0.0;
  for (int k = 0; k < dim; ++k) {
    sum += static_cast<double>(a[k]) * static_cast<double>(b[k]);
  }
  return sum;
}

inline double SquaredL2(const float* a, const float* b, int dim) {
  double sum = 0.0;
  for (int k = 0; k < dim; ++k) {
    const double d = static_cast<double>(a[k]) - static_cast<double>(b[k]);
    sum += d * d;
  }
  return sum;
}

// Keeps the best k (score desc, item asc) out of a candidate stream.
// Candidates arrive in no particular item order (ANN probes lists), so
// the final sort enforces the deterministic order the interface promises.
void SortAndTruncate(std::vector<core::ScoredItem>* items, int k) {
  std::sort(items->begin(), items->end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (static_cast<int>(items->size()) > k) items->resize(k);
}

}  // namespace

ExactIndex::ExactIndex(std::vector<float> vectors, int dim)
    : dim_(dim),
      num_items_(dim > 0 ? static_cast<int>(vectors.size()) / dim : 0),
      vectors_(std::move(vectors)) {}

std::vector<core::ScoredItem> ExactIndex::Search(const float* query, int k,
                                                 int nprobe,
                                                 SearchStats* stats) const {
  (void)nprobe;
  std::vector<core::ScoredItem> items;
  items.reserve(num_items_);
  for (int i = 0; i < num_items_; ++i) {
    items.push_back(
        {static_cast<data::ItemIndex>(i),
         Dot(query, vectors_.data() + static_cast<size_t>(i) * dim_, dim_)});
  }
  if (stats != nullptr) {
    stats->lists_probed = 1;
    stats->candidates_scanned = num_items_;
  }
  SortAndTruncate(&items, k);
  return items;
}

AnnIndex AnnIndex::Build(const std::vector<float>& vectors, int dim,
                         const Options& options) {
  AnnIndex index;
  index.dim_ = dim;
  index.num_items_ = dim > 0 ? static_cast<int>(vectors.size()) / dim : 0;
  const int n = index.num_items_;
  index.num_lists_ = std::max(1, std::min(options.num_lists, std::max(n, 1)));
  const int lists = index.num_lists_;

  // Strided initial centers: deterministic, spread across the item range,
  // and independent of any RNG state — same inputs, same index, always.
  index.centroids_.assign(static_cast<size_t>(lists) * dim, 0.0f);
  for (int c = 0; c < lists; ++c) {
    const int pick = n > 0 ? static_cast<int>(
                                 (static_cast<int64_t>(c) * n) / lists)
                           : 0;
    if (n > 0) {
      std::copy_n(vectors.data() + static_cast<size_t>(pick) * dim, dim,
                  index.centroids_.data() + static_cast<size_t>(c) * dim);
    }
  }

  // Lloyd iterations: assign by L2 distance (lowest-index centroid wins
  // ties), then recompute means. An emptied cluster keeps its previous
  // centroid — it simply attracts nothing until some point drifts back.
  std::vector<int32_t> assignment(n, 0);
  for (int iter = 0; iter < std::max(options.kmeans_iters, 1); ++iter) {
    for (int i = 0; i < n; ++i) {
      const float* v = vectors.data() + static_cast<size_t>(i) * dim;
      int best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (int c = 0; c < lists; ++c) {
        const double d =
            SquaredL2(v, index.centroids_.data() + static_cast<size_t>(c) * dim,
                      dim);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      assignment[i] = best;
    }
    if (iter + 1 == std::max(options.kmeans_iters, 1)) break;
    std::vector<double> sums(static_cast<size_t>(lists) * dim, 0.0);
    std::vector<int> counts(lists, 0);
    for (int i = 0; i < n; ++i) {
      const float* v = vectors.data() + static_cast<size_t>(i) * dim;
      double* sum = sums.data() + static_cast<size_t>(assignment[i]) * dim;
      for (int k = 0; k < dim; ++k) sum[k] += v[k];
      ++counts[assignment[i]];
    }
    for (int c = 0; c < lists; ++c) {
      if (counts[c] == 0) continue;
      float* centroid = index.centroids_.data() + static_cast<size_t>(c) * dim;
      const double* sum = sums.data() + static_cast<size_t>(c) * dim;
      for (int k = 0; k < dim; ++k) {
        centroid[k] = static_cast<float>(sum[k] / counts[c]);
      }
    }
  }

  // Bucket into contiguous SoA lists via counting sort (stable: items
  // within a list stay in ascending item order).
  index.list_offsets_.assign(lists + 1, 0);
  for (int i = 0; i < n; ++i) ++index.list_offsets_[assignment[i] + 1];
  for (int c = 0; c < lists; ++c) {
    index.list_offsets_[c + 1] += index.list_offsets_[c];
  }
  index.list_ids_.resize(n);
  index.list_vectors_.resize(static_cast<size_t>(n) * dim);
  std::vector<int32_t> cursor(index.list_offsets_.begin(),
                              index.list_offsets_.end() - 1);
  for (int i = 0; i < n; ++i) {
    const int32_t slot = cursor[assignment[i]]++;
    index.list_ids_[slot] = i;
    std::copy_n(vectors.data() + static_cast<size_t>(i) * dim, dim,
                index.list_vectors_.data() + static_cast<size_t>(slot) * dim);
  }
  return index;
}

std::vector<core::ScoredItem> AnnIndex::Search(const float* query, int k,
                                               int nprobe,
                                               SearchStats* stats) const {
  // Rank lists by centroid dot product (score desc, index asc).
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(num_lists_);
  for (int c = 0; c < num_lists_; ++c) {
    ranked.emplace_back(
        Dot(query, centroids_.data() + static_cast<size_t>(c) * dim_, dim_),
        c);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<double, int>& a,
               const std::pair<double, int>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const int probes = std::max(1, std::min(nprobe, num_lists_));

  std::vector<core::ScoredItem> items;
  int64_t scanned = 0;
  for (int p = 0; p < probes; ++p) {
    const int c = ranked[p].second;
    const int32_t begin = list_offsets_[c];
    const int32_t end = list_offsets_[c + 1];
    for (int32_t slot = begin; slot < end; ++slot) {
      items.push_back(
          {static_cast<data::ItemIndex>(list_ids_[slot]),
           Dot(query,
               list_vectors_.data() + static_cast<size_t>(slot) * dim_,
               dim_)});
    }
    scanned += end - begin;
  }
  if (stats != nullptr) {
    stats->lists_probed = probes;
    stats->candidates_scanned = scanned;
  }
  SortAndTruncate(&items, k);
  return items;
}

void AnnIndex::SerializeTo(BinaryWriter* writer) const {
  writer->Write<int32_t>(dim_);
  writer->Write<int32_t>(num_items_);
  writer->Write<int32_t>(num_lists_);
  writer->WriteVector(centroids_);
  writer->WriteVector(list_offsets_);
  writer->WriteVector(list_ids_);
  writer->WriteVector(list_vectors_);
}

StatusOr<AnnIndex> AnnIndex::DeserializeFrom(BinaryReader* reader) {
  AnnIndex index;
  int32_t dim = 0, num_items = 0, num_lists = 0;
  if (!reader->Read(&dim) || !reader->Read(&num_items) ||
      !reader->Read(&num_lists) || !reader->ReadVector(&index.centroids_) ||
      !reader->ReadVector(&index.list_offsets_) ||
      !reader->ReadVector(&index.list_ids_) ||
      !reader->ReadVector(&index.list_vectors_)) {
    return DataLossError("truncated ANN index encoding");
  }
  index.dim_ = dim;
  index.num_items_ = num_items;
  index.num_lists_ = num_lists;
  // Cross-field consistency: every offset/size must line up, and every
  // stored id must be a valid item. A frame that passes its CRC but
  // violates these was encoded by a buggy or hostile writer; reject it
  // the same way a torn blob is rejected.
  if (dim <= 0 || num_items < 0 || num_lists <= 0 ||
      index.centroids_.size() !=
          static_cast<size_t>(num_lists) * static_cast<size_t>(dim) ||
      index.list_offsets_.size() != static_cast<size_t>(num_lists) + 1 ||
      index.list_ids_.size() != static_cast<size_t>(num_items) ||
      index.list_vectors_.size() !=
          static_cast<size_t>(num_items) * static_cast<size_t>(dim) ||
      index.list_offsets_.front() != 0 ||
      index.list_offsets_.back() != num_items) {
    return DataLossError("inconsistent ANN index encoding");
  }
  for (size_t c = 1; c < index.list_offsets_.size(); ++c) {
    if (index.list_offsets_[c] < index.list_offsets_[c - 1]) {
      return DataLossError("non-monotone ANN list offsets");
    }
  }
  for (int32_t id : index.list_ids_) {
    if (id < 0 || id >= num_items) {
      return DataLossError("out-of-range item id in ANN index");
    }
  }
  return index;
}

}  // namespace sigmund::retrieval
