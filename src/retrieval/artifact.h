#ifndef SIGMUND_RETRIEVAL_ARTIFACT_H_
#define SIGMUND_RETRIEVAL_ARTIFACT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/model.h"
#include "data/types.h"
#include "retrieval/index.h"

namespace sigmund::retrieval {

// The versioned, durable unit the index-builder stage publishes per
// retailer per day: everything the online reader needs to answer a query
// without touching the model — the ANN index over the item-side vectors
// phi(i) and the query-side context-embedding table with its decay
// parameters (mirroring BprModel::UserEmbedding, so the online query
// embedding is bit-identical to what training scored with).
//
// Stored CRC-framed via sfs::WriteChecksummedFile; a torn or truncated
// artifact surfaces as kDataLoss at stage time and the reader keeps
// serving the previous version.
struct IndexArtifact {
  data::RetailerId retailer = 0;
  int dim = 0;
  // Query-side context model (HyperParams::context_window/context_decay
  // of the model the artifact was built from).
  int context_window = 25;
  double context_decay = 0.85;

  // Item-side: ANN index over phi(i) for every catalog item.
  AnnIndex index;

  // Query-side: one embedding per item (row-major, num_context_rows x
  // dim) — the model's context table for BPR, or the item factors
  // themselves for WRMF-style two-sided factorizations.
  int num_context_rows = 0;
  std::vector<float> context_vectors;

  // Writes the context-derived query embedding into out[dim], using the
  // last `context_window` entries with normalized geometric-decay
  // weights — the same arithmetic as BprModel::UserEmbedding. Entries
  // referencing items outside [0, num_context_rows) are skipped (catalog
  // grew since the artifact was built).
  void QueryEmbedding(const core::Context& context, float* out) const;

  // Payload + "SIDX" header; wrap in a checksummed frame for storage.
  std::string Serialize() const;
  static StatusOr<IndexArtifact> Deserialize(const std::string& bytes);
};

// Canonical SFS location, alongside models/ and recommendations/.
std::string IndexArtifactPath(data::RetailerId retailer);
// Immutable per-version artifact copy (ledger mode, DESIGN.md §13):
// crash rehydration re-stages retained index versions from these.
std::string IndexArtifactVersionPath(data::RetailerId retailer,
                                     int64_t version);

// Snapshots a trained BPR model into an artifact: exports phi(i) per
// item (item embedding + additive taxonomy/brand/price features, exactly
// what inference scores with) as the indexed vectors and the context
// table as the query side.
IndexArtifact BuildArtifactFromModel(data::RetailerId retailer,
                                     const core::BprModel& model,
                                     const AnnIndex::Options& options);

// Builds an artifact straight from factor matrices (both row-major,
// rows x dim) — the WRMF path, where `item_vectors` are the item factors
// and `query_vectors` whatever the query embedding should be averaged
// over (for WRMF, the item factors again: a context is folded in as a
// decayed sum of its items' factors).
IndexArtifact BuildArtifactFromFactors(data::RetailerId retailer,
                                       const std::vector<float>& item_vectors,
                                       const std::vector<float>& query_vectors,
                                       int dim, int context_window,
                                       double context_decay,
                                       const AnnIndex::Options& options);

}  // namespace sigmund::retrieval

#endif  // SIGMUND_RETRIEVAL_ARTIFACT_H_
