#ifndef SIGMUND_SFS_RELIABLE_IO_H_
#define SIGMUND_SFS_RELIABLE_IO_H_

#include <stdint.h>

#include <atomic>
#include <string>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::sfs {

// Counters shared by all reliable-I/O call sites of one job. Thread-safe.
struct ReliableIoCounters {
  // Transient-error retry bookkeeping (attempts, retries, exhaustions).
  RetryStats retry;
  // Frames whose CRC (or framing) check failed at read/verify time.
  std::atomic<int64_t> corruptions_detected{0};
  // Corrupt frames healed by rewriting (write-side read-back verify).
  std::atomic<int64_t> corruptions_healed{0};

  // Optional observability wiring. SetMetrics registers the standard
  // sfs_* instruments in `registry` and mirrors every retry / corruption
  // event into them, and every checksummed read/write records an
  // sfs_op_micros{op=...} latency sample. `registry` and `clock` are
  // borrowed; clock == nullptr means RealClock.
  void SetMetrics(obs::MetricRegistry* registry,
                  const Clock* clock = nullptr);

  // Bumps corruptions_detected and its registry mirror (if wired).
  void CountCorruptionDetected();
  // Bumps corruptions_healed and its registry mirror (if wired).
  void CountCorruptionHealed();

  obs::MetricRegistry* metrics = nullptr;  // null = not wired
  const Clock* clock = nullptr;
  obs::Counter* corruptions_detected_counter = nullptr;
  obs::Counter* corruptions_healed_counter = nullptr;
  obs::Histogram* read_micros = nullptr;
  obs::Histogram* write_micros = nullptr;
};

// Writes `payload` to `path` wrapped in a checksummed frame, then reads
// it back and verifies the frame round-trips. A torn write (storage
// accepted the write but persisted garbage) is detected by the read-back
// and healed by rewriting; transient kUnavailable errors are retried per
// `policy`. This is the only write path durable pipeline artifacts
// (checkpoints, models, shards, recommendation batches) should use.
Status WriteChecksummedFile(SharedFileSystem* fs, const std::string& path,
                            std::string_view payload,
                            const RetryPolicy& policy = {},
                            ReliableIoCounters* io = nullptr);

// Reads `path` (retrying transient errors per `policy`) and unwraps the
// checksummed frame. Returns kDataLoss if the stored bytes fail the CRC
// or framing check — the caller decides whether that is recoverable
// (e.g. skip a corrupt checkpoint) or fatal.
StatusOr<std::string> ReadChecksummedFile(const SharedFileSystem* fs,
                                          const std::string& path,
                                          const RetryPolicy& policy = {},
                                          ReliableIoCounters* io = nullptr);

// Deletes every "*.tmp" file under `prefix` and returns how many were
// removed. Tmp files are the write half of the write-then-rename commit
// idiom; any that survive a process death are by definition uncommitted
// and safe to drop. Transient delete errors retry per `policy`; a file
// already gone (raced away) is not an error.
StatusOr<int64_t> SweepPartialFiles(SharedFileSystem* fs,
                                    const std::string& prefix,
                                    const RetryPolicy& policy = {},
                                    ReliableIoCounters* io = nullptr);

}  // namespace sigmund::sfs

#endif  // SIGMUND_SFS_RELIABLE_IO_H_
