#include "sfs/shared_filesystem.h"

namespace sigmund::sfs {

void FileTransferLedger::RecordTransfer(const std::string& from_cell,
                                        const std::string& to_cell,
                                        int64_t bytes) {
  if (from_cell == to_cell) return;  // local access is free
  total_bytes_ += bytes;
  ++transfer_count_;
}

void FileTransferLedger::Reset() {
  total_bytes_ = 0;
  transfer_count_ = 0;
}

}  // namespace sigmund::sfs
