#ifndef SIGMUND_SFS_MEM_FILESYSTEM_H_
#define SIGMUND_SFS_MEM_FILESYSTEM_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sfs/shared_filesystem.h"

namespace sigmund::sfs {

// In-memory SharedFileSystem. Thread-safe. The std::map keeps List()
// naturally sorted and prefix scans cheap.
class MemFileSystem : public SharedFileSystem {
 public:
  MemFileSystem() = default;

  Status Write(const std::string& path, const std::string& data) override;
  StatusOr<std::string> Read(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& path) const override;
  StatusOr<std::vector<std::string>> List(
      const std::string& prefix) const override;
  StatusOr<int64_t> FileSize(const std::string& path) const override;

  // Total bytes stored (for memory-accounting experiments).
  int64_t TotalBytes() const;

  // Number of files.
  int64_t FileCount() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
};

}  // namespace sigmund::sfs

#endif  // SIGMUND_SFS_MEM_FILESYSTEM_H_
