#include "sfs/fault_injection.h"

#include <utility>

#include "common/hash.h"
#include "common/random.h"

namespace sigmund::sfs {

namespace {

// FNV-1a over the path, mixed with the op and access index via SplitMix64.
// Cheap, stable across platforms, and good enough to decorrelate draws.
// Chains from this module's historical offset basis (a truncated FNV
// constant that predates common/hash.h) so seeded chaos profiles keep
// drawing the exact fault schedules their tests were tuned against.
constexpr uint64_t kFaultScheduleBasis = 1469598103934665603ull;
uint64_t HashPath(std::string_view path) {
  return Fnv1a64(path, kFaultScheduleBasis);
}

}  // namespace

FaultInjectingFileSystem::FaultInjectingFileSystem(SharedFileSystem* base,
                                                   FaultProfile profile)
    : base_(base), profile_(std::move(profile)) {}

void FaultInjectingFileSystem::SetMetrics(obs::MetricRegistry* registry) {
  metrics_.store(registry);
}

void FaultInjectingFileSystem::CountFault(std::atomic<int64_t>* counter,
                                          const char* op) const {
  counter->fetch_add(1);
  obs::MetricRegistry* registry = metrics_.load();
  if (registry != nullptr) {
    registry->GetCounter("sfs_faults_injected_total", {{"op", op}})->Add(1);
  }
}

bool FaultInjectingFileSystem::ShouldFault(Op op, const std::string& path,
                                           double prob) const {
  if (!enabled_.load() || prob <= 0.0) return false;
  uint64_t nth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nth = access_counts_[{static_cast<int>(op), path}]++;
  }
  uint64_t seed = SplitMix64(profile_.seed) ^ SplitMix64(HashPath(path)) ^
                  SplitMix64((nth << 8) | static_cast<uint64_t>(op));
  Rng rng(seed);
  return rng.Bernoulli(prob);
}

std::string FaultInjectingFileSystem::TearBlob(const std::string& path,
                                               const std::string& data) const {
  Rng rng(SplitMix64(profile_.seed ^ 0x7e47u) ^ SplitMix64(HashPath(path)));
  if (data.empty() || rng.Bernoulli(0.5)) {
    // Garbage tail: flip some bytes at the end / append junk.
    std::string torn = data;
    size_t junk = 1 + static_cast<size_t>(rng.Uniform(16));
    for (size_t i = 0; i < junk; ++i) {
      torn.push_back(static_cast<char>(rng.Uniform(256)));
    }
    return torn;
  }
  // Truncation: keep a strict prefix (possibly empty).
  size_t keep = static_cast<size_t>(rng.Uniform(data.size()));
  return data.substr(0, keep);
}

Status FaultInjectingFileSystem::Write(const std::string& path,
                                       const std::string& data) {
  if (ShouldFault(Op::kWrite, path, profile_.write_error_prob)) {
    CountFault(&counters_.write_errors, "write");
    return UnavailableError("injected write fault: " + path);
  }
  if (ShouldFault(Op::kTornWrite, path, profile_.torn_write_prob)) {
    CountFault(&counters_.torn_writes, "torn_write");
    // The write "succeeds" from the caller's point of view but the stored
    // bytes are wrong — exactly the failure checksummed framing exists for.
    return base_->Write(path, TearBlob(path, data));
  }
  return base_->Write(path, data);
}

StatusOr<std::string> FaultInjectingFileSystem::Read(
    const std::string& path) const {
  if (ShouldFault(Op::kRead, path, profile_.read_error_prob)) {
    CountFault(&counters_.read_errors, "read");
    return UnavailableError("injected read fault: " + path);
  }
  return base_->Read(path);
}

Status FaultInjectingFileSystem::Delete(const std::string& path) {
  if (ShouldFault(Op::kDelete, path, profile_.delete_error_prob)) {
    CountFault(&counters_.delete_errors, "delete");
    return UnavailableError("injected delete fault: " + path);
  }
  return base_->Delete(path);
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  if (ShouldFault(Op::kRename, from, profile_.rename_error_prob)) {
    CountFault(&counters_.rename_errors, "rename");
    return UnavailableError("injected rename fault: " + from);
  }
  return base_->Rename(from, to);
}

bool FaultInjectingFileSystem::Exists(const std::string& path) const {
  return base_->Exists(path);
}

StatusOr<std::vector<std::string>> FaultInjectingFileSystem::List(
    const std::string& prefix) const {
  if (ShouldFault(Op::kList, prefix, profile_.list_error_prob)) {
    CountFault(&counters_.list_errors, "list");
    return UnavailableError("injected list fault: " + prefix);
  }
  return base_->List(prefix);
}

StatusOr<int64_t> FaultInjectingFileSystem::FileSize(
    const std::string& path) const {
  return base_->FileSize(path);
}

}  // namespace sigmund::sfs
