#ifndef SIGMUND_SFS_SHARED_FILESYSTEM_H_
#define SIGMUND_SFS_SHARED_FILESYSTEM_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "common/status.h"

namespace sigmund::sfs {

// GFS stand-in: a flat namespace of immutable-ish blobs addressed by path.
// All Sigmund pipeline state (training data shards, config records, model
// checkpoints, materialized recommendations) flows through this interface,
// exactly as the paper's pipeline flows through GFS.
//
// Paths are slash-separated strings; there is no directory object, but
// List() supports prefix queries, which is all MapReduce needs.
//
// Implementations must be thread-safe: checkpointing writes concurrently
// with training reads.
//
// Every operation except Exists() can fail with kUnavailable — a
// transient storage fault that a retry may heal (see common/retry.h and
// the FaultInjectingFileSystem decorator); callers on the daily-pipeline
// path must treat such errors as routine, not fatal.
class SharedFileSystem {
 public:
  virtual ~SharedFileSystem() = default;

  // Creates or overwrites the file at `path`.
  virtual Status Write(const std::string& path, const std::string& data) = 0;

  // Reads the whole file. kNotFound if absent.
  virtual StatusOr<std::string> Read(const std::string& path) const = 0;

  // Removes the file. kNotFound if absent.
  virtual Status Delete(const std::string& path) = 0;

  // Atomically renames `from` to `to` (used for checkpoint commit: write to
  // a temp path, then rename). Overwrites `to` if present.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual bool Exists(const std::string& path) const = 0;

  // All paths with the given prefix, sorted.
  virtual StatusOr<std::vector<std::string>> List(
      const std::string& prefix) const = 0;

  // Size in bytes, kNotFound if absent.
  virtual StatusOr<int64_t> FileSize(const std::string& path) const = 0;
};

// Records cross-cell data movement so experiments can account for the
// network cost of migrating training data to the cell where computation
// runs (Section IV-B1 of the paper).
class FileTransferLedger {
 public:
  // Notes that `bytes` moved from `from_cell` to `to_cell`.
  void RecordTransfer(const std::string& from_cell, const std::string& to_cell,
                      int64_t bytes);

  int64_t total_bytes() const { return total_bytes_; }
  int64_t transfer_count() const { return transfer_count_; }

  void Reset();

 private:
  int64_t total_bytes_ = 0;
  int64_t transfer_count_ = 0;
};

}  // namespace sigmund::sfs

#endif  // SIGMUND_SFS_SHARED_FILESYSTEM_H_
