#include "sfs/reliable_io.h"

#include "common/binary_io.h"
#include "common/string_util.h"

namespace sigmund::sfs {

namespace {

// Upper bound on write→verify→rewrite rounds. Each round's torn-write
// draw is independent, so with tear probability p the chance of all
// rounds tearing is p^8 — negligible for any sane chaos profile.
constexpr int kMaxVerifyRounds = 8;

}  // namespace

Status WriteChecksummedFile(SharedFileSystem* fs, const std::string& path,
                            std::string_view payload,
                            const RetryPolicy& policy,
                            ReliableIoCounters* io) {
  const std::string frame = WriteChecksummedFrame(payload);
  RetryStats* retry_stats = io != nullptr ? &io->retry : nullptr;
  bool healed_corruption = false;
  for (int round = 0; round < kMaxVerifyRounds; ++round) {
    Status write_status = RetryWithPolicy(policy, retry_stats, [&] {
      return fs->Write(path, frame);
    });
    SIGMUND_RETURN_IF_ERROR(write_status);

    // Read-back verify: the storage layer may have acknowledged the write
    // yet persisted torn bytes. Byte-compare against the intended frame.
    StatusOr<std::string> stored =
        RetryWithPolicy<std::string>(policy, retry_stats, [&] {
          return fs->Read(path);
        });
    SIGMUND_RETURN_IF_ERROR(stored.status());
    if (*stored == frame) {
      if (healed_corruption && io != nullptr) {
        io->corruptions_healed.fetch_add(1);
      }
      return OkStatus();
    }
    if (io != nullptr) io->corruptions_detected.fetch_add(1);
    healed_corruption = true;
  }
  return DataLossError(
      StrFormat("write of %s failed verification %d times in a row",
                path.c_str(), kMaxVerifyRounds));
}

StatusOr<std::string> ReadChecksummedFile(const SharedFileSystem* fs,
                                          const std::string& path,
                                          const RetryPolicy& policy,
                                          ReliableIoCounters* io) {
  RetryStats* retry_stats = io != nullptr ? &io->retry : nullptr;
  StatusOr<std::string> stored =
      RetryWithPolicy<std::string>(policy, retry_stats, [&] {
        return fs->Read(path);
      });
  SIGMUND_RETURN_IF_ERROR(stored.status());
  StatusOr<std::string> payload = ReadChecksummedFrame(*stored);
  if (!payload.ok() && io != nullptr) {
    io->corruptions_detected.fetch_add(1);
  }
  return payload;
}

}  // namespace sigmund::sfs
