#include "sfs/reliable_io.h"

#include <string_view>

#include "common/binary_io.h"
#include "common/string_util.h"

namespace sigmund::sfs {

namespace {

// Upper bound on write→verify→rewrite rounds. Each round's torn-write
// draw is independent, so with tear probability p the chance of all
// rounds tearing is p^8 — negligible for any sane chaos profile.
constexpr int kMaxVerifyRounds = 8;

// RAII latency sample: observes elapsed micros into `histogram` (if any)
// when it goes out of scope.
class ScopedLatency {
 public:
  ScopedLatency(obs::Histogram* histogram, const Clock* clock)
      : histogram_(histogram),
        clock_(histogram != nullptr
                   ? (clock != nullptr ? clock : RealClock::Get())
                   : nullptr),
        start_micros_(clock_ != nullptr ? clock_->NowMicros() : 0) {}

  ~ScopedLatency() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          static_cast<double>(clock_->NowMicros() - start_micros_));
    }
  }

 private:
  obs::Histogram* histogram_;
  const Clock* clock_;
  int64_t start_micros_;
};

}  // namespace

void ReliableIoCounters::SetMetrics(obs::MetricRegistry* registry,
                                    const Clock* time_source) {
  metrics = registry;
  clock = time_source;
  if (registry == nullptr) {
    retry.retries_counter = nullptr;
    retry.exhaustions_counter = nullptr;
    corruptions_detected_counter = nullptr;
    corruptions_healed_counter = nullptr;
    read_micros = nullptr;
    write_micros = nullptr;
    return;
  }
  retry.retries_counter = registry->GetCounter("sfs_retries_total");
  retry.exhaustions_counter =
      registry->GetCounter("sfs_retry_exhaustions_total");
  corruptions_detected_counter =
      registry->GetCounter("sfs_corruptions_detected_total");
  corruptions_healed_counter =
      registry->GetCounter("sfs_corruptions_healed_total");
  read_micros = registry->GetHistogram("sfs_op_micros", {{"op", "read"}});
  write_micros = registry->GetHistogram("sfs_op_micros", {{"op", "write"}});
}

void ReliableIoCounters::CountCorruptionDetected() {
  corruptions_detected.fetch_add(1);
  if (corruptions_detected_counter != nullptr) {
    corruptions_detected_counter->Add(1);
  }
}

void ReliableIoCounters::CountCorruptionHealed() {
  corruptions_healed.fetch_add(1);
  if (corruptions_healed_counter != nullptr) {
    corruptions_healed_counter->Add(1);
  }
}

Status WriteChecksummedFile(SharedFileSystem* fs, const std::string& path,
                            std::string_view payload,
                            const RetryPolicy& policy,
                            ReliableIoCounters* io) {
  ScopedLatency latency(io != nullptr ? io->write_micros : nullptr,
                        io != nullptr ? io->clock : nullptr);
  const std::string frame = WriteChecksummedFrame(payload);
  RetryStats* retry_stats = io != nullptr ? &io->retry : nullptr;
  bool healed_corruption = false;
  for (int round = 0; round < kMaxVerifyRounds; ++round) {
    Status write_status = RetryWithPolicy(policy, retry_stats, [&] {
      return fs->Write(path, frame);
    });
    SIGMUND_RETURN_IF_ERROR(write_status);

    // Read-back verify: the storage layer may have acknowledged the write
    // yet persisted torn bytes. Byte-compare against the intended frame.
    StatusOr<std::string> stored =
        RetryWithPolicy<std::string>(policy, retry_stats, [&] {
          return fs->Read(path);
        });
    SIGMUND_RETURN_IF_ERROR(stored.status());
    if (*stored == frame) {
      if (healed_corruption && io != nullptr) io->CountCorruptionHealed();
      return OkStatus();
    }
    if (io != nullptr) io->CountCorruptionDetected();
    healed_corruption = true;
  }
  return DataLossError(
      StrFormat("write of %s failed verification %d times in a row",
                path.c_str(), kMaxVerifyRounds));
}

StatusOr<std::string> ReadChecksummedFile(const SharedFileSystem* fs,
                                          const std::string& path,
                                          const RetryPolicy& policy,
                                          ReliableIoCounters* io) {
  ScopedLatency latency(io != nullptr ? io->read_micros : nullptr,
                        io != nullptr ? io->clock : nullptr);
  RetryStats* retry_stats = io != nullptr ? &io->retry : nullptr;
  StatusOr<std::string> stored =
      RetryWithPolicy<std::string>(policy, retry_stats, [&] {
        return fs->Read(path);
      });
  SIGMUND_RETURN_IF_ERROR(stored.status());
  StatusOr<std::string> payload = ReadChecksummedFrame(*stored);
  if (!payload.ok() && io != nullptr) io->CountCorruptionDetected();
  return payload;
}

StatusOr<int64_t> SweepPartialFiles(SharedFileSystem* fs,
                                    const std::string& prefix,
                                    const RetryPolicy& policy,
                                    ReliableIoCounters* io) {
  RetryStats* retry_stats = io != nullptr ? &io->retry : nullptr;
  StatusOr<std::vector<std::string>> paths =
      RetryWithPolicy<std::vector<std::string>>(policy, retry_stats, [&] {
        return fs->List(prefix);
      });
  SIGMUND_RETURN_IF_ERROR(paths.status());
  int64_t deleted = 0;
  constexpr std::string_view kTmpSuffix = ".tmp";
  for (const std::string& path : *paths) {
    if (path.size() < kTmpSuffix.size() ||
        std::string_view(path).substr(path.size() - kTmpSuffix.size()) !=
            kTmpSuffix) {
      continue;
    }
    Status status = RetryWithPolicy(policy, retry_stats, [&] {
      Status s = fs->Delete(path);
      // Already gone: someone else swept it; that is success.
      return s.code() == StatusCode::kNotFound ? OkStatus() : s;
    });
    SIGMUND_RETURN_IF_ERROR(status);
    ++deleted;
  }
  return deleted;
}

}  // namespace sigmund::sfs
