#include "sfs/mem_filesystem.h"

namespace sigmund::sfs {

Status MemFileSystem::Write(const std::string& path, const std::string& data) {
  if (path.empty()) return InvalidArgumentError("empty path");
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = data;
  return OkStatus();
}

StatusOr<std::string> MemFileSystem::Read(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return NotFoundError("no such file: " + path);
  return it->second;
}

Status MemFileSystem::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return NotFoundError("no such file: " + path);
  files_.erase(it);
  return OkStatus();
}

Status MemFileSystem::Rename(const std::string& from, const std::string& to) {
  if (to.empty()) return InvalidArgumentError("empty destination path");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return NotFoundError("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return OkStatus();
}

bool MemFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

StatusOr<std::vector<std::string>> MemFileSystem::List(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> result;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    result.push_back(it->first);
  }
  return result;
}

StatusOr<int64_t> MemFileSystem::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return NotFoundError("no such file: " + path);
  return static_cast<int64_t>(it->second.size());
}

int64_t MemFileSystem::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [path, data] : files_) total += data.size();
  return total;
}

int64_t MemFileSystem::FileCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(files_.size());
}

}  // namespace sigmund::sfs
