#ifndef SIGMUND_SFS_LOCAL_FILESYSTEM_H_
#define SIGMUND_SFS_LOCAL_FILESYSTEM_H_

#include <string>
#include <vector>

#include "sfs/shared_filesystem.h"

namespace sigmund::sfs {

// SharedFileSystem backed by a local directory, for state that must
// survive the process (models, checkpoints, recommendation batches
// between daily runs). POSIX I/O only — the style guide bans
// <filesystem>.
//
// SFS paths are slash-separated logical names; on disk each file is
// stored flat inside `root` with '/' percent-encoded in the filename, so
// no directory hierarchy has to be managed and prefix List() is a single
// directory scan. Rename is atomic via ::rename on the same filesystem.
//
// Thread-safe for distinct paths; concurrent writers to the *same* path
// get last-writer-wins, like the in-memory implementation.
class LocalDirFileSystem : public SharedFileSystem {
 public:
  // Creates `root` (one level) if missing; aborts on failure.
  explicit LocalDirFileSystem(std::string root);

  Status Write(const std::string& path, const std::string& data) override;
  StatusOr<std::string> Read(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& path) const override;
  StatusOr<std::vector<std::string>> List(
      const std::string& prefix) const override;
  StatusOr<int64_t> FileSize(const std::string& path) const override;

  const std::string& root() const { return root_; }

  // Filename <-> logical path mapping (exposed for tests).
  static std::string Encode(const std::string& path);
  static StatusOr<std::string> Decode(const std::string& filename);

 private:
  std::string DiskPath(const std::string& path) const;

  std::string root_;
};

}  // namespace sigmund::sfs

#endif  // SIGMUND_SFS_LOCAL_FILESYSTEM_H_
