#ifndef SIGMUND_SFS_FAULT_INJECTION_H_
#define SIGMUND_SFS_FAULT_INJECTION_H_

#include <stdint.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::sfs {

// Probabilities for each fault class, all in [0, 1]. The default profile
// injects nothing, so a FaultInjectingFileSystem with a default profile
// behaves exactly like its base filesystem.
struct FaultProfile {
  // Transient kUnavailable errors: the operation fails without touching
  // state, and retrying the identical call can succeed.
  double read_error_prob = 0.0;
  double write_error_prob = 0.0;
  double rename_error_prob = 0.0;
  double delete_error_prob = 0.0;
  double list_error_prob = 0.0;

  // Torn writes: Write() returns OK but the stored blob is silently
  // truncated at a random point or has a garbage tail appended. Models a
  // writer crashing mid-stream or a replica going bad; only a checksum
  // at read time can catch it.
  double torn_write_prob = 0.0;

  // Seed for the deterministic fault schedule. Two runs with the same
  // profile and the same per-path access sequence inject identical faults.
  uint64_t seed = 1;
};

// Counters for each fault actually injected. Readable while the
// filesystem is in use.
struct FaultCounters {
  std::atomic<int64_t> read_errors{0};
  std::atomic<int64_t> write_errors{0};
  std::atomic<int64_t> rename_errors{0};
  std::atomic<int64_t> delete_errors{0};
  std::atomic<int64_t> list_errors{0};
  std::atomic<int64_t> torn_writes{0};

  int64_t total() const {
    return read_errors.load() + write_errors.load() + rename_errors.load() +
           delete_errors.load() + list_errors.load() + torn_writes.load();
  }
};

// Decorator that wraps any SharedFileSystem and injects faults per the
// profile. The base filesystem is borrowed, not owned.
//
// Fault decisions are deterministic per (operation, path, n-th access of
// that path by that operation): the draw is seeded from a hash of those
// three values plus the profile seed, so the fault schedule does not
// depend on thread interleaving — only on how many times each caller
// touches each path. This is what lets the chaos test compare a faulty
// run against a fault-free run.
class FaultInjectingFileSystem : public SharedFileSystem {
 public:
  FaultInjectingFileSystem(SharedFileSystem* base, FaultProfile profile);

  Status Write(const std::string& path, const std::string& data) override;
  StatusOr<std::string> Read(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& path) const override;
  StatusOr<std::vector<std::string>> List(
      const std::string& prefix) const override;
  StatusOr<int64_t> FileSize(const std::string& path) const override;

  const FaultCounters& counters() const { return counters_; }

  // Optional: also count every injected fault into
  // sfs_faults_injected_total{op=...} of `registry` (borrowed; null
  // disconnects). Purely additive — the fault schedule is unchanged.
  void SetMetrics(obs::MetricRegistry* registry);

  // Master switch; when disabled every call passes straight through.
  // Lets tests stage data cleanly before turning chaos on.
  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(); }

 private:
  enum class Op { kRead, kWrite, kRename, kDelete, kList, kTornWrite };

  // True if the n-th `op` access to `path` should fault with probability
  // `prob`. Bumps the access counter as a side effect.
  bool ShouldFault(Op op, const std::string& path, double prob) const;

  // Produces the corrupted blob for a torn write of `data`.
  std::string TearBlob(const std::string& path, const std::string& data) const;

  // Bumps the per-op counter and, when wired, the registry mirror.
  void CountFault(std::atomic<int64_t>* counter, const char* op) const;

  SharedFileSystem* const base_;
  const FaultProfile profile_;
  std::atomic<obs::MetricRegistry*> metrics_{nullptr};
  std::atomic<bool> enabled_{true};
  mutable FaultCounters counters_;  // Read/List are const but do count

  mutable std::mutex mu_;
  // (op, path) -> number of accesses so far.
  mutable std::map<std::pair<int, std::string>, uint64_t> access_counts_;
};

}  // namespace sigmund::sfs

#endif  // SIGMUND_SFS_FAULT_INJECTION_H_
