#include "sfs/local_filesystem.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::sfs {

namespace {

bool IsUnreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string LocalDirFileSystem::Encode(const std::string& path) {
  std::string encoded;
  encoded.reserve(path.size());
  for (char c : path) {
    if (IsUnreserved(c)) {
      encoded.push_back(c);
    } else {
      encoded += StrFormat("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return encoded;
}

StatusOr<std::string> LocalDirFileSystem::Decode(
    const std::string& filename) {
  std::string path;
  path.reserve(filename.size());
  for (size_t i = 0; i < filename.size(); ++i) {
    if (filename[i] != '%') {
      path.push_back(filename[i]);
      continue;
    }
    if (i + 2 >= filename.size()) {
      return DataLossError("truncated percent escape: " + filename);
    }
    int hi = HexValue(filename[i + 1]);
    int lo = HexValue(filename[i + 2]);
    if (hi < 0 || lo < 0) {
      return DataLossError("bad percent escape: " + filename);
    }
    path.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return path;
}

LocalDirFileSystem::LocalDirFileSystem(std::string root)
    : root_(std::move(root)) {
  SIGCHECK(!root_.empty());
  if (::mkdir(root_.c_str(), 0755) != 0 && errno != EEXIST) {
    SIGLOG(FATAL) << "cannot create root " << root_ << ": "
                  << std::strerror(errno);
  }
}

std::string LocalDirFileSystem::DiskPath(const std::string& path) const {
  return root_ + "/" + Encode(path);
}

Status LocalDirFileSystem::Write(const std::string& path,
                                 const std::string& data) {
  if (path.empty()) return InvalidArgumentError("empty path");
  // Write to a temp name then rename, so concurrent readers never observe
  // a partial file.
  const std::string tmp =
      DiskPath(path) + StrFormat(".tmp%d", static_cast<int>(::getpid()));
  FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return InternalError(StrFormat("open %s: %s", tmp.c_str(),
                                   std::strerror(errno)));
  }
  size_t written = data.empty()
                       ? 0
                       : std::fwrite(data.data(), 1, data.size(), file);
  int close_result = std::fclose(file);
  if (written != data.size() || close_result != 0) {
    ::unlink(tmp.c_str());
    return InternalError("short write to " + tmp);
  }
  if (::rename(tmp.c_str(), DiskPath(path).c_str()) != 0) {
    ::unlink(tmp.c_str());
    return InternalError(StrFormat("rename %s: %s", tmp.c_str(),
                                   std::strerror(errno)));
  }
  return OkStatus();
}

StatusOr<std::string> LocalDirFileSystem::Read(const std::string& path) const {
  FILE* file = std::fopen(DiskPath(path).c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return NotFoundError("no such file: " + path);
    return InternalError(StrFormat("open %s: %s", path.c_str(),
                                   std::strerror(errno)));
  }
  std::string data;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.append(buffer, n);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return DataLossError("read error on " + path);
  return data;
}

Status LocalDirFileSystem::Delete(const std::string& path) {
  if (::unlink(DiskPath(path).c_str()) != 0) {
    if (errno == ENOENT) return NotFoundError("no such file: " + path);
    return InternalError(StrFormat("unlink %s: %s", path.c_str(),
                                   std::strerror(errno)));
  }
  return OkStatus();
}

Status LocalDirFileSystem::Rename(const std::string& from,
                                  const std::string& to) {
  if (to.empty()) return InvalidArgumentError("empty destination path");
  if (!Exists(from)) return NotFoundError("no such file: " + from);
  if (::rename(DiskPath(from).c_str(), DiskPath(to).c_str()) != 0) {
    return InternalError(StrFormat("rename %s -> %s: %s", from.c_str(),
                                   to.c_str(), std::strerror(errno)));
  }
  return OkStatus();
}

bool LocalDirFileSystem::Exists(const std::string& path) const {
  struct stat info;
  return ::stat(DiskPath(path).c_str(), &info) == 0;
}

StatusOr<std::vector<std::string>> LocalDirFileSystem::List(
    const std::string& prefix) const {
  std::vector<std::string> result;
  DIR* dir = ::opendir(root_.c_str());
  if (dir == nullptr) {
    return InternalError(StrFormat("opendir %s: %s", root_.c_str(),
                                   std::strerror(errno)));
  }
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == ".." ||
        name.find(".tmp") != std::string::npos) {
      continue;
    }
    StatusOr<std::string> path = Decode(name);
    if (!path.ok()) continue;  // foreign file in the root; skip
    if (StartsWith(*path, prefix)) result.push_back(*path);
  }
  ::closedir(dir);
  std::sort(result.begin(), result.end());
  return result;
}

StatusOr<int64_t> LocalDirFileSystem::FileSize(const std::string& path) const {
  struct stat info;
  if (::stat(DiskPath(path).c_str(), &info) != 0) {
    return NotFoundError("no such file: " + path);
  }
  return static_cast<int64_t>(info.st_size);
}

}  // namespace sigmund::sfs
