#ifndef SIGMUND_CORE_GRID_SEARCH_H_
#define SIGMUND_CORE_GRID_SEARCH_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/retailer_data.h"

namespace sigmund::core {

// The hyper-parameter space swept per retailer (§III-C1, §IV-A). The full
// grid is the cross-product of these axes plus per-retailer feature
// switches; it is capped at `max_configs` by seeded random subsampling
// ("we typically restrict to around a hundred for each retailer").
struct GridSpec {
  std::vector<int> factors = {8, 16, 32, 64};  // paper sweeps 5..200
  std::vector<double> learning_rates = {0.05};
  std::vector<double> lambdas_v = {0.1, 0.01, 0.001};
  std::vector<double> lambdas_vc = {0.1, 0.01, 0.001};
  std::vector<uint64_t> seeds = {1};
  std::vector<NegativeSamplerKind> samplers = {
      NegativeSamplerKind::kUniform};
  bool sweep_taxonomy = true;  // try both on and off
  bool sweep_brand = true;     // tried only if coverage clears the bar
  bool sweep_price = false;
  // Feature-selection coverage thresholds (§III-C: <10% brand coverage
  // makes the feature detrimental).
  double min_brand_coverage = 0.10;
  double min_price_coverage = 0.10;
  int num_epochs = 20;
  int max_configs = 100;
};

// Expands the grid for one retailer, applying per-retailer feature
// selection from catalog coverage. Deterministic in `subsample_seed`.
std::vector<HyperParams> BuildGrid(const GridSpec& spec,
                                   const data::Catalog& catalog,
                                   uint64_t subsample_seed);

// A single trained-and-evaluated configuration.
struct TrialResult {
  HyperParams params;
  MetricSet metrics;
  TrainStats stats;
};

// One model-training request — the unit of work a training-job map task
// executes (§IV-B). Pointers are borrowed.
struct TrainRequest {
  const data::Catalog* catalog = nullptr;
  const std::vector<std::vector<data::Interaction>>* train_histories =
      nullptr;
  const std::vector<data::HoldoutExample>* holdout = nullptr;
  HyperParams params;

  // Hogwild threads for the single model (§IV-B2).
  int num_threads = 1;

  // MAP estimation: fraction of items ranked (§III-C2's 10% trick for
  // large retailers). 1.0 = exact.
  double eval_sample_fraction = 1.0;

  // Warm start for incremental training (§III-C3); nullptr = random init.
  const BprModel* warm_start = nullptr;

  // Optional per-epoch hook (checkpointing, early stop). Return false to
  // stop training early.
  std::function<bool(int epoch, const BprModel& model,
                     const TrainStats& stats)>
      epoch_callback;
};

struct TrainOutput {
  BprModel model;
  MetricSet metrics;
  TrainStats stats;
};

// Trains one model per `request` (building training data, co-occurrence
// exclusion, sampler) and evaluates it on the hold-out set. This is the
// Train() function of §IV-B.
StatusOr<TrainOutput> TrainOneModel(const TrainRequest& request);

// Builds a warm-start copy of `previous` for the (possibly grown) catalog:
// existing embeddings are copied, new items get random embeddings, and all
// Adagrad accumulators are reset (§III-C3). Fails if the architecture
// (factors / feature switches) differs.
StatusOr<BprModel> WarmStartFrom(const BprModel& previous,
                                 const data::Catalog* catalog,
                                 const HyperParams& params, Rng* rng);

// Sequentially runs every config in `grid` (the in-process equivalent of
// the full-sweep training job) and returns trials sorted by MAP@10
// descending.
std::vector<TrialResult> RunGridSearch(
    const data::RetailerData& retailer, const data::TrainTestSplit& split,
    const std::vector<HyperParams>& grid, int num_threads,
    double eval_sample_fraction,
    std::vector<BprModel>* models_out = nullptr);

// Top-`k` configurations by MAP@10 (the incremental sweep re-trains only
// these, §IV-A).
std::vector<HyperParams> TopConfigs(const std::vector<TrialResult>& trials,
                                    int k);

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_GRID_SEARCH_H_
