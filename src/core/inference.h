#ifndef SIGMUND_CORE_INFERENCE_H_
#define SIGMUND_CORE_INFERENCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/candidate_selector.h"
#include "core/model.h"

namespace sigmund::core {

// A recommended item with its model score.
struct ScoredItem {
  data::ItemIndex item = data::kInvalidItem;
  double score = 0.0;
};

// Offline-materialized recommendations for one query item: the substitute
// list (shown before the purchase decision) and the accessory/complement
// list (shown after), per Fig. 1 of the paper, plus an optional
// late-funnel substitute variant constrained to the query item's facets
// (§III-D1).
struct ItemRecommendations {
  data::ItemIndex query = data::kInvalidItem;
  std::vector<ScoredItem> view_based;
  std::vector<ScoredItem> purchase_based;
  // Facet-constrained substitutes for late-funnel users; empty unless the
  // inference job materialized them.
  std::vector<ScoredItem> view_based_late;

  // Compact text encoding for MapReduce records / serving store values.
  std::string Serialize() const;
  static StatusOr<ItemRecommendations> Deserialize(const std::string& text);
};

// Ranks candidate-selected items with the BPR model and materializes
// top-K recommendations per item (§III-D). This is the computation the
// inference MapReduce runs in its map phase.
class InferenceEngine {
 public:
  struct Options {
    int top_k = 10;
    CandidateSelector::Options selector;
    // Threads for MaterializeAll (§IV-C2: multi-threading managed in user
    // code within the single map task).
    int num_threads = 1;
    // Also materialize the facet-constrained late-funnel substitute list
    // (§III-D1).
    bool materialize_late_funnel = false;
  };

  // Pointers are borrowed and must outlive the engine.
  InferenceEngine(const BprModel* model, const CandidateSelector* selector);

  // Ranks `candidates` for an arbitrary user context, highest score first.
  std::vector<ScoredItem> RankCandidates(
      const Context& context, const std::vector<data::ItemIndex>& candidates,
      int top_k) const;

  // Recommendations for the single-item context `i` (view-based uses a
  // view context, purchase-based a conversion context).
  ItemRecommendations RecommendForItem(data::ItemIndex i,
                                       const Options& options) const;

  // Materializes recommendations for every item in the catalog.
  std::vector<ItemRecommendations> MaterializeAll(
      const Options& options) const;

  // Naive alternative that scores the full catalog instead of selected
  // candidates — quadratic; kept as the baseline for the scaling
  // experiment (§IV-C1).
  ItemRecommendations RecommendForItemFullScan(data::ItemIndex i,
                                               int top_k) const;

  const BprModel& model() const { return *model_; }

 private:
  const BprModel* model_;
  const CandidateSelector* selector_;
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_INFERENCE_H_
