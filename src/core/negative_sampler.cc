#include "core/negative_sampler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sigmund::core {

namespace {
constexpr int kMaxTries = 32;
}  // namespace

data::ItemIndex UniformSampler::Sample(const TrainingData& data,
                                       data::UserIndex u,
                                       const float* /*user_vec*/,
                                       data::ItemIndex positive,
                                       Rng* rng) const {
  const int n = data.num_items();
  if (n <= 1) return data::kInvalidItem;
  for (int tries = 0; tries < kMaxTries; ++tries) {
    data::ItemIndex j = static_cast<data::ItemIndex>(rng->Uniform(n));
    if (j != positive && !data.Seen(u, j)) return j;
  }
  return data::kInvalidItem;
}

PopularitySampler::PopularitySampler(const std::vector<int64_t>& item_counts,
                                     double alpha) {
  cumulative_.resize(item_counts.size());
  double acc = 0.0;
  for (size_t i = 0; i < item_counts.size(); ++i) {
    // +1 smoothing keeps zero-count items reachable.
    acc += std::pow(static_cast<double>(item_counts[i]) + 1.0, alpha);
    cumulative_[i] = acc;
  }
}

data::ItemIndex PopularitySampler::Sample(const TrainingData& data,
                                          data::UserIndex u,
                                          const float* /*user_vec*/,
                                          data::ItemIndex positive,
                                          Rng* rng) const {
  if (cumulative_.empty()) return data::kInvalidItem;
  const double total = cumulative_.back();
  for (int tries = 0; tries < kMaxTries; ++tries) {
    double target = rng->UniformDouble() * total;
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
    data::ItemIndex j = static_cast<data::ItemIndex>(
        std::min<size_t>(it - cumulative_.begin(), cumulative_.size() - 1));
    if (j != positive && !data.Seen(u, j)) return j;
  }
  return data::kInvalidItem;
}

data::ItemIndex TaxonomySampler::Sample(const TrainingData& data,
                                        data::UserIndex u,
                                        const float* /*user_vec*/,
                                        data::ItemIndex positive,
                                        Rng* rng) const {
  const int n = data.num_items();
  if (n <= 1) return data::kInvalidItem;
  data::ItemIndex fallback = data::kInvalidItem;
  for (int tries = 0; tries < kMaxTries; ++tries) {
    data::ItemIndex j = static_cast<data::ItemIndex>(rng->Uniform(n));
    if (j == positive || data.Seen(u, j)) continue;
    fallback = j;
    if (catalog_->LcaDistance(positive, j) >= min_distance_) return j;
  }
  // No far-away item found; a near item that is at least unseen.
  return fallback;
}

data::ItemIndex AdaptiveSampler::Sample(const TrainingData& data,
                                        data::UserIndex u,
                                        const float* user_vec,
                                        data::ItemIndex positive,
                                        Rng* rng) const {
  data::ItemIndex best = data::kInvalidItem;
  double best_score = -1e30;
  for (int c = 0; c < num_candidates_; ++c) {
    data::ItemIndex j = base_->Sample(data, u, user_vec, positive, rng);
    if (j == data::kInvalidItem) continue;
    if (user_vec == nullptr) return j;
    double score = model_->Score(user_vec, j);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

data::ItemIndex ExclusionSampler::Sample(const TrainingData& data,
                                         data::UserIndex u,
                                         const float* user_vec,
                                         data::ItemIndex positive,
                                         Rng* rng) const {
  data::ItemIndex fallback = data::kInvalidItem;
  for (int tries = 0; tries < 8; ++tries) {
    data::ItemIndex j = base_->Sample(data, u, user_vec, positive, rng);
    if (j == data::kInvalidItem) continue;
    fallback = j;
    if (cooccurrence_->CoViewCount(positive, j) <= max_co_count_ &&
        cooccurrence_->CoBuyCount(positive, j) <= max_co_count_) {
      return j;
    }
  }
  return fallback;
}

std::unique_ptr<NegativeSampler> MakeNegativeSampler(
    const HyperParams& params, const data::Catalog* catalog,
    const TrainingData* data, const BprModel* model,
    const CooccurrenceModel* cooccurrence) {
  SIGCHECK(catalog != nullptr);
  SIGCHECK(data != nullptr);
  std::unique_ptr<NegativeSampler> base;
  switch (params.sampler) {
    case NegativeSamplerKind::kUniform:
      base = std::make_unique<UniformSampler>();
      break;
    case NegativeSamplerKind::kPopularity:
      base = std::make_unique<PopularitySampler>(data->item_counts(),
                                                 /*alpha=*/0.75);
      break;
    case NegativeSamplerKind::kTaxonomy:
      base = std::make_unique<TaxonomySampler>(catalog, /*min_distance=*/3);
      break;
    case NegativeSamplerKind::kAdaptive: {
      SIGCHECK(model != nullptr);
      base = std::make_unique<AdaptiveSampler>(
          model, std::make_unique<UniformSampler>(), /*num_candidates=*/4);
      break;
    }
  }
  if (cooccurrence != nullptr) {
    return std::make_unique<ExclusionSampler>(std::move(base), cooccurrence,
                                              /*max_co_count=*/2);
  }
  return base;
}

}  // namespace sigmund::core
