#include "core/evaluator.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::core {

std::string MetricSet::ToString() const {
  return StrFormat(
      "map@k=%.4f p@k=%.4f recall@k=%.4f ndcg@k=%.4f auc=%.4f "
      "mean_rank=%.1f n=%lld",
      map_at_k, precision_at_k, recall_at_k, ndcg_at_k, auc, mean_rank,
      static_cast<long long>(num_examples));
}

std::vector<float> Evaluator::BuildPhiCache(const BprModel& model) {
  const int d = model.dim();
  const int n = model.catalog().num_items();
  std::vector<float> cache(static_cast<size_t>(n) * d);
  for (data::ItemIndex i = 0; i < n; ++i) {
    model.ItemRepresentation(i, cache.data() + static_cast<size_t>(i) * d);
  }
  return cache;
}

double Evaluator::EstimateRank(const BprModel& model,
                               const std::vector<float>& phi_cache,
                               const TrainingData& train,
                               data::UserIndex user, const float* user_vec,
                               data::ItemIndex target, const Options& options,
                               Rng* rng) {
  const int d = model.dim();
  const int n = model.catalog().num_items();
  const double target_score = model.ScoreWithPhi(
      user_vec, phi_cache.data() + static_cast<size_t>(target) * d);

  const bool sampled = options.item_sample_fraction < 1.0;
  int64_t higher = 0;
  int64_t considered = 0;
  for (data::ItemIndex j = 0; j < n; ++j) {
    if (j == target) continue;
    if (options.exclude_seen && train.Seen(user, j)) continue;
    if (sampled && !rng->Bernoulli(options.item_sample_fraction)) continue;
    ++considered;
    double score = model.ScoreWithPhi(
        user_vec, phi_cache.data() + static_cast<size_t>(j) * d);
    if (score > target_score) ++higher;
  }
  if (!sampled) return 1.0 + higher;
  if (considered == 0) return 1.0;
  // Scale the sampled higher-count back to the full catalog.
  return 1.0 + higher / options.item_sample_fraction;
}

MetricSet Evaluator::Evaluate(const BprModel& model,
                              const TrainingData& train,
                              const std::vector<data::HoldoutExample>& holdout,
                              const Options& options) {
  MetricSet metrics;
  if (holdout.empty()) return metrics;

  Rng rng(options.seed);
  std::vector<float> phi_cache = BuildPhiCache(model);
  std::vector<float> user_vec(model.dim());
  const int n = model.catalog().num_items();

  for (const data::HoldoutExample& example : holdout) {
    Context context =
        train.FullContext(example.user, model.params().context_window);
    model.UserEmbedding(context, user_vec.data());
    double rank = EstimateRank(model, phi_cache, train, example.user,
                               user_vec.data(), example.held_out, options,
                               &rng);
    ++metrics.num_examples;
    metrics.mean_rank += rank;
    if (rank <= options.k) {
      // With a single relevant item, AP = 1/rank when it appears in the
      // top k, else 0; P@k counts it among k slots; recall = hit rate.
      metrics.map_at_k += 1.0 / rank;
      metrics.precision_at_k += 1.0 / options.k;
      metrics.recall_at_k += 1.0;
      metrics.ndcg_at_k += 1.0 / std::log2(rank + 1.0);
    }
    // AUC: fraction of distractors ranked below the held-out item.
    double distractors = std::max(1, n - 1);
    metrics.auc += (distractors - (rank - 1.0)) / distractors;
  }

  const double count = metrics.num_examples;
  metrics.map_at_k /= count;
  metrics.precision_at_k /= count;
  metrics.recall_at_k /= count;
  metrics.ndcg_at_k /= count;
  metrics.auc /= count;
  metrics.mean_rank /= count;
  return metrics;
}

}  // namespace sigmund::core
