#include "core/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sigmund::core {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

StatusOr<ScoreCalibrator> ScoreCalibrator::Fit(
    const std::vector<double>& scores, const std::vector<bool>& clicked) {
  return Fit(scores, clicked, Options());
}

StatusOr<ScoreCalibrator> ScoreCalibrator::Fit(
    const std::vector<double>& scores, const std::vector<bool>& clicked,
    const Options& options) {
  if (scores.size() != clicked.size()) {
    return InvalidArgumentError("scores/clicked size mismatch");
  }
  int positives = 0, negatives = 0;
  for (bool c : clicked) (c ? positives : negatives)++;
  if (positives == 0 || negatives == 0) {
    return FailedPreconditionError(
        "calibration needs both clicks and non-clicks");
  }

  // Newton-Raphson on the 2-parameter logistic log-likelihood.
  double a = 1.0, b = 0.0;
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    double g_a = options.ridge * a, g_b = options.ridge * b;
    double h_aa = options.ridge, h_ab = 0.0, h_bb = options.ridge;
    for (size_t n = 0; n < scores.size(); ++n) {
      double s = scores[n];
      double p = Sigmoid(a * s + b);
      double y = clicked[n] ? 1.0 : 0.0;
      double r = p - y;
      double w = p * (1.0 - p);
      g_a += r * s;
      g_b += r;
      h_aa += w * s * s;
      h_ab += w * s;
      h_bb += w;
    }
    // Solve the 2x2 Newton system H d = g.
    double det = h_aa * h_bb - h_ab * h_ab;
    if (std::abs(det) < 1e-18) break;
    double da = (g_a * h_bb - g_b * h_ab) / det;
    double db = (g_b * h_aa - g_a * h_ab) / det;
    a -= da;
    b -= db;
    if (std::abs(da) + std::abs(db) < options.tolerance) break;
  }
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return InternalError("calibration diverged");
  }
  return ScoreCalibrator(a, b);
}

double ScoreCalibrator::Probability(double score) const {
  return Sigmoid(a_ * score + b_);
}

double ScoreCalibrator::LogLoss(const std::vector<double>& scores,
                                const std::vector<bool>& clicked) const {
  SIGCHECK_EQ(scores.size(), clicked.size());
  if (scores.empty()) return 0.0;
  double loss = 0.0;
  for (size_t n = 0; n < scores.size(); ++n) {
    double p = std::clamp(Probability(scores[n]), 1e-12, 1.0 - 1e-12);
    loss += clicked[n] ? -std::log(p) : -std::log(1.0 - p);
  }
  return loss / scores.size();
}

}  // namespace sigmund::core
