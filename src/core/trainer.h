#ifndef SIGMUND_CORE_TRAINER_H_
#define SIGMUND_CORE_TRAINER_H_

#include <functional>

#include "core/model.h"
#include "core/negative_sampler.h"
#include "core/training_data.h"

namespace sigmund::core {

// Progress of a training run.
struct TrainStats {
  int epochs_run = 0;
  int64_t sgd_steps = 0;
  int64_t skipped_steps = 0;   // no valid negative / empty context
  double last_epoch_loss = 0.0;  // mean BPR loss over the last epoch
};

// Multi-threaded (Hogwild [26]) SGD trainer for BprModel (§III-B1,
// §IV-B2). All threads update the shared parameter arrays without locks;
// conflicting writes are benign races, as in the original Hogwild scheme.
//
// Per SGD step, with probability params.tier_constraint_fraction the
// negative comes from the user's own lower-tier items (the tier
// constraints of §III-B1); otherwise from the configured NegativeSampler.
class BprTrainer {
 public:
  struct Options {
    int num_threads = 1;
    // Epochs to run; <= 0 means model->params().num_epochs. Used by the
    // pipeline to run only the epochs remaining after a checkpoint
    // restore.
    int num_epochs = 0;
    // Steps per epoch; <= 0 means one step per training position.
    int64_t steps_per_epoch = 0;
    // Invoked after every epoch (from the coordinating thread). Return
    // false to stop early. Used by the pipeline for time-based
    // checkpointing and by early-convergence experiments.
    std::function<bool(int epoch, const TrainStats& stats)> epoch_callback;
  };

  // Does not take ownership; all pointers must outlive the trainer.
  BprTrainer(BprModel* model, const TrainingData* data,
             const NegativeSampler* sampler);

  // Runs model->params().num_epochs epochs (or until the callback stops
  // it) and returns aggregate stats.
  TrainStats Train(const Options& options);

  // Runs one SGD step on the given example triple (context, positive,
  // negative); exposed for unit tests of the update rule. Returns the BPR
  // loss of the example *before* the update.
  double Step(const Context& context, data::ItemIndex positive,
              data::ItemIndex negative, Rng* rng);

 private:
  // One SGD step sampled from the data; returns loss or -1 if skipped.
  double SampleAndStep(Rng* rng);

  // Applies the pairwise update given precomputed state.
  double ApplyUpdate(const Context& context, data::ItemIndex positive,
                     data::ItemIndex negative);

  // Adds grad into a row with Adagrad-scaled learning rate.
  void UpdateRow(EmbeddingMatrix* table, int row, const float* grad,
                 double scale_grad, double lambda);

  BprModel* model_;
  const TrainingData* data_;
  const NegativeSampler* sampler_;
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_TRAINER_H_
