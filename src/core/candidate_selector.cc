#include "core/candidate_selector.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "common/logging.h"

namespace sigmund::core {

RepurchaseEstimator RepurchaseEstimator::Build(
    const std::vector<std::vector<data::Interaction>>& histories,
    const data::Catalog& catalog, const Options& options) {
  const int num_categories = catalog.taxonomy().num_categories();
  std::vector<int64_t> buyers(num_categories, 0);
  std::vector<int64_t> repeat_buyers(num_categories, 0);
  std::vector<double> gap_day_sum(num_categories, 0.0);
  std::vector<int64_t> gap_count(num_categories, 0);

  for (const auto& history : histories) {
    // Conversion timestamps per category for this user.
    std::map<data::CategoryId, std::vector<int64_t>> purchases;
    for (const data::Interaction& event : history) {
      if (event.action != data::ActionType::kConversion) continue;
      purchases[catalog.item(event.item).category].push_back(event.timestamp);
    }
    for (auto& [category, times] : purchases) {
      ++buyers[category];
      if (times.size() > 1) {
        ++repeat_buyers[category];
        std::sort(times.begin(), times.end());
        for (size_t k = 1; k < times.size(); ++k) {
          gap_day_sum[category] += (times[k] - times[k - 1]) / 86400.0;
          ++gap_count[category];
        }
      }
    }
  }

  RepurchaseEstimator estimator;
  estimator.repurchasable_.assign(num_categories, false);
  estimator.mean_days_.assign(num_categories, 0.0);
  for (data::CategoryId c = 0; c < num_categories; ++c) {
    if (buyers[c] >= options.min_buyers &&
        static_cast<double>(repeat_buyers[c]) / buyers[c] >=
            options.min_repeat_fraction) {
      estimator.repurchasable_[c] = true;
      estimator.mean_days_[c] =
          gap_count[c] > 0 ? gap_day_sum[c] / gap_count[c] : 0.0;
    }
  }
  return estimator;
}

bool RepurchaseEstimator::IsRepurchasable(data::CategoryId c) const {
  SIGCHECK_GE(c, 0);
  SIGCHECK_LT(c, static_cast<data::CategoryId>(repurchasable_.size()));
  return repurchasable_[c];
}

double RepurchaseEstimator::MeanDaysBetween(data::CategoryId c) const {
  SIGCHECK_GE(c, 0);
  SIGCHECK_LT(c, static_cast<data::CategoryId>(mean_days_.size()));
  return mean_days_[c];
}

int RepurchaseEstimator::CountRepurchasable() const {
  int count = 0;
  for (bool r : repurchasable_) count += r;
  return count;
}

void CandidateSelector::CollectLca(data::ItemIndex i, int k,
                                   std::vector<data::ItemIndex>* out) const {
  const data::CategoryId category = catalog_->item(i).category;
  for (data::CategoryId c :
       catalog_->taxonomy().CategoriesWithinLca(category, k)) {
    const auto& items = catalog_->ItemsInCategory(c);
    out->insert(out->end(), items.begin(), items.end());
  }
}

std::vector<data::ItemIndex> CandidateSelector::Finalize(
    data::ItemIndex query, std::vector<data::ItemIndex> items,
    const Options& options) const {
  // Dedup, drop the query itself (unless re-purchasable logic already kept
  // it deliberately — handled by callers passing it explicitly), apply the
  // late-funnel facet filter, cap.
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());

  std::vector<data::ItemIndex> result;
  result.reserve(std::min<size_t>(items.size(), options.max_candidates));
  const int32_t query_facet = catalog_->item(query).facet;
  for (data::ItemIndex item : items) {
    if (options.late_funnel && catalog_->item(item).facet != query_facet) {
      continue;
    }
    result.push_back(item);
    if (static_cast<int>(result.size()) >= options.max_candidates) break;
  }
  return result;
}

std::vector<data::ItemIndex> CandidateSelector::ViewBased(
    data::ItemIndex i, const Options& options) const {
  std::vector<data::ItemIndex> pool;
  const auto& neighbors = cooccurrence_->CoViewed(i);
  const int expand = std::min<int>(options.max_co_items,
                                   static_cast<int>(neighbors.size()));
  for (int n = 0; n < expand; ++n) {
    CollectLca(neighbors[n].item, options.view_lca_k, &pool);
  }
  if (pool.empty()) {
    // Cold item: no co-view data; use its own taxonomy neighborhood.
    CollectLca(i, options.view_lca_k, &pool);
  }
  pool.erase(std::remove(pool.begin(), pool.end(), i), pool.end());
  return Finalize(i, std::move(pool), options);
}

std::vector<data::ItemIndex> CandidateSelector::PurchaseBased(
    data::ItemIndex i, const Options& options) const {
  const data::CategoryId category = catalog_->item(i).category;
  const bool repurchasable = repurchase_->IsRepurchasable(category);

  std::vector<data::ItemIndex> pool;
  const auto& neighbors = cooccurrence_->CoBought(i);
  const int expand = std::min<int>(options.max_co_items,
                                   static_cast<int>(neighbors.size()));
  for (int n = 0; n < expand; ++n) {
    CollectLca(neighbors[n].item, options.purchase_lca_k, &pool);
  }
  if (pool.empty()) {
    // No co-purchase data: fall back to a wider taxonomy neighborhood so
    // cold items still get accessory candidates.
    CollectLca(i, options.purchase_lca_k + 1, &pool);
  }

  if (!repurchasable) {
    // Remove substitutes: everything within lca_1 of i (same category).
    std::unordered_set<data::ItemIndex> substitutes;
    std::vector<data::ItemIndex> own;
    CollectLca(i, 1, &own);
    substitutes.insert(own.begin(), own.end());
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [&substitutes](data::ItemIndex item) {
                                return substitutes.count(item) > 0;
                              }),
               pool.end());
  } else {
    // Re-purchasable: keep same-category items and the item itself for
    // periodic re-recommendation.
    std::vector<data::ItemIndex> own;
    CollectLca(i, 1, &own);
    pool.insert(pool.end(), own.begin(), own.end());
  }
  if (!repurchasable) {
    pool.erase(std::remove(pool.begin(), pool.end(), i), pool.end());
  }
  return Finalize(i, std::move(pool), options);
}

}  // namespace sigmund::core
