#include "core/wrmf.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace sigmund::core {

namespace {

// Sparse observations in both orientations: obs[u] = {(item, r_ui)}.
struct Observations {
  std::vector<std::vector<std::pair<int, double>>> by_user;
  std::vector<std::vector<std::pair<int, double>>> by_item;
};

Observations CollectObservations(
    const std::vector<std::vector<data::Interaction>>& histories,
    int num_items) {
  Observations obs;
  obs.by_user.resize(histories.size());
  obs.by_item.resize(num_items);
  for (size_t u = 0; u < histories.size(); ++u) {
    std::unordered_map<data::ItemIndex, double> strengths;
    for (const data::Interaction& event : histories[u]) {
      strengths[event.item] += WrmfStrength(event.action);
    }
    for (const auto& [item, r] : strengths) {
      obs.by_user[u].emplace_back(item, r);
      obs.by_item[item].emplace_back(static_cast<int>(u), r);
    }
  }
  return obs;
}

// Dense symmetric positive-definite solve via Cholesky (A is F x F,
// row-major; overwritten). Dimensions here are <= ~200.
void SolveSpd(std::vector<double>* a_in, std::vector<double>* b_in, int n) {
  std::vector<double>& a = *a_in;
  std::vector<double>& b = *b_in;
  // Cholesky: A = L L^T (lower triangle stored in-place).
  for (int j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (int k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    SIGCHECK_GT(diag, 0.0);
    diag = std::sqrt(diag);
    a[j * n + j] = diag;
    for (int i = j + 1; i < n; ++i) {
      double sum = a[i * n + j];
      for (int k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = sum / diag;
    }
  }
  // Forward substitution: L z = b.
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  // Back substitution: L^T x = z.
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    for (int k = i + 1; k < n; ++k) sum -= a[k * n + i] * b[k];
    b[i] = sum / a[i * n + i];
  }
}

// Gram matrix F^T F of a row-major (rows x dim) factor table.
std::vector<double> Gram(const std::vector<float>& factors, int rows,
                         int dim) {
  std::vector<double> gram(static_cast<size_t>(dim) * dim, 0.0);
  for (int r = 0; r < rows; ++r) {
    const float* row = factors.data() + static_cast<size_t>(r) * dim;
    for (int a = 0; a < dim; ++a) {
      for (int b = a; b < dim; ++b) {
        gram[a * dim + b] += static_cast<double>(row[a]) * row[b];
      }
    }
  }
  for (int a = 0; a < dim; ++a) {
    for (int b = 0; b < a; ++b) gram[a * dim + b] = gram[b * dim + a];
  }
  return gram;
}

// One least-squares solve for a single row (user or item) against the
// fixed other-side factors. `gram` = other^T other.
void SolveRow(const std::vector<std::pair<int, double>>& row_obs,
              const std::vector<float>& other_factors,
              const std::vector<double>& gram, int dim, double alpha,
              double lambda, float* out) {
  std::vector<double> a = gram;
  for (int k = 0; k < dim; ++k) a[k * dim + k] += lambda;
  std::vector<double> b(dim, 0.0);
  for (const auto& [other, r] : row_obs) {
    const float* y = other_factors.data() + static_cast<size_t>(other) * dim;
    const double c = 1.0 + alpha * r;
    // A += (c - 1) y y^T ; b += c y   (p = 1 for observed entries).
    for (int i = 0; i < dim; ++i) {
      b[i] += c * y[i];
      for (int j = 0; j < dim; ++j) {
        a[i * dim + j] += (c - 1.0) * static_cast<double>(y[i]) * y[j];
      }
    }
  }
  SolveSpd(&a, &b, dim);
  for (int k = 0; k < dim; ++k) out[k] = static_cast<float>(b[k]);
}

}  // namespace

double WrmfStrength(data::ActionType action) {
  return 1.0 + data::ActionStrength(action);
}

WrmfModel::WrmfModel(int num_users, int num_items, const Config& config)
    : config_(config), num_users_(num_users), num_items_(num_items) {
  user_factors_.assign(static_cast<size_t>(num_users) * config.num_factors,
                       0.0f);
  item_factors_.assign(static_cast<size_t>(num_items) * config.num_factors,
                       0.0f);
}

WrmfModel WrmfModel::Train(
    const std::vector<std::vector<data::Interaction>>& histories,
    int num_items, const Config& config) {
  SIGCHECK_GT(config.num_factors, 0);
  WrmfModel model(static_cast<int>(histories.size()), num_items, config);
  const int dim = config.num_factors;

  Rng rng(config.seed);
  const double stddev = config.init_scale / std::sqrt(dim);
  for (float& v : model.item_factors_) {
    v = static_cast<float>(rng.Gaussian(0.0, stddev));
  }

  Observations obs = CollectObservations(histories, num_items);

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    // Users against fixed items.
    std::vector<double> yty = Gram(model.item_factors_, num_items, dim);
    for (int u = 0; u < model.num_users_; ++u) {
      SolveRow(obs.by_user[u], model.item_factors_, yty, dim, config.alpha,
               config.lambda,
               model.user_factors_.data() + static_cast<size_t>(u) * dim);
    }
    // Items against fixed users.
    std::vector<double> xtx = Gram(model.user_factors_, model.num_users_, dim);
    for (int i = 0; i < num_items; ++i) {
      SolveRow(obs.by_item[i], model.user_factors_, xtx, dim, config.alpha,
               config.lambda,
               model.item_factors_.data() + static_cast<size_t>(i) * dim);
    }
  }
  // Trailing user pass: served user factors must be the least-squares
  // solution against the *final* item factors (this also makes FoldInUser
  // of a training history reproduce the trained factor exactly).
  std::vector<double> yty = Gram(model.item_factors_, num_items, dim);
  for (int u = 0; u < model.num_users_; ++u) {
    SolveRow(obs.by_user[u], model.item_factors_, yty, dim, config.alpha,
             config.lambda,
             model.user_factors_.data() + static_cast<size_t>(u) * dim);
  }
  return model;
}

double WrmfModel::Score(data::UserIndex u, data::ItemIndex i) const {
  const float* x = user_factor(u);
  const float* y = item_factor(i);
  double sum = 0.0;
  for (int k = 0; k < dim(); ++k) sum += static_cast<double>(x[k]) * y[k];
  return sum;
}

std::vector<float> WrmfModel::FoldInUser(
    const std::vector<data::Interaction>& history) const {
  std::unordered_map<data::ItemIndex, double> strengths;
  for (const data::Interaction& event : history) {
    strengths[event.item] += WrmfStrength(event.action);
  }
  std::vector<std::pair<int, double>> row_obs(strengths.begin(),
                                              strengths.end());
  std::vector<double> yty = Gram(item_factors_, num_items_, dim());
  std::vector<float> out(dim());
  SolveRow(row_obs, item_factors_, yty, dim(), config_.alpha, config_.lambda,
           out.data());
  return out;
}

MetricSet WrmfModel::EvaluateHoldout(
    const std::vector<std::vector<data::Interaction>>& train_histories,
    const std::vector<data::HoldoutExample>& holdout, int k) const {
  MetricSet metrics;
  if (holdout.empty()) return metrics;
  for (const data::HoldoutExample& example : holdout) {
    std::unordered_set<data::ItemIndex> seen;
    for (const data::Interaction& event : train_histories[example.user]) {
      seen.insert(event.item);
    }
    const double target = Score(example.user, example.held_out);
    int64_t higher = 0;
    for (data::ItemIndex j = 0; j < num_items_; ++j) {
      if (j == example.held_out || seen.count(j) > 0) continue;
      if (Score(example.user, j) > target) ++higher;
    }
    const double rank = 1.0 + higher;
    ++metrics.num_examples;
    metrics.mean_rank += rank;
    if (rank <= k) {
      metrics.map_at_k += 1.0 / rank;
      metrics.precision_at_k += 1.0 / k;
      metrics.recall_at_k += 1.0;
      metrics.ndcg_at_k += 1.0 / std::log2(rank + 1.0);
    }
    double distractors = std::max(1, num_items_ - 1);
    metrics.auc += (distractors - (rank - 1.0)) / distractors;
  }
  const double count = metrics.num_examples;
  metrics.map_at_k /= count;
  metrics.precision_at_k /= count;
  metrics.recall_at_k /= count;
  metrics.ndcg_at_k /= count;
  metrics.auc /= count;
  metrics.mean_rank /= count;
  return metrics;
}

double WrmfModel::Objective(
    const std::vector<std::vector<data::Interaction>>& histories) const {
  Observations obs = CollectObservations(histories, num_items_);
  std::vector<double> yty = Gram(item_factors_, num_items_, dim());
  double loss = 0.0;
  for (int u = 0; u < num_users_; ++u) {
    const float* x = user_factor(u);
    // Implicit-zero part: sum_i (x.y_i)^2 = x^T YtY x.
    for (int a = 0; a < dim(); ++a) {
      for (int b = 0; b < dim(); ++b) {
        loss += static_cast<double>(x[a]) * yty[a * dim() + b] * x[b];
      }
    }
    // Observed corrections: c (1 - s)^2 replaces the s^2 term.
    for (const auto& [item, r] : obs.by_user[u]) {
      double s = Score(u, item);
      double c = 1.0 + config_.alpha * r;
      loss += c * (1.0 - s) * (1.0 - s) - s * s;
    }
  }
  // L2 terms.
  for (float v : user_factors_) loss += config_.lambda * v * v;
  for (float v : item_factors_) loss += config_.lambda * v * v;
  return loss;
}

}  // namespace sigmund::core
