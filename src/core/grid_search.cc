#include "core/grid_search.h"

#include <algorithm>

#include "common/logging.h"
#include "core/negative_sampler.h"

namespace sigmund::core {

std::vector<HyperParams> BuildGrid(const GridSpec& spec,
                                   const data::Catalog& catalog,
                                   uint64_t subsample_seed) {
  // Per-retailer feature selection (§III-C): a feature whose coverage in
  // this catalog is too low never enters the grid.
  std::vector<bool> taxonomy_options = {true};
  if (spec.sweep_taxonomy) taxonomy_options = {true, false};
  std::vector<bool> brand_options = {false};
  if (spec.sweep_brand && catalog.BrandCoverage() >= spec.min_brand_coverage) {
    brand_options = {false, true};
  }
  std::vector<bool> price_options = {false};
  if (spec.sweep_price && catalog.PriceCoverage() >= spec.min_price_coverage) {
    price_options = {false, true};
  }

  std::vector<HyperParams> grid;
  for (int factors : spec.factors) {
    for (double lr : spec.learning_rates) {
      for (double lambda_v : spec.lambdas_v) {
        for (double lambda_vc : spec.lambdas_vc) {
          for (uint64_t seed : spec.seeds) {
            for (NegativeSamplerKind sampler : spec.samplers) {
              for (bool taxonomy : taxonomy_options) {
                for (bool brand : brand_options) {
                  for (bool price : price_options) {
                    HyperParams params;
                    params.num_factors = factors;
                    params.learning_rate = lr;
                    params.lambda_v = lambda_v;
                    params.lambda_vc = lambda_vc;
                    params.seed = seed;
                    params.sampler = sampler;
                    params.use_taxonomy = taxonomy;
                    params.use_brand = brand;
                    params.use_price = price;
                    params.num_epochs = spec.num_epochs;
                    grid.push_back(params);
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  if (static_cast<int>(grid.size()) > spec.max_configs) {
    Rng rng(SplitMix64(subsample_seed) ^ 0xC0FFEEULL);
    rng.Shuffle(&grid);
    grid.resize(spec.max_configs);
  }
  return grid;
}

StatusOr<BprModel> WarmStartFrom(const BprModel& previous,
                                 const data::Catalog* catalog,
                                 const HyperParams& params, Rng* rng) {
  const HyperParams& old = previous.params();
  if (old.num_factors != params.num_factors ||
      old.use_taxonomy != params.use_taxonomy ||
      old.use_brand != params.use_brand || old.use_price != params.use_price) {
    return InvalidArgumentError(
        "warm start requires matching architecture (factors and feature "
        "switches)");
  }

  BprModel model(catalog, params);
  model.InitRandom(rng);  // new rows / any rows not copied below

  auto copy_rows = [](const EmbeddingMatrix& from, EmbeddingMatrix* to) {
    const int rows = std::min(from.rows(), to->rows());
    const int dim = std::min(from.dim(), to->dim());
    for (int r = 0; r < rows; ++r) {
      const float* src = from.row(r);
      float* dst = to->row(r);
      for (int k = 0; k < dim; ++k) dst[k] = src[k];
    }
  };
  copy_rows(previous.item_embeddings(), &model.item_embeddings());
  copy_rows(previous.context_embeddings(), &model.context_embeddings());
  copy_rows(previous.taxonomy_embeddings(), &model.taxonomy_embeddings());
  copy_rows(previous.brand_embeddings(), &model.brand_embeddings());
  copy_rows(previous.price_embeddings(), &model.price_embeddings());

  // "To ensure that the incremental runs work well with Adagrad, we reset
  // all the stored norms to 0 before the incremental update." (§III-C3)
  model.ResetAdagrad();
  return model;
}

StatusOr<TrainOutput> TrainOneModel(const TrainRequest& request) {
  if (request.catalog == nullptr || request.train_histories == nullptr ||
      request.holdout == nullptr) {
    return InvalidArgumentError("TrainRequest missing data pointers");
  }

  Rng rng(SplitMix64(request.params.seed) ^ 0x517EULL);

  BprModel model(request.catalog, request.params);
  if (request.warm_start != nullptr) {
    StatusOr<BprModel> warm = WarmStartFrom(*request.warm_start,
                                            request.catalog, request.params,
                                            &rng);
    if (!warm.ok()) return warm.status();
    model = std::move(warm).value();
  } else {
    model.InitRandom(&rng);
  }

  TrainingData training_data(request.train_histories,
                             request.catalog->num_items());
  CooccurrenceModel cooccurrence = CooccurrenceModel::Build(
      *request.train_histories, request.catalog->num_items(),
      CooccurrenceModel::Options{});
  std::unique_ptr<NegativeSampler> sampler = MakeNegativeSampler(
      request.params, request.catalog, &training_data, &model, &cooccurrence);

  BprTrainer trainer(&model, &training_data, sampler.get());
  BprTrainer::Options options;
  options.num_threads = request.num_threads;
  if (request.epoch_callback) {
    options.epoch_callback = [&](int epoch, const TrainStats& stats) {
      return request.epoch_callback(epoch, model, stats);
    };
  }
  TrainStats stats = trainer.Train(options);

  Evaluator::Options eval_options;
  eval_options.item_sample_fraction = request.eval_sample_fraction;
  MetricSet metrics =
      Evaluator::Evaluate(model, training_data, *request.holdout,
                          eval_options);
  return TrainOutput{std::move(model), metrics, stats};
}

std::vector<TrialResult> RunGridSearch(
    const data::RetailerData& retailer, const data::TrainTestSplit& split,
    const std::vector<HyperParams>& grid, int num_threads,
    double eval_sample_fraction, std::vector<BprModel>* models_out) {
  std::vector<TrialResult> trials;
  if (models_out != nullptr) models_out->clear();
  for (const HyperParams& params : grid) {
    TrainRequest request;
    request.catalog = &retailer.catalog;
    request.train_histories = &split.train;
    request.holdout = &split.holdout;
    request.params = params;
    request.num_threads = num_threads;
    request.eval_sample_fraction = eval_sample_fraction;
    StatusOr<TrainOutput> output = TrainOneModel(request);
    SIGCHECK(output.ok());
    trials.push_back(
        TrialResult{params, output->metrics, output->stats});
    if (models_out != nullptr) {
      models_out->push_back(std::move(output->model));
    }
  }

  // Sort trials (and the parallel model vector) by MAP@10 descending.
  std::vector<size_t> order(trials.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return trials[a].metrics.map_at_k > trials[b].metrics.map_at_k;
  });
  std::vector<TrialResult> sorted_trials;
  sorted_trials.reserve(trials.size());
  std::vector<BprModel> sorted_models;
  for (size_t index : order) {
    sorted_trials.push_back(std::move(trials[index]));
    if (models_out != nullptr) {
      sorted_models.push_back(std::move((*models_out)[index]));
    }
  }
  if (models_out != nullptr) *models_out = std::move(sorted_models);
  return sorted_trials;
}

std::vector<HyperParams> TopConfigs(const std::vector<TrialResult>& trials,
                                    int k) {
  std::vector<HyperParams> top;
  for (const TrialResult& trial : trials) {
    if (static_cast<int>(top.size()) >= k) break;
    top.push_back(trial.params);
  }
  return top;
}

}  // namespace sigmund::core
