#ifndef SIGMUND_CORE_MODEL_H_
#define SIGMUND_CORE_MODEL_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/hyperparams.h"
#include "data/catalog.h"
#include "data/types.h"

namespace sigmund::core {

// One (action, item) pair of a user's recent history; a Context is the
// sequence of the user's last K actions, oldest first (§III-B2).
struct ContextEntry {
  data::ItemIndex item = data::kInvalidItem;
  data::ActionType action = data::ActionType::kView;
};
using Context = std::vector<ContextEntry>;

// Dense row-major float matrix holding one embedding per row, plus a
// per-row Adagrad accumulator (sum of squared gradient norms). Rows are
// updated lock-free by Hogwild threads.
class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(int rows, int dim) { Resize(rows, dim); }

  void Resize(int rows, int dim);
  // Grows to `rows`, Gaussian-initializing the new rows.
  void GrowRows(int rows, double stddev, Rng* rng);
  void InitRandom(double stddev, Rng* rng);

  int rows() const { return rows_; }
  int dim() const { return dim_; }
  float* row(int r) { return values_.data() + static_cast<size_t>(r) * dim_; }
  const float* row(int r) const {
    return values_.data() + static_cast<size_t>(r) * dim_;
  }
  float& adagrad(int r) { return adagrad_[r]; }
  float adagrad(int r) const { return adagrad_[r]; }
  void ResetAdagrad();

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(values_.capacity() * sizeof(float) +
                                adagrad_.capacity() * sizeof(float));
  }

  const std::vector<float>& values() const { return values_; }
  std::vector<float>* mutable_values() { return &values_; }
  std::vector<float>* mutable_adagrad() { return &adagrad_; }
  const std::vector<float>& adagrad_values() const { return adagrad_; }

 private:
  int rows_ = 0;
  int dim_ = 0;
  std::vector<float> values_;
  std::vector<float> adagrad_;
};

// The BPR factorization model with Sigmund's extensions: separate context
// embeddings (§III-B2) and hierarchical additive side features — taxonomy,
// brand, log-price bucket (§III-B4).
//
//   phi(i) = v_i [+ sum_{a in path(cat(i))} t_a] [+ b_brand(i)] [+ p_bucket(i)]
//   u      = sum_j w_j * vC_{I_j}          (w_j geometric decay, normalized)
//   x_ui   = <u, phi(i)>
//
// The model does NOT own the catalog; the caller keeps it alive.
class BprModel {
 public:
  BprModel(const data::Catalog* catalog, const HyperParams& params);

  // Gaussian-initializes all embedding tables from params().seed-derived
  // randomness.
  void InitRandom(Rng* rng);

  const HyperParams& params() const { return params_; }
  const data::Catalog& catalog() const { return *catalog_; }
  int dim() const { return params_.num_factors; }
  int num_items() const { return item_emb_.rows(); }

  // Writes phi(i) into out[dim()].
  void ItemRepresentation(data::ItemIndex i, float* out) const;

  // Writes the context-derived user embedding (Eq. 1) into out[dim()].
  // Uses the last params().context_window entries of `context`. A user
  // with empty context gets the zero vector.
  void UserEmbedding(const Context& context, float* out) const;

  // Affinity x_ui given a precomputed user vector.
  double Score(const float* user_vec, data::ItemIndex i) const;
  double ScoreWithPhi(const float* user_vec, const float* phi) const;

  // Mutable tables for the trainer.
  EmbeddingMatrix& item_embeddings() { return item_emb_; }
  EmbeddingMatrix& context_embeddings() { return context_emb_; }
  EmbeddingMatrix& taxonomy_embeddings() { return taxonomy_emb_; }
  EmbeddingMatrix& brand_embeddings() { return brand_emb_; }
  EmbeddingMatrix& price_embeddings() { return price_emb_; }
  const EmbeddingMatrix& item_embeddings() const { return item_emb_; }
  const EmbeddingMatrix& context_embeddings() const { return context_emb_; }
  const EmbeddingMatrix& taxonomy_embeddings() const { return taxonomy_emb_; }
  const EmbeddingMatrix& brand_embeddings() const { return brand_emb_; }
  const EmbeddingMatrix& price_embeddings() const { return price_emb_; }

  // Context weights for a context of length n (normalized, oldest first).
  std::vector<float> ContextWeights(int n) const;

  // Grows the item/context tables after catalog growth (daily new items,
  // §III-C3), Gaussian-initializing new rows. Returns #items added.
  int ResizeForCatalog(Rng* rng);

  // Resets every Adagrad accumulator to 0 — done at the start of each
  // incremental run (§III-C3).
  void ResetAdagrad();

  // Total parameter memory (drives the one-retailer-per-machine policy).
  int64_t MemoryBytes() const;

  // Binary (de)serialization of all tables + accumulators. The catalog is
  // NOT serialized; Deserialize validates dimensions against it.
  std::string Serialize() const;
  static StatusOr<BprModel> Deserialize(const std::string& bytes,
                                        const data::Catalog* catalog);

 private:
  const data::Catalog* catalog_;
  HyperParams params_;
  EmbeddingMatrix item_emb_;      // v_i
  EmbeddingMatrix context_emb_;   // vC_i
  EmbeddingMatrix taxonomy_emb_;  // t_a, one per category
  EmbeddingMatrix brand_emb_;     // b_b, one per brand
  EmbeddingMatrix price_emb_;     // p_k, one per price bucket
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_MODEL_H_
