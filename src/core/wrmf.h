#ifndef SIGMUND_CORE_WRMF_H_
#define SIGMUND_CORE_WRMF_H_

#include <vector>

#include "common/random.h"
#include "core/evaluator.h"
#include "data/retailer_data.h"

namespace sigmund::core {

// Weighted-regularized matrix factorization for implicit feedback
// (Hu, Koren & Volinsky, ICDM 2008 [15]) — the least-squares alternative
// the paper says BPR "can easily [be] substitute[d] with" (§VI).
//
// Minimizes   sum_{u,i} c_ui (p_ui - x_u . y_i)^2 + lambda (|X|^2 + |Y|^2)
// where p_ui = 1 for observed interactions and 0 elsewhere, and the
// confidence c_ui = 1 + alpha * r_ui grows with interaction strength
// (view=1, search=2, cart=3, conversion=4, summed over events).
//
// Solved by alternating least squares with the Hu et al. trick: the
// dense "all unobserved are negatives" term is precomputed as YtY (resp.
// XtX), so each user/item solve touches only that row's observations.
//
// Unlike the BPR model, WR-MF learns an explicit per-user factor, so it
// cannot serve unseen users without a fold-in step (provided below) —
// one of the reasons Sigmund chose BPR with context embeddings.
class WrmfModel {
 public:
  struct Config {
    int num_factors = 16;
    double alpha = 20.0;   // confidence scale
    double lambda = 0.1;   // L2 regularization
    int iterations = 10;   // ALS sweeps
    double init_scale = 0.1;
    uint64_t seed = 1;
  };

  // Trains on the given (training) histories.
  static WrmfModel Train(
      const std::vector<std::vector<data::Interaction>>& histories,
      int num_items, const Config& config);

  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  int dim() const { return config_.num_factors; }

  const float* user_factor(data::UserIndex u) const {
    return user_factors_.data() + static_cast<size_t>(u) * dim();
  }
  const float* item_factor(data::ItemIndex i) const {
    return item_factors_.data() + static_cast<size_t>(i) * dim();
  }

  // Full factor matrices (row-major, rows x dim) — what the retrieval
  // index builder snapshots into an ANN artifact.
  const std::vector<float>& user_factors() const { return user_factors_; }
  const std::vector<float>& item_factors() const { return item_factors_; }

  // Predicted preference of user u for item i.
  double Score(data::UserIndex u, data::ItemIndex i) const;

  // Folds in a new user from their (strength-weighted) item interactions:
  // one least-squares solve against the fixed item factors. Returns the
  // user factor.
  std::vector<float> FoldInUser(
      const std::vector<data::Interaction>& history) const;

  // Ranks the hold-out item of each example against the catalog
  // (excluding each user's seen items) and returns the usual metric set —
  // directly comparable to Evaluator output for BPR models.
  MetricSet EvaluateHoldout(
      const std::vector<std::vector<data::Interaction>>& train_histories,
      const std::vector<data::HoldoutExample>& holdout, int k) const;

  // Squared reconstruction objective (confidence-weighted), for
  // convergence tests. Computed over observed entries plus the implicit
  // zero matrix via the same YtY decomposition used in training.
  double Objective(
      const std::vector<std::vector<data::Interaction>>& histories) const;

 private:
  WrmfModel(int num_users, int num_items, const Config& config);

  Config config_;
  int num_users_ = 0;
  int num_items_ = 0;
  std::vector<float> user_factors_;  // num_users x F, row-major
  std::vector<float> item_factors_;  // num_items x F, row-major
};

// Interaction strength used for WR-MF confidences (view=1 .. conversion=4).
double WrmfStrength(data::ActionType action);

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_WRMF_H_
