#ifndef SIGMUND_CORE_HYPERPARAMS_H_
#define SIGMUND_CORE_HYPERPARAMS_H_

#include <stdint.h>

#include <string>

#include "common/status.h"

namespace sigmund::core {

// Which negative-sampling heuristic the trainer uses (§III-B3).
enum class NegativeSamplerKind {
  kUniform = 0,        // uniform over the catalog, excluding seen items
  kPopularity = 1,     // popularity-skewed
  kTaxonomy = 2,       // prefer items taxonomically far from the positive
  kAdaptive = 3,       // affinity-aware (Rendle & Freudenthaler style)
};

const char* NegativeSamplerKindName(NegativeSamplerKind kind);

// Per-model hyper-parameters, the unit of Sigmund's grid search (§III-C1).
// Everything here is serializable into a config record.
struct HyperParams {
  // Number of latent factors F (5..200 in the paper's grid).
  int num_factors = 16;

  // Base learning rate for SGD / Adagrad.
  double learning_rate = 0.05;

  // Separate L2 regularization for item-side parameters (item, taxonomy,
  // brand, price embeddings) and for context embeddings (§III-C1).
  double lambda_v = 0.01;
  double lambda_vc = 0.01;

  // Adagrad on/off (§III-C1: Adagrad converges faster than plain SGD).
  bool use_adagrad = true;

  // Feature switches, selected per retailer (§III-C: brand coverage below
  // ~10% makes the feature detrimental).
  bool use_taxonomy = true;
  bool use_brand = false;
  bool use_price = false;

  // User-context model (§III-B2): window size K and geometric decay of
  // past actions' weights.
  int context_window = 25;
  double context_decay = 0.85;

  // Fraction of SGD steps devoted to tier constraints
  // (search > view, cart > search, conversion > cart).
  double tier_constraint_fraction = 0.25;

  NegativeSamplerKind sampler = NegativeSamplerKind::kUniform;

  // Epochs: one epoch makes ~|interactions| SGD steps.
  int num_epochs = 30;

  // Gaussian init scale (stddev = init_scale / sqrt(num_factors)).
  double init_scale = 0.1;

  // Prior variance proxy; kept for grid compatibility (§III-C1 mentions
  // sweeping prior variance — mapped onto init_scale here).
  uint64_t seed = 1;

  // Serializes to "key=value;key=value;..." (stable order).
  std::string Serialize() const;
  static StatusOr<HyperParams> Deserialize(const std::string& text);

  friend bool operator==(const HyperParams& a, const HyperParams& b);
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_HYPERPARAMS_H_
