#ifndef SIGMUND_CORE_NEGATIVE_SAMPLER_H_
#define SIGMUND_CORE_NEGATIVE_SAMPLER_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/cooccurrence.h"
#include "core/model.h"
#include "core/training_data.h"
#include "data/catalog.h"

namespace sigmund::core {

// Draws the negative item j of a BPR triple (§III-B3). Implementations are
// immutable after construction and thread-safe (each Hogwild thread passes
// its own Rng).
class NegativeSampler {
 public:
  virtual ~NegativeSampler() = default;

  // Samples a negative for user `u` and positive item `positive`.
  // `user_vec` is the current user embedding (dim = model dim); it may be
  // nullptr for samplers that don't need it. Returns kInvalidItem when no
  // valid negative exists (e.g. the user has seen the whole catalog).
  virtual data::ItemIndex Sample(const TrainingData& data, data::UserIndex u,
                                 const float* user_vec,
                                 data::ItemIndex positive, Rng* rng) const = 0;
};

// Uniform over the catalog, rejecting the user's seen items.
class UniformSampler : public NegativeSampler {
 public:
  data::ItemIndex Sample(const TrainingData& data, data::UserIndex u,
                         const float* user_vec, data::ItemIndex positive,
                         Rng* rng) const override;
};

// Popularity-skewed (count^alpha), rejecting seen items. Oversampling
// popular negatives sharpens the ranking against strong distractors.
class PopularitySampler : public NegativeSampler {
 public:
  PopularitySampler(const std::vector<int64_t>& item_counts, double alpha);

  data::ItemIndex Sample(const TrainingData& data, data::UserIndex u,
                         const float* user_vec, data::ItemIndex positive,
                         Rng* rng) const override;

 private:
  std::vector<double> cumulative_;  // CDF over items
};

// Prefers items taxonomically far from the positive: accepts a uniform
// draw only if LcaDistance(positive, j) >= min_distance; falls back to the
// last draw after `max_tries`.
class TaxonomySampler : public NegativeSampler {
 public:
  TaxonomySampler(const data::Catalog* catalog, int min_distance)
      : catalog_(catalog), min_distance_(min_distance) {}

  data::ItemIndex Sample(const TrainingData& data, data::UserIndex u,
                         const float* user_vec, data::ItemIndex positive,
                         Rng* rng) const override;

 private:
  const data::Catalog* catalog_;
  int min_distance_;
};

// Adaptive, affinity-aware sampling in the spirit of Rendle &
// Freudenthaler [16]: draws `num_candidates` via the base sampler and
// keeps the one the *current model* scores highest — the hardest negative.
class AdaptiveSampler : public NegativeSampler {
 public:
  AdaptiveSampler(const BprModel* model,
                  std::unique_ptr<NegativeSampler> base, int num_candidates)
      : model_(model), base_(std::move(base)),
        num_candidates_(num_candidates) {}

  data::ItemIndex Sample(const TrainingData& data, data::UserIndex u,
                         const float* user_vec, data::ItemIndex positive,
                         Rng* rng) const override;

 private:
  const BprModel* model_;
  std::unique_ptr<NegativeSampler> base_;
  int num_candidates_;
};

// Decorator: rejects negatives that are strongly co-viewed/co-bought with
// the positive (they are probably *good* recommendations, not negatives).
class ExclusionSampler : public NegativeSampler {
 public:
  ExclusionSampler(std::unique_ptr<NegativeSampler> base,
                   const CooccurrenceModel* cooccurrence,
                   int64_t max_co_count)
      : base_(std::move(base)), cooccurrence_(cooccurrence),
        max_co_count_(max_co_count) {}

  data::ItemIndex Sample(const TrainingData& data, data::UserIndex u,
                         const float* user_vec, data::ItemIndex positive,
                         Rng* rng) const override;

 private:
  std::unique_ptr<NegativeSampler> base_;
  const CooccurrenceModel* cooccurrence_;
  int64_t max_co_count_;
};

// Builds the sampler stack requested by `params.sampler`, always wrapped
// in co-occurrence exclusion when `cooccurrence` is provided.
std::unique_ptr<NegativeSampler> MakeNegativeSampler(
    const HyperParams& params, const data::Catalog* catalog,
    const TrainingData* data, const BprModel* model,
    const CooccurrenceModel* cooccurrence);

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_NEGATIVE_SAMPLER_H_
