#include "core/ab_experiment.h"

#include <cmath>

#include "common/hash.h"
#include "common/logging.h"

namespace sigmund::core {

AbExperiment::Outcome AbExperiment::Run(
    const data::RetailerWorld& world,
    const std::vector<std::vector<data::Interaction>>& contexts,
    const Arm& control, const Arm& treatment, const Options& options) {
  Outcome outcome;
  outcome.control.name = control.name;
  outcome.treatment.name = treatment.name;

  data::CtrSimulator simulator(&world.truth, options.ctr);
  Rng rng(options.seed);

  for (data::UserIndex u = 0;
       u < static_cast<data::UserIndex>(contexts.size()); ++u) {
    if (contexts[u].empty()) continue;
    // Sticky 50/50 split by user hash (independent of the RNG stream).
    const bool in_treatment = (Mix64(u * 2654435761ULL + 17) & 1) != 0;
    const Arm& arm = in_treatment ? treatment : control;
    ArmResult& result = in_treatment ? outcome.treatment : outcome.control;

    data::ItemIndex query = contexts[u].back().item;
    std::vector<data::ItemIndex> list = arm.policy(u, query);
    if (list.empty()) continue;
    for (int round = 0; round < options.rounds_per_user; ++round) {
      ++result.impressions;
      if (simulator.SimulateImpression(u, list, &rng) >= 0) {
        ++result.clicks;
      }
    }
  }

  // Two-proportion z-test on per-impression click rates.
  const double n1 = static_cast<double>(outcome.control.impressions);
  const double n2 = static_cast<double>(outcome.treatment.impressions);
  if (n1 > 0 && n2 > 0) {
    const double p1 = outcome.control.Ctr();
    const double p2 = outcome.treatment.Ctr();
    const double pooled =
        (outcome.control.clicks + outcome.treatment.clicks) / (n1 + n2);
    const double se =
        std::sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2));
    if (se > 0) outcome.z_score = (p2 - p1) / se;
  }
  return outcome;
}

}  // namespace sigmund::core
