#include "core/tuner.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "core/negative_sampler.h"
#include "core/trainer.h"

namespace sigmund::core {

namespace {

// A live trial: model + trainer state that persists across rungs.
struct Trial {
  HyperParams params;
  std::unique_ptr<BprModel> model;
  std::unique_ptr<NegativeSampler> sampler;
  std::unique_ptr<BprTrainer> trainer;
  MetricSet metrics;
  TrainStats stats;
};

}  // namespace

TunerOutcome SuccessiveHalving(const data::RetailerData& retailer,
                               const data::TrainTestSplit& split,
                               const GridSpec& space,
                               const TunerOptions& options) {
  SIGCHECK_GE(options.eta, 2);
  SIGCHECK_GT(options.initial_configs, 0);

  // Shared per-retailer state.
  TrainingData training_data(&split.train, retailer.catalog.num_items());
  CooccurrenceModel cooccurrence = CooccurrenceModel::Build(
      split.train, retailer.catalog.num_items(), {});

  // Rung-0 configurations: a seeded random sample of the space.
  GridSpec sample_spec = space;
  sample_spec.max_configs = options.initial_configs;
  std::vector<HyperParams> configs =
      BuildGrid(sample_spec, retailer.catalog, options.seed);

  std::vector<std::unique_ptr<Trial>> live;
  for (const HyperParams& params : configs) {
    auto trial = std::make_unique<Trial>();
    trial->params = params;
    trial->model = std::make_unique<BprModel>(&retailer.catalog, params);
    Rng rng(SplitMix64(params.seed) ^ SplitMix64(options.seed));
    trial->model->InitRandom(&rng);
    trial->sampler =
        MakeNegativeSampler(params, &retailer.catalog, &training_data,
                            trial->model.get(), &cooccurrence);
    trial->trainer = std::make_unique<BprTrainer>(
        trial->model.get(), &training_data, trial->sampler.get());
    live.push_back(std::move(trial));
  }

  TunerOutcome outcome;
  std::vector<std::unique_ptr<Trial>> eliminated;
  Evaluator::Options eval_options;
  eval_options.item_sample_fraction = options.eval_sample_fraction;

  while (!live.empty()) {
    ++outcome.rungs;
    for (auto& trial : live) {
      BprTrainer::Options train_options;
      train_options.num_threads = options.num_threads;
      train_options.num_epochs = options.epochs_per_rung;
      TrainStats stats = trial->trainer->Train(train_options);
      trial->stats.epochs_run += stats.epochs_run;
      trial->stats.sgd_steps += stats.sgd_steps;
      trial->stats.last_epoch_loss = stats.last_epoch_loss;
      outcome.total_sgd_steps += stats.sgd_steps;
      trial->metrics = Evaluator::Evaluate(*trial->model, training_data,
                                           split.holdout, eval_options);
    }
    std::sort(live.begin(), live.end(),
              [](const std::unique_ptr<Trial>& a,
                 const std::unique_ptr<Trial>& b) {
                return a->metrics.map_at_k > b->metrics.map_at_k;
              });
    if (live.size() <= 1) break;
    size_t keep = std::max<size_t>(1, live.size() / options.eta);
    if (keep == live.size()) keep = live.size() - 1;  // guarantee progress
    for (size_t i = keep; i < live.size(); ++i) {
      eliminated.push_back(std::move(live[i]));
    }
    live.resize(keep);
  }

  for (auto& trial : live) eliminated.push_back(std::move(trial));
  std::sort(eliminated.begin(), eliminated.end(),
            [](const std::unique_ptr<Trial>& a,
               const std::unique_ptr<Trial>& b) {
              return a->metrics.map_at_k > b->metrics.map_at_k;
            });
  for (auto& trial : eliminated) {
    outcome.leaderboard.push_back(
        TrialResult{trial->params, trial->metrics, trial->stats});
  }
  return outcome;
}

}  // namespace sigmund::core
