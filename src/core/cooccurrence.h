#ifndef SIGMUND_CORE_COOCCURRENCE_H_
#define SIGMUND_CORE_COOCCURRENCE_H_

#include <stdint.h>

#include <unordered_map>
#include <vector>

#include "data/retailer_data.h"
#include "data/types.h"

namespace sigmund::core {

// Item-item co-occurrence model (§III-E): co-view and co-buy counts with
// PMI-style scoring. This is the simple, scalable recommender that works
// well for popular (head) items and is combined with factorization for the
// tail; it also feeds candidate selection (cv(i), cb(i), §III-D1) and the
// exclusion negative sampler (§III-B3).
//
// Immutable after Build(); thread-safe for reads.
class CooccurrenceModel {
 public:
  struct Options {
    // Views within one session co-occur. Sessions are split on gaps.
    int64_t session_gap_seconds = 1800;
    // Sliding-window cap within a session (bounds O(L^2) for long sessions).
    int window = 8;
    // Neighbors kept per item in the top lists.
    int max_neighbors = 50;
    // Minimum raw count for a pair to enter the top lists.
    int64_t min_count = 1;
  };

  // A scored neighbor of an item.
  struct Neighbor {
    data::ItemIndex item = data::kInvalidItem;
    double score = 0.0;  // cosine-normalized co-count
    int64_t count = 0;
  };

  // Builds the model from (training) histories.
  static CooccurrenceModel Build(
      const std::vector<std::vector<data::Interaction>>& histories,
      int num_items, const Options& options);

  int num_items() const { return static_cast<int>(view_counts_.size()); }

  // Raw pair counts (symmetric).
  int64_t CoViewCount(data::ItemIndex a, data::ItemIndex b) const;
  int64_t CoBuyCount(data::ItemIndex a, data::ItemIndex b) const;

  // Pointwise mutual information of a co-view pair; very negative when the
  // pair never co-occurred.
  double Pmi(data::ItemIndex a, data::ItemIndex b) const;

  // Top co-viewed / co-bought neighbors (descending score).
  const std::vector<Neighbor>& CoViewed(data::ItemIndex i) const;
  const std::vector<Neighbor>& CoBought(data::ItemIndex i) const;

  // Per-item totals.
  const std::vector<int64_t>& view_counts() const { return view_counts_; }
  const std::vector<int64_t>& buy_counts() const { return buy_counts_; }

  // Items ranked by total interaction count, descending (the "head").
  std::vector<data::ItemIndex> ItemsByPopularity() const;

 private:
  static uint64_t PairKey(data::ItemIndex a, data::ItemIndex b);

  std::unordered_map<uint64_t, int64_t> view_pairs_;
  std::unordered_map<uint64_t, int64_t> buy_pairs_;
  std::vector<int64_t> view_counts_;
  std::vector<int64_t> buy_counts_;
  std::vector<std::vector<Neighbor>> co_viewed_;
  std::vector<std::vector<Neighbor>> co_bought_;
  int64_t total_view_events_ = 0;
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_COOCCURRENCE_H_
