#ifndef SIGMUND_CORE_FUNNEL_H_
#define SIGMUND_CORE_FUNNEL_H_

#include "core/model.h"
#include "data/catalog.h"

namespace sigmund::core {

// Shopping-funnel stage inferred from a user's recent context (§III-D1 of
// the paper: "we also distinguish between early funnel and late funnel
// users. For late funnel users, we focus very close to the viewed item,
// i.e., we select candidates that are further constrained to have the
// same item facets.")
enum class FunnelStage {
  kEarly = 0,  // exploring options — broad candidates
  kLate = 1,   // has narrowed down — same-facet candidates
};

const char* FunnelStageName(FunnelStage stage);

struct FunnelOptions {
  // Only the most recent `window` context entries are considered.
  int window = 8;
  // Late-funnel signals: the same item viewed at least this many times...
  int min_repeat_views = 2;
  // ...or at least this many recent events in one category (requires a
  // catalog), or any cart event in the window.
  int min_category_focus = 4;
};

// Classifies a context. `catalog` may be nullptr, in which case only
// catalog-free signals (repeat item views, cart events) are used — this is
// what the serving path uses, since the store does not hold catalogs.
FunnelStage ClassifyFunnelStage(const Context& context,
                                const data::Catalog* catalog,
                                const FunnelOptions& options);

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_FUNNEL_H_
