#ifndef SIGMUND_CORE_EVALUATOR_H_
#define SIGMUND_CORE_EVALUATOR_H_

#include <string>
#include <vector>

#include "core/model.h"
#include "core/training_data.h"
#include "data/retailer_data.h"

namespace sigmund::core {

// Ranking metrics over a hold-out set (§III-C2). MAP@10 is the selection
// metric; AUC is computed but deliberately not used for selection (the
// paper: equal positional weighting, tiny differences for big retailers).
struct MetricSet {
  double map_at_k = 0.0;
  double precision_at_k = 0.0;
  double recall_at_k = 0.0;  // hit rate, since exactly one item is held out
  double ndcg_at_k = 0.0;
  double auc = 0.0;
  double mean_rank = 0.0;
  int64_t num_examples = 0;

  std::string ToString() const;
};

// Scores hold-out examples by ranking the held-out item against the
// catalog (or a sampled fraction of it, the paper's 10% CPU-saving
// estimate for large retailers).
class Evaluator {
 public:
  struct Options {
    int k = 10;
    // Fraction of the catalog used as ranking distractors; 1.0 = exact.
    double item_sample_fraction = 1.0;
    // Exclude items the user already interacted with from the ranking.
    bool exclude_seen = true;
    uint64_t seed = 7;
  };

  // `train` provides each hold-out user's context and seen-set; `holdout`
  // comes from SplitLeaveLastOut on the same retailer.
  static MetricSet Evaluate(const BprModel& model, const TrainingData& train,
                            const std::vector<data::HoldoutExample>& holdout,
                            const Options& options);

  // Rank of `target` for the given user vector: 1 + #distractors scoring
  // strictly higher. With sampling, the rank is estimated by scaling the
  // sampled higher-count by 1/fraction. `phi_cache` must hold
  // num_items*dim precomputed item representations.
  static double EstimateRank(const BprModel& model,
                             const std::vector<float>& phi_cache,
                             const TrainingData& train, data::UserIndex user,
                             const float* user_vec, data::ItemIndex target,
                             const Options& options, Rng* rng);

  // Precomputes phi for all items into a flat num_items*dim array.
  static std::vector<float> BuildPhiCache(const BprModel& model);
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_EVALUATOR_H_
