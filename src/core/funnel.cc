#include "core/funnel.h"

#include <unordered_map>

namespace sigmund::core {

const char* FunnelStageName(FunnelStage stage) {
  switch (stage) {
    case FunnelStage::kEarly:
      return "early";
    case FunnelStage::kLate:
      return "late";
  }
  return "unknown";
}

FunnelStage ClassifyFunnelStage(const Context& context,
                                const data::Catalog* catalog,
                                const FunnelOptions& options) {
  const int n = static_cast<int>(context.size());
  const int start = std::max(0, n - options.window);

  std::unordered_map<data::ItemIndex, int> item_views;
  std::unordered_map<data::CategoryId, int> category_events;
  for (int j = start; j < n; ++j) {
    const ContextEntry& entry = context[j];
    // A cart (or conversion) means the purchase decision is essentially
    // made: late funnel by definition.
    if (entry.action == data::ActionType::kCart ||
        entry.action == data::ActionType::kConversion) {
      return FunnelStage::kLate;
    }
    if (++item_views[entry.item] >= options.min_repeat_views) {
      return FunnelStage::kLate;
    }
    if (catalog != nullptr) {
      data::CategoryId category = catalog->item(entry.item).category;
      if (++category_events[category] >= options.min_category_focus) {
        return FunnelStage::kLate;
      }
    }
  }
  return FunnelStage::kEarly;
}

}  // namespace sigmund::core
