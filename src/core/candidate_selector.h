#ifndef SIGMUND_CORE_CANDIDATE_SELECTOR_H_
#define SIGMUND_CORE_CANDIDATE_SELECTOR_H_

#include <vector>

#include "core/cooccurrence.h"
#include "data/catalog.h"
#include "data/retailer_data.h"

namespace sigmund::core {

// Detects re-purchasable categories (diapers, water, ...) by counting
// users who repeat purchases within the same category, and estimates the
// average time between purchases for periodic recommendations (§III-D1).
class RepurchaseEstimator {
 public:
  struct Options {
    // A category is re-purchasable when at least this fraction of its
    // buyers bought from it more than once...
    double min_repeat_fraction = 0.3;
    // ...and it has at least this many buyers (avoid tiny-sample flukes).
    int min_buyers = 5;
  };

  static RepurchaseEstimator Build(
      const std::vector<std::vector<data::Interaction>>& histories,
      const data::Catalog& catalog, const Options& options);

  bool IsRepurchasable(data::CategoryId c) const;

  // Mean days between consecutive same-category purchases (0 when the
  // category is not re-purchasable).
  double MeanDaysBetween(data::CategoryId c) const;

  // Number of re-purchasable categories found.
  int CountRepurchasable() const;

 private:
  std::vector<bool> repurchasable_;
  std::vector<double> mean_days_;
};

// Candidate selection (§III-D1): instead of scoring a retailer's whole
// catalog per context — quadratic in catalog size — Sigmund selects ~1e3
// likely candidates per item from the taxonomy and co-occurrence
// neighborhoods, making inference cost linear in the number of items.
class CandidateSelector {
 public:
  struct Options {
    // LCA expansion radius for view-based candidates (paper: k=2 trades
    // off precision vs. coverage well).
    int view_lca_k = 2;
    // Expansion radius for purchase-based candidates (paper: lca1 best).
    int purchase_lca_k = 1;
    // Co-viewed/co-bought neighbors expanded per query item.
    int max_co_items = 10;
    // Hard cap on returned candidates (~1000 in the paper).
    int max_candidates = 1000;
    // Late-funnel users: constrain candidates to the query item's facets.
    bool late_funnel = false;
  };

  // Pointers must outlive the selector; not owned.
  CandidateSelector(const data::Catalog* catalog,
                    const CooccurrenceModel* cooccurrence,
                    const RepurchaseEstimator* repurchase)
      : catalog_(catalog), cooccurrence_(cooccurrence),
        repurchase_(repurchase) {}

  // View-based (substitutes, before the purchase decision):
  //   C = union_{j in cv(i)} lca_k(j),
  // falling back to lca_k(i) for items with no co-view data (coverage for
  // cold items).
  std::vector<data::ItemIndex> ViewBased(data::ItemIndex i,
                                         const Options& options) const;

  // Purchase-based (accessories/complements, after the purchase):
  //   C = union_{j in cb(i)} lca_1(j) \ lca_1(i),
  // except for re-purchasable categories, where same-category items
  // (including i itself) stay in — the item is recommended again after the
  // estimated inter-purchase interval.
  std::vector<data::ItemIndex> PurchaseBased(data::ItemIndex i,
                                             const Options& options) const;

 private:
  // Items of all categories within LCA distance k of item i's category.
  void CollectLca(data::ItemIndex i, int k,
                  std::vector<data::ItemIndex>* out) const;

  std::vector<data::ItemIndex> Finalize(data::ItemIndex query,
                                        std::vector<data::ItemIndex> items,
                                        const Options& options) const;

  const data::Catalog* catalog_;
  const CooccurrenceModel* cooccurrence_;
  const RepurchaseEstimator* repurchase_;
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_CANDIDATE_SELECTOR_H_
