#ifndef SIGMUND_CORE_TRAINING_DATA_H_
#define SIGMUND_CORE_TRAINING_DATA_H_

#include <stdint.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "core/model.h"
#include "data/retailer_data.h"

namespace sigmund::core {

// Indexed view over one retailer's *training* histories, precomputed once
// per training run. Provides:
//   - uniform sampling of training positions (user, index) where index >= 1
//     so the context is non-empty (Fig. 2 of the paper),
//   - context construction for any position,
//   - per-user seen-item sets (negatives must be unseen),
//   - per-user tier buckets: items whose strongest observed action is a
//     given tier, for the tier constraints search>view, cart>search,
//     conversion>cart (§III-B1).
//
// Does not own the histories; the caller keeps them alive. Immutable after
// construction (safe for concurrent Hogwild readers).
class TrainingData {
 public:
  struct Position {
    data::UserIndex user = 0;
    int index = 0;  // event index within the user's history
  };

  TrainingData(const std::vector<std::vector<data::Interaction>>* histories,
               int num_items);

  int num_items() const { return num_items_; }
  int num_users() const { return static_cast<int>(histories_->size()); }
  const std::vector<std::vector<data::Interaction>>& histories() const {
    return *histories_;
  }

  // Number of sampleable positions (events with a non-empty context).
  int64_t num_positions() const {
    return static_cast<int64_t>(positions_.size());
  }

  // Uniform over sampleable positions.
  Position SamplePosition(Rng* rng) const;

  const data::Interaction& EventAt(Position p) const {
    return (*histories_)[p.user][p.index];
  }

  // The user's context immediately before position `p`: the last `window`
  // (action, item) pairs preceding it, oldest first.
  Context ContextAt(Position p, int window) const;

  // Full context of a user (all training events, capped to `window`), used
  // at evaluation time for the hold-out example.
  Context FullContext(data::UserIndex user, int window) const;

  // True if the user interacted with the item in training.
  bool Seen(data::UserIndex user, data::ItemIndex item) const;

  // Items whose strongest action by `user` is exactly `strength`
  // (0=view .. 3=conversion).
  const std::vector<data::ItemIndex>& TierBucket(data::UserIndex user,
                                                 int strength) const;

  // Samples an item the user interacted with at a strictly lower tier than
  // `action` (preferring exactly one tier below). kInvalidItem if none.
  data::ItemIndex SampleLowerTierItem(data::UserIndex user,
                                      data::ActionType action,
                                      Rng* rng) const;

  // Item interaction counts over the training data (popularity).
  const std::vector<int64_t>& item_counts() const { return item_counts_; }

 private:
  const std::vector<std::vector<data::Interaction>>* histories_;
  int num_items_;
  std::vector<Position> positions_;
  std::vector<std::unordered_set<data::ItemIndex>> seen_;
  // tier_buckets_[user][strength] = items with max strength == strength.
  std::vector<std::vector<std::vector<data::ItemIndex>>> tier_buckets_;
  std::vector<int64_t> item_counts_;
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_TRAINING_DATA_H_
