#ifndef SIGMUND_CORE_TUNER_H_
#define SIGMUND_CORE_TUNER_H_

#include <vector>

#include "core/grid_search.h"

namespace sigmund::core {

// Budget-aware hyper-parameter search by successive halving: start many
// configurations, train each a few epochs, keep the best 1/eta, continue
// training the survivors (warm, not from scratch), repeat.
//
// The paper runs a plain grid and notes that "services like Vizier hold
// promise to improve on simple grid-search based techniques for black-box
// hyperparameter optimization" and that a rebuild "would design [the
// search] to integrate deeply with such a service" (§III-C1). Successive
// halving is the simplest such trial-management policy; the
// `e14_tuner_vs_grid` bench measures what it buys over the grid at equal
// SGD budget.
struct TunerOptions {
  // Configurations sampled from the space at rung 0.
  int initial_configs = 27;
  // Survivor fraction per rung is 1/eta.
  int eta = 3;
  // Epochs each surviving config trains at each rung.
  int epochs_per_rung = 2;
  // Hogwild threads per model.
  int num_threads = 1;
  double eval_sample_fraction = 1.0;
  uint64_t seed = 42;
};

struct TunerOutcome {
  // All trials with their *final* metrics (survivors have trained more
  // epochs than eliminated configs), best first.
  std::vector<TrialResult> leaderboard;
  // Total SGD steps spent across all rungs — the comparable budget.
  int64_t total_sgd_steps = 0;
  int rungs = 0;
};

// Runs successive halving over configurations drawn from `space` (the
// same spec the grid sweep uses). Survivor models continue training from
// their current parameters between rungs.
TunerOutcome SuccessiveHalving(const data::RetailerData& retailer,
                               const data::TrainTestSplit& split,
                               const GridSpec& space,
                               const TunerOptions& options);

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_TUNER_H_
