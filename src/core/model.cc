#include "core/model.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace sigmund::core {

namespace {

// Serialization framing.
constexpr uint32_t kMagic = 0x5349474dU;  // "SIGM"
constexpr uint32_t kVersion = 1;

void AppendBytes(std::string* out, const void* data, size_t size) {
  if (size == 0) return;  // empty vectors have null data()
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendBytes(out, &value, sizeof(value));
}

template <typename T>
bool ReadValue(const std::string& in, size_t* offset, T* value) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

void AppendFloats(std::string* out, const std::vector<float>& values) {
  AppendValue<uint64_t>(out, values.size());
  AppendBytes(out, values.data(), values.size() * sizeof(float));
}

bool ReadFloats(const std::string& in, size_t* offset,
                std::vector<float>* values) {
  uint64_t count = 0;
  if (!ReadValue(in, offset, &count)) return false;
  if (*offset + count * sizeof(float) > in.size()) return false;
  values->resize(count);
  if (count > 0) {
    std::memcpy(values->data(), in.data() + *offset, count * sizeof(float));
  }
  *offset += count * sizeof(float);
  return true;
}

}  // namespace

void EmbeddingMatrix::Resize(int rows, int dim) {
  SIGCHECK_GE(rows, 0);
  SIGCHECK_GT(dim, 0);
  rows_ = rows;
  dim_ = dim;
  values_.assign(static_cast<size_t>(rows) * dim, 0.0f);
  adagrad_.assign(rows, 0.0f);
}

void EmbeddingMatrix::GrowRows(int rows, double stddev, Rng* rng) {
  SIGCHECK_GE(rows, rows_);
  int old_rows = rows_;
  rows_ = rows;
  values_.resize(static_cast<size_t>(rows) * dim_, 0.0f);
  adagrad_.resize(rows, 0.0f);
  for (int r = old_rows; r < rows; ++r) {
    float* v = row(r);
    for (int k = 0; k < dim_; ++k) {
      v[k] = static_cast<float>(rng->Gaussian(0.0, stddev));
    }
  }
}

void EmbeddingMatrix::InitRandom(double stddev, Rng* rng) {
  for (float& v : values_) {
    v = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  ResetAdagrad();
}

void EmbeddingMatrix::ResetAdagrad() {
  std::fill(adagrad_.begin(), adagrad_.end(), 0.0f);
}

BprModel::BprModel(const data::Catalog* catalog, const HyperParams& params)
    : catalog_(catalog), params_(params) {
  SIGCHECK(catalog != nullptr);
  SIGCHECK_GT(params.num_factors, 0);
  const int dim = params.num_factors;
  item_emb_.Resize(catalog->num_items(), dim);
  context_emb_.Resize(catalog->num_items(), dim);
  taxonomy_emb_.Resize(
      params.use_taxonomy ? catalog->taxonomy().num_categories() : 0, dim);
  brand_emb_.Resize(params.use_brand ? catalog->num_brands() : 0, dim);
  price_emb_.Resize(params.use_price ? data::kDefaultPriceBuckets : 0, dim);
}

void BprModel::InitRandom(Rng* rng) {
  const double stddev = params_.init_scale / std::sqrt(dim());
  item_emb_.InitRandom(stddev, rng);
  context_emb_.InitRandom(stddev, rng);
  taxonomy_emb_.InitRandom(stddev, rng);
  brand_emb_.InitRandom(stddev, rng);
  price_emb_.InitRandom(stddev, rng);
}

void BprModel::ItemRepresentation(data::ItemIndex i, float* out) const {
  const int d = dim();
  const float* v = item_emb_.row(i);
  for (int k = 0; k < d; ++k) out[k] = v[k];

  const data::Item& item = catalog_->item(i);
  if (params_.use_taxonomy && taxonomy_emb_.rows() > 0) {
    for (data::CategoryId a : catalog_->taxonomy().PathToRoot(item.category)) {
      const float* t = taxonomy_emb_.row(a);
      for (int k = 0; k < d; ++k) out[k] += t[k];
    }
  }
  if (params_.use_brand && item.brand != data::kUnknownBrand &&
      item.brand < brand_emb_.rows()) {
    const float* b = brand_emb_.row(item.brand);
    for (int k = 0; k < d; ++k) out[k] += b[k];
  }
  if (params_.use_price) {
    int bucket = data::PriceBucket(item.price, data::kDefaultPriceBuckets);
    if (bucket >= 0) {
      const float* p = price_emb_.row(bucket);
      for (int k = 0; k < d; ++k) out[k] += p[k];
    }
  }
}

std::vector<float> BprModel::ContextWeights(int n) const {
  // Geometric decay, newest entry (index n-1) weighted 1 before
  // normalization.
  std::vector<float> weights(n);
  double total = 0.0;
  for (int j = 0; j < n; ++j) {
    double w = std::pow(params_.context_decay, n - 1 - j);
    weights[j] = static_cast<float>(w);
    total += w;
  }
  if (total > 0.0) {
    for (float& w : weights) w = static_cast<float>(w / total);
  }
  return weights;
}

void BprModel::UserEmbedding(const Context& context, float* out) const {
  const int d = dim();
  for (int k = 0; k < d; ++k) out[k] = 0.0f;
  if (context.empty()) return;

  const int window = params_.context_window;
  const int n = std::min<int>(window, static_cast<int>(context.size()));
  const int start = static_cast<int>(context.size()) - n;
  std::vector<float> weights = ContextWeights(n);
  for (int j = 0; j < n; ++j) {
    const float* vc = context_emb_.row(context[start + j].item);
    const float w = weights[j];
    for (int k = 0; k < d; ++k) out[k] += w * vc[k];
  }
}

double BprModel::Score(const float* user_vec, data::ItemIndex i) const {
  // Hot path for inference: reuse a per-thread scratch buffer.
  thread_local std::vector<float> phi;
  phi.resize(dim());
  ItemRepresentation(i, phi.data());
  return ScoreWithPhi(user_vec, phi.data());
}

double BprModel::ScoreWithPhi(const float* user_vec, const float* phi) const {
  double sum = 0.0;
  for (int k = 0; k < dim(); ++k) {
    sum += static_cast<double>(user_vec[k]) * phi[k];
  }
  return sum;
}

int BprModel::ResizeForCatalog(Rng* rng) {
  const int added = catalog_->num_items() - item_emb_.rows();
  SIGCHECK_GE(added, 0);
  if (added == 0) return 0;
  const double stddev = params_.init_scale / std::sqrt(dim());
  item_emb_.GrowRows(catalog_->num_items(), stddev, rng);
  context_emb_.GrowRows(catalog_->num_items(), stddev, rng);
  if (params_.use_brand && catalog_->num_brands() > brand_emb_.rows()) {
    brand_emb_.GrowRows(catalog_->num_brands(), stddev, rng);
  }
  return added;
}

void BprModel::ResetAdagrad() {
  item_emb_.ResetAdagrad();
  context_emb_.ResetAdagrad();
  taxonomy_emb_.ResetAdagrad();
  brand_emb_.ResetAdagrad();
  price_emb_.ResetAdagrad();
}

int64_t BprModel::MemoryBytes() const {
  return item_emb_.MemoryBytes() + context_emb_.MemoryBytes() +
         taxonomy_emb_.MemoryBytes() + brand_emb_.MemoryBytes() +
         price_emb_.MemoryBytes();
}

std::string BprModel::Serialize() const {
  std::string out;
  AppendValue(&out, kMagic);
  AppendValue(&out, kVersion);
  std::string params_text = params_.Serialize();
  AppendValue<uint64_t>(&out, params_text.size());
  out += params_text;
  for (const EmbeddingMatrix* m :
       {&item_emb_, &context_emb_, &taxonomy_emb_, &brand_emb_, &price_emb_}) {
    AppendValue<int32_t>(&out, m->rows());
    AppendValue<int32_t>(&out, m->dim());
    AppendFloats(&out, m->values());
    AppendFloats(&out, m->adagrad_values());
  }
  return out;
}

StatusOr<BprModel> BprModel::Deserialize(const std::string& bytes,
                                         const data::Catalog* catalog) {
  size_t offset = 0;
  uint32_t magic = 0, version = 0;
  if (!ReadValue(bytes, &offset, &magic) || magic != kMagic) {
    return DataLossError("bad model magic");
  }
  if (!ReadValue(bytes, &offset, &version) || version != kVersion) {
    return DataLossError("unsupported model version");
  }
  uint64_t params_size = 0;
  if (!ReadValue(bytes, &offset, &params_size) ||
      offset + params_size > bytes.size()) {
    return DataLossError("truncated model params");
  }
  StatusOr<HyperParams> params =
      HyperParams::Deserialize(bytes.substr(offset, params_size));
  if (!params.ok()) return params.status();
  offset += params_size;

  BprModel model(catalog, *params);
  for (EmbeddingMatrix* m :
       {&model.item_emb_, &model.context_emb_, &model.taxonomy_emb_,
        &model.brand_emb_, &model.price_emb_}) {
    int32_t rows = 0, dim = 0;
    if (!ReadValue(bytes, &offset, &rows) ||
        !ReadValue(bytes, &offset, &dim)) {
      return DataLossError("truncated model table header");
    }
    std::vector<float> values, adagrad;
    if (!ReadFloats(bytes, &offset, &values) ||
        !ReadFloats(bytes, &offset, &adagrad)) {
      return DataLossError("truncated model table data");
    }
    if (values.size() != static_cast<size_t>(rows) * dim ||
        adagrad.size() != static_cast<size_t>(rows)) {
      return DataLossError("model table size mismatch");
    }
    if (dim != 0 && dim != model.dim()) {
      return DataLossError("model factor-dimension mismatch");
    }
    m->Resize(rows, dim == 0 ? model.dim() : dim);
    *m->mutable_values() = std::move(values);
    *m->mutable_adagrad() = std::move(adagrad);
  }
  // The serialized model may lag the live catalog (items added since the
  // checkpoint); that is allowed and handled by ResizeForCatalog. It must
  // never exceed it.
  if (model.item_emb_.rows() > catalog->num_items()) {
    return DataLossError("model has more items than catalog");
  }
  return model;
}

}  // namespace sigmund::core
