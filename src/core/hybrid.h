#ifndef SIGMUND_CORE_HYBRID_H_
#define SIGMUND_CORE_HYBRID_H_

#include <vector>

#include "core/cooccurrence.h"
#include "core/inference.h"

namespace sigmund::core {

// Head/tail hybrid recommender (§III-E, §VII): co-occurrence
// recommendations for popular items, where abundant data makes them hard
// to beat, augmented with factorization-derived recommendations for the
// sparse tail — covering a much larger fraction of the inventory.
class HybridRecommender {
 public:
  struct Options {
    int top_k = 10;
    // A co-occurrence neighbor must have at least this raw count to be
    // trusted.
    int64_t min_pair_count = 3;
    InferenceEngine::Options inference;
  };

  // Borrowed pointers; must outlive the recommender.
  HybridRecommender(const CooccurrenceModel* cooccurrence,
                    const InferenceEngine* engine)
      : cooccurrence_(cooccurrence), engine_(engine) {}

  // Recommendation list for query item `i`: trusted co-occurrence
  // neighbors first, backfilled from the factorization model when there
  // are fewer than top_k of them.
  std::vector<ScoredItem> ViewBased(data::ItemIndex i,
                                    const Options& options) const;
  std::vector<ScoredItem> PurchaseBased(data::ItemIndex i,
                                        const Options& options) const;

  // True if the co-occurrence model alone can fill a top_k list for `i`
  // (the item is in the "head").
  bool CooccurrenceSufficient(data::ItemIndex i,
                              const Options& options) const;

  // Fraction of the catalog for which a recommender produces at least
  // `min_list` recommendations. Coverage is the hybrid's selling point.
  static double Coverage(const std::vector<std::vector<ScoredItem>>& lists,
                         int min_list);

 private:
  std::vector<ScoredItem> Combine(
      const std::vector<CooccurrenceModel::Neighbor>& neighbors,
      const std::vector<ScoredItem>& factorization,
      const Options& options) const;

  const CooccurrenceModel* cooccurrence_;
  const InferenceEngine* engine_;
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_HYBRID_H_
