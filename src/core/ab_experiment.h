#ifndef SIGMUND_CORE_AB_EXPERIMENT_H_
#define SIGMUND_CORE_AB_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/ctr_simulator.h"
#include "data/retailer_data.h"

namespace sigmund::core {

// Online A/B experimentation harness, simulating the paper's practice:
// "Offline metrics do not directly translate to improvements in online
// metrics ... we relied on a series of carefully structured online
// experiments to inform our design choices" (§V).
//
// Users are split into arms by a hash of their id (sticky assignment, as
// production experiment frameworks do); each arm's policy produces a
// ranked list per (user, query-item) impression; clicks come from the
// hidden ground-truth CTR simulator; the outcome reports per-arm CTR and
// a two-proportion z-test.
class AbExperiment {
 public:
  // A policy maps (user, query item) to a ranked recommendation list.
  using Policy = std::function<std::vector<data::ItemIndex>(
      data::UserIndex, data::ItemIndex)>;

  struct Arm {
    std::string name;
    Policy policy;
  };

  struct ArmResult {
    std::string name;
    int64_t impressions = 0;  // lists shown
    int64_t clicks = 0;
    double Ctr() const {
      return impressions > 0 ? static_cast<double>(clicks) / impressions
                             : 0.0;
    }
  };

  struct Outcome {
    ArmResult control;
    ArmResult treatment;
    // z-score of the two-proportion test on per-impression click rate;
    // |z| > 1.96 is significant at the 5% level.
    double z_score = 0.0;
    bool SignificantAt95() const { return std::abs(z_score) > 1.96; }
    double RelativeLift() const {
      return control.Ctr() > 0
                 ? treatment.Ctr() / control.Ctr() - 1.0
                 : 0.0;
    }
  };

  struct Options {
    // Impressions simulated per eligible user context.
    int rounds_per_user = 3;
    uint64_t seed = 42;
    data::CtrSimulator::Config ctr;
  };

  // Replays each user's last training interaction as the query context
  // and simulates clicks on each arm's list. Users are hash-split 50/50.
  static Outcome Run(
      const data::RetailerWorld& world,
      const std::vector<std::vector<data::Interaction>>& contexts,
      const Arm& control, const Arm& treatment, const Options& options);
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_AB_EXPERIMENT_H_
