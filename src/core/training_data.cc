#include "core/training_data.h"

#include <algorithm>

#include "common/logging.h"

namespace sigmund::core {

TrainingData::TrainingData(
    const std::vector<std::vector<data::Interaction>>* histories,
    int num_items)
    : histories_(histories), num_items_(num_items) {
  SIGCHECK(histories != nullptr);
  const int users = static_cast<int>(histories->size());
  seen_.resize(users);
  tier_buckets_.resize(users);
  item_counts_.assign(num_items, 0);

  for (data::UserIndex u = 0; u < users; ++u) {
    const auto& history = (*histories)[u];
    // Max observed strength per item for this user.
    std::unordered_map<data::ItemIndex, int> max_strength;
    for (int idx = 0; idx < static_cast<int>(history.size()); ++idx) {
      const data::Interaction& event = history[idx];
      SIGCHECK_GE(event.item, 0);
      SIGCHECK_LT(event.item, num_items);
      if (idx >= 1) positions_.push_back(Position{u, idx});
      seen_[u].insert(event.item);
      ++item_counts_[event.item];
      int strength = data::ActionStrength(event.action);
      auto [it, inserted] = max_strength.emplace(event.item, strength);
      if (!inserted) it->second = std::max(it->second, strength);
    }
    tier_buckets_[u].assign(data::kNumActionTypes, {});
    for (const auto& [item, strength] : max_strength) {
      tier_buckets_[u][strength].push_back(item);
    }
    // Deterministic bucket order regardless of hash-map iteration.
    for (auto& bucket : tier_buckets_[u]) {
      std::sort(bucket.begin(), bucket.end());
    }
  }
}

TrainingData::Position TrainingData::SamplePosition(Rng* rng) const {
  SIGCHECK(!positions_.empty());
  return positions_[rng->Uniform(positions_.size())];
}

Context TrainingData::ContextAt(Position p, int window) const {
  const auto& history = (*histories_)[p.user];
  int start = std::max(0, p.index - window);
  Context context;
  context.reserve(p.index - start);
  for (int idx = start; idx < p.index; ++idx) {
    context.push_back(ContextEntry{history[idx].item, history[idx].action});
  }
  return context;
}

Context TrainingData::FullContext(data::UserIndex user, int window) const {
  const auto& history = (*histories_)[user];
  return ContextAt(Position{user, static_cast<int>(history.size())}, window);
}

bool TrainingData::Seen(data::UserIndex user, data::ItemIndex item) const {
  return seen_[user].count(item) > 0;
}

const std::vector<data::ItemIndex>& TrainingData::TierBucket(
    data::UserIndex user, int strength) const {
  SIGCHECK_GE(strength, 0);
  SIGCHECK_LT(strength, data::kNumActionTypes);
  return tier_buckets_[user][strength];
}

data::ItemIndex TrainingData::SampleLowerTierItem(data::UserIndex user,
                                                  data::ActionType action,
                                                  Rng* rng) const {
  // Prefer exactly one tier below ("for every searched item, we sample a
  // negative item that is viewed but not searched"), fall back further.
  for (int strength = data::ActionStrength(action) - 1; strength >= 0;
       --strength) {
    const auto& bucket = tier_buckets_[user][strength];
    if (!bucket.empty()) return bucket[rng->Uniform(bucket.size())];
  }
  return data::kInvalidItem;
}

}  // namespace sigmund::core
