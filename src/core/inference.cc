#include "core/inference.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace sigmund::core {

namespace {

std::string SerializeList(const std::vector<ScoredItem>& items) {
  std::string out;
  for (size_t k = 0; k < items.size(); ++k) {
    if (k > 0) out += ',';
    out += StrFormat("%d:%.6g", items[k].item, items[k].score);
  }
  return out;
}

StatusOr<std::vector<ScoredItem>> DeserializeList(const std::string& text) {
  std::vector<ScoredItem> items;
  if (text.empty()) return items;
  for (const std::string& piece : StrSplit(text, ',')) {
    std::vector<std::string> kv = StrSplit(piece, ':');
    int64_t item = 0;
    double score = 0.0;
    if (kv.size() != 2 || !ParseInt64(kv[0], &item) ||
        !ParseDouble(kv[1], &score)) {
      return DataLossError("malformed scored item: " + piece);
    }
    items.push_back(ScoredItem{static_cast<data::ItemIndex>(item), score});
  }
  return items;
}

}  // namespace

std::string ItemRecommendations::Serialize() const {
  return StrFormat("%d|%s|%s|%s", query, SerializeList(view_based).c_str(),
                   SerializeList(purchase_based).c_str(),
                   SerializeList(view_based_late).c_str());
}

StatusOr<ItemRecommendations> ItemRecommendations::Deserialize(
    const std::string& text) {
  std::vector<std::string> parts = StrSplit(text, '|');
  // 3-part records predate the late-funnel list; still accepted.
  if (parts.size() != 3 && parts.size() != 4) {
    return DataLossError("malformed recommendations");
  }
  int64_t query = 0;
  if (!ParseInt64(parts[0], &query)) {
    return DataLossError("malformed query item");
  }
  ItemRecommendations recs;
  recs.query = static_cast<data::ItemIndex>(query);
  StatusOr<std::vector<ScoredItem>> view = DeserializeList(parts[1]);
  if (!view.ok()) return view.status();
  StatusOr<std::vector<ScoredItem>> purchase = DeserializeList(parts[2]);
  if (!purchase.ok()) return purchase.status();
  recs.view_based = std::move(view).value();
  recs.purchase_based = std::move(purchase).value();
  if (parts.size() == 4) {
    StatusOr<std::vector<ScoredItem>> late = DeserializeList(parts[3]);
    if (!late.ok()) return late.status();
    recs.view_based_late = std::move(late).value();
  }
  return recs;
}

InferenceEngine::InferenceEngine(const BprModel* model,
                                 const CandidateSelector* selector)
    : model_(model), selector_(selector) {
  SIGCHECK(model != nullptr);
  SIGCHECK(selector != nullptr);
}

std::vector<ScoredItem> InferenceEngine::RankCandidates(
    const Context& context, const std::vector<data::ItemIndex>& candidates,
    int top_k) const {
  std::vector<float> user_vec(model_->dim());
  model_->UserEmbedding(context, user_vec.data());

  std::vector<ScoredItem> scored;
  scored.reserve(candidates.size());
  for (data::ItemIndex item : candidates) {
    scored.push_back(ScoredItem{item, model_->Score(user_vec.data(), item)});
  }
  const size_t keep = std::min<size_t>(top_k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const ScoredItem& a, const ScoredItem& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.item < b.item;
                    });
  scored.resize(keep);
  return scored;
}

ItemRecommendations InferenceEngine::RecommendForItem(
    data::ItemIndex i, const Options& options) const {
  ItemRecommendations recs;
  recs.query = i;
  recs.view_based =
      RankCandidates(Context{{i, data::ActionType::kView}},
                     selector_->ViewBased(i, options.selector),
                     options.top_k);
  recs.purchase_based =
      RankCandidates(Context{{i, data::ActionType::kConversion}},
                     selector_->PurchaseBased(i, options.selector),
                     options.top_k);
  if (options.materialize_late_funnel) {
    CandidateSelector::Options late = options.selector;
    late.late_funnel = true;
    recs.view_based_late =
        RankCandidates(Context{{i, data::ActionType::kView}},
                       selector_->ViewBased(i, late), options.top_k);
  }
  return recs;
}

std::vector<ItemRecommendations> InferenceEngine::MaterializeAll(
    const Options& options) const {
  const int n = model_->catalog().num_items();
  std::vector<ItemRecommendations> all(n);
  if (options.num_threads <= 1) {
    for (data::ItemIndex i = 0; i < n; ++i) {
      all[i] = RecommendForItem(i, options);
    }
  } else {
    ThreadPool pool(options.num_threads);
    pool.ParallelFor(n, [this, &all, &options](int64_t i) {
      all[i] = RecommendForItem(static_cast<data::ItemIndex>(i), options);
    });
  }
  return all;
}

ItemRecommendations InferenceEngine::RecommendForItemFullScan(
    data::ItemIndex i, int top_k) const {
  std::vector<data::ItemIndex> everything;
  everything.reserve(model_->catalog().num_items());
  for (data::ItemIndex j = 0; j < model_->catalog().num_items(); ++j) {
    if (j != i) everything.push_back(j);
  }
  ItemRecommendations recs;
  recs.query = i;
  recs.view_based = RankCandidates(Context{{i, data::ActionType::kView}},
                                   everything, top_k);
  recs.purchase_based = RankCandidates(
      Context{{i, data::ActionType::kConversion}}, everything, top_k);
  return recs;
}

}  // namespace sigmund::core
