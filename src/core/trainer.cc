#include "core/trainer.h"

#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace sigmund::core {

namespace {

double Softplus(double z) {
  // Numerically stable log(1 + exp(z)).
  if (z > 30.0) return z;
  if (z < -30.0) return 0.0;
  return std::log1p(std::exp(z));
}

}  // namespace

BprTrainer::BprTrainer(BprModel* model, const TrainingData* data,
                       const NegativeSampler* sampler)
    : model_(model), data_(data), sampler_(sampler) {
  SIGCHECK(model != nullptr);
  SIGCHECK(data != nullptr);
  SIGCHECK(sampler != nullptr);
}

void BprTrainer::UpdateRow(EmbeddingMatrix* table, int row, const float* dir,
                           double scale_grad, double lambda) {
  const int d = model_->dim();
  const double eta = model_->params().learning_rate;
  float* w = table->row(row);

  double lr = eta;
  if (model_->params().use_adagrad) {
    // Row-wise Adagrad: accumulate the squared norm of this row's gradient
    // ("the sum of the norms of its updates", §III-C1), damping frequently
    // updated rows.
    double norm_sq = 0.0;
    for (int k = 0; k < d; ++k) {
      double g = scale_grad * dir[k] - lambda * w[k];
      norm_sq += g * g;
    }
    // Benign race under Hogwild.
    float& acc = table->adagrad(row);
    acc += static_cast<float>(norm_sq);
    lr = eta / std::sqrt(1e-6 + acc);
  }
  for (int k = 0; k < d; ++k) {
    double g = scale_grad * dir[k] - lambda * w[k];
    w[k] += static_cast<float>(lr * g);
  }
}

double BprTrainer::ApplyUpdate(const Context& context,
                               data::ItemIndex positive,
                               data::ItemIndex negative) {
  const int d = model_->dim();
  const HyperParams& params = model_->params();

  thread_local std::vector<float> u, phi_i, phi_j, diff;
  u.resize(d);
  phi_i.resize(d);
  phi_j.resize(d);
  diff.resize(d);

  model_->UserEmbedding(context, u.data());
  model_->ItemRepresentation(positive, phi_i.data());
  model_->ItemRepresentation(negative, phi_j.data());

  double x = 0.0;
  for (int k = 0; k < d; ++k) {
    diff[k] = phi_i[k] - phi_j[k];
    x += static_cast<double>(u[k]) * diff[k];
  }
  const double loss = Softplus(-x);
  const double s = 1.0 / (1.0 + std::exp(x));  // sigma(-x)

  // --- Item-side updates: every additive component of phi gets the same
  // gradient direction (hierarchical additive model).
  auto update_item_side = [&](data::ItemIndex item, double sign) {
    UpdateRow(&model_->item_embeddings(), item, u.data(), sign * s,
              params.lambda_v);
    const data::Item& meta = model_->catalog().item(item);
    if (params.use_taxonomy) {
      for (data::CategoryId a :
           model_->catalog().taxonomy().PathToRoot(meta.category)) {
        UpdateRow(&model_->taxonomy_embeddings(), a, u.data(), sign * s,
                  params.lambda_v);
      }
    }
    if (params.use_brand && meta.brand != data::kUnknownBrand &&
        meta.brand < model_->brand_embeddings().rows()) {
      UpdateRow(&model_->brand_embeddings(), meta.brand, u.data(), sign * s,
                params.lambda_v);
    }
    if (params.use_price) {
      int bucket = data::PriceBucket(meta.price, data::kDefaultPriceBuckets);
      if (bucket >= 0) {
        UpdateRow(&model_->price_embeddings(), bucket, u.data(), sign * s,
                  params.lambda_v);
      }
    }
  };
  update_item_side(positive, +1.0);
  update_item_side(negative, -1.0);

  // --- Context-side updates: vC of each context item, weighted by its
  // decay weight (gradient of u = sum_m w_m vC_m w.r.t. vC_m is w_m).
  const int window = params.context_window;
  const int n = std::min<int>(window, static_cast<int>(context.size()));
  const int start = static_cast<int>(context.size()) - n;
  std::vector<float> weights = model_->ContextWeights(n);
  for (int m = 0; m < n; ++m) {
    UpdateRow(&model_->context_embeddings(), context[start + m].item,
              diff.data(), s * weights[m], params.lambda_vc);
  }
  return loss;
}

double BprTrainer::Step(const Context& context, data::ItemIndex positive,
                        data::ItemIndex negative, Rng* /*rng*/) {
  SIGCHECK(!context.empty());
  return ApplyUpdate(context, positive, negative);
}

double BprTrainer::SampleAndStep(Rng* rng) {
  const HyperParams& params = model_->params();
  TrainingData::Position pos = data_->SamplePosition(rng);
  const data::Interaction& event = data_->EventAt(pos);
  Context context = data_->ContextAt(pos, params.context_window);
  if (context.empty()) return -1.0;

  data::ItemIndex negative = data::kInvalidItem;
  // Tier constraint: with some probability, and when the positive action
  // is above the weakest tier, contrast against one of the user's own
  // lower-tier items (search > view, cart > search, conversion > cart).
  if (data::ActionStrength(event.action) > 0 &&
      rng->Bernoulli(params.tier_constraint_fraction)) {
    negative = data_->SampleLowerTierItem(pos.user, event.action, rng);
    if (negative == event.item) negative = data::kInvalidItem;
  }
  if (negative == data::kInvalidItem) {
    thread_local std::vector<float> u;
    u.resize(model_->dim());
    model_->UserEmbedding(context, u.data());
    negative = sampler_->Sample(*data_, pos.user, u.data(), event.item, rng);
  }
  if (negative == data::kInvalidItem || negative == event.item) return -1.0;
  return ApplyUpdate(context, event.item, negative);
}

TrainStats BprTrainer::Train(const Options& options) {
  TrainStats stats;
  const HyperParams& params = model_->params();
  const int64_t default_steps = data_->num_positions();
  const int64_t steps_per_epoch =
      options.steps_per_epoch > 0 ? options.steps_per_epoch : default_steps;
  if (steps_per_epoch == 0) return stats;

  const int threads = std::max(1, options.num_threads);
  ThreadPool pool(threads);
  const int64_t chunks = static_cast<int64_t>(threads) * 4;
  const int num_epochs =
      options.num_epochs > 0 ? options.num_epochs : params.num_epochs;

  for (int epoch = 0; epoch < num_epochs; ++epoch) {
    std::atomic<double> loss_sum{0.0};
    std::atomic<int64_t> done{0}, skipped{0};
    pool.ParallelFor(chunks, [&](int64_t c) {
      // Per-chunk RNG: deterministic in (seed, epoch, chunk) for
      // single-threaded runs; Hogwild interleaving is inherently
      // nondeterministic across threads.
      Rng rng(SplitMix64(params.seed + 1) ^
              SplitMix64(static_cast<uint64_t>(epoch) * 1000003ULL + c));
      int64_t my_steps =
          steps_per_epoch / chunks + (c < steps_per_epoch % chunks ? 1 : 0);
      double local_loss = 0.0;
      int64_t local_done = 0, local_skipped = 0;
      for (int64_t i = 0; i < my_steps; ++i) {
        double loss = SampleAndStep(&rng);
        if (loss < 0.0) {
          ++local_skipped;
        } else {
          local_loss += loss;
          ++local_done;
        }
      }
      loss_sum.fetch_add(local_loss);
      done.fetch_add(local_done);
      skipped.fetch_add(local_skipped);
    });

    stats.epochs_run = epoch + 1;
    stats.sgd_steps += done.load();
    stats.skipped_steps += skipped.load();
    stats.last_epoch_loss =
        done.load() > 0 ? loss_sum.load() / done.load() : 0.0;
    if (options.epoch_callback && !options.epoch_callback(epoch, stats)) {
      break;
    }
  }
  return stats;
}

}  // namespace sigmund::core
