#include "core/hyperparams.h"

#include "common/string_util.h"

namespace sigmund::core {

const char* NegativeSamplerKindName(NegativeSamplerKind kind) {
  switch (kind) {
    case NegativeSamplerKind::kUniform:
      return "uniform";
    case NegativeSamplerKind::kPopularity:
      return "popularity";
    case NegativeSamplerKind::kTaxonomy:
      return "taxonomy";
    case NegativeSamplerKind::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

std::string HyperParams::Serialize() const {
  return StrFormat(
      "f=%d;lr=%.17g;lv=%.17g;lvc=%.17g;adagrad=%d;tax=%d;brand=%d;price=%d;"
      "ctx=%d;decay=%.17g;tier=%.17g;sampler=%d;epochs=%d;init=%.17g;"
      "seed=%llu",
      num_factors, learning_rate, lambda_v, lambda_vc, use_adagrad ? 1 : 0,
      use_taxonomy ? 1 : 0, use_brand ? 1 : 0, use_price ? 1 : 0,
      context_window, context_decay, tier_constraint_fraction,
      static_cast<int>(sampler), num_epochs, init_scale,
      static_cast<unsigned long long>(seed));
}

StatusOr<HyperParams> HyperParams::Deserialize(const std::string& text) {
  HyperParams params;
  for (const std::string& piece : StrSplit(text, ';')) {
    if (piece.empty()) continue;
    std::vector<std::string> kv = StrSplit(piece, '=');
    if (kv.size() != 2) {
      return InvalidArgumentError("malformed hyperparam piece: " + piece);
    }
    const std::string& key = kv[0];
    const std::string& value = kv[1];
    int64_t i = 0;
    double d = 0.0;
    bool ok = true;
    if (key == "f") {
      ok = ParseInt64(value, &i);
      params.num_factors = static_cast<int>(i);
    } else if (key == "lr") {
      ok = ParseDouble(value, &d);
      params.learning_rate = d;
    } else if (key == "lv") {
      ok = ParseDouble(value, &d);
      params.lambda_v = d;
    } else if (key == "lvc") {
      ok = ParseDouble(value, &d);
      params.lambda_vc = d;
    } else if (key == "adagrad") {
      ok = ParseInt64(value, &i);
      params.use_adagrad = i != 0;
    } else if (key == "tax") {
      ok = ParseInt64(value, &i);
      params.use_taxonomy = i != 0;
    } else if (key == "brand") {
      ok = ParseInt64(value, &i);
      params.use_brand = i != 0;
    } else if (key == "price") {
      ok = ParseInt64(value, &i);
      params.use_price = i != 0;
    } else if (key == "ctx") {
      ok = ParseInt64(value, &i);
      params.context_window = static_cast<int>(i);
    } else if (key == "decay") {
      ok = ParseDouble(value, &d);
      params.context_decay = d;
    } else if (key == "tier") {
      ok = ParseDouble(value, &d);
      params.tier_constraint_fraction = d;
    } else if (key == "sampler") {
      ok = ParseInt64(value, &i);
      params.sampler = static_cast<NegativeSamplerKind>(i);
    } else if (key == "epochs") {
      ok = ParseInt64(value, &i);
      params.num_epochs = static_cast<int>(i);
    } else if (key == "init") {
      ok = ParseDouble(value, &d);
      params.init_scale = d;
    } else if (key == "seed") {
      ok = ParseInt64(value, &i);
      params.seed = static_cast<uint64_t>(i);
    } else {
      return InvalidArgumentError("unknown hyperparam key: " + key);
    }
    if (!ok) {
      return InvalidArgumentError("unparseable hyperparam value: " + piece);
    }
  }
  return params;
}

bool operator==(const HyperParams& a, const HyperParams& b) {
  return a.Serialize() == b.Serialize();
}

}  // namespace sigmund::core
