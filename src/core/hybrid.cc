#include "core/hybrid.h"

#include <unordered_set>

namespace sigmund::core {

std::vector<ScoredItem> HybridRecommender::Combine(
    const std::vector<CooccurrenceModel::Neighbor>& neighbors,
    const std::vector<ScoredItem>& factorization,
    const Options& options) const {
  std::vector<ScoredItem> result;
  std::unordered_set<data::ItemIndex> used;
  for (const auto& neighbor : neighbors) {
    if (neighbor.count < options.min_pair_count) break;  // sorted by score
    result.push_back(ScoredItem{neighbor.item, neighbor.score});
    used.insert(neighbor.item);
    if (static_cast<int>(result.size()) >= options.top_k) return result;
  }
  // Tail augmentation from the factorization model.
  for (const ScoredItem& item : factorization) {
    if (used.count(item.item) > 0) continue;
    result.push_back(item);
    if (static_cast<int>(result.size()) >= options.top_k) break;
  }
  return result;
}

std::vector<ScoredItem> HybridRecommender::ViewBased(
    data::ItemIndex i, const Options& options) const {
  InferenceEngine::Options inference = options.inference;
  inference.top_k = options.top_k;
  ItemRecommendations recs = engine_->RecommendForItem(i, inference);
  return Combine(cooccurrence_->CoViewed(i), recs.view_based, options);
}

std::vector<ScoredItem> HybridRecommender::PurchaseBased(
    data::ItemIndex i, const Options& options) const {
  InferenceEngine::Options inference = options.inference;
  inference.top_k = options.top_k;
  ItemRecommendations recs = engine_->RecommendForItem(i, inference);
  return Combine(cooccurrence_->CoBought(i), recs.purchase_based, options);
}

bool HybridRecommender::CooccurrenceSufficient(data::ItemIndex i,
                                               const Options& options) const {
  int trusted = 0;
  for (const auto& neighbor : cooccurrence_->CoViewed(i)) {
    if (neighbor.count >= options.min_pair_count) ++trusted;
  }
  return trusted >= options.top_k;
}

double HybridRecommender::Coverage(
    const std::vector<std::vector<ScoredItem>>& lists, int min_list) {
  if (lists.empty()) return 0.0;
  int covered = 0;
  for (const auto& list : lists) {
    if (static_cast<int>(list.size()) >= min_list) ++covered;
  }
  return static_cast<double>(covered) / lists.size();
}

}  // namespace sigmund::core
