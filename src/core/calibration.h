#ifndef SIGMUND_CORE_CALIBRATION_H_
#define SIGMUND_CORE_CALIBRATION_H_

#include <vector>

#include "common/status.h"

namespace sigmund::core {

// Platt scaling of raw BPR affinities into click probabilities.
//
// The paper's future-work section (§VII): a ranking objective "makes it
// easy to produce a ranked list ... but it is difficult to estimate the
// absolute relevance of the recommendation, particularly if we want to
// make a decision on whether to display to the user. We are considering
// future approaches that combine the advantages of a BPR-style ranking
// objective with the ability to provide a relevance score that can be
// compared to a threshold." This class is that combination: a 2-parameter
// logistic regression P(click | score) = sigmoid(a * score + b), fitted
// by Newton-Raphson on observed (score, clicked) pairs from serving logs.
class ScoreCalibrator {
 public:
  struct Options {
    int max_iterations = 100;
    double tolerance = 1e-10;
    // L2 damping on (a, b) keeps the fit stable on tiny samples.
    double ridge = 1e-6;
  };

  // Fits on parallel arrays of model scores and click outcomes. Requires
  // at least one positive and one negative example. The two-argument
  // overload uses default Options.
  static StatusOr<ScoreCalibrator> Fit(const std::vector<double>& scores,
                                       const std::vector<bool>& clicked,
                                       const Options& options);
  static StatusOr<ScoreCalibrator> Fit(const std::vector<double>& scores,
                                       const std::vector<bool>& clicked);

  // Calibrated click probability for a raw model score.
  double Probability(double score) const;

  // Display decision against an absolute relevance bar.
  bool ShouldDisplay(double score, double threshold) const {
    return Probability(score) >= threshold;
  }

  double slope() const { return a_; }
  double intercept() const { return b_; }

  // Mean log-loss of the fit on a dataset (for tests / monitoring).
  double LogLoss(const std::vector<double>& scores,
                 const std::vector<bool>& clicked) const;

 private:
  ScoreCalibrator(double a, double b) : a_(a), b_(b) {}

  double a_ = 1.0;
  double b_ = 0.0;
};

}  // namespace sigmund::core

#endif  // SIGMUND_CORE_CALIBRATION_H_
