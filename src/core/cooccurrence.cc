#include "core/cooccurrence.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sigmund::core {

uint64_t CooccurrenceModel::PairKey(data::ItemIndex a, data::ItemIndex b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

CooccurrenceModel CooccurrenceModel::Build(
    const std::vector<std::vector<data::Interaction>>& histories,
    int num_items, const Options& options) {
  CooccurrenceModel model;
  model.view_counts_.assign(num_items, 0);
  model.buy_counts_.assign(num_items, 0);

  for (const auto& history : histories) {
    // Split into sessions on time gaps; count co-views within a sliding
    // window inside each session.
    std::vector<data::ItemIndex> session_views;
    std::vector<data::ItemIndex> purchases;
    int64_t last_time = 0;

    auto flush_session = [&]() { session_views.clear(); };

    for (const data::Interaction& event : history) {
      if (!session_views.empty() &&
          event.timestamp - last_time > options.session_gap_seconds) {
        flush_session();
      }
      last_time = event.timestamp;

      if (event.action == data::ActionType::kConversion) {
        ++model.buy_counts_[event.item];
        for (data::ItemIndex prev : purchases) {
          if (prev != event.item) {
            ++model.buy_pairs_[PairKey(prev, event.item)];
          }
        }
        purchases.push_back(event.item);
      }
      // Every event implies the item page was seen; count it as a view
      // exposure for co-view purposes.
      ++model.view_counts_[event.item];
      ++model.total_view_events_;
      int start = std::max<int>(
          0, static_cast<int>(session_views.size()) - options.window);
      for (size_t k = start; k < session_views.size(); ++k) {
        if (session_views[k] != event.item) {
          ++model.view_pairs_[PairKey(session_views[k], event.item)];
        }
      }
      session_views.push_back(event.item);
    }
  }

  // Build per-item top-neighbor lists.
  std::vector<std::vector<Neighbor>> viewed(num_items), bought(num_items);
  auto fill = [&](const std::unordered_map<uint64_t, int64_t>& pairs,
                  const std::vector<int64_t>& counts,
                  std::vector<std::vector<Neighbor>>* out) {
    for (const auto& [key, count] : pairs) {
      if (count < options.min_count) continue;
      data::ItemIndex a = static_cast<data::ItemIndex>(key >> 32);
      data::ItemIndex b = static_cast<data::ItemIndex>(key & 0xffffffffu);
      // Cosine-style normalization: c_ab / sqrt(c_a * c_b).
      double denom = std::sqrt(static_cast<double>(
          std::max<int64_t>(1, counts[a]) * std::max<int64_t>(1, counts[b])));
      double score = count / denom;
      (*out)[a].push_back(Neighbor{b, score, count});
      (*out)[b].push_back(Neighbor{a, score, count});
    }
    for (auto& neighbors : *out) {
      std::sort(neighbors.begin(), neighbors.end(),
                [](const Neighbor& x, const Neighbor& y) {
                  if (x.score != y.score) return x.score > y.score;
                  return x.item < y.item;
                });
      if (static_cast<int>(neighbors.size()) > options.max_neighbors) {
        neighbors.resize(options.max_neighbors);
      }
    }
  };
  fill(model.view_pairs_, model.view_counts_, &viewed);
  fill(model.buy_pairs_, model.buy_counts_, &bought);
  model.co_viewed_ = std::move(viewed);
  model.co_bought_ = std::move(bought);
  return model;
}

int64_t CooccurrenceModel::CoViewCount(data::ItemIndex a,
                                       data::ItemIndex b) const {
  auto it = view_pairs_.find(PairKey(a, b));
  return it == view_pairs_.end() ? 0 : it->second;
}

int64_t CooccurrenceModel::CoBuyCount(data::ItemIndex a,
                                      data::ItemIndex b) const {
  auto it = buy_pairs_.find(PairKey(a, b));
  return it == buy_pairs_.end() ? 0 : it->second;
}

double CooccurrenceModel::Pmi(data::ItemIndex a, data::ItemIndex b) const {
  int64_t joint = CoViewCount(a, b);
  if (joint == 0 || total_view_events_ == 0) return -1e30;
  double p_joint = static_cast<double>(joint) / total_view_events_;
  double p_a = static_cast<double>(std::max<int64_t>(1, view_counts_[a])) /
               total_view_events_;
  double p_b = static_cast<double>(std::max<int64_t>(1, view_counts_[b])) /
               total_view_events_;
  return std::log(p_joint / (p_a * p_b));
}

const std::vector<CooccurrenceModel::Neighbor>& CooccurrenceModel::CoViewed(
    data::ItemIndex i) const {
  SIGCHECK_GE(i, 0);
  SIGCHECK_LT(i, num_items());
  return co_viewed_[i];
}

const std::vector<CooccurrenceModel::Neighbor>& CooccurrenceModel::CoBought(
    data::ItemIndex i) const {
  SIGCHECK_GE(i, 0);
  SIGCHECK_LT(i, num_items());
  return co_bought_[i];
}

std::vector<data::ItemIndex> CooccurrenceModel::ItemsByPopularity() const {
  std::vector<data::ItemIndex> items(num_items());
  for (int i = 0; i < num_items(); ++i) items[i] = i;
  std::sort(items.begin(), items.end(),
            [this](data::ItemIndex a, data::ItemIndex b) {
              if (view_counts_[a] != view_counts_[b]) {
                return view_counts_[a] > view_counts_[b];
              }
              return a < b;
            });
  return items;
}

}  // namespace sigmund::core
