#ifndef SIGMUND_PIPELINE_REGISTRY_H_
#define SIGMUND_PIPELINE_REGISTRY_H_

#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "data/retailer_data.h"

namespace sigmund::pipeline {

// Hands the pipeline's map tasks access to retailer datasets by id (the
// stand-in for "training and validation dataset locations" resolving to
// GFS files). Data is borrowed, not owned: the caller keeps each
// RetailerData alive and re-Upserts after daily updates.
//
// Thread-safe: map tasks read concurrently.
class RetailerRegistry {
 public:
  // Inserts or replaces the entry for data->id.
  void Upsert(const data::RetailerData* data);

  // kNotFound if the retailer was never registered.
  StatusOr<const data::RetailerData*> Get(data::RetailerId id) const;

  bool Contains(data::RetailerId id) const;

  // All registered retailer ids, ascending.
  std::vector<data::RetailerId> Ids() const;

  int size() const;

 private:
  mutable std::mutex mu_;
  std::map<data::RetailerId, const data::RetailerData*> retailers_;
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_REGISTRY_H_
