#ifndef SIGMUND_PIPELINE_SWEEP_H_
#define SIGMUND_PIPELINE_SWEEP_H_

#include <vector>

#include "common/random.h"
#include "core/grid_search.h"
#include "pipeline/config_record.h"
#include "pipeline/registry.h"

namespace sigmund::pipeline {

// Plans which (retailer, hyper-parameter) combinations to train (§IV-A).
//
// Full sweep: every grid combination for every retailer — needed only on
// first start-up or after catastrophic model loss.
//
// Incremental sweep: the top-K best-performing combinations per retailer
// (warm-started from yesterday's models), plus the *full* grid for any
// retailer that has no previous results (new sign-ups).
class SweepPlanner {
 public:
  struct Options {
    core::GridSpec grid;
    // Models re-trained per retailer in an incremental sweep ("typically
    // 3").
    int incremental_top_k = 3;
    // The input config records are randomly permuted so training tasks
    // spread evenly across MapReduce workers (§IV-B1).
    bool shuffle = true;
    uint64_t seed = 42;
  };

  explicit SweepPlanner(const Options& options) : options_(options) {}

  // All combinations for all registered retailers.
  std::vector<ConfigRecord> PlanFullSweep(
      const RetailerRegistry& registry) const;

  // `previous_results` are the trained output records of the last run
  // (any order, possibly many days' worth — the latest metrics per
  // (retailer, model_number) win). Retailers registered but absent from
  // the results get a full grid.
  std::vector<ConfigRecord> PlanIncrementalSweep(
      const RetailerRegistry& registry,
      const std::vector<ConfigRecord>& previous_results) const;

 private:
  std::vector<ConfigRecord> GridFor(data::RetailerId retailer,
                                    const data::Catalog& catalog) const;
  void FinishPlan(std::vector<ConfigRecord>* plan) const;

  Options options_;
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_SWEEP_H_
