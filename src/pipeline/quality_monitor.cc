#include "pipeline/quality_monitor.h"

#include <algorithm>

namespace sigmund::pipeline {

const char* VerdictName(QualityMonitor::Verdict verdict) {
  switch (verdict) {
    case QualityMonitor::Verdict::kFirstObservation:
      return "first-observation";
    case QualityMonitor::Verdict::kOk:
      return "ok";
    case QualityMonitor::Verdict::kRegressed:
      return "regressed";
  }
  return "unknown";
}

QualityMonitor::Verdict QualityMonitor::Record(data::RetailerId retailer,
                                               double map_at_10) {
  std::deque<double>& history = history_[retailer];
  Verdict verdict = Verdict::kFirstObservation;
  if (!history.empty()) {
    double best = *std::max_element(history.begin(), history.end());
    if (best >= options_.min_meaningful_map &&
        map_at_10 < (1.0 - options_.max_relative_drop) * best) {
      verdict = Verdict::kRegressed;
    } else {
      verdict = Verdict::kOk;
    }
  }
  history.push_back(map_at_10);
  while (static_cast<int>(history.size()) > options_.history_days) {
    history.pop_front();
  }
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("quality_verdicts_total",
                     {{"verdict", VerdictName(verdict)}})
        ->Add(1);
  }
  return verdict;
}

double QualityMonitor::TrailingBest(data::RetailerId retailer) const {
  auto it = history_.find(retailer);
  if (it == history_.end() || it->second.empty()) return 0.0;
  return *std::max_element(it->second.begin(), it->second.end());
}

int QualityMonitor::days_observed(data::RetailerId retailer) const {
  auto it = history_.find(retailer);
  return it == history_.end() ? 0 : static_cast<int>(it->second.size());
}

}  // namespace sigmund::pipeline
