#include "pipeline/quality_monitor.h"

#include <algorithm>

#include "common/binary_io.h"

namespace sigmund::pipeline {

const char* VerdictName(QualityMonitor::Verdict verdict) {
  switch (verdict) {
    case QualityMonitor::Verdict::kFirstObservation:
      return "first-observation";
    case QualityMonitor::Verdict::kOk:
      return "ok";
    case QualityMonitor::Verdict::kRegressed:
      return "regressed";
  }
  return "unknown";
}

QualityMonitor::Verdict QualityMonitor::Record(data::RetailerId retailer,
                                               double map_at_10) {
  std::deque<double>& history = history_[retailer];
  Verdict verdict = Verdict::kFirstObservation;
  if (!history.empty()) {
    double best = *std::max_element(history.begin(), history.end());
    if (best >= options_.min_meaningful_map &&
        map_at_10 < (1.0 - options_.max_relative_drop) * best) {
      verdict = Verdict::kRegressed;
    } else {
      verdict = Verdict::kOk;
    }
  }
  history.push_back(map_at_10);
  while (static_cast<int>(history.size()) > options_.history_days) {
    history.pop_front();
  }
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("quality_verdicts_total",
                     {{"verdict", VerdictName(verdict)}})
        ->Add(1);
  }
  return verdict;
}

double QualityMonitor::TrailingBest(data::RetailerId retailer) const {
  auto it = history_.find(retailer);
  if (it == history_.end() || it->second.empty()) return 0.0;
  return *std::max_element(it->second.begin(), it->second.end());
}

int QualityMonitor::days_observed(data::RetailerId retailer) const {
  auto it = history_.find(retailer);
  return it == history_.end() ? 0 : static_cast<int>(it->second.size());
}

std::string QualityMonitor::SerializeState() const {
  BinaryWriter writer;
  writer.Write<uint64_t>(history_.size());
  for (const auto& [retailer, history] : history_) {
    writer.Write<int32_t>(retailer);
    writer.WriteVector(std::vector<double>(history.begin(), history.end()));
  }
  return writer.Take();
}

Status QualityMonitor::RestoreState(std::string_view bytes) {
  BinaryReader reader(bytes);
  uint64_t count = 0;
  if (!reader.Read(&count)) {
    return DataLossError("truncated quality-monitor state");
  }
  std::map<data::RetailerId, std::deque<double>> history;
  for (uint64_t i = 0; i < count; ++i) {
    int32_t retailer = 0;
    std::vector<double> days;
    if (!reader.Read(&retailer) || !reader.ReadVector(&days)) {
      return DataLossError("truncated quality-monitor state");
    }
    history[retailer].assign(days.begin(), days.end());
  }
  if (!reader.Done()) {
    return DataLossError("trailing bytes in quality-monitor state");
  }
  history_ = std::move(history);
  return OkStatus();
}

}  // namespace sigmund::pipeline
