#ifndef SIGMUND_PIPELINE_SERVICE_H_
#define SIGMUND_PIPELINE_SERVICE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/crash_point.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/slo.h"
#include "common/trace.h"
#include "common/status.h"
#include "dataqual/sentry.h"
#include "pipeline/canary.h"
#include "pipeline/data_placement.h"
#include "pipeline/inference_job.h"
#include "pipeline/ledger.h"
#include "pipeline/quality_monitor.h"
#include "pipeline/registry.h"
#include "pipeline/sweep.h"
#include "pipeline/training_job.h"
#include "retrieval/index.h"
#include "retrieval/reader.h"
#include "serving/replicated_store.h"
#include "serving/store.h"
#include "sfs/fault_injection.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::pipeline {

// Summary of one daily run.
struct DailyReport {
  bool full_sweep = false;
  int retailers = 0;
  int models_trained = 0;
  int new_retailers = 0;
  double mean_best_map = 0.0;   // mean over retailers of best MAP@10
  int64_t checkpoints_written = 0;
  int64_t preemptions = 0;
  int64_t restored_from_checkpoint = 0;
  int64_t model_loads = 0;      // inference model (re)loads
  int64_t items_scored = 0;
  int64_t map_attempts = 0;
  int64_t map_failures = 0;
  int64_t reduce_attempts = 0;
  int64_t reduce_failures = 0;
  // Retailers whose new models regressed past the quality guardrail; the
  // store kept serving their previous batch.
  int quality_regressions = 0;
  // Degradation ladder: retailers whose winning model trained under an
  // exhausted deadline/preemption budget this run (the store keeps
  // serving their previous batch when one exists).
  int degraded_retailers = 0;
  // Lease churn (preemptible training cells): machine revocations, final
  // checkpoints flushed inside the eviction-grace window, revocations
  // that missed the window, tasks escalated from preemptible to regular
  // priority, models whose preemption budget ran out, and models stopped
  // by their deadline.
  int64_t evictions = 0;
  int64_t eviction_grace_checkpoints = 0;
  int64_t hard_evictions = 0;
  int64_t priority_escalations = 0;
  int64_t preemption_budget_exhausted = 0;
  int64_t deadline_exceeded = 0;
  // Straggler mitigation: speculative backup map attempts and winners.
  int64_t map_backup_attempts = 0;
  int64_t map_backups_won = 0;
  // Serving health at report time. Serving traffic happens between daily
  // runs, so these are cumulative counter values at snapshot time, not
  // per-run deltas.
  int64_t breaker_trips = 0;
  int64_t fallbacks_served = 0;
  int64_t replica_failovers = 0;
  int64_t hedged_reads = 0;
  // Overload plane (DESIGN.md §8), cumulative like the rest of serving
  // health: requests shed by admission control, responses served under a
  // brownout rung, hedges suppressed by the hedge budget, and client
  // retries blocked by the retry budget.
  int64_t requests_shed = 0;
  int64_t brownout_serves = 0;
  int64_t hedges_suppressed = 0;
  int64_t retry_budget_exhausted = 0;
  // Canary impressions excluded because the serving plane shed or
  // degraded them (per-run delta; see CanaryController::Options).
  int64_t canary_samples_ignored = 0;
  // Online retrieval plane (DESIGN.md §11), this run: ANN index
  // artifacts built + staged, retrieval-plane canary verdicts, and
  // corrupt index artifacts rejected at stage time.
  int retrieval_indexes_built = 0;
  int64_t retrieval_promotions = 0;
  int64_t retrieval_rollbacks = 0;
  int64_t corrupt_indexes_rejected = 0;
  // Per-path serving request counts (cumulative at report time, like the
  // rest of serving health): materialized store vs. online ANN retrieval
  // vs. any degradation-ladder fallback.
  int64_t requests_materialized = 0;
  int64_t requests_online_retrieval = 0;
  int64_t requests_fallback = 0;
  // Safe-rollout ladder, this run: canary verdicts on staged batches and
  // staggered follower cutovers completed/skipped (per-run deltas).
  int64_t canary_promotions = 0;
  int64_t canary_rollbacks = 0;
  int64_t replica_cutovers = 0;
  int64_t replica_cutovers_skipped = 0;
  // Training-data shard bytes migrated across cells this run (§IV-B1);
  // 0 when data placement is disabled.
  int64_t shard_bytes_moved = 0;
  // Data-plane sentry (DESIGN.md §12), this run: feeds quarantined /
  // flagged, retailers released from quarantine (per-run deltas), and the
  // number of retailers sitting in quarantine after this run.
  int64_t feed_quarantines = 0;
  int64_t feed_warns = 0;
  int64_t quarantine_releases = 0;
  int quarantined_retailers = 0;

  // Robustness counters for this run. Transient SFS errors that a retry
  // absorbed, checksum failures caught (and healed on the write path),
  // corrupt checkpoints skipped over by training, corrupt recommendation
  // batches the serving store refused to load, and — when the service is
  // told about a FaultInjectingFileSystem — faults the chaos layer
  // injected during this run.
  int64_t sfs_retries = 0;
  int64_t corruptions_detected = 0;
  int64_t corruptions_healed = 0;
  int64_t corrupt_checkpoints_skipped = 0;
  int64_t corrupt_batches_rejected = 0;
  int64_t faults_injected = 0;

  // Run ledger (DESIGN.md §13), per-run deltas: intent/commit entries
  // appended this run, stage/rollout units skipped because the ledger
  // already recorded their commit, and whether this run resumed a day a
  // crashed coordinator left mid-flight.
  bool recovered_day = false;
  int64_t ledger_appends = 0;
  int64_t replay_units_skipped = 0;
  // Orphaned artifacts garbage-collected since the service started
  // (cumulative registry value of pipeline_orphans_gc_total across
  // kinds; startup GC runs before any daily run, so a per-run delta
  // would always read zero). Deliberately kept out of ToString: the
  // daily line must stay byte-identical between a clean day and the
  // same day after a crash-recovery earlier in the service's life.
  int64_t orphans_gc = 0;

  // --- Timing (from the service's tracer; simulated when the service
  // runs under a SimClock). One (stage name, wall micros) pair per
  // pipeline stage actually run, in execution order.
  std::vector<std::pair<std::string, int64_t>> stage_wall_micros;
  int64_t total_wall_micros = 0;
  // Simulated training time accumulated by this run's map tasks.
  int64_t simulated_train_micros = 0;

  // --- SLO alerting (zeros / "" when no SloEngine is wired in). Fires +
  // resolves are cumulative engine totals at report time; firing is how
  // many objectives are in the firing state right now.
  int64_t slo_alerts_fired = 0;
  int64_t slo_alerts_resolved = 0;
  int slo_objectives_firing = 0;
  std::string slo_json;

  // Machine-readable run profile: the run's span tree plus a full metrics
  // snapshot, as JSON (see obs::RunProfile). Write it next to the daily
  // report.
  std::string profile_json;

  std::string ToString() const;
};

// The whole Sigmund service, end to end (§II-A): each daily run plans a
// sweep (full on first start, incremental afterwards — with a full grid
// for newly signed-up retailers), runs the training MapReduce, selects the
// best model per retailer by MAP@10, materializes recommendations with the
// inference MapReduce, and batch-loads them into the serving store.
class SigmundService {
 public:
  struct Options {
    SweepPlanner::Options sweep;
    TrainingJob::Options training;
    InferenceJob::Options inference;
    // Days between forced full-sweep restarts (terms-of-service recency
    // constraint, §III-C3). 0 = never force.
    int full_sweep_every_days = 0;

    // Quality guardrail (§I: "quality is monitored and maintained"): when
    // on, a retailer whose best MAP@10 regressed past the threshold keeps
    // serving yesterday's recommendations.
    bool guard_quality = true;
    QualityMonitor::Options quality;

    // Data placement (§IV-B1): when cells are named here, each daily run
    // rebalances retailer data shards across them (FFD by interaction
    // count) and migrates shards through the shared filesystem, with the
    // moved bytes reported in DailyReport. Empty = disabled.
    DataPlacementPlanner::Options placement;

    // Safe-rollout serving plane. `serving.num_replicas` > 1 turns on the
    // replicated store group with staggered follower cutover and
    // heartbeat-probed failover; `serving.store.retained_versions` sets
    // the per-retailer rollback window.
    serving::ReplicatedStoreGroup::Options serving;
    // Canary rollout: when `canary.enabled` and `canary.oracle` are set,
    // each staged batch (for a retailer with an active one) is evaluated
    // on simulated live traffic after the offline MAP gate, and promoted
    // or rolled back by observed CTR.
    CanaryController::Options canary;

    // Online embedding-retrieval plane (DESIGN.md §11). When enabled,
    // each daily run snapshots every retailer's best model into a
    // versioned, CRC-framed ANN index artifact
    // (retrieval::IndexArtifactPath), stages it on the online reader,
    // gates it with a retrieval-plane canary against the live
    // materialized plane (when `canary.enabled`), and activates or
    // discards it. Serving the staged index to users is the Frontend's
    // job (Options::retrieval_store + retrieval_ab_fraction).
    struct RetrievalOptions {
      bool enabled = false;
      retrieval::AnnIndex::Options ann;
      retrieval::OnlineRetrievalReader::Options reader;
      // Chaos seam: invoked on each freshly built artifact before it is
      // published, so tests can degrade an index (truncate its factors)
      // and prove the retrieval canary rolls it back on live signal.
      std::function<void(data::RetailerId, retrieval::IndexArtifact*)>
          build_hook_for_testing;
    };
    RetrievalOptions retrieval;

    // Data-plane sentry (DESIGN.md §12). When enabled, every RunDaily
    // profiles each retailer's feed before the sweep is planned and asks
    // the DataSentry for a verdict. A quarantined retailer skips
    // retraining and the retrieval-index rebuild, keeps serving its
    // last-known-good batch/index, and auto-releases when a later feed
    // passes — releases warm-start from the last-good checkpoint because
    // the retailer's previous sweep results are carried forward across
    // quarantined days.
    struct DataQualOptions {
      bool enabled = false;
      dataqual::DataSentry::Options sentry;
    };
    DataQualOptions dataqual;

    // Durable run ledger + crash recovery (DESIGN.md §13). When enabled,
    // every RunDaily journals a StageIntent before each externally
    // visible per-retailer mutation and a StageCommit after it, batch /
    // index activations publish immutable versioned SFS copies
    // (recommendations/r<id>.v<NNNNNN>, retrieval/r<id>.v<NNNNNN>), and
    // each day boundary writes a versioned control-state snapshot — so a
    // coordinator killed anywhere mid-day can be reconstructed, call
    // RecoverDay(), and finish the day byte-identical to an
    // uninterrupted same-seed run.
    struct LedgerOptions {
      bool enabled = false;
      RunLedger::Options ledger;
    };
    LedgerOptions ledger;

    // Seeded kill-point injector threaded through the stage boundaries
    // and Stage/Activate seams — the process-death sibling of
    // sfs::FaultInjectingFileSystem. Borrowed; null (the default) makes
    // every instrumented seam a single null-pointer branch.
    CrashInjector* crash = nullptr;

    // Retry policy for the service's own SFS access (best-model copies,
    // sweep results, data placement, store batch loads). The training and
    // inference jobs carry their own policies in `training.sfs_retry` /
    // `inference.sfs_retry`.
    RetryPolicy sfs_retry;

    // When the SFS handed to the service is wrapped in a
    // FaultInjectingFileSystem, point this at its counters so DailyReport
    // can show how many faults were injected each run. Borrowed; may be
    // null.
    const sfs::FaultCounters* injected_faults = nullptr;

    // --- Observability. All borrowed; when null the service owns a
    // private registry/tracer driven by `clock` (null = RealClock).
    // Every run instruments the full pipeline into the registry and
    // tracer; DailyReport's counter fields are per-run deltas of registry
    // counters (the report is a snapshot view, not separate bookkeeping).
    obs::MetricRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    const Clock* clock = nullptr;

    // SLO engine (borrowed; null = no SLO evaluation). When wired in,
    // every RunDaily evaluates the declared objectives over the run-end
    // registry snapshot and surfaces burn rates / alert transitions in
    // DailyReport and the RunProfile "slo" section. Evaluation happens
    // after the run completes, so it can never perturb the run itself.
    obs::SloEngine* slo = nullptr;
  };

  // `fs` is borrowed and holds all models/checkpoints/recommendations.
  SigmundService(sfs::SharedFileSystem* fs, const Options& options);

  // Registers (or refreshes after daily data arrival) a retailer. The
  // data is borrowed; keep it alive and call again when it changes.
  void UpsertRetailer(const data::RetailerData* data);

  // Runs one full day of the pipeline. Choice of full vs. incremental
  // sweep is automatic.
  StatusOr<DailyReport> RunDaily();

  // What RecoverDay found and repaired on startup.
  struct RecoveryReport {
    // A mid-flight day was found in the ledger: the next RunDaily
    // resumes it, skipping every unit of work whose commit is already
    // durable.
    bool resumed = false;
    int day = 0;           // the day the next RunDaily will run
    int snapshot_day = -1; // control-state snapshot rehydrated (-1 = none)
    int64_t ledger_entries = 0;
    bool torn_tail_dropped = false;
    int64_t tmp_files_swept = 0;
    int64_t orphan_versions_deleted = 0;
    int64_t versions_rehydrated = 0;
  };

  // Crash-anywhere startup path (DESIGN.md §13). Always sweeps orphaned
  // `*.tmp` partials (safe on a clean first boot too); with the ledger
  // enabled it additionally rehydrates durable control state from the
  // newest readable snapshot (warm-start results, quality baselines,
  // sentry quarantine state, shard placement), rebuilds the serving
  // store and retrieval reader version chains from their versioned SFS
  // files, garbage-collects version files orphaned by uncommitted
  // intents, and re-opens a day the crashed process left mid-flight so
  // the next RunDaily replays it idempotently. Call once on a freshly
  // constructed service, before UpsertRetailer data is served.
  StatusOr<RecoveryReport> RecoverDay();

  // Forces the next RunDaily to perform a full sweep (used after the
  // periodic model restart or a catastrophic loss of models).
  void ForceFullSweep() { force_full_sweep_ = true; }

  // The primary serving replica (the version authority). With
  // num_replicas == 1 this is the whole serving plane, exactly as before
  // replication existed.
  const serving::RecommendationStore& store() const {
    return *store_group_->primary();
  }
  serving::RecommendationStore* mutable_store() {
    return store_group_->primary();
  }
  // The whole replicated serving plane (request routing, failover,
  // cutover, rollback).
  serving::ReplicatedStoreGroup* store_group() { return store_group_.get(); }
  const serving::ReplicatedStoreGroup& store_group() const {
    return *store_group_;
  }
  const RetailerRegistry& registry() const { return registry_; }

  // The online retrieval plane's serving endpoint (always constructed;
  // empty until Options::retrieval.enabled runs populate it). Hand it to
  // the Frontend as Options::retrieval_store to serve the A/B arm.
  retrieval::OnlineRetrievalReader* retrieval_reader() {
    return retrieval_reader_.get();
  }
  const retrieval::OnlineRetrievalReader& retrieval_reader() const {
    return *retrieval_reader_;
  }

  // Best trained config per retailer from the most recent run.
  const std::vector<ConfigRecord>& latest_results() const {
    return previous_results_;
  }

  const QualityMonitor& quality_monitor() const { return monitor_; }

  // The data-plane sentry (null unless Options::dataqual.enabled).
  const dataqual::DataSentry* sentry() const { return sentry_.get(); }

  // The run ledger (null unless Options::ledger.enabled).
  const RunLedger* ledger() const { return ledger_.get(); }

  // Days completed so far. After RecoverDay this is the day the next
  // RunDaily will run — which may be one past the day a crashed caller
  // thinks it was on, when the crash landed after the day's snapshot
  // commit (the day was durably complete; only its report was lost).
  int days_run() const { return days_run_; }

  // The registry / tracer every run records into (service-owned unless
  // injected through Options).
  obs::MetricRegistry* metrics() const { return metrics_; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  // Everything RecoverDay decoded from a mid-flight day's ledger; the
  // next RunDaily consumes it to skip committed work and reuse durable
  // canary verdicts.
  struct RecoveredDay {
    bool resumed = false;
    int day = 0;
    // Stage tag -> commit payload, for every kStageCommit already durable.
    std::map<std::string, std::string> committed_stages;
    // Per-retailer rollout outcomes already committed this day.
    std::map<data::RetailerId, int64_t> batch_activated;
    std::map<data::RetailerId, int64_t> batch_discarded;
    std::map<std::pair<data::RetailerId, int64_t>, std::string> batch_canary;
    std::map<data::RetailerId, int64_t> index_activated;
    std::map<data::RetailerId, int64_t> index_discarded;
    std::map<std::pair<data::RetailerId, int64_t>, std::string> index_canary;
  };

  // Picks the best record per retailer, copies its model to BestModelPath
  // and fills `best_map` per retailer. Retailers whose winning record is
  // marked degraded (deadline/preemption budget exhausted during
  // training) are added to `degraded`.
  Status SelectBestModels(const std::vector<ConfigRecord>& results,
                          DailyReport* report,
                          std::map<data::RetailerId, double>* best_map,
                          std::set<data::RetailerId>* degraded);

  // Serializes everything a restarted coordinator cannot rederive from
  // code + SFS artifacts alone, with days_run = days_run_ + 1 (the day
  // about to complete).
  ServiceSnapshot BuildSnapshot() const;

  // Deletes `path` with retry; a file already gone is success.
  Status DeleteVersionFile(const std::string& path);
  // Deletes version files under `prefix` (e.g. "recommendations/r7.v")
  // whose version is not in `retained` — the files evicted from the
  // in-memory chain by the activation that just committed. Counted in
  // pipeline_version_files_retired_total.
  Status RetireVersionFiles(const std::string& prefix,
                            const std::vector<int64_t>& retained);
  // Recovery-time GC: deletes every `<dir>r<id>.v<NNNNNN>` file whose
  // version the rehydrated plane does not retain (debris of uncommitted
  // intents). Counted in pipeline_orphans_gc_total{kind}.
  Status GcOrphanVersionFiles(const std::string& dir, bool index_plane,
                              const char* kind, int64_t* deleted);

  sfs::SharedFileSystem* fs_;
  Options options_;
  RetailerRegistry registry_;
  // Serving plane + canary controller; built in the constructor once the
  // metrics registry is resolved.
  std::unique_ptr<serving::ReplicatedStoreGroup> store_group_;
  std::unique_ptr<CanaryController> canary_;
  // Online retrieval plane: the versioned ANN reader plus its own canary
  // controller (plane="retrieval"), whose serve hook routes canary
  // impressions to the staged index and control impressions to the live
  // materialized plane.
  std::unique_ptr<retrieval::OnlineRetrievalReader> retrieval_reader_;
  std::unique_ptr<CanaryController> retrieval_canary_;
  QualityMonitor monitor_;
  // Data-plane sentry (null unless Options::dataqual.enabled); judges
  // every feed before the sweep and owns quarantine state across days.
  std::unique_ptr<dataqual::DataSentry> sentry_;
  // Durable run ledger (null unless Options::ledger.enabled) and the
  // borrowed kill-point injector.
  std::unique_ptr<RunLedger> ledger_;
  CrashInjector* crash_ = nullptr;
  // Set by RecoverDay when a mid-flight day was found; consumed (and
  // cleared) by the next RunDaily.
  std::optional<RecoveredDay> recovery_;
  std::vector<ConfigRecord> previous_results_;
  // Where each retailer's data shard currently lives (data placement).
  std::map<data::RetailerId, std::string> shard_homes_;
  sfs::FileTransferLedger transfer_ledger_;
  // Retry/corruption counters for the service's own SFS access, mirrored
  // live into the registry (DailyReport carries per-run registry deltas;
  // the counters themselves accumulate for the service lifetime).
  sfs::ReliableIoCounters io_;
  // Observability plumbing: borrowed from Options or service-owned.
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  std::unique_ptr<obs::Tracer> owned_tracer_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  const Clock* clock_ = nullptr;
  bool force_full_sweep_ = false;
  int days_run_ = 0;
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_SERVICE_H_
