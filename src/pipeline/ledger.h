#ifndef SIGMUND_PIPELINE_LEDGER_H_
#define SIGMUND_PIPELINE_LEDGER_H_

#include <stdint.h>

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "data/types.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::pipeline {

// Durable run ledger (DESIGN.md §13): a CRC-framed, append-only
// write-ahead intent journal over the shared filesystem. RunDaily logs a
// StageIntent before every externally visible per-retailer mutation and
// a StageCommit after it, so a coordinator that dies anywhere mid-day
// can be restarted, replay the journal, skip committed work, and
// garbage-collect the debris of uncommitted intents — finishing the day
// byte-identical to an uninterrupted same-seed run.
//
// On-disk format: one log file per day (`<dir>/day<NNNNNN>.log`), a
// concatenation of independently framed entries
//
//   magic "SGL1" (4) | crc32(body) (4) | body size (8) | body
//
// (the same framing discipline as common/binary_io's "SGF1" payload
// frames, but per entry, so a torn append invalidates only the tail).
// DecodeLog accepts the longest valid prefix and drops a torn tail
// cleanly instead of aborting recovery — the write-ahead contract means
// a lost tail entry only re-runs idempotent work.
//
// The ledger also owns the versioned control-state snapshots
// (`<state_dir>/snapshot.v<NNNNNN>`, payload CRC-framed via
// sfs::WriteChecksummedFile) that RunDaily writes at each day boundary
// and RecoverDay rehydrates from: two-phase (tmp write, then
// rename-commit) so a crash between the phases leaves only a sweepable
// `.tmp` orphan, never a half-written snapshot under the live name.
class RunLedger {
 public:
  enum class Op : uint8_t {
    kDayStart = 0,
    // Stage-level commit; `tag` names the stage ("train", "inference",
    // ...) and `payload` carries whatever the replay path needs to skip
    // or cross-check the stage (serialized sweep results, retailer id
    // lists, a plan fingerprint).
    kStageCommit = 1,
    // Per-retailer batch rollout protocol: intent (before the versioned
    // batch file is written), canary verdict (before it is acted on),
    // then exactly one of activate / discard as the commit.
    kBatchStageIntent = 2,
    kBatchCanary = 3,
    kBatchActivate = 4,
    kBatchDiscard = 5,
    // Same protocol for the online retrieval index plane.
    kIndexStageIntent = 6,
    kIndexCanary = 7,
    kIndexActivate = 8,
    kIndexDiscard = 9,
    kDayComplete = 10,
  };

  struct Entry {
    Op op = Op::kDayStart;
    int32_t day = 0;
    data::RetailerId retailer = -1;  // -1 for stage-level entries
    int64_t version = 0;
    std::string tag;      // stage name / canary verdict
    std::string payload;  // op-specific replay data (see Op comments)

    bool operator==(const Entry&) const = default;
  };

  struct Options {
    std::string dir = "ledger";
    std::string state_dir = "state";
    // Day log files retained, counting the current day (older days are
    // deleted at each day boundary; recovery needs only the current one).
    int retain_days = 2;
    // Control-state snapshots retained.
    int retain_snapshots = 2;
  };

  // `fs` and `io` borrowed; `io` may be null (no retry/corruption
  // accounting), `metrics` may be null.
  RunLedger(sfs::SharedFileSystem* fs, const Options& options,
            const RetryPolicy& retry, sfs::ReliableIoCounters* io,
            obs::MetricRegistry* metrics);

  // --- Day log -----------------------------------------------------------

  // Opens a fresh in-memory log for `day` (any previous buffer is
  // dropped; the day file is created by the first Append).
  void StartDay(int day);
  // Re-opens `day` mid-flight from the valid entries RecoverDay decoded:
  // the buffer is rebuilt from re-encoded entries, so the first resumed
  // Append also truncates any torn tail off the durable file.
  void ResumeDay(int day, const std::vector<Entry>& entries);
  // Appends one entry: frames it, extends the in-memory buffer, and
  // rewrites the day file (SFS writes are whole-file atomic; entries are
  // tiny control records, so the rewrite is O(day log), not O(data)).
  Status Append(const Entry& entry);

  int day() const { return day_; }
  int64_t appends() const { return appends_; }
  int64_t bytes_written() const { return bytes_written_; }

  struct DecodeResult {
    std::vector<Entry> entries;
    // Length of the valid prefix; anything beyond it was a torn tail.
    size_t valid_bytes = 0;
    bool torn_tail = false;
  };

  static std::string EncodeEntry(const Entry& entry);
  // Never fails: returns the longest decodable prefix and flags (rather
  // than propagates) a torn or corrupt tail.
  static DecodeResult DecodeLog(std::string_view bytes);

  std::string DayPath(int day) const;
  // kNotFound when the day has no log file.
  StatusOr<DecodeResult> ReadDay(int day) const;
  // Deletes day files older than the retention window ending at
  // `current_day`. Adds the number deleted to *deleted (may be null).
  Status RetireOldDays(int current_day, int64_t* deleted = nullptr);

  // --- Control-state snapshots ------------------------------------------

  std::string SnapshotPath(int day) const;
  std::string SnapshotTmpPath() const;
  // Phase 1: CRC-framed write (with read-back verify) to the tmp path.
  Status WriteSnapshotTmp(std::string_view payload);
  // Phase 2: atomic rename of the tmp file to SnapshotPath(day).
  Status CommitSnapshot(int day);
  // Newest readable snapshot as (day, payload). A snapshot that fails
  // its CRC is skipped (counted through `io`) and the next older one is
  // tried. kNotFound when none decodes.
  StatusOr<std::pair<int, std::string>> ReadLatestSnapshot() const;
  Status RetireOldSnapshots(int current_day, int64_t* deleted = nullptr);

  const Options& options() const { return options_; }

 private:
  sfs::SharedFileSystem* fs_;
  Options options_;
  RetryPolicy retry_;
  sfs::ReliableIoCounters* io_;
  obs::Counter* appends_counter_ = nullptr;

  int day_ = -1;
  std::string buffer_;  // the current day file's full contents
  int64_t appends_ = 0;
  int64_t bytes_written_ = 0;
};

// Per-retailer version-chain state captured in a snapshot: enough to put
// a freshly constructed store / retrieval reader back exactly where the
// crashed process's in-memory chain was, by re-staging the retained
// versions from their versioned SFS files.
struct VersionChainState {
  int64_t active = 0;
  int64_t next_version = 1;
  std::vector<int64_t> retained;  // resident versions, ascending

  bool operator==(const VersionChainState&) const = default;
};

// Everything SigmundService must rehydrate after a crash that the SFS
// artifacts alone cannot tell it: warm-start results, quality baselines,
// sentry quarantine state, shard placement, and the serving-plane
// version chains. Written at each day boundary, before kDayComplete.
struct ServiceSnapshot {
  int32_t days_run = 0;
  // ConfigRecord::Serialize lines, in latest_results() order (ordering
  // matters: the incremental planner consumes them positionally).
  std::vector<std::string> previous_results;
  std::map<data::RetailerId, std::string> shard_homes;
  // Opaque sub-blobs produced by QualityMonitor::SerializeState and
  // DataSentry::SerializeState ("" when the sentry is disabled).
  std::string monitor_state;
  std::string sentry_state;
  std::map<data::RetailerId, VersionChainState> store_versions;
  std::map<data::RetailerId, VersionChainState> index_versions;

  bool operator==(const ServiceSnapshot&) const = default;

  std::string Serialize() const;
  static StatusOr<ServiceSnapshot> Deserialize(std::string_view bytes);
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_LEDGER_H_
