#include "pipeline/checkpoint.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::pipeline {

namespace {

// Payload framing: 4-byte epoch, then the serialized model.
std::string EncodePayload(const core::BprModel& model, int epoch) {
  std::string payload;
  int32_t e = epoch;
  payload.append(reinterpret_cast<const char*>(&e), sizeof(e));
  payload += model.Serialize();
  return payload;
}

}  // namespace

CheckpointManager::CheckpointManager(sfs::SharedFileSystem* fs,
                                     const Clock* clock, std::string dir,
                                     double interval_seconds)
    : fs_(fs), clock_(clock), dir_(std::move(dir)),
      interval_seconds_(interval_seconds),
      last_checkpoint_time_(clock->NowSeconds()) {
  SIGCHECK(fs != nullptr);
  SIGCHECK(clock != nullptr);
  // Resume version numbering after any existing checkpoints.
  for (const std::string& path : fs_->List(dir_ + "/ckpt.")) {
    int64_t version = 0;
    if (ParseInt64(path.substr(dir_.size() + 6), &version)) {
      next_version_ = std::max(next_version_, version + 1);
    }
  }
}

std::string CheckpointManager::VersionPath(int64_t version) const {
  return StrFormat("%s/ckpt.%09lld", dir_.c_str(),
                   static_cast<long long>(version));
}

StatusOr<bool> CheckpointManager::MaybeCheckpoint(const core::BprModel& model,
                                                  int epoch) {
  if (interval_seconds_ <= 0.0) return false;
  double now = clock_->NowSeconds();
  if (now - last_checkpoint_time_ < interval_seconds_) return false;
  SIGMUND_RETURN_IF_ERROR(ForceCheckpoint(model, epoch));
  return true;
}

Status CheckpointManager::ForceCheckpoint(const core::BprModel& model,
                                          int epoch) {
  const int64_t version = next_version_++;
  const std::string tmp = dir_ + "/tmp";
  const std::string committed = VersionPath(version);
  SIGMUND_RETURN_IF_ERROR(fs_->Write(tmp, EncodePayload(model, epoch)));
  SIGMUND_RETURN_IF_ERROR(fs_->Rename(tmp, committed));
  // Garbage-collect everything older than the checkpoint just committed
  // ("we only need to keep the latest checkpoint around").
  for (const std::string& path : fs_->List(dir_ + "/ckpt.")) {
    if (path < committed) {
      Status s = fs_->Delete(path);
      if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
    }
  }
  last_checkpoint_time_ = clock_->NowSeconds();
  ++checkpoints_written_;
  return OkStatus();
}

bool CheckpointManager::HasCheckpoint() const {
  return !fs_->List(dir_ + "/ckpt.").empty();
}

StatusOr<CheckpointManager::Restored> CheckpointManager::Restore(
    const data::Catalog* catalog) const {
  std::vector<std::string> checkpoints = fs_->List(dir_ + "/ckpt.");
  if (checkpoints.empty()) {
    return NotFoundError("no checkpoint in " + dir_);
  }
  StatusOr<std::string> payload = fs_->Read(checkpoints.back());
  if (!payload.ok()) return payload.status();
  if (payload->size() < sizeof(int32_t)) {
    return DataLossError("checkpoint payload too small");
  }
  int32_t epoch = 0;
  std::memcpy(&epoch, payload->data(), sizeof(epoch));
  StatusOr<core::BprModel> model =
      core::BprModel::Deserialize(payload->substr(sizeof(epoch)), catalog);
  if (!model.ok()) return model.status();
  return Restored{std::move(model).value(), epoch};
}

Status CheckpointManager::Clear() {
  for (const std::string& path : fs_->List(dir_ + "/")) {
    SIGMUND_RETURN_IF_ERROR(fs_->Delete(path));
  }
  return OkStatus();
}

}  // namespace sigmund::pipeline
