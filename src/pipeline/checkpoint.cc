#include "pipeline/checkpoint.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::pipeline {

namespace {

// Payload framing: 4-byte epoch, then the serialized model. The CRC frame
// around the whole payload is added by WriteChecksummedFile.
std::string EncodePayload(const core::BprModel& model, int epoch) {
  std::string payload;
  int32_t e = epoch;
  payload.append(reinterpret_cast<const char*>(&e), sizeof(e));
  payload += model.Serialize();
  return payload;
}

}  // namespace

CheckpointManager::CheckpointManager(sfs::SharedFileSystem* fs,
                                     const Clock* clock, std::string dir,
                                     double interval_seconds,
                                     RetryPolicy retry_policy,
                                     sfs::ReliableIoCounters* io)
    : fs_(fs), clock_(clock), dir_(std::move(dir)),
      interval_seconds_(interval_seconds), retry_policy_(retry_policy),
      io_(io), last_checkpoint_time_(clock->NowSeconds()) {
  SIGCHECK(fs != nullptr);
  SIGCHECK(clock != nullptr);
  // Resume version numbering after any existing checkpoints. Best-effort:
  // if listing keeps failing we start at version 0, and ForceCheckpoint's
  // rename overwrites any same-numbered stale checkpoint.
  StatusOr<std::vector<std::string>> existing = ListRetrying(dir_ + "/ckpt.");
  if (existing.ok()) {
    for (const std::string& path : *existing) {
      int64_t version = 0;
      if (ParseInt64(path.substr(dir_.size() + 6), &version)) {
        next_version_ = std::max(next_version_, version + 1);
      }
    }
  }
}

std::string CheckpointManager::VersionPath(int64_t version) const {
  return StrFormat("%s/ckpt.%09lld", dir_.c_str(),
                   static_cast<long long>(version));
}

StatusOr<std::vector<std::string>> CheckpointManager::ListRetrying(
    const std::string& prefix) const {
  RetryStats* retry_stats = io_ != nullptr ? &io_->retry : nullptr;
  return RetryWithPolicy<std::vector<std::string>>(
      retry_policy_, retry_stats, [&] { return fs_->List(prefix); });
}

StatusOr<bool> CheckpointManager::MaybeCheckpoint(const core::BprModel& model,
                                                  int epoch) {
  if (interval_seconds_ <= 0.0) return false;
  double now = clock_->NowSeconds();
  if (now - last_checkpoint_time_ < interval_seconds_) return false;
  SIGMUND_RETURN_IF_ERROR(ForceCheckpoint(model, epoch));
  return true;
}

Status CheckpointManager::ForceCheckpoint(const core::BprModel& model,
                                          int epoch) {
  const int64_t version = next_version_++;
  const std::string tmp = dir_ + "/tmp";
  const std::string committed = VersionPath(version);
  RetryStats* retry_stats = io_ != nullptr ? &io_->retry : nullptr;
  // Checksummed write with read-back verify: a torn write of the temp file
  // is caught and rewritten *before* the rename commits it.
  SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
      fs_, tmp, EncodePayload(model, epoch), retry_policy_, io_));
  SIGMUND_RETURN_IF_ERROR(RetryWithPolicy(retry_policy_, retry_stats, [&] {
    return fs_->Rename(tmp, committed);
  }));
  // Garbage-collect everything older than the checkpoint just committed
  // ("we only need to keep the latest checkpoint around"). Best-effort:
  // a List or Delete that keeps failing leaves a stale older checkpoint
  // behind, which is harmless — Restore always takes the newest — and the
  // next GC round or Clear() picks it up.
  StatusOr<std::vector<std::string>> checkpoints =
      ListRetrying(dir_ + "/ckpt.");
  if (checkpoints.ok()) {
    for (const std::string& path : *checkpoints) {
      if (path < committed) {
        Status s = RetryWithPolicy(retry_policy_, retry_stats, [&] {
          Status d = fs_->Delete(path);
          // Already gone (e.g. a concurrent Clear) is success for GC.
          if (d.code() == StatusCode::kNotFound) return OkStatus();
          return d;
        });
        if (!s.ok()) {
          SIGLOG(WARNING) << "checkpoint GC of " << path
                          << " failed (will retry next round): "
                          << s.ToString();
        }
      }
    }
  }
  last_checkpoint_time_ = clock_->NowSeconds();
  ++checkpoints_written_;
  return OkStatus();
}

bool CheckpointManager::HasCheckpoint() const {
  StatusOr<std::vector<std::string>> checkpoints =
      ListRetrying(dir_ + "/ckpt.");
  return checkpoints.ok() && !checkpoints->empty();
}

StatusOr<CheckpointManager::Restored> CheckpointManager::Restore(
    const data::Catalog* catalog) const {
  StatusOr<std::vector<std::string>> checkpoints =
      ListRetrying(dir_ + "/ckpt.");
  SIGMUND_RETURN_IF_ERROR(checkpoints.status());
  if (checkpoints->empty()) {
    return NotFoundError("no checkpoint in " + dir_);
  }
  const std::string& latest = checkpoints->back();
  StatusOr<std::string> payload =
      sfs::ReadChecksummedFile(fs_, latest, retry_policy_, io_);
  if (!payload.ok()) {
    if (payload.status().code() == StatusCode::kDataLoss) {
      // Torn or bit-rotted checkpoint: treat it as absent so the caller
      // restarts training from scratch instead of crashing. The corrupt
      // file itself is overwritten or GC'd by the next checkpoint.
      corrupt_checkpoints_detected_.fetch_add(1);
      SIGLOG(WARNING) << "checkpoint " << latest
                      << " failed CRC validation; restarting from scratch";
      return NotFoundError("latest checkpoint corrupt: " + latest);
    }
    return payload.status();
  }
  if (payload->size() < sizeof(int32_t)) {
    corrupt_checkpoints_detected_.fetch_add(1);
    if (io_ != nullptr) io_->corruptions_detected.fetch_add(1);
    return NotFoundError("latest checkpoint truncated: " + latest);
  }
  int32_t epoch = 0;
  std::memcpy(&epoch, payload->data(), sizeof(epoch));
  StatusOr<core::BprModel> model =
      core::BprModel::Deserialize(payload->substr(sizeof(epoch)), catalog);
  if (!model.ok()) {
    // CRC passed but the model payload does not decode — e.g. written by
    // an incompatible version. Same recovery: restart from scratch.
    corrupt_checkpoints_detected_.fetch_add(1);
    if (io_ != nullptr) io_->corruptions_detected.fetch_add(1);
    return NotFoundError("latest checkpoint undecodable: " + latest);
  }
  return Restored{std::move(model).value(), epoch};
}

Status CheckpointManager::Clear() {
  StatusOr<std::vector<std::string>> paths = ListRetrying(dir_ + "/");
  SIGMUND_RETURN_IF_ERROR(paths.status());
  RetryStats* retry_stats = io_ != nullptr ? &io_->retry : nullptr;
  for (const std::string& path : *paths) {
    SIGMUND_RETURN_IF_ERROR(RetryWithPolicy(retry_policy_, retry_stats, [&] {
      Status s = fs_->Delete(path);
      // Idempotence: a file already deleted (concurrent Clear, GC) is fine.
      if (s.code() == StatusCode::kNotFound) return OkStatus();
      return s;
    }));
  }
  return OkStatus();
}

}  // namespace sigmund::pipeline
