#ifndef SIGMUND_PIPELINE_INFERENCE_JOB_H_
#define SIGMUND_PIPELINE_INFERENCE_JOB_H_

#include <atomic>
#include <map>
#include <vector>

#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/inference.h"
#include "mapreduce/mapreduce.h"
#include "pipeline/registry.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::pipeline {

// The offline inference MapReduce (§IV-C): materializes top-K
// recommendations for every item of every retailer using each retailer's
// best model.
//
// Faithful to the paper's structure:
//  - retailers are partitioned across cells with greedy first-fit
//    (-decreasing) bin-packing, weighted by inventory size (§IV-C1);
//  - within a cell, input items are contiguous per retailer, and the map
//    task reloads a model only when it crosses a retailer boundary
//    (§IV-C2) — model loads are counted so tests can verify the policy;
//  - one map thread per task, with scoring multi-threaded inside the map
//    function (managed in user code, not by the framework).
class InferenceJob {
 public:
  struct Options {
    // Cells (independent MapReduces) and map tasks per cell.
    int num_cells = 1;
    int map_tasks_per_cell = 4;
    int max_parallel_tasks = 2;
    // true = first-fit-decreasing; false = round-robin (naive baseline).
    bool use_first_fit_decreasing = true;

    // Pre-emption injection at the MapReduce layer: a killed map task's
    // buffered output is discarded and the task re-runs (inference is
    // stateless, so re-execution is the whole recovery story here).
    double map_task_failure_prob = 0.0;
    int max_attempts_per_task = 10;

    // Straggler mitigation: clone the slowest still-running map tasks
    // once speculation_commit_fraction of each cell's map phase has
    // committed; first commit wins. Safe here because the inference
    // mapper only reads models — recommendation files are written after
    // the MapReduce completes.
    bool speculative_backups = false;
    double speculation_commit_fraction = 0.75;

    // Retry policy for SFS access (model reads, recommendation writes).
    RetryPolicy sfs_retry;

    core::InferenceEngine::Options inference;
    uint64_t seed = 42;

    // --- Observability (all borrowed; null = off; never affects
    // results). When wired, Run() opens an "inference" span with one
    // "inference/cell<i>" MapReduce per cell, records model-load latency
    // into inference_model_load_micros, and mirrors the run's counters
    // into inference_* totals. `clock` drives the latency samples
    // (model loads, sfs_op_micros) so they are deterministic under
    // SimClock; null = RealClock.
    obs::MetricRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    const Clock* clock = nullptr;
    std::string job_label = "inference";
  };

  struct Stats {
    std::atomic<int64_t> model_loads{0};
    std::atomic<int64_t> items_scored{0};
    // Simulated per-cell work (sum of item counts) for makespan analysis.
    std::vector<double> cell_weights;
    // Retry + corruption counters for all SFS I/O done by the mappers.
    sfs::ReliableIoCounters io;
    mapreduce::MapReduceStats mapreduce;  // summed across cells
  };

  InferenceJob(sfs::SharedFileSystem* fs, const RetailerRegistry* registry,
               const Options& options)
      : fs_(fs), registry_(registry), options_(options) {}

  // Materializes recommendations for all items of `retailers`, reading
  // each retailer's best model from BestModelPath(retailer). Results are
  // returned grouped by retailer (item-indexed) and also written to
  // RecommendationPath(retailer) in the shared filesystem.
  StatusOr<std::map<data::RetailerId, std::vector<core::ItemRecommendations>>>
  Run(const std::vector<data::RetailerId>& retailers);

  const Stats& stats() const { return stats_; }

 private:
  // Adds this run's counters to options_.metrics (no-op when
  // observability is off). Called once per Run, success or failure.
  void MirrorStatsToRegistry();

  sfs::SharedFileSystem* fs_;
  const RetailerRegistry* registry_;
  Options options_;
  Stats stats_;
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_INFERENCE_JOB_H_
