#ifndef SIGMUND_PIPELINE_DATA_PLACEMENT_H_
#define SIGMUND_PIPELINE_DATA_PLACEMENT_H_

#include <map>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "data/retailer_data.h"
#include "data/serialization.h"
#include "pipeline/registry.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::pipeline {

// Plans and executes the migration of training-data shards to the cells
// where computation runs (§IV-B1 of the paper: "We identify data centers
// that have unused resources, and break down the job into several
// independent MapReduces so that there is one for each data center. Since
// training using SGD iterates over the data multiple times, we simply
// migrate the training data to the data center where the computation is
// run. The cost of training is dominated by the CPU cost of making SGD
// steps, and the network cost of moving the data usually ends up
// producing a net benefit.")
//
// Retailers are spread across cells with first-fit-decreasing by
// interaction count (the SGD-cost proxy); shards whose data currently
// lives in another cell are copied through the shared filesystem, with
// bytes accounted in a FileTransferLedger.
class DataPlacementPlanner {
 public:
  struct Options {
    // Cell names with spare capacity, in preference order.
    std::vector<std::string> cells;
    // Network price, for the migrate-vs-local cost analysis.
    double dollars_per_gb = 0.01;
    // CPU price per SGD-step-second equivalent (training compute).
    double dollars_per_cpu_hour_saved = 0.028;  // regular - preemptible
  };

  // Where each retailer's data shard should live for the next run.
  struct Plan {
    std::map<data::RetailerId, std::string> home_cell;
    // Simulated per-cell SGD work (sum of interaction counts).
    std::map<std::string, int64_t> cell_work;
  };

  DataPlacementPlanner(sfs::SharedFileSystem* fs, const Options& options)
      : fs_(fs), options_(options) {}

  // Balances retailers across cells by interaction count (FFD).
  Plan PlanPlacement(const RetailerRegistry& registry) const;

  // Writes each retailer's serialized shard (CRC-framed, read-back
  // verified) to its planned cell path ("cells/<cell>/data/r<id>"),
  // recording cross-cell transfers (a shard already present in the right
  // cell is not rewritten). `previous` maps retailer -> cell where its
  // shard currently lives ("" = not stored). Transient SFS errors are
  // retried per `policy`; `io`, if given, accumulates retry/corruption
  // counters.
  Status Materialize(const RetailerRegistry& registry, const Plan& plan,
                     const std::map<data::RetailerId, std::string>& previous,
                     sfs::FileTransferLedger* ledger,
                     const RetryPolicy& policy = {},
                     sfs::ReliableIoCounters* io = nullptr) const;

  // The SFS path of a retailer's shard within a cell.
  static std::string ShardPath(const std::string& cell,
                               data::RetailerId retailer);

  // Dollar cost of the migration recorded in `ledger`.
  double MigrationCost(const sfs::FileTransferLedger& ledger) const;

 private:
  sfs::SharedFileSystem* fs_;
  Options options_;
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_DATA_PLACEMENT_H_
