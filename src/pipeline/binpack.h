#ifndef SIGMUND_PIPELINE_BINPACK_H_
#define SIGMUND_PIPELINE_BINPACK_H_

#include <stdint.h>

#include <vector>

namespace sigmund::pipeline {

// One weighted work unit — for the inference job, a retailer weighted by
// its inventory size, since "the computational cost of inference is
// roughly linearly proportional to the number of items" (§IV-C1).
struct PackItem {
  int64_t id = 0;
  double weight = 0.0;
};

// Greedy first-fit-decreasing (longest-processing-time) partition of
// `items` into `num_bins` bins, minimizing the maximum bin weight — the
// heuristic Sigmund uses to partition retailers across cells so the
// inference MapReduces finish together (§IV-C1). Classic 4/3-OPT bound.
std::vector<std::vector<PackItem>> FirstFitDecreasing(
    std::vector<PackItem> items, int num_bins);

// Partition of `items` into bins in the order given (no sorting) — models
// the naive/random baseline.
std::vector<std::vector<PackItem>> RoundRobinPack(
    const std::vector<PackItem>& items, int num_bins);

// Total weight of one bin / max over bins.
double BinWeight(const std::vector<PackItem>& bin);
double MaxBinWeight(const std::vector<std::vector<PackItem>>& bins);

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_BINPACK_H_
