#ifndef SIGMUND_PIPELINE_CHECKPOINT_H_
#define SIGMUND_PIPELINE_CHECKPOINT_H_

#include <stdint.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/model.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::pipeline {

// Time-interval-based checkpointing of a training run to the shared
// filesystem (§IV-B3): checkpoints are scheduled on a fixed *time*
// interval (not an iteration count, because time-per-iteration varies
// wildly across retailer sizes), only the latest checkpoint is kept (the
// previous one is garbage-collected as soon as a new one commits), and
// commits are atomic (write to a temp path, then rename).
//
// The checkpoint payload carries the epoch number so a restarted task
// resumes with the remaining epochs only.
//
// Robustness: checkpoints are CRC-framed (sfs/reliable_io.h), transient
// SFS errors are retried per the policy, garbage collection is
// best-effort (a Delete that keeps failing leaves a stale checkpoint
// behind, which is harmless — Restore always takes the newest), and a
// corrupt latest checkpoint is reported as kNotFound so training restarts
// from scratch instead of crashing or silently training on garbage.
class CheckpointManager {
 public:
  // `fs`, `clock` and `io` are borrowed. `dir` is the SFS directory for
  // this (retailer, model) pair's checkpoints. `io`, if given, accumulates
  // retry and corruption counters.
  CheckpointManager(sfs::SharedFileSystem* fs, const Clock* clock,
                    std::string dir, double interval_seconds,
                    RetryPolicy retry_policy = {},
                    sfs::ReliableIoCounters* io = nullptr);

  // Writes a checkpoint if at least interval_seconds elapsed since the
  // last one (or since construction). Returns true if one was written.
  StatusOr<bool> MaybeCheckpoint(const core::BprModel& model, int epoch);

  // Unconditionally writes a checkpoint.
  Status ForceCheckpoint(const core::BprModel& model, int epoch);

  // True if a committed checkpoint exists for this directory.
  bool HasCheckpoint() const;

  // Restores the latest committed checkpoint. Returns the model and the
  // epoch it was taken at (training resumes at epoch+1). A corrupt latest
  // checkpoint (bad CRC, undecodable model) is counted and reported as
  // kNotFound — to the caller it looks like no checkpoint exists, so the
  // task restarts cleanly from scratch.
  struct Restored {
    core::BprModel model;
    int epoch = -1;
  };
  StatusOr<Restored> Restore(const data::Catalog* catalog) const;

  // Deletes all checkpoints for this directory (after a successful final
  // model write). Idempotent: clearing an already-empty directory is OK,
  // and concurrent deletion (kNotFound) is tolerated.
  Status Clear();

  int64_t checkpoints_written() const { return checkpoints_written_; }

  // Corrupt checkpoints Restore has skipped over.
  int64_t corrupt_checkpoints_detected() const {
    return corrupt_checkpoints_detected_.load();
  }

 private:
  std::string VersionPath(int64_t version) const;

  // List with transient-error retry.
  StatusOr<std::vector<std::string>> ListRetrying(
      const std::string& prefix) const;

  sfs::SharedFileSystem* fs_;
  const Clock* clock_;
  std::string dir_;
  double interval_seconds_;
  RetryPolicy retry_policy_;
  sfs::ReliableIoCounters* io_;  // may be null
  double last_checkpoint_time_;
  int64_t next_version_ = 0;
  int64_t checkpoints_written_ = 0;
  mutable std::atomic<int64_t> corrupt_checkpoints_detected_{0};
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_CHECKPOINT_H_
