#ifndef SIGMUND_PIPELINE_CHECKPOINT_H_
#define SIGMUND_PIPELINE_CHECKPOINT_H_

#include <stdint.h>

#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "core/model.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::pipeline {

// Time-interval-based checkpointing of a training run to the shared
// filesystem (§IV-B3): checkpoints are scheduled on a fixed *time*
// interval (not an iteration count, because time-per-iteration varies
// wildly across retailer sizes), only the latest checkpoint is kept (the
// previous one is garbage-collected as soon as a new one commits), and
// commits are atomic (write to a temp path, then rename).
//
// The checkpoint payload carries the epoch number so a restarted task
// resumes with the remaining epochs only.
class CheckpointManager {
 public:
  // `fs` and `clock` are borrowed. `dir` is the SFS directory for this
  // (retailer, model) pair's checkpoints.
  CheckpointManager(sfs::SharedFileSystem* fs, const Clock* clock,
                    std::string dir, double interval_seconds);

  // Writes a checkpoint if at least interval_seconds elapsed since the
  // last one (or since construction). Returns true if one was written.
  StatusOr<bool> MaybeCheckpoint(const core::BprModel& model, int epoch);

  // Unconditionally writes a checkpoint.
  Status ForceCheckpoint(const core::BprModel& model, int epoch);

  // True if a committed checkpoint exists for this directory.
  bool HasCheckpoint() const;

  // Restores the latest committed checkpoint. Returns the model and the
  // epoch it was taken at (training resumes at epoch+1).
  struct Restored {
    core::BprModel model;
    int epoch = -1;
  };
  StatusOr<Restored> Restore(const data::Catalog* catalog) const;

  // Deletes all checkpoints for this directory (after a successful final
  // model write).
  Status Clear();

  int64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  std::string VersionPath(int64_t version) const;

  sfs::SharedFileSystem* fs_;
  const Clock* clock_;
  std::string dir_;
  double interval_seconds_;
  double last_checkpoint_time_;
  int64_t next_version_ = 0;
  int64_t checkpoints_written_ = 0;
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_CHECKPOINT_H_
