#include "pipeline/service.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "pipeline/config_record.h"

namespace sigmund::pipeline {

std::string DailyReport::ToString() const {
  return StrFormat(
      "%s sweep: retailers=%d (new=%d) models=%d mean_best_map=%.4f "
      "checkpoints=%lld preemptions=%lld restores=%lld model_loads=%lld "
      "items=%lld map_attempts=%lld map_failures=%lld "
      "reduce_attempts=%lld reduce_failures=%lld "
      "quality_regressions=%d shard_bytes_moved=%lld "
      "sfs_retries=%lld corruptions_detected=%lld corruptions_healed=%lld "
      "corrupt_checkpoints_skipped=%lld corrupt_batches_rejected=%lld "
      "faults_injected=%lld",
      full_sweep ? "full" : "incremental", retailers, new_retailers,
      models_trained, mean_best_map,
      static_cast<long long>(checkpoints_written),
      static_cast<long long>(preemptions),
      static_cast<long long>(restored_from_checkpoint),
      static_cast<long long>(model_loads),
      static_cast<long long>(items_scored),
      static_cast<long long>(map_attempts),
      static_cast<long long>(map_failures),
      static_cast<long long>(reduce_attempts),
      static_cast<long long>(reduce_failures), quality_regressions,
      static_cast<long long>(shard_bytes_moved),
      static_cast<long long>(sfs_retries),
      static_cast<long long>(corruptions_detected),
      static_cast<long long>(corruptions_healed),
      static_cast<long long>(corrupt_checkpoints_skipped),
      static_cast<long long>(corrupt_batches_rejected),
      static_cast<long long>(faults_injected));
}

void SigmundService::UpsertRetailer(const data::RetailerData* data) {
  registry_.Upsert(data);
}

Status SigmundService::SelectBestModels(
    const std::vector<ConfigRecord>& results, DailyReport* report,
    std::map<data::RetailerId, double>* best_map) {
  std::map<data::RetailerId, const ConfigRecord*> best;
  for (const ConfigRecord& record : results) {
    if (!record.trained) continue;
    auto [it, inserted] = best.emplace(record.retailer, &record);
    if (!inserted && record.map_at_10 > it->second->map_at_10) {
      it->second = &record;
    }
  }
  double map_sum = 0.0;
  for (const auto& [retailer, record] : best) {
    // Unwrap + CRC-check the trained model, then re-frame it at the best-
    // model path with a read-back-verified write: a torn copy can never
    // become the model inference loads.
    StatusOr<std::string> bytes = sfs::ReadChecksummedFile(
        fs_, record->model_path, options_.sfs_retry, &io_);
    if (!bytes.ok()) return bytes.status();
    SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
        fs_, BestModelPath(retailer), *bytes, options_.sfs_retry, &io_));
    map_sum += record->map_at_10;
    (*best_map)[retailer] = record->map_at_10;
  }
  if (!best.empty()) {
    report->mean_best_map = map_sum / static_cast<double>(best.size());
  }
  return OkStatus();
}

StatusOr<DailyReport> SigmundService::RunDaily() {
  DailyReport report;
  report.retailers = registry_.size();
  if (registry_.size() == 0) {
    return FailedPreconditionError("no retailers registered");
  }

  // --- Data placement: rebalance shards across cells and account the
  // migrated bytes (§IV-B1).
  if (!options_.placement.cells.empty()) {
    DataPlacementPlanner placement_planner(fs_, options_.placement);
    DataPlacementPlanner::Plan placement =
        placement_planner.PlanPlacement(registry_);
    int64_t before = transfer_ledger_.total_bytes();
    SIGMUND_RETURN_IF_ERROR(placement_planner.Materialize(
        registry_, placement, shard_homes_, &transfer_ledger_,
        options_.sfs_retry, &io_));
    report.shard_bytes_moved = transfer_ledger_.total_bytes() - before;
    shard_homes_ = std::move(placement.home_cell);
  }

  // --- Plan the sweep.
  const bool periodic_restart =
      options_.full_sweep_every_days > 0 && days_run_ > 0 &&
      days_run_ % options_.full_sweep_every_days == 0;
  const bool full =
      previous_results_.empty() || force_full_sweep_ || periodic_restart;
  force_full_sweep_ = false;
  report.full_sweep = full;

  SweepPlanner planner(options_.sweep);
  std::vector<ConfigRecord> plan;
  if (full) {
    plan = planner.PlanFullSweep(registry_);
  } else {
    plan = planner.PlanIncrementalSweep(registry_, previous_results_);
    // Count retailers that got a full grid (new sign-ups).
    std::map<data::RetailerId, int> per_retailer;
    for (const ConfigRecord& record : plan) ++per_retailer[record.retailer];
    for (const auto& [retailer, count] : per_retailer) {
      if (count > options_.sweep.incremental_top_k) ++report.new_retailers;
    }
  }

  // --- Train: one MapReduce, or one per cell when data placement routes
  // each retailer's work to the cell holding its shard (§IV-B1).
  StatusOr<std::vector<ConfigRecord>> results = [&] {
    if (!options_.placement.cells.empty()) {
      MultiCellTrainingJob::Options multi_options;
      multi_options.cells = options_.placement.cells;
      multi_options.per_cell = options_.training;
      MultiCellTrainingJob training(fs_, &registry_, multi_options);
      StatusOr<std::vector<ConfigRecord>> out =
          training.Run(plan, shard_homes_);
      for (const MultiCellTrainingJob::CellReport& cell :
           training.cell_reports()) {
        report.checkpoints_written += cell.checkpoints_written;
        report.preemptions += cell.preemptions;
        report.map_attempts += cell.map_attempts;
        report.map_failures += cell.map_failures;
        report.reduce_attempts += cell.reduce_attempts;
        report.reduce_failures += cell.reduce_failures;
        report.sfs_retries += cell.sfs_retries;
        report.corruptions_detected += cell.corruptions_detected;
      }
      return out;
    }
    TrainingJob training(fs_, &registry_, options_.training);
    StatusOr<std::vector<ConfigRecord>> out = training.Run(plan);
    const TrainingJob::Stats& stats = training.stats();
    report.checkpoints_written = stats.checkpoints_written.load();
    report.preemptions = stats.preemptions.load();
    report.restored_from_checkpoint = stats.restored_from_checkpoint.load();
    report.map_attempts = stats.mapreduce.map_attempts;
    report.map_failures = stats.mapreduce.map_failures;
    report.reduce_attempts = stats.mapreduce.reduce_attempts;
    report.reduce_failures = stats.mapreduce.reduce_failures;
    report.sfs_retries += stats.io.retry.retries.load();
    report.corruptions_detected += stats.io.corruptions_detected.load();
    report.corruptions_healed += stats.io.corruptions_healed.load();
    report.corrupt_checkpoints_skipped +=
        stats.corrupt_checkpoints_skipped.load();
    return out;
  }();
  if (!results.ok()) return results.status();
  report.models_trained = static_cast<int>(results->size());

  // Persist sweep results per retailer (debuggability).
  {
    std::map<data::RetailerId, std::string> blobs;
    for (const ConfigRecord& record : *results) {
      blobs[record.retailer] += record.Serialize();
      blobs[record.retailer] += '\n';
    }
    for (const auto& [retailer, blob] : blobs) {
      // Debug artifact: plain text (not framed) so it stays greppable, but
      // still retried through transient storage errors.
      const std::string path = SweepResultPath(retailer);
      const std::string& data = blob;
      SIGMUND_RETURN_IF_ERROR(
          RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
            return fs_->Write(path, data);
          }));
    }
  }

  // --- Model selection + quality guardrail.
  std::map<data::RetailerId, double> best_map;
  SIGMUND_RETURN_IF_ERROR(SelectBestModels(*results, &report, &best_map));
  previous_results_ = std::move(results).value();

  std::set<data::RetailerId> hold_back;
  if (options_.guard_quality) {
    for (const auto& [retailer, map_at_10] : best_map) {
      if (monitor_.Record(retailer, map_at_10) ==
          QualityMonitor::Verdict::kRegressed) {
        hold_back.insert(retailer);
        SIGLOG(WARNING) << "retailer " << retailer
                        << " regressed: map=" << map_at_10
                        << " trailing best=" << monitor_.TrailingBest(retailer)
                        << "; keeping previous recommendations";
      }
    }
    report.quality_regressions = static_cast<int>(hold_back.size());
  }

  // --- Inference.
  InferenceJob inference(fs_, &registry_, options_.inference);
  auto recommendations = inference.Run(registry_.Ids());
  if (!recommendations.ok()) return recommendations.status();
  report.model_loads = inference.stats().model_loads.load();
  report.items_scored = inference.stats().items_scored.load();
  report.map_attempts += inference.stats().mapreduce.map_attempts;
  report.map_failures += inference.stats().mapreduce.map_failures;
  report.sfs_retries += inference.stats().io.retry.retries.load();
  report.corruptions_detected +=
      inference.stats().io.corruptions_detected.load();
  report.corruptions_healed += inference.stats().io.corruptions_healed.load();

  // --- Batch-load the serving store from the materialized SFS files
  // (regressed retailers keep serving the previous batch). A batch that
  // fails its checksum is rejected and the retailer keeps its previous
  // recommendations; a bad refresh never takes down serving.
  for (const auto& [retailer, recs] : *recommendations) {
    (void)recs;
    if (hold_back.count(retailer) > 0 &&
        store_.RetailerVersion(retailer) > 0) {
      continue;
    }
    Status loaded = store_.LoadRetailerFromFile(
        retailer, *fs_, RecommendationPath(retailer), options_.sfs_retry,
        &io_);
    if (loaded.code() == StatusCode::kDataLoss) {
      ++report.corrupt_batches_rejected;
      SIGLOG(WARNING) << "rejecting corrupt recommendation batch for "
                      << "retailer " << retailer << ": "
                      << loaded.ToString();
      continue;
    }
    SIGMUND_RETURN_IF_ERROR(loaded);
  }

  // --- Robustness roll-up from the service's own SFS access and the
  // chaos layer (if one is wired in).
  report.sfs_retries += io_.retry.retries.load() - io_retries_seen_;
  report.corruptions_detected +=
      io_.corruptions_detected.load() - io_corruptions_seen_;
  report.corruptions_healed += io_.corruptions_healed.load() - io_healed_seen_;
  io_retries_seen_ = io_.retry.retries.load();
  io_corruptions_seen_ = io_.corruptions_detected.load();
  io_healed_seen_ = io_.corruptions_healed.load();
  if (options_.injected_faults != nullptr) {
    const int64_t total = options_.injected_faults->total();
    report.faults_injected = total - faults_seen_;
    faults_seen_ = total;
  }

  ++days_run_;
  return report;
}

}  // namespace sigmund::pipeline
