#include "pipeline/service.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/model.h"
#include "pipeline/config_record.h"
#include "retrieval/artifact.h"

namespace sigmund::pipeline {

namespace {

using Op = RunLedger::Op;

// --- Stage-commit payload codecs (DESIGN.md §13). Payloads are replay
// data, not archival formats: each stage encodes exactly what the resumed
// run needs to skip the stage (restore its outputs) or cross-check a
// deterministic re-run against what the crashed process committed.

std::string JoinIds(const std::set<data::RetailerId>& ids) {
  std::string out;
  for (data::RetailerId id : ids) {
    if (!out.empty()) out += ',';
    out += StrFormat("%d", id);
  }
  return out;
}

std::string EncodeIdList(const std::vector<data::RetailerId>& ids) {
  std::string out;
  for (data::RetailerId id : ids) {
    if (!out.empty()) out += ',';
    out += StrFormat("%d", id);
  }
  return out;
}

bool DecodeIdList(const std::string& text,
                  std::vector<data::RetailerId>* ids) {
  ids->clear();
  if (text.empty()) return true;
  for (const std::string& piece : StrSplit(text, ',')) {
    int64_t value = 0;
    if (!ParseInt64(piece, &value)) return false;
    ids->push_back(static_cast<data::RetailerId>(value));
  }
  return true;
}

std::string EncodeShardHomes(
    const std::map<data::RetailerId, std::string>& homes) {
  BinaryWriter writer;
  writer.Write<uint64_t>(homes.size());
  for (const auto& [retailer, cell] : homes) {
    writer.Write<int32_t>(retailer);
    writer.WriteString(cell);
  }
  return writer.Take();
}

bool DecodeShardHomes(const std::string& bytes,
                      std::map<data::RetailerId, std::string>* homes) {
  BinaryReader reader(bytes);
  uint64_t count = 0;
  if (!reader.Read(&count)) return false;
  std::map<data::RetailerId, std::string> parsed;
  for (uint64_t i = 0; i < count; ++i) {
    int32_t retailer = 0;
    std::string cell;
    if (!reader.Read(&retailer) || !reader.ReadString(&cell)) return false;
    parsed[static_cast<data::RetailerId>(retailer)] = std::move(cell);
  }
  if (!reader.Done()) return false;
  homes->swap(parsed);
  return true;
}

std::string EncodeSelect(double mean_best_map,
                         const std::map<data::RetailerId, double>& best_map,
                         const std::set<data::RetailerId>& degraded) {
  BinaryWriter writer;
  writer.Write<double>(mean_best_map);
  writer.Write<uint64_t>(best_map.size());
  for (const auto& [retailer, map_at_10] : best_map) {
    writer.Write<int32_t>(retailer);
    writer.Write<double>(map_at_10);
    writer.Write<uint8_t>(degraded.count(retailer) > 0 ? 1 : 0);
  }
  return writer.Take();
}

bool DecodeSelect(const std::string& bytes, double* mean_best_map,
                  std::map<data::RetailerId, double>* best_map,
                  std::set<data::RetailerId>* degraded) {
  BinaryReader reader(bytes);
  uint64_t count = 0;
  if (!reader.Read(mean_best_map) || !reader.Read(&count)) return false;
  std::map<data::RetailerId, double> parsed_map;
  std::set<data::RetailerId> parsed_degraded;
  for (uint64_t i = 0; i < count; ++i) {
    int32_t retailer = 0;
    double map_at_10 = 0.0;
    uint8_t is_degraded = 0;
    if (!reader.Read(&retailer) || !reader.Read(&map_at_10) ||
        !reader.Read(&is_degraded)) {
      return false;
    }
    parsed_map[static_cast<data::RetailerId>(retailer)] = map_at_10;
    if (is_degraded != 0) {
      parsed_degraded.insert(static_cast<data::RetailerId>(retailer));
    }
  }
  if (!reader.Done()) return false;
  best_map->swap(parsed_map);
  degraded->swap(parsed_degraded);
  return true;
}

// ConfigRecord::Serialize uses %.17g for the metric doubles, so the text
// round-trip is lossless — the restored records warm-start the next
// incremental sweep bit-identically.
std::string EncodeResults(const std::vector<ConfigRecord>& results) {
  std::string out;
  for (const ConfigRecord& record : results) {
    out += record.Serialize();
    out += '\n';
  }
  return out;
}

StatusOr<std::vector<ConfigRecord>> DecodeResults(const std::string& text) {
  std::vector<ConfigRecord> results;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty()) continue;
    StatusOr<ConfigRecord> record = ConfigRecord::Deserialize(line);
    SIGMUND_RETURN_IF_ERROR(record.status());
    results.push_back(*std::move(record));
  }
  return results;
}

// FNV-1a over the serialized plan: the plan is cheap to recompute
// deterministically, so the ledger stores only a fingerprint to
// cross-check the resumed run against.
uint64_t FingerprintPlan(const std::vector<ConfigRecord>& plan) {
  uint64_t hash = 14695981039346656037ull;
  for (const ConfigRecord& record : plan) {
    const std::string bytes = record.Serialize() + "\n";
    for (unsigned char c : bytes) {
      hash ^= c;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

// Parses "<prefix>r<id>.v<NNNNNN>" into (retailer, version). Returns
// false for anything else under the directory (day batch files, tmp
// partials, unrelated artifacts).
bool ParseVersionFilePath(const std::string& path, const std::string& dir,
                          data::RetailerId* retailer, int64_t* version) {
  if (path.size() <= dir.size() || path.compare(0, dir.size(), dir) != 0) {
    return false;
  }
  std::string_view rest = std::string_view(path).substr(dir.size());
  if (rest.empty() || rest[0] != 'r') return false;
  rest.remove_prefix(1);
  const size_t dot = rest.find(".v");
  if (dot == std::string_view::npos) return false;
  int64_t id = 0, v = 0;
  if (!ParseInt64(rest.substr(0, dot), &id)) return false;
  if (!ParseInt64(rest.substr(dot + 2), &v)) return false;
  *retailer = static_cast<data::RetailerId>(id);
  *version = v;
  return true;
}

}  // namespace

std::string DailyReport::ToString() const {
  std::string out = StrFormat(
      "%s sweep: retailers=%d (new=%d) models=%d mean_best_map=%.4f "
      "checkpoints=%lld preemptions=%lld restores=%lld model_loads=%lld "
      "items=%lld map_attempts=%lld map_failures=%lld "
      "reduce_attempts=%lld reduce_failures=%lld "
      "quality_regressions=%d shard_bytes_moved=%lld "
      "sfs_retries=%lld corruptions_detected=%lld corruptions_healed=%lld "
      "corrupt_checkpoints_skipped=%lld corrupt_batches_rejected=%lld "
      "faults_injected=%lld",
      full_sweep ? "full" : "incremental", retailers, new_retailers,
      models_trained, mean_best_map,
      static_cast<long long>(checkpoints_written),
      static_cast<long long>(preemptions),
      static_cast<long long>(restored_from_checkpoint),
      static_cast<long long>(model_loads),
      static_cast<long long>(items_scored),
      static_cast<long long>(map_attempts),
      static_cast<long long>(map_failures),
      static_cast<long long>(reduce_attempts),
      static_cast<long long>(reduce_failures), quality_regressions,
      static_cast<long long>(shard_bytes_moved),
      static_cast<long long>(sfs_retries),
      static_cast<long long>(corruptions_detected),
      static_cast<long long>(corruptions_healed),
      static_cast<long long>(corrupt_checkpoints_skipped),
      static_cast<long long>(corrupt_batches_rejected),
      static_cast<long long>(faults_injected));
  if (!stage_wall_micros.empty()) {
    out += StrFormat("\n  wall: total=%.1fms",
                     static_cast<double>(total_wall_micros) / 1000.0);
    for (const auto& [stage, micros] : stage_wall_micros) {
      out += StrFormat(" %s=%.1fms", stage.c_str(),
                       static_cast<double>(micros) / 1000.0);
    }
    if (simulated_train_micros > 0) {
      out += StrFormat(" (simulated_train=%.1fs)",
                       static_cast<double>(simulated_train_micros) / 1e6);
    }
  }
  out += StrFormat(
      "\n  churn: evictions=%lld grace_checkpoints=%lld hard=%lld "
      "escalations=%lld budget_exhausted=%lld deadline_exceeded=%lld "
      "degraded_retailers=%d backups=%lld backups_won=%lld "
      "breaker_trips=%lld fallbacks_served=%lld",
      static_cast<long long>(evictions),
      static_cast<long long>(eviction_grace_checkpoints),
      static_cast<long long>(hard_evictions),
      static_cast<long long>(priority_escalations),
      static_cast<long long>(preemption_budget_exhausted),
      static_cast<long long>(deadline_exceeded), degraded_retailers,
      static_cast<long long>(map_backup_attempts),
      static_cast<long long>(map_backups_won),
      static_cast<long long>(breaker_trips),
      static_cast<long long>(fallbacks_served));
  out += StrFormat(
      "\n  rollout: canary_promotions=%lld canary_rollbacks=%lld "
      "replica_cutovers=%lld cutovers_skipped=%lld failovers=%lld "
      "hedged_reads=%lld",
      static_cast<long long>(canary_promotions),
      static_cast<long long>(canary_rollbacks),
      static_cast<long long>(replica_cutovers),
      static_cast<long long>(replica_cutovers_skipped),
      static_cast<long long>(replica_failovers),
      static_cast<long long>(hedged_reads));
  out += StrFormat(
      "\n  retrieval: indexes_built=%d promotions=%lld rollbacks=%lld "
      "corrupt_rejected=%lld requests(materialized=%lld "
      "online_retrieval=%lld fallback=%lld)",
      retrieval_indexes_built, static_cast<long long>(retrieval_promotions),
      static_cast<long long>(retrieval_rollbacks),
      static_cast<long long>(corrupt_indexes_rejected),
      static_cast<long long>(requests_materialized),
      static_cast<long long>(requests_online_retrieval),
      static_cast<long long>(requests_fallback));
  out += StrFormat(
      "\n  overload: shed=%lld brownouts=%lld hedges_suppressed=%lld "
      "retry_budget_exhausted=%lld canary_ignored=%lld",
      static_cast<long long>(requests_shed),
      static_cast<long long>(brownout_serves),
      static_cast<long long>(hedges_suppressed),
      static_cast<long long>(retry_budget_exhausted),
      static_cast<long long>(canary_samples_ignored));
  out += StrFormat(
      "\n  dataqual: quarantined=%d feed_quarantines=%lld feed_warns=%lld "
      "releases=%lld",
      quarantined_retailers, static_cast<long long>(feed_quarantines),
      static_cast<long long>(feed_warns),
      static_cast<long long>(quarantine_releases));
  // Per-run deltas only: a day run after a recovery earlier in the
  // service's life must print the same line as the same day in an
  // uninterrupted run (cumulative GC totals would differ).
  if (ledger_appends > 0 || recovered_day) {
    out += StrFormat(
        "\n  ledger: appends=%lld units_skipped=%lld recovered=%d",
        static_cast<long long>(ledger_appends),
        static_cast<long long>(replay_units_skipped), recovered_day ? 1 : 0);
  }
  if (!slo_json.empty()) {
    out += StrFormat(
        "\n  slo: firing=%d fired=%lld resolved=%lld",
        slo_objectives_firing, static_cast<long long>(slo_alerts_fired),
        static_cast<long long>(slo_alerts_resolved));
  }
  return out;
}

SigmundService::SigmundService(sfs::SharedFileSystem* fs,
                               const Options& options)
    : fs_(fs), options_(options), monitor_(options.quality) {
  clock_ = options_.clock != nullptr ? options_.clock : RealClock::Get();
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.tracer != nullptr) {
    tracer_ = options_.tracer;
  } else {
    owned_tracer_ = std::make_unique<obs::Tracer>(clock_);
    tracer_ = owned_tracer_.get();
  }
  io_.SetMetrics(metrics_, clock_);
  monitor_.set_metrics(metrics_);
  if (options_.dataqual.enabled) {
    sentry_ = std::make_unique<dataqual::DataSentry>(
        options_.dataqual.sentry, metrics_);
  }
  if (options_.ledger.enabled) {
    ledger_ = std::make_unique<RunLedger>(fs_, options_.ledger.ledger,
                                          options_.sfs_retry, &io_, metrics_);
  }
  crash_ = options_.crash;
  store_group_ = std::make_unique<serving::ReplicatedStoreGroup>(
      options_.serving, metrics_);
  canary_ = std::make_unique<CanaryController>(options_.canary, metrics_);
  retrieval_reader_ = std::make_unique<retrieval::OnlineRetrievalReader>(
      options_.retrieval.reader, metrics_);
  if (options_.retrieval.enabled) {
    // The retrieval canary inherits the batch canary's thresholds and
    // oracle but gates the other plane: its canary arm reads the staged
    // ANN index, its control arm the live materialized plane — exactly
    // the comparison the A/B route will serve if the index activates.
    CanaryController::Options retrieval_canary = options_.canary;
    retrieval_canary.plane = "retrieval";
    retrieval_canary.serve_hook =
        [this](data::RetailerId retailer, const core::Context& context,
               int64_t version) {
          CanaryController::CanaryServe serve;
          StatusOr<std::vector<core::ScoredItem>> result =
              version != 0 ? retrieval_reader_->ServeContextAtVersion(
                                 retailer, context, version)
                           : store_group_->primary()->ServeContext(retailer,
                                                                   context);
          serve.status = result.status();
          if (result.ok()) serve.items = *std::move(result);
          return serve;
        };
    retrieval_canary_ =
        std::make_unique<CanaryController>(retrieval_canary, metrics_);
  }
}

void SigmundService::UpsertRetailer(const data::RetailerData* data) {
  registry_.Upsert(data);
}

Status SigmundService::SelectBestModels(
    const std::vector<ConfigRecord>& results, DailyReport* report,
    std::map<data::RetailerId, double>* best_map,
    std::set<data::RetailerId>* degraded) {
  std::map<data::RetailerId, const ConfigRecord*> best;
  for (const ConfigRecord& record : results) {
    if (!record.trained) continue;
    auto [it, inserted] = best.emplace(record.retailer, &record);
    if (!inserted && record.map_at_10 > it->second->map_at_10) {
      it->second = &record;
    }
  }
  double map_sum = 0.0;
  for (const auto& [retailer, record] : best) {
    if (record->degraded) degraded->insert(retailer);
    // Unwrap + CRC-check the trained model, then re-frame it at the best-
    // model path with a read-back-verified write: a torn copy can never
    // become the model inference loads.
    StatusOr<std::string> bytes = sfs::ReadChecksummedFile(
        fs_, record->model_path, options_.sfs_retry, &io_);
    if (!bytes.ok()) return bytes.status();
    SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
        fs_, BestModelPath(retailer), *bytes, options_.sfs_retry, &io_));
    map_sum += record->map_at_10;
    (*best_map)[retailer] = record->map_at_10;
  }
  if (!best.empty()) {
    report->mean_best_map = map_sum / static_cast<double>(best.size());
  }
  return OkStatus();
}

ServiceSnapshot SigmundService::BuildSnapshot() const {
  ServiceSnapshot snapshot;
  snapshot.days_run = days_run_ + 1;
  snapshot.previous_results.reserve(previous_results_.size());
  for (const ConfigRecord& record : previous_results_) {
    snapshot.previous_results.push_back(record.Serialize());
  }
  snapshot.shard_homes = shard_homes_;
  snapshot.monitor_state = monitor_.SerializeState();
  if (sentry_ != nullptr) snapshot.sentry_state = sentry_->SerializeState();
  const serving::RecommendationStore& primary = *store_group_->primary();
  for (data::RetailerId id : registry_.Ids()) {
    VersionChainState chain;
    chain.active = primary.RetailerVersion(id);
    chain.next_version = primary.NextVersion(id);
    chain.retained = primary.RetainedVersions(id);
    if (chain.active != 0 || chain.next_version != 1 ||
        !chain.retained.empty()) {
      snapshot.store_versions[id] = std::move(chain);
    }
    VersionChainState index_chain;
    index_chain.active = retrieval_reader_->RetailerVersion(id);
    index_chain.next_version = retrieval_reader_->NextVersion(id);
    index_chain.retained = retrieval_reader_->RetainedVersions(id);
    if (index_chain.active != 0 || index_chain.next_version != 1 ||
        !index_chain.retained.empty()) {
      snapshot.index_versions[id] = std::move(index_chain);
    }
  }
  return snapshot;
}

Status SigmundService::DeleteVersionFile(const std::string& path) {
  return RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
    Status status = fs_->Delete(path);
    return status.code() == StatusCode::kNotFound ? OkStatus() : status;
  });
}

Status SigmundService::RetireVersionFiles(
    const std::string& prefix, const std::vector<int64_t>& retained) {
  StatusOr<std::vector<std::string>> paths =
      RetryWithPolicy<std::vector<std::string>>(
          options_.sfs_retry, &io_.retry, [&] { return fs_->List(prefix); });
  SIGMUND_RETURN_IF_ERROR(paths.status());
  int64_t deleted = 0;
  for (const std::string& path : *paths) {
    int64_t version = 0;
    if (!ParseInt64(std::string_view(path).substr(prefix.size()), &version)) {
      continue;  // a tmp partial or unrelated file; not ours to touch here
    }
    if (std::find(retained.begin(), retained.end(), version) !=
        retained.end()) {
      continue;
    }
    SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(path));
    ++deleted;
  }
  if (deleted > 0) {
    metrics_->GetCounter("pipeline_version_files_retired_total")
        ->Add(deleted);
  }
  return OkStatus();
}

Status SigmundService::GcOrphanVersionFiles(const std::string& dir,
                                            bool index_plane,
                                            const char* kind,
                                            int64_t* deleted) {
  StatusOr<std::vector<std::string>> paths =
      RetryWithPolicy<std::vector<std::string>>(
          options_.sfs_retry, &io_.retry, [&] { return fs_->List(dir); });
  SIGMUND_RETURN_IF_ERROR(paths.status());
  int64_t count = 0;
  for (const std::string& path : *paths) {
    data::RetailerId retailer = 0;
    int64_t version = 0;
    if (!ParseVersionFilePath(path, dir, &retailer, &version)) continue;
    const std::vector<int64_t> retained =
        index_plane ? retrieval_reader_->RetainedVersions(retailer)
                    : store_group_->primary()->RetainedVersions(retailer);
    if (std::find(retained.begin(), retained.end(), version) !=
        retained.end()) {
      continue;
    }
    SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(path));
    ++count;
  }
  if (count > 0) {
    metrics_->GetCounter("pipeline_orphans_gc_total", {{"kind", kind}})
        ->Add(count);
    *deleted += count;
  }
  return OkStatus();
}

StatusOr<SigmundService::RecoveryReport> SigmundService::RecoverDay() {
  RecoveryReport recovery;
  // 1. Sweep `*.tmp` partials everywhere the two-phase commit idiom
  // writes them. Safe (and useful) on a clean first boot and with the
  // ledger disabled: a tmp file is uncommitted by construction.
  const std::string state_prefix = options_.ledger.ledger.state_dir + "/";
  for (const std::string& prefix :
       {std::string("recommendations/"), std::string("retrieval/"),
        state_prefix}) {
    StatusOr<int64_t> swept =
        sfs::SweepPartialFiles(fs_, prefix, options_.sfs_retry, &io_);
    SIGMUND_RETURN_IF_ERROR(swept.status());
    recovery.tmp_files_swept += *swept;
  }
  if (recovery.tmp_files_swept > 0) {
    metrics_->GetCounter("pipeline_orphans_gc_total", {{"kind", "tmp"}})
        ->Add(recovery.tmp_files_swept);
  }
  if (ledger_ == nullptr) {
    recovery.day = days_run_;
    return recovery;
  }
  metrics_->GetCounter("pipeline_recoveries_total")->Add(1);

  // 2. Rehydrate durable control state from the newest readable snapshot
  // (a corrupt one is skipped inside ReadLatestSnapshot; kNotFound means
  // a true first boot).
  ServiceSnapshot snapshot;
  StatusOr<std::pair<int, std::string>> latest =
      ledger_->ReadLatestSnapshot();
  if (latest.ok()) {
    StatusOr<ServiceSnapshot> decoded =
        ServiceSnapshot::Deserialize(latest->second);
    SIGMUND_RETURN_IF_ERROR(decoded.status());
    snapshot = *std::move(decoded);
    recovery.snapshot_day = latest->first;
    days_run_ = snapshot.days_run;
    previous_results_.clear();
    for (const std::string& line : snapshot.previous_results) {
      StatusOr<ConfigRecord> record = ConfigRecord::Deserialize(line);
      SIGMUND_RETURN_IF_ERROR(record.status());
      previous_results_.push_back(*std::move(record));
    }
    shard_homes_ = snapshot.shard_homes;
    if (!snapshot.monitor_state.empty()) {
      SIGMUND_RETURN_IF_ERROR(monitor_.RestoreState(snapshot.monitor_state));
    }
    if (sentry_ != nullptr && !snapshot.sentry_state.empty()) {
      SIGMUND_RETURN_IF_ERROR(sentry_->RestoreState(snapshot.sentry_state));
    }
    // force_full_sweep_ is deliberately not persisted: it records an
    // operator's *request*, not pipeline state; a crashed coordinator's
    // operator re-issues it.
  } else if (latest.status().code() != StatusCode::kNotFound) {
    return latest.status();
  }
  recovery.day = days_run_;

  // 3. Decode the current day's log. kDayStart without kDayComplete
  // means the crashed process died mid-day: the next RunDaily resumes
  // it, replaying committed work from these entries.
  RecoveredDay rec;
  rec.day = days_run_;
  std::vector<RunLedger::Entry> entries;
  StatusOr<RunLedger::DecodeResult> day_log = ledger_->ReadDay(days_run_);
  if (day_log.ok()) {
    entries = std::move(day_log->entries);
    recovery.ledger_entries = static_cast<int64_t>(entries.size());
    recovery.torn_tail_dropped = day_log->torn_tail;
    bool started = false;
    bool complete = false;
    for (const RunLedger::Entry& entry : entries) {
      switch (entry.op) {
        case Op::kDayStart:
          started = true;
          break;
        case Op::kDayComplete:
          complete = true;
          break;
        case Op::kStageCommit:
          rec.committed_stages[entry.tag] = entry.payload;
          break;
        case Op::kBatchCanary:
          rec.batch_canary[{entry.retailer, entry.version}] = entry.tag;
          break;
        case Op::kBatchActivate:
          rec.batch_activated[entry.retailer] = entry.version;
          break;
        case Op::kBatchDiscard:
          rec.batch_discarded[entry.retailer] = entry.version;
          break;
        case Op::kIndexCanary:
          rec.index_canary[{entry.retailer, entry.version}] = entry.tag;
          break;
        case Op::kIndexActivate:
          rec.index_activated[entry.retailer] = entry.version;
          break;
        case Op::kIndexDiscard:
          rec.index_discarded[entry.retailer] = entry.version;
          break;
        case Op::kBatchStageIntent:
        case Op::kIndexStageIntent:
          // Intents without a matching commit are exactly the debris the
          // GC pass below removes; nothing to replay.
          break;
      }
    }
    rec.resumed = started && !complete;
  } else if (day_log.status().code() != StatusCode::kNotFound) {
    return day_log.status();
  }

  // 4. Rebuild the serving planes: snapshot chains first (retained
  // versions re-staged pinned, in ascending order, then the active
  // pointer), then this day's already-committed rollouts on top — so the
  // in-memory version chains land exactly where the crashed process had
  // them.
  serving::RecommendationStore* primary = store_group_->primary();
  for (const auto& [retailer, chain] : snapshot.store_versions) {
    for (int64_t version : chain.retained) {
      StatusOr<int64_t> staged = primary->StageRetailerFromFile(
          retailer, *fs_, RecommendationVersionPath(retailer, version),
          options_.sfs_retry, &io_, version);
      if (!staged.ok()) {
        // A retained version evicted by a committed same-day activation
        // has already lost its file; only the active version is
        // load-bearing.
        if (staged.status().code() == StatusCode::kNotFound &&
            version != chain.active) {
          continue;
        }
        return staged.status();
      }
      ++recovery.versions_rehydrated;
    }
    if (chain.active > 0) {
      SIGMUND_RETURN_IF_ERROR(
          primary->ActivateVersion(retailer, chain.active));
    }
    primary->EnsureNextVersion(retailer, chain.next_version);
  }
  for (const auto& [retailer, version] : rec.batch_activated) {
    StatusOr<int64_t> staged = primary->StageRetailerFromFile(
        retailer, *fs_, RecommendationVersionPath(retailer, version),
        options_.sfs_retry, &io_, version);
    SIGMUND_RETURN_IF_ERROR(staged.status());
    SIGMUND_RETURN_IF_ERROR(primary->ActivateVersion(retailer, version));
    ++recovery.versions_rehydrated;
  }
  // A canary-discarded version consumed a version number even though no
  // file survives; restore the counter so the resumed (and every later)
  // day assigns the same numbers a crash-free run would.
  for (const auto& [retailer, version] : rec.batch_discarded) {
    primary->EnsureNextVersion(retailer, version + 1);
  }
  if (store_group_->num_replicas() > 1) {
    std::map<data::RetailerId, int64_t> final_active;
    for (const auto& [retailer, chain] : snapshot.store_versions) {
      if (chain.active > 0) final_active[retailer] = chain.active;
    }
    for (const auto& [retailer, version] : rec.batch_activated) {
      final_active[retailer] = version;
    }
    for (const auto& [retailer, version] : final_active) {
      SIGMUND_RETURN_IF_ERROR(store_group_->CutoverFollowersFromFile(
          retailer, *fs_, RecommendationVersionPath(retailer, version),
          version, options_.sfs_retry, &io_));
    }
  }

  for (const auto& [retailer, chain] : snapshot.index_versions) {
    for (int64_t version : chain.retained) {
      StatusOr<int64_t> staged = retrieval_reader_->StageFromFile(
          retailer, *fs_, retrieval::IndexArtifactVersionPath(retailer,
                                                              version),
          options_.sfs_retry, &io_, version);
      if (!staged.ok()) {
        if (staged.status().code() == StatusCode::kNotFound &&
            version != chain.active) {
          continue;
        }
        return staged.status();
      }
      ++recovery.versions_rehydrated;
    }
    if (chain.active > 0) {
      SIGMUND_RETURN_IF_ERROR(
          retrieval_reader_->ActivateVersion(retailer, chain.active));
    }
    retrieval_reader_->EnsureNextVersion(retailer, chain.next_version);
  }
  for (const auto& [retailer, version] : rec.index_activated) {
    StatusOr<int64_t> staged = retrieval_reader_->StageFromFile(
        retailer, *fs_,
        retrieval::IndexArtifactVersionPath(retailer, version),
        options_.sfs_retry, &io_, version);
    SIGMUND_RETURN_IF_ERROR(staged.status());
    SIGMUND_RETURN_IF_ERROR(
        retrieval_reader_->ActivateVersion(retailer, version));
    ++recovery.versions_rehydrated;
  }
  for (const auto& [retailer, version] : rec.index_discarded) {
    retrieval_reader_->EnsureNextVersion(retailer, version + 1);
  }

  // 5. GC: every versioned file the rehydrated planes do not retain is
  // debris — an uncommitted intent's copy, or an eviction whose file
  // delete the crash preempted.
  SIGMUND_RETURN_IF_ERROR(GcOrphanVersionFiles(
      "recommendations/", /*index_plane=*/false, "batch",
      &recovery.orphan_versions_deleted));
  SIGMUND_RETURN_IF_ERROR(GcOrphanVersionFiles(
      "retrieval/", /*index_plane=*/true, "index",
      &recovery.orphan_versions_deleted));

  // 6. Retention, with the restored day counter. Normally the day-end
  // retention already ran and these are no-ops, but a crash inside the
  // day-boundary window (snapshot committed, retention not yet run)
  // would otherwise strand old snapshots that a crash-free run deletes —
  // and retention always deletes *everything* below its cutoff, so
  // re-running it here converges the crashed filesystem to the clean
  // run's bytes no matter where in the window the process died.
  SIGMUND_RETURN_IF_ERROR(ledger_->RetireOldDays(days_run_));
  SIGMUND_RETURN_IF_ERROR(ledger_->RetireOldSnapshots(days_run_));

  // 7. Re-open the mid-flight day so resumed appends extend (and
  // tail-truncate) the durable log.
  if (rec.resumed) {
    ledger_->ResumeDay(days_run_, entries);
    recovery.resumed = true;
    recovery_ = std::move(rec);
    SIGLOG(INFO) << "recovered mid-flight day " << days_run_ << " ("
                 << recovery.ledger_entries << " ledger entries, "
                 << recovery.versions_rehydrated << " versions rehydrated, "
                 << recovery.orphan_versions_deleted << " orphans removed)";
  }
  return recovery;
}

StatusOr<DailyReport> SigmundService::RunDaily() {
  DailyReport report;
  report.retailers = registry_.size();
  if (registry_.size() == 0) {
    return FailedPreconditionError("no retailers registered");
  }

  // The report's counter fields are per-run deltas of registry counters:
  // snapshot now, instrument everything, snapshot again at the end.
  const obs::RegistrySnapshot before = metrics_->Snapshot();
  obs::Span day_span =
      tracer_->StartSpan(StrFormat("run_daily/day%d", days_run_));
  // Ends a stage span and records its wall time in the report and in the
  // pipeline_stage_micros{stage=...} histogram.
  auto end_stage = [&](obs::Span& span, const char* stage) {
    span.End();
    report.stage_wall_micros.emplace_back(stage, span.DurationMicros());
    metrics_->GetHistogram("pipeline_stage_micros", {{"stage", stage}})
        ->Observe(static_cast<double>(span.DurationMicros()));
  };

  // --- Ledger plumbing (DESIGN.md §13). With the ledger disabled every
  // helper below is a no-op and the run is byte-identical to the
  // pre-ledger pipeline.
  const bool ledgered = ledger_ != nullptr;
  RecoveredDay* rec = nullptr;
  if (ledgered && recovery_.has_value() && recovery_->resumed &&
      recovery_->day == days_run_) {
    rec = &*recovery_;
  }
  report.recovered_day = rec != nullptr;
  const int64_t appends_before = ledgered ? ledger_->appends() : 0;
  int64_t units_skipped = 0;

  auto make_entry = [&](Op op, data::RetailerId retailer, int64_t version,
                        std::string tag, std::string payload) {
    RunLedger::Entry entry;
    entry.op = op;
    entry.day = days_run_;
    entry.retailer = retailer;
    entry.version = version;
    entry.tag = std::move(tag);
    entry.payload = std::move(payload);
    return entry;
  };
  auto append = [&](const RunLedger::Entry& entry) {
    return ledger_->Append(entry);
  };
  // Payload of a stage already committed this day (replay), or null.
  auto stage_committed = [&](const char* tag) -> const std::string* {
    if (rec == nullptr) return nullptr;
    auto it = rec->committed_stages.find(tag);
    return it == rec->committed_stages.end() ? nullptr : &it->second;
  };
  // Durably commits a stage, then exposes the stage-boundary kill-point.
  auto commit_stage = [&](const char* tag, std::string payload,
                          const char* point) -> Status {
    if (!ledgered) return OkStatus();
    SIGMUND_RETURN_IF_ERROR(
        append(make_entry(Op::kStageCommit, -1, 0, tag, std::move(payload))));
    MaybeCrash(crash_, point);
    return OkStatus();
  };

  if (ledgered) {
    if (rec == nullptr) {
      ledger_->StartDay(days_run_);
      SIGMUND_RETURN_IF_ERROR(
          append(make_entry(Op::kDayStart, -1, 0, "", "")));
    }
    MaybeCrash(crash_, "day.start");
  }

  // --- Data placement: rebalance shards across cells and account the
  // migrated bytes (§IV-B1). Replay: shard migration is durable, so a
  // committed stage restores the placement map and skips the move.
  if (!options_.placement.cells.empty()) {
    obs::Span span = tracer_->StartSpan("placement");
    if (const std::string* payload = stage_committed("placement")) {
      if (!DecodeShardHomes(*payload, &shard_homes_)) {
        return InternalError("ledger: undecodable placement payload");
      }
      ++units_skipped;
    } else {
      DataPlacementPlanner placement_planner(fs_, options_.placement);
      DataPlacementPlanner::Plan placement =
          placement_planner.PlanPlacement(registry_);
      int64_t bytes_before = transfer_ledger_.total_bytes();
      SIGMUND_RETURN_IF_ERROR(placement_planner.Materialize(
          registry_, placement, shard_homes_, &transfer_ledger_,
          options_.sfs_retry, &io_));
      report.shard_bytes_moved =
          transfer_ledger_.total_bytes() - bytes_before;
      shard_homes_ = std::move(placement.home_cell);
      SIGMUND_RETURN_IF_ERROR(commit_stage(
          "placement", EncodeShardHomes(shard_homes_), "placement.done"));
    }
    end_stage(span, "placement");
  }

  // --- Data-plane sentry (DESIGN.md §12): profile every retailer's feed
  // and judge it before any training is planned. Quarantined retailers
  // are cut out of the sweep, inference, and index rebuild below; they
  // keep serving their last-known-good batch/index until a later feed
  // passes. Replay: Observe mutates sentry state, so the stage re-runs
  // (deterministic from the snapshot-restored state) and a committed
  // entry only cross-checks the verdict set.
  std::set<data::RetailerId> quarantined;
  std::string dataqual_json;
  if (sentry_ != nullptr) {
    obs::Span span = tracer_->StartSpan("dataqual");
    std::string retailers_json;
    for (data::RetailerId id : registry_.Ids()) {
      StatusOr<const data::RetailerData*> data = registry_.Get(id);
      if (!data.ok()) continue;
      const dataqual::FeedProfile feed_profile =
          dataqual::BuildFeedProfile(**data);
      const dataqual::DataSentry::Observation observation =
          sentry_->Observe(feed_profile);
      if (observation.verdict == dataqual::DataSentry::Verdict::kQuarantine) {
        quarantined.insert(id);
        SIGLOG(WARNING) << "dataqual quarantined retailer " << id << " ("
                        << feed_profile.ToString() << ")";
        for (const dataqual::DataSentry::Finding& finding :
             observation.findings) {
          SIGLOG(WARNING) << "  " << finding.ToString();
        }
      } else if (observation.released) {
        SIGLOG(INFO) << "dataqual released retailer " << id
                     << " from quarantine";
      }
      // The profile JSON only carries non-pass verdicts: at 10k retailers
      // a per-retailer dump would dwarf the rest of the profile.
      if (observation.verdict != dataqual::DataSentry::Verdict::kPass ||
          observation.released) {
        std::string findings_json;
        for (const dataqual::DataSentry::Finding& finding :
             observation.findings) {
          if (!findings_json.empty()) findings_json += ",";
          findings_json += StrFormat(
              "{\"check\":\"%s\",\"severity\":\"%s\",\"value\":%.6f,"
              "\"threshold\":%.6f}",
              obs::JsonEscape(finding.check).c_str(),
              dataqual::VerdictName(finding.severity), finding.value,
              finding.threshold);
        }
        if (!retailers_json.empty()) retailers_json += ",";
        retailers_json += StrFormat(
            "\"%d\":{\"verdict\":\"%s\",\"released\":%s,\"findings\":[%s]}",
            id, dataqual::VerdictName(observation.verdict),
            observation.released ? "true" : "false", findings_json.c_str());
      }
    }
    report.quarantined_retailers = sentry_->QuarantinedCount();
    dataqual_json = StrFormat(
        "{\"quarantined_retailers\":%d,\"retailers\":{%s}}",
        report.quarantined_retailers, retailers_json.c_str());
    if (const std::string* payload = stage_committed("dataqual")) {
      if (JoinIds(quarantined) != *payload) {
        return InternalError(
            "ledger: dataqual replay diverged from committed verdicts");
      }
    } else {
      SIGMUND_RETURN_IF_ERROR(
          commit_stage("dataqual", JoinIds(quarantined), "dataqual.done"));
    }
    end_stage(span, "dataqual");
  }

  // --- Plan the sweep. Replay: pure function of restored state, so it
  // re-runs and cross-checks a fingerprint against the committed one.
  const bool periodic_restart =
      options_.full_sweep_every_days > 0 && days_run_ > 0 &&
      days_run_ % options_.full_sweep_every_days == 0;
  const bool full =
      previous_results_.empty() || force_full_sweep_ || periodic_restart;
  force_full_sweep_ = false;
  report.full_sweep = full;

  SweepPlanner planner(options_.sweep);
  std::vector<ConfigRecord> plan;
  {
    obs::Span span = tracer_->StartSpan("plan_sweep");
    if (full) {
      plan = planner.PlanFullSweep(registry_);
    } else {
      plan = planner.PlanIncrementalSweep(registry_, previous_results_);
    }
    // Quarantined retailers train nothing today: their last-good models
    // keep serving, and their previous sweep results are carried forward
    // (below) so the release day warm-starts instead of re-gridding.
    if (!quarantined.empty()) {
      std::erase_if(plan, [&](const ConfigRecord& record) {
        return quarantined.count(record.retailer) > 0;
      });
    }
    if (!full) {
      // Count retailers that got a full grid (new sign-ups).
      std::map<data::RetailerId, int> per_retailer;
      for (const ConfigRecord& record : plan) ++per_retailer[record.retailer];
      for (const auto& [retailer, count] : per_retailer) {
        if (count > options_.sweep.incremental_top_k) ++report.new_retailers;
      }
    }
    const std::string fingerprint = StrFormat(
        "full=%d;n=%d;fp=%llu", full ? 1 : 0, static_cast<int>(plan.size()),
        static_cast<unsigned long long>(FingerprintPlan(plan)));
    if (const std::string* payload = stage_committed("plan_sweep")) {
      if (fingerprint != *payload) {
        return InternalError(
            "ledger: sweep plan replay diverged from committed fingerprint");
      }
    } else {
      SIGMUND_RETURN_IF_ERROR(
          commit_stage("plan_sweep", fingerprint, "plan_sweep.done"));
    }
    end_stage(span, "plan_sweep");
  }

  // --- Train: one MapReduce, or one per cell when data placement routes
  // each retailer's work to the cell holding its shard (§IV-B1).
  // Replay: the committed payload carries every trained ConfigRecord, so
  // the resumed run restores the results and skips the MapReduce — the
  // big recovery-time win (models and checkpoints are already durable).
  obs::Span train_span = tracer_->StartSpan("train");
  StatusOr<std::vector<ConfigRecord>> results = std::vector<ConfigRecord>();
  // Drops the train-stage undo copies (below); idempotent, called from
  // both the commit path and the replay path so a crash between the
  // commit append and the cleanup converges on resume.
  auto clear_train_undo = [&]() -> Status {
    for (const ConfigRecord& record : plan) {
      SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(record.model_path + ".prev"));
    }
    return OkStatus();
  };
  if (const std::string* payload = stage_committed("train")) {
    results = DecodeResults(*payload);
    if (!results.ok()) return results.status();
    SIGMUND_RETURN_IF_ERROR(clear_train_undo());
    ++units_skipped;
  } else {
    if (ledgered) {
      // Undo log (DESIGN.md §13): incremental records warm-start from —
      // and then overwrite — yesterday's model files, so training is not
      // idempotent once it starts publishing. Before the first model
      // write, copy every file today's plan will overwrite aside; a
      // resumed run whose train stage never committed restores them
      // first, so its re-run reads exactly the bytes the crashed attempt
      // read and trains bit-identically.
      if (stage_committed("train_undo") != nullptr) {
        for (const ConfigRecord& record : plan) {
          const std::string prev = record.model_path + ".prev";
          StatusOr<std::string> bytes =
              RetryWithPolicy<std::string>(options_.sfs_retry, &io_.retry,
                                           [&] { return fs_->Read(prev); });
          if (bytes.ok()) {
            SIGMUND_RETURN_IF_ERROR(
                RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
                  return fs_->Write(record.model_path, *bytes);
                }));
          } else if (bytes.status().code() == StatusCode::kNotFound) {
            // No undo copy means the file did not exist when the crashed
            // attempt started; a warm-start record must see it absent
            // again or it would warm from the half-published model.
            if (record.warm_start) {
              SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(record.model_path));
            }
          } else {
            return bytes.status();
          }
        }
        // A mid-train crash can also strand per-task checkpoints; a
        // resumed task would warm-resume from them instead of training
        // from scratch, diverging from the uninterrupted run.
        StatusOr<std::vector<std::string>> stale =
            RetryWithPolicy<std::vector<std::string>>(
                options_.sfs_retry, &io_.retry,
                [&] { return fs_->List("checkpoints/"); });
        SIGMUND_RETURN_IF_ERROR(stale.status());
        for (const std::string& path : *stale) {
          SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(path));
        }
      } else {
        for (const ConfigRecord& record : plan) {
          StatusOr<std::string> bytes = RetryWithPolicy<std::string>(
              options_.sfs_retry, &io_.retry,
              [&] { return fs_->Read(record.model_path); });
          if (!bytes.ok()) {
            if (bytes.status().code() == StatusCode::kNotFound) continue;
            return bytes.status();
          }
          SIGMUND_RETURN_IF_ERROR(
              RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
                return fs_->Write(record.model_path + ".prev", *bytes);
              }));
        }
        SIGMUND_RETURN_IF_ERROR(
            commit_stage("train_undo", "", "train.undo_logged"));
      }
    }
    results = [&] {
      // All training counters (checkpoints, preemptions, restores,
      // retries, corruptions, ...) reach the report through the registry
      // mirrors the jobs maintain — no per-job bookkeeping here.
      if (!options_.placement.cells.empty()) {
        MultiCellTrainingJob::Options multi_options;
        multi_options.cells = options_.placement.cells;
        multi_options.per_cell = options_.training;
        multi_options.per_cell.metrics = metrics_;
        multi_options.per_cell.tracer = tracer_;
        multi_options.per_cell.clock = clock_;
        MultiCellTrainingJob training(fs_, &registry_, multi_options);
        return training.Run(plan, shard_homes_);
      }
      TrainingJob::Options training_options = options_.training;
      training_options.metrics = metrics_;
      training_options.tracer = tracer_;
      training_options.clock = clock_;
      TrainingJob training(fs_, &registry_, training_options);
      return training.Run(plan);
    }();
    if (ledgered) MaybeCrash(crash_, "train.ran");
    if (results.ok()) {
      SIGMUND_RETURN_IF_ERROR(
          commit_stage("train", EncodeResults(*results), "train.done"));
      if (ledgered) {
        SIGMUND_RETURN_IF_ERROR(clear_train_undo());
        MaybeCrash(crash_, "train.undo_cleared");
      }
    }
  }
  end_stage(train_span, "train");
  if (!results.ok()) return results.status();
  report.models_trained = static_cast<int>(results->size());

  // Persist sweep results per retailer (debuggability). Replay: the
  // writes are idempotent whole-file overwrites; a committed stage skips
  // them outright.
  {
    obs::Span span = tracer_->StartSpan("persist_sweep_results");
    if (stage_committed("persist_sweep") != nullptr) {
      ++units_skipped;
    } else {
      std::map<data::RetailerId, std::string> blobs;
      for (const ConfigRecord& record : *results) {
        blobs[record.retailer] += record.Serialize();
        blobs[record.retailer] += '\n';
      }
      for (const auto& [retailer, blob] : blobs) {
        // Debug artifact: plain text (not framed) so it stays greppable,
        // but still retried through transient storage errors.
        const std::string path = SweepResultPath(retailer);
        const std::string& data = blob;
        SIGMUND_RETURN_IF_ERROR(
            RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
              return fs_->Write(path, data);
            }));
      }
      SIGMUND_RETURN_IF_ERROR(
          commit_stage("persist_sweep", "", "persist_sweep.done"));
    }
    end_stage(span, "persist_sweep_results");
  }

  // --- Model selection + quality guardrail. Replay: the best-model
  // copies are durable, so a committed stage restores best_map /
  // degraded / mean MAP from the payload and skips the copies.
  std::map<data::RetailerId, double> best_map;
  std::set<data::RetailerId> degraded;
  {
    obs::Span span = tracer_->StartSpan("select_models");
    if (const std::string* payload = stage_committed("select_models")) {
      if (!DecodeSelect(*payload, &report.mean_best_map, &best_map,
                        &degraded)) {
        return InternalError("ledger: undecodable select_models payload");
      }
      report.degraded_retailers = static_cast<int>(degraded.size());
      ++units_skipped;
    } else {
      SIGMUND_RETURN_IF_ERROR(
          SelectBestModels(*results, &report, &best_map, &degraded));
      report.degraded_retailers = static_cast<int>(degraded.size());
      // Mirrored so the degradation shows up in RunProfile snapshots.
      if (!degraded.empty()) {
        metrics_->GetCounter("pipeline_degraded_retailers_total")
            ->Add(static_cast<int64_t>(degraded.size()));
      }
      if (ledgered) MaybeCrash(crash_, "select_models.ran");
      SIGMUND_RETURN_IF_ERROR(commit_stage(
          "select_models",
          EncodeSelect(report.mean_best_map, best_map, degraded),
          "select_models.done"));
    }
    end_stage(span, "select_models");
  }
  // Quarantined retailers trained nothing, so today's results carry no
  // records for them. Splice their previous records forward: without
  // them, the release day would plan a full grid (cold start) instead of
  // warm-starting from the last-good checkpoint.
  std::vector<ConfigRecord> carried;
  if (!quarantined.empty()) {
    for (const ConfigRecord& record : previous_results_) {
      if (quarantined.count(record.retailer) > 0) carried.push_back(record);
    }
  }
  previous_results_ = std::move(results).value();
  previous_results_.insert(previous_results_.end(),
                           std::make_move_iterator(carried.begin()),
                           std::make_move_iterator(carried.end()));
  // A quarantined retailer is degraded for rollout purposes: even if a
  // fresh artifact for it existed, the serving planes below would keep
  // its previous version.
  degraded.insert(quarantined.begin(), quarantined.end());

  // Quality guardrail. Replay: Record mutates the monitor, so the stage
  // re-runs (deterministic from the snapshot-restored baselines) and a
  // committed entry cross-checks the hold-back set.
  std::set<data::RetailerId> hold_back;
  if (options_.guard_quality) {
    obs::Span span = tracer_->StartSpan("quality_guard");
    for (const auto& [retailer, map_at_10] : best_map) {
      if (monitor_.Record(retailer, map_at_10) ==
          QualityMonitor::Verdict::kRegressed) {
        hold_back.insert(retailer);
        SIGLOG(WARNING) << "retailer " << retailer
                        << " regressed: map=" << map_at_10
                        << " trailing best=" << monitor_.TrailingBest(retailer)
                        << "; keeping previous recommendations";
      }
    }
    report.quality_regressions = static_cast<int>(hold_back.size());
    if (const std::string* payload = stage_committed("quality_guard")) {
      if (JoinIds(hold_back) != *payload) {
        return InternalError(
            "ledger: quality-guard replay diverged from committed verdicts");
      }
    } else {
      SIGMUND_RETURN_IF_ERROR(commit_stage("quality_guard",
                                           JoinIds(hold_back),
                                           "quality_guard.done"));
    }
    end_stage(span, "quality_guard");
  }

  // --- Inference. Counters flow through the registry, like training.
  // Replay: batch files are durable, so a committed stage restores the
  // materialized-retailer list and skips the MapReduce.
  obs::Span inference_span = tracer_->StartSpan("inference");
  // Quarantined retailers are excluded: no fresh batch is materialized,
  // so the store and retrieval loops below never see them and their
  // last-known-good versions keep serving untouched.
  std::vector<data::RetailerId> serve_ids = registry_.Ids();
  if (!quarantined.empty()) {
    std::erase_if(serve_ids, [&](data::RetailerId id) {
      return quarantined.count(id) > 0;
    });
  }
  std::vector<data::RetailerId> materialized_ids;
  if (const std::string* payload = stage_committed("inference")) {
    if (!DecodeIdList(*payload, &materialized_ids)) {
      return InternalError("ledger: undecodable inference payload");
    }
    ++units_skipped;
    end_stage(inference_span, "inference");
  } else {
    InferenceJob::Options inference_options = options_.inference;
    inference_options.metrics = metrics_;
    inference_options.tracer = tracer_;
    inference_options.clock = clock_;
    InferenceJob inference(fs_, &registry_, inference_options);
    auto recommendations = inference.Run(serve_ids);
    end_stage(inference_span, "inference");
    if (!recommendations.ok()) return recommendations.status();
    for (const auto& [retailer, recs] : *recommendations) {
      (void)recs;
      materialized_ids.push_back(retailer);
    }
    if (ledgered) MaybeCrash(crash_, "inference.ran");
    SIGMUND_RETURN_IF_ERROR(commit_stage(
        "inference", EncodeIdList(materialized_ids), "inference.done"));
  }

  // --- Safe rollout into the serving plane (DESIGN.md §7). For each
  // retailer that passed the offline gates: stage the new batch on the
  // primary replica (previous version keeps serving), canary it on
  // simulated live traffic when configured, then either activate
  // (pointer flip) and cut the follower replicas over one at a time, or
  // discard the staged version. Regressed and degraded retailers keep
  // serving the previous batch — a degraded retailer with no previous
  // batch still loads its fresh one, so availability never drops below
  // 100%. A batch that fails its checksum is rejected and the retailer
  // keeps its previous recommendations; a bad refresh never takes down
  // serving.
  //
  // Ledger mode turns each retailer into one journaled unit: the day
  // batch is copied to an immutable versioned file (two-phase: tmp +
  // rename) under a StageIntent, the canary verdict is logged before it
  // is acted on, and exactly one of Activate / Discard commits the unit.
  obs::Span store_span = tracer_->StartSpan("store_load");
  serving::RecommendationStore* primary = store_group_->primary();
  if (store_group_->num_replicas() > 1) {
    // Refresh replica health before cutting over: live replicas
    // heartbeat through the (possibly fault-injected) SFS, probes read
    // the heartbeats back.
    SIGMUND_RETURN_IF_ERROR(
        store_group_->WriteHeartbeats(fs_, options_.sfs_retry));
    store_group_->ProbeReplicas(*fs_, options_.sfs_retry);
  }
  for (data::RetailerId retailer : materialized_ids) {
    if ((hold_back.count(retailer) > 0 || degraded.count(retailer) > 0) &&
        primary->RetailerVersion(retailer) > 0) {
      continue;
    }
    if (!ledgered) {
      // Pre-ledger path, byte-for-byte: stage straight off the day batch
      // file and resolve in place.
      const std::string path = RecommendationPath(retailer);
      StatusOr<int64_t> staged = primary->StageRetailerFromFile(
          retailer, *fs_, path, options_.sfs_retry, &io_);
      if (!staged.ok()) {
        if (staged.status().code() == StatusCode::kDataLoss) {
          // Counted through serving_batch_loads_total{outcome=rejected}.
          SIGLOG(WARNING) << "rejecting corrupt recommendation batch for "
                          << "retailer " << retailer << ": "
                          << staged.status().ToString();
          continue;
        }
        return staged.status();
      }
      if (options_.canary.enabled && primary->RetailerVersion(retailer) > 0) {
        StatusOr<const data::RetailerData*> retailer_data =
            registry_.Get(retailer);
        if (retailer_data.ok()) {
          const CanaryController::Outcome canary = canary_->Evaluate(
              retailer, *primary, *staged, **retailer_data, days_run_);
          if (canary.verdict == CanaryController::Verdict::kRolledBack) {
            SIGLOG(WARNING) << "canary rolled back batch v" << *staged
                            << " for retailer " << retailer
                            << ": canary_ctr=" << canary.CanaryCtr()
                            << " control_ctr=" << canary.ControlCtr()
                            << "; keeping previous recommendations";
            SIGMUND_RETURN_IF_ERROR(
                primary->DiscardVersion(retailer, *staged));
            continue;
          }
        }
      }
      SIGMUND_RETURN_IF_ERROR(primary->ActivateVersion(retailer, *staged));
      SIGMUND_RETURN_IF_ERROR(store_group_->CutoverFollowersFromFile(
          retailer, *fs_, path, *staged, options_.sfs_retry, &io_));
      continue;
    }

    // Ledgered unit. Already committed (this process or the one that
    // crashed): the recovery rehydration has the store where the commit
    // says it should be.
    if (rec != nullptr && (rec->batch_activated.count(retailer) > 0 ||
                           rec->batch_discarded.count(retailer) > 0)) {
      ++units_skipped;
      continue;
    }
    const int64_t version = primary->NextVersion(retailer);
    const std::string vpath = RecommendationVersionPath(retailer, version);
    StatusOr<std::string> raw =
        RetryWithPolicy<std::string>(options_.sfs_retry, &io_.retry, [&] {
          return fs_->Read(RecommendationPath(retailer));
        });
    if (!raw.ok()) return raw.status();
    SIGMUND_RETURN_IF_ERROR(append(
        make_entry(Op::kBatchStageIntent, retailer, version, "", vpath)));
    MaybeCrash(crash_, "batch.intent");
    const std::string tmp = TmpPath(vpath);
    SIGMUND_RETURN_IF_ERROR(
        RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
          return fs_->Write(tmp, *raw);
        }));
    MaybeCrash(crash_, "batch.tmp_written");
    SIGMUND_RETURN_IF_ERROR(
        RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
          return fs_->Rename(tmp, vpath);
        }));
    StatusOr<int64_t> staged = primary->StageRetailerFromFile(
        retailer, *fs_, vpath, options_.sfs_retry, &io_, version);
    MaybeCrash(crash_, "batch.staged");
    if (!staged.ok()) {
      if (staged.status().code() != StatusCode::kDataLoss) {
        return staged.status();
      }
      SIGLOG(WARNING) << "rejecting corrupt recommendation batch for "
                      << "retailer " << retailer << ": "
                      << staged.status().ToString();
      SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(vpath));
      SIGMUND_RETURN_IF_ERROR(append(
          make_entry(Op::kBatchDiscard, retailer, version, "corrupt", "")));
      continue;
    }
    std::string verdict = "promoted";
    if (options_.canary.enabled && primary->RetailerVersion(retailer) > 0) {
      const std::string* replayed = nullptr;
      if (rec != nullptr) {
        auto it = rec->batch_canary.find({retailer, version});
        if (it != rec->batch_canary.end()) replayed = &it->second;
      }
      if (replayed != nullptr) {
        // The crashed process already drew this verdict and made it
        // durable; reuse it rather than re-simulating.
        verdict = *replayed;
      } else {
        StatusOr<const data::RetailerData*> retailer_data =
            registry_.Get(retailer);
        if (retailer_data.ok()) {
          const CanaryController::Outcome canary = canary_->Evaluate(
              retailer, *primary, version, **retailer_data, days_run_);
          if (canary.verdict == CanaryController::Verdict::kRolledBack) {
            verdict = "rolled_back";
            SIGLOG(WARNING) << "canary rolled back batch v" << version
                            << " for retailer " << retailer
                            << ": canary_ctr=" << canary.CanaryCtr()
                            << " control_ctr=" << canary.ControlCtr()
                            << "; keeping previous recommendations";
          }
        }
        SIGMUND_RETURN_IF_ERROR(append(
            make_entry(Op::kBatchCanary, retailer, version, verdict, "")));
      }
      MaybeCrash(crash_, "batch.canary_logged");
    }
    if (verdict == "rolled_back") {
      SIGMUND_RETURN_IF_ERROR(primary->DiscardVersion(retailer, version));
      SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(vpath));
      SIGMUND_RETURN_IF_ERROR(append(make_entry(
          Op::kBatchDiscard, retailer, version, "rolled_back", "")));
      MaybeCrash(crash_, "batch.discarded");
      continue;
    }
    SIGMUND_RETURN_IF_ERROR(primary->ActivateVersion(retailer, version));
    SIGMUND_RETURN_IF_ERROR(store_group_->CutoverFollowersFromFile(
        retailer, *fs_, vpath, version, options_.sfs_retry, &io_));
    SIGMUND_RETURN_IF_ERROR(
        append(make_entry(Op::kBatchActivate, retailer, version, "", "")));
    MaybeCrash(crash_, "batch.activated");
    SIGMUND_RETURN_IF_ERROR(
        RetireVersionFiles(StrFormat("recommendations/r%d.v", retailer),
                           primary->RetainedVersions(retailer)));
  }
  end_stage(store_span, "store_load");

  // --- Online retrieval plane (DESIGN.md §11): snapshot each retailer's
  // best model into a versioned ANN index artifact, publish it CRC-framed
  // through the same Stage/Activate flow as recommendation batches, and
  // gate activation with a retrieval-plane canary against the live
  // materialized plane. A corrupt artifact is rejected at stage time and
  // the previous index (or the materialized-only route) keeps serving.
  // Ledger mode journals each retailer's index exactly like a batch.
  if (options_.retrieval.enabled) {
    obs::Span retrieval_span = tracer_->StartSpan("retrieval_index");
    for (data::RetailerId retailer : materialized_ids) {
      if ((hold_back.count(retailer) > 0 || degraded.count(retailer) > 0) &&
          retrieval_reader_->RetailerVersion(retailer) > 0) {
        continue;
      }
      if (ledgered && rec != nullptr &&
          (rec->index_activated.count(retailer) > 0 ||
           rec->index_discarded.count(retailer) > 0)) {
        ++units_skipped;
        continue;
      }
      StatusOr<const data::RetailerData*> retailer_data =
          registry_.Get(retailer);
      if (!retailer_data.ok()) continue;
      StatusOr<std::string> model_bytes = sfs::ReadChecksummedFile(
          fs_, BestModelPath(retailer), options_.sfs_retry, &io_);
      if (!model_bytes.ok()) {
        // No (readable) best model — e.g. corrupt frame or a retailer
        // served purely from a previous day. The index just isn't
        // refreshed; never fail the run over it.
        if (model_bytes.status().code() == StatusCode::kDataLoss ||
            model_bytes.status().code() == StatusCode::kNotFound) {
          continue;
        }
        return model_bytes.status();
      }
      StatusOr<core::BprModel> model = core::BprModel::Deserialize(
          *model_bytes, &(*retailer_data)->catalog);
      if (!model.ok()) {
        SIGLOG(WARNING) << "retailer " << retailer
                        << ": best model undecodable, skipping index build: "
                        << model.status().ToString();
        continue;
      }
      retrieval::IndexArtifact artifact = retrieval::BuildArtifactFromModel(
          retailer, *model, options_.retrieval.ann);
      if (options_.retrieval.build_hook_for_testing) {
        options_.retrieval.build_hook_for_testing(retailer, &artifact);
      }
      StatusOr<int64_t> staged = 0;
      int64_t version = 0;
      std::string vpath;
      if (!ledgered) {
        const std::string index_path = retrieval::IndexArtifactPath(retailer);
        SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
            fs_, index_path, artifact.Serialize(), options_.sfs_retry,
            &io_));
        staged = retrieval_reader_->StageFromFile(
            retailer, *fs_, index_path, options_.sfs_retry, &io_);
        if (staged.ok()) version = *staged;
      } else {
        version = retrieval_reader_->NextVersion(retailer);
        vpath = retrieval::IndexArtifactVersionPath(retailer, version);
        SIGMUND_RETURN_IF_ERROR(append(make_entry(
            Op::kIndexStageIntent, retailer, version, "", vpath)));
        MaybeCrash(crash_, "index.intent");
        SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
            fs_, TmpPath(vpath), artifact.Serialize(), options_.sfs_retry,
            &io_));
        MaybeCrash(crash_, "index.tmp_written");
        SIGMUND_RETURN_IF_ERROR(
            RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
              return fs_->Rename(TmpPath(vpath), vpath);
            }));
        staged = retrieval_reader_->StageFromFile(
            retailer, *fs_, vpath, options_.sfs_retry, &io_, version);
        MaybeCrash(crash_, "index.staged");
      }
      if (!staged.ok()) {
        if (staged.status().code() == StatusCode::kDataLoss) {
          SIGLOG(WARNING) << "rejecting corrupt retrieval index for retailer "
                          << retailer << ": " << staged.status().ToString();
          metrics_
              ->GetCounter("retrieval_index_builds_total",
                           {{"outcome", "rejected"}})
              ->Add(1);
          if (ledgered) {
            SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(vpath));
            SIGMUND_RETURN_IF_ERROR(append(make_entry(
                Op::kIndexDiscard, retailer, version, "corrupt", "")));
          }
          continue;
        }
        return staged.status();
      }
      ++report.retrieval_indexes_built;
      metrics_
          ->GetCounter("retrieval_index_builds_total", {{"outcome", "ok"}})
          ->Add(1);
      std::string verdict = "promoted";
      if (retrieval_canary_ != nullptr) {
        const std::string* replayed = nullptr;
        if (ledgered && rec != nullptr) {
          auto it = rec->index_canary.find({retailer, version});
          if (it != rec->index_canary.end()) replayed = &it->second;
        }
        if (replayed != nullptr) {
          verdict = *replayed;
        } else {
          const CanaryController::Outcome canary =
              retrieval_canary_->Evaluate(retailer, *primary, version,
                                          **retailer_data, days_run_);
          if (canary.verdict == CanaryController::Verdict::kRolledBack) {
            verdict = "rolled_back";
            SIGLOG(WARNING) << "retrieval canary rolled back index v"
                            << version << " for retailer " << retailer
                            << ": canary_ctr=" << canary.CanaryCtr()
                            << " control_ctr=" << canary.ControlCtr()
                            << "; retailer stays on the materialized plane";
          }
          if (ledgered) {
            SIGMUND_RETURN_IF_ERROR(append(make_entry(
                Op::kIndexCanary, retailer, version, verdict, "")));
          }
        }
        if (ledgered) MaybeCrash(crash_, "index.canary_logged");
      }
      if (verdict == "rolled_back") {
        SIGMUND_RETURN_IF_ERROR(
            retrieval_reader_->DiscardVersion(retailer, version));
        if (ledgered) {
          SIGMUND_RETURN_IF_ERROR(DeleteVersionFile(vpath));
          SIGMUND_RETURN_IF_ERROR(append(make_entry(
              Op::kIndexDiscard, retailer, version, "rolled_back", "")));
          MaybeCrash(crash_, "index.discarded");
        }
        continue;
      }
      SIGMUND_RETURN_IF_ERROR(
          retrieval_reader_->ActivateVersion(retailer, version));
      if (ledgered) {
        SIGMUND_RETURN_IF_ERROR(append(
            make_entry(Op::kIndexActivate, retailer, version, "", "")));
        MaybeCrash(crash_, "index.activated");
        SIGMUND_RETURN_IF_ERROR(RetireVersionFiles(
            StrFormat("retrieval/r%d.v", retailer),
            retrieval_reader_->RetainedVersions(retailer)));
      }
    }
    end_stage(retrieval_span, "retrieval_index");
  }

  // --- Mirror chaos-layer fault totals into the registry. Self-
  // correcting: only the portion not already recorded (e.g. by a fault
  // injector wired live via SetMetrics) is added, so the registry's sum
  // across label sets always equals the injector's own total.
  if (options_.injected_faults != nullptr) {
    const int64_t recorded =
        metrics_->Snapshot().CounterValue("sfs_faults_injected_total");
    metrics_->GetCounter("sfs_faults_injected_total")
        ->Add(options_.injected_faults->total() - recorded);
  }

  // --- Day boundary (ledger mode): two-phase control-state snapshot,
  // then the kDayComplete marker, then retention. Order matters — a
  // crash before the rename leaves only a sweepable tmp, a crash before
  // kDayComplete resumes an all-committed day that replays to the same
  // bytes, a crash before retention is converged by the next boundary.
  if (ledgered) {
    obs::Span span = tracer_->StartSpan("commit_day");
    const ServiceSnapshot snapshot = BuildSnapshot();
    SIGMUND_RETURN_IF_ERROR(ledger_->WriteSnapshotTmp(snapshot.Serialize()));
    MaybeCrash(crash_, "day.snapshot_tmp");
    SIGMUND_RETURN_IF_ERROR(ledger_->CommitSnapshot(days_run_ + 1));
    MaybeCrash(crash_, "day.snapshot_committed");
    SIGMUND_RETURN_IF_ERROR(
        append(make_entry(Op::kDayComplete, -1, 0, "", "")));
    MaybeCrash(crash_, "day.complete");
    SIGMUND_RETURN_IF_ERROR(ledger_->RetireOldDays(days_run_));
    SIGMUND_RETURN_IF_ERROR(ledger_->RetireOldSnapshots(days_run_ + 1));
    end_stage(span, "commit_day");
    report.ledger_appends = ledger_->appends() - appends_before;
    report.replay_units_skipped = units_skipped;
    if (units_skipped > 0) {
      metrics_->GetCounter("pipeline_replay_units_skipped_total")
          ->Add(units_skipped);
    }
  }

  day_span.End();
  report.total_wall_micros = day_span.DurationMicros();

  // --- The report's counters are the run's registry deltas: everything
  // the jobs and I/O layers recorded between the two snapshots.
  const obs::RegistrySnapshot after = metrics_->Snapshot();
  auto delta = [&](std::string_view name, const obs::Labels& labels) {
    return after.CounterValue(name, labels) -
           before.CounterValue(name, labels);
  };
  const obs::Labels none;
  report.checkpoints_written = delta("training_checkpoints_written_total", none);
  report.preemptions = delta("training_preemptions_total", none);
  report.restored_from_checkpoint = delta("training_restores_total", none);
  report.corrupt_checkpoints_skipped =
      delta("training_corrupt_checkpoints_skipped_total", none);
  report.simulated_train_micros = delta("training_simulated_micros_total", none);
  report.model_loads = delta("inference_model_loads_total", none);
  report.items_scored = delta("inference_items_scored_total", none);
  report.map_attempts =
      delta("mapreduce_task_attempts_total", {{"phase", "map"}});
  report.map_failures =
      delta("mapreduce_task_failures_total", {{"phase", "map"}});
  report.reduce_attempts =
      delta("mapreduce_task_attempts_total", {{"phase", "reduce"}});
  report.reduce_failures =
      delta("mapreduce_task_failures_total", {{"phase", "reduce"}});
  report.sfs_retries = delta("sfs_retries_total", none);
  report.corruptions_detected = delta("sfs_corruptions_detected_total", none);
  report.corruptions_healed = delta("sfs_corruptions_healed_total", none);
  report.corrupt_batches_rejected =
      delta("serving_batch_loads_total", {{"outcome", "rejected"}});
  report.faults_injected = delta("sfs_faults_injected_total", none);
  report.evictions = delta("training_evictions_total", none);
  report.eviction_grace_checkpoints =
      delta("training_eviction_grace_checkpoints_total", none);
  report.hard_evictions = delta("training_hard_evictions_total", none);
  report.priority_escalations =
      delta("training_priority_escalations_total", none);
  report.preemption_budget_exhausted =
      delta("training_preemption_budget_exhausted_total", none);
  report.deadline_exceeded = delta("training_deadline_exceeded_total", none);
  report.map_backup_attempts =
      delta("mapreduce_backup_attempts_total", none);
  report.map_backups_won = delta("mapreduce_backups_won_total", none);
  // Canary verdicts are split by plane: the batch ladder and the online
  // retrieval ladder roll out (and back) independently.
  report.canary_promotions = delta(
      "canary_verdicts_total", {{"plane", "batch"}, {"verdict", "promoted"}});
  report.canary_rollbacks =
      delta("canary_verdicts_total",
            {{"plane", "batch"}, {"verdict", "rolled_back"}});
  report.retrieval_promotions =
      delta("canary_verdicts_total",
            {{"plane", "retrieval"}, {"verdict", "promoted"}});
  report.retrieval_rollbacks =
      delta("canary_verdicts_total",
            {{"plane", "retrieval"}, {"verdict", "rolled_back"}});
  report.corrupt_indexes_rejected =
      delta("retrieval_index_builds_total", {{"outcome", "rejected"}});
  report.replica_cutovers =
      delta("serving_replica_cutovers_total", {{"outcome", "ok"}});
  report.replica_cutovers_skipped =
      delta("serving_replica_cutovers_total", {{"outcome", "skipped_dead"}});
  // Serving health is cumulative at snapshot time: requests arrive
  // between daily runs, so a per-run delta would always read zero.
  report.breaker_trips = after.CounterValue("serving_breaker_trips_total", none);
  report.fallbacks_served = after.CounterValue("serving_fallbacks_total", none);
  report.replica_failovers =
      after.CounterValue("serving_replica_failovers_total", none);
  report.hedged_reads =
      after.CounterValue("serving_hedged_reads_total", none);
  report.requests_shed = after.CounterValue("serving_shed_total", none);
  report.brownout_serves =
      after.CounterValue("serving_brownout_total", none);
  report.hedges_suppressed =
      after.CounterValue("serving_hedges_suppressed_total", none);
  report.retry_budget_exhausted =
      after.CounterValue("serving_retry_budget_exhausted_total", none);
  report.canary_samples_ignored =
      delta("canary_samples_ignored_total", none);
  // Data-plane sentry verdicts, per-run deltas like the rest of the
  // pipeline counters.
  report.feed_quarantines =
      delta("dataqual_verdicts_total", {{"verdict", "quarantine"}});
  report.feed_warns = delta("dataqual_verdicts_total", {{"verdict", "warn"}});
  report.quarantine_releases = delta("dataqual_releases_total", none);
  // Per-path request counts: cumulative like the rest of serving health
  // (traffic arrives between runs, so per-run deltas would read zero).
  report.requests_materialized =
      after.CounterValue("serving_requests_total", {{"path", "materialized"}});
  report.requests_online_retrieval = after.CounterValue(
      "serving_requests_total", {{"path", "online_retrieval"}});
  report.requests_fallback =
      after.CounterValue("serving_requests_total", {{"path", "fallback"}});
  // Orphan GC is cumulative (startup GC happens before any run; a delta
  // would always be zero) and deliberately absent from ToString.
  for (const char* kind : {"tmp", "batch", "index"}) {
    report.orphans_gc +=
        after.CounterValue("pipeline_orphans_gc_total", {{"kind", kind}});
  }

  // --- SLO evaluation: burn rates over the run-end snapshot. Runs after
  // the pipeline finished, so it is passive by construction.
  if (options_.slo != nullptr) {
    options_.slo->Evaluate(after, clock_->NowMicros());
    report.slo_alerts_fired = options_.slo->FiredTotal();
    report.slo_alerts_resolved = options_.slo->ResolvedTotal();
    report.slo_objectives_firing = options_.slo->FiringCount();
    report.slo_json = options_.slo->ToJson();
  }

  // --- Machine-readable run profile: this run's span tree + the full
  // metrics snapshot.
  obs::RunProfile profile = obs::BuildRunProfile(
      StrFormat("day%d", days_run_), *tracer_, day_span.id(), after);
  profile.stages = report.stage_wall_micros;
  if (!report.slo_json.empty()) profile.slo_json = report.slo_json;
  if (!dataqual_json.empty()) profile.dataqual_json = dataqual_json;
  report.profile_json = profile.ToJson();

  recovery_.reset();
  ++days_run_;
  return report;
}

}  // namespace sigmund::pipeline
