#include "pipeline/service.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "pipeline/config_record.h"

namespace sigmund::pipeline {

std::string DailyReport::ToString() const {
  return StrFormat(
      "%s sweep: retailers=%d (new=%d) models=%d mean_best_map=%.4f "
      "checkpoints=%lld preemptions=%lld restores=%lld model_loads=%lld "
      "items=%lld map_attempts=%lld map_failures=%lld "
      "quality_regressions=%d shard_bytes_moved=%lld",
      full_sweep ? "full" : "incremental", retailers, new_retailers,
      models_trained, mean_best_map,
      static_cast<long long>(checkpoints_written),
      static_cast<long long>(preemptions),
      static_cast<long long>(restored_from_checkpoint),
      static_cast<long long>(model_loads),
      static_cast<long long>(items_scored),
      static_cast<long long>(map_attempts),
      static_cast<long long>(map_failures), quality_regressions,
      static_cast<long long>(shard_bytes_moved));
}

void SigmundService::UpsertRetailer(const data::RetailerData* data) {
  registry_.Upsert(data);
}

Status SigmundService::SelectBestModels(
    const std::vector<ConfigRecord>& results, DailyReport* report,
    std::map<data::RetailerId, double>* best_map) {
  std::map<data::RetailerId, const ConfigRecord*> best;
  for (const ConfigRecord& record : results) {
    if (!record.trained) continue;
    auto [it, inserted] = best.emplace(record.retailer, &record);
    if (!inserted && record.map_at_10 > it->second->map_at_10) {
      it->second = &record;
    }
  }
  double map_sum = 0.0;
  for (const auto& [retailer, record] : best) {
    StatusOr<std::string> bytes = fs_->Read(record->model_path);
    if (!bytes.ok()) return bytes.status();
    SIGMUND_RETURN_IF_ERROR(fs_->Write(BestModelPath(retailer), *bytes));
    map_sum += record->map_at_10;
    (*best_map)[retailer] = record->map_at_10;
  }
  if (!best.empty()) {
    report->mean_best_map = map_sum / static_cast<double>(best.size());
  }
  return OkStatus();
}

StatusOr<DailyReport> SigmundService::RunDaily() {
  DailyReport report;
  report.retailers = registry_.size();
  if (registry_.size() == 0) {
    return FailedPreconditionError("no retailers registered");
  }

  // --- Data placement: rebalance shards across cells and account the
  // migrated bytes (§IV-B1).
  if (!options_.placement.cells.empty()) {
    DataPlacementPlanner placement_planner(fs_, options_.placement);
    DataPlacementPlanner::Plan placement =
        placement_planner.PlanPlacement(registry_);
    int64_t before = transfer_ledger_.total_bytes();
    SIGMUND_RETURN_IF_ERROR(placement_planner.Materialize(
        registry_, placement, shard_homes_, &transfer_ledger_));
    report.shard_bytes_moved = transfer_ledger_.total_bytes() - before;
    shard_homes_ = std::move(placement.home_cell);
  }

  // --- Plan the sweep.
  const bool periodic_restart =
      options_.full_sweep_every_days > 0 && days_run_ > 0 &&
      days_run_ % options_.full_sweep_every_days == 0;
  const bool full =
      previous_results_.empty() || force_full_sweep_ || periodic_restart;
  force_full_sweep_ = false;
  report.full_sweep = full;

  SweepPlanner planner(options_.sweep);
  std::vector<ConfigRecord> plan;
  if (full) {
    plan = planner.PlanFullSweep(registry_);
  } else {
    plan = planner.PlanIncrementalSweep(registry_, previous_results_);
    // Count retailers that got a full grid (new sign-ups).
    std::map<data::RetailerId, int> per_retailer;
    for (const ConfigRecord& record : plan) ++per_retailer[record.retailer];
    for (const auto& [retailer, count] : per_retailer) {
      if (count > options_.sweep.incremental_top_k) ++report.new_retailers;
    }
  }

  // --- Train: one MapReduce, or one per cell when data placement routes
  // each retailer's work to the cell holding its shard (§IV-B1).
  StatusOr<std::vector<ConfigRecord>> results = [&] {
    if (!options_.placement.cells.empty()) {
      MultiCellTrainingJob::Options multi_options;
      multi_options.cells = options_.placement.cells;
      multi_options.per_cell = options_.training;
      MultiCellTrainingJob training(fs_, &registry_, multi_options);
      StatusOr<std::vector<ConfigRecord>> out =
          training.Run(plan, shard_homes_);
      for (const MultiCellTrainingJob::CellReport& cell :
           training.cell_reports()) {
        report.checkpoints_written += cell.checkpoints_written;
        report.preemptions += cell.preemptions;
      }
      return out;
    }
    TrainingJob training(fs_, &registry_, options_.training);
    StatusOr<std::vector<ConfigRecord>> out = training.Run(plan);
    report.checkpoints_written = training.stats().checkpoints_written.load();
    report.preemptions = training.stats().preemptions.load();
    report.restored_from_checkpoint =
        training.stats().restored_from_checkpoint.load();
    report.map_attempts = training.stats().mapreduce.map_attempts;
    report.map_failures = training.stats().mapreduce.map_failures;
    return out;
  }();
  if (!results.ok()) return results.status();
  report.models_trained = static_cast<int>(results->size());

  // Persist sweep results per retailer (debuggability).
  {
    std::map<data::RetailerId, std::string> blobs;
    for (const ConfigRecord& record : *results) {
      blobs[record.retailer] += record.Serialize();
      blobs[record.retailer] += '\n';
    }
    for (const auto& [retailer, blob] : blobs) {
      SIGMUND_RETURN_IF_ERROR(fs_->Write(SweepResultPath(retailer), blob));
    }
  }

  // --- Model selection + quality guardrail.
  std::map<data::RetailerId, double> best_map;
  SIGMUND_RETURN_IF_ERROR(SelectBestModels(*results, &report, &best_map));
  previous_results_ = std::move(results).value();

  std::set<data::RetailerId> hold_back;
  if (options_.guard_quality) {
    for (const auto& [retailer, map_at_10] : best_map) {
      if (monitor_.Record(retailer, map_at_10) ==
          QualityMonitor::Verdict::kRegressed) {
        hold_back.insert(retailer);
        SIGLOG(WARNING) << "retailer " << retailer
                        << " regressed: map=" << map_at_10
                        << " trailing best=" << monitor_.TrailingBest(retailer)
                        << "; keeping previous recommendations";
      }
    }
    report.quality_regressions = static_cast<int>(hold_back.size());
  }

  // --- Inference.
  InferenceJob inference(fs_, &registry_, options_.inference);
  auto recommendations = inference.Run(registry_.Ids());
  if (!recommendations.ok()) return recommendations.status();
  report.model_loads = inference.stats().model_loads.load();
  report.items_scored = inference.stats().items_scored.load();

  // --- Batch-load the serving store (regressed retailers keep serving
  // the previous batch).
  for (auto& [retailer, recs] : *recommendations) {
    if (hold_back.count(retailer) > 0 &&
        store_.RetailerVersion(retailer) > 0) {
      continue;
    }
    store_.LoadRetailer(retailer, std::move(recs));
  }

  ++days_run_;
  return report;
}

}  // namespace sigmund::pipeline
