#include "pipeline/service.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/model.h"
#include "pipeline/config_record.h"
#include "retrieval/artifact.h"

namespace sigmund::pipeline {

std::string DailyReport::ToString() const {
  std::string out = StrFormat(
      "%s sweep: retailers=%d (new=%d) models=%d mean_best_map=%.4f "
      "checkpoints=%lld preemptions=%lld restores=%lld model_loads=%lld "
      "items=%lld map_attempts=%lld map_failures=%lld "
      "reduce_attempts=%lld reduce_failures=%lld "
      "quality_regressions=%d shard_bytes_moved=%lld "
      "sfs_retries=%lld corruptions_detected=%lld corruptions_healed=%lld "
      "corrupt_checkpoints_skipped=%lld corrupt_batches_rejected=%lld "
      "faults_injected=%lld",
      full_sweep ? "full" : "incremental", retailers, new_retailers,
      models_trained, mean_best_map,
      static_cast<long long>(checkpoints_written),
      static_cast<long long>(preemptions),
      static_cast<long long>(restored_from_checkpoint),
      static_cast<long long>(model_loads),
      static_cast<long long>(items_scored),
      static_cast<long long>(map_attempts),
      static_cast<long long>(map_failures),
      static_cast<long long>(reduce_attempts),
      static_cast<long long>(reduce_failures), quality_regressions,
      static_cast<long long>(shard_bytes_moved),
      static_cast<long long>(sfs_retries),
      static_cast<long long>(corruptions_detected),
      static_cast<long long>(corruptions_healed),
      static_cast<long long>(corrupt_checkpoints_skipped),
      static_cast<long long>(corrupt_batches_rejected),
      static_cast<long long>(faults_injected));
  if (!stage_wall_micros.empty()) {
    out += StrFormat("\n  wall: total=%.1fms",
                     static_cast<double>(total_wall_micros) / 1000.0);
    for (const auto& [stage, micros] : stage_wall_micros) {
      out += StrFormat(" %s=%.1fms", stage.c_str(),
                       static_cast<double>(micros) / 1000.0);
    }
    if (simulated_train_micros > 0) {
      out += StrFormat(" (simulated_train=%.1fs)",
                       static_cast<double>(simulated_train_micros) / 1e6);
    }
  }
  out += StrFormat(
      "\n  churn: evictions=%lld grace_checkpoints=%lld hard=%lld "
      "escalations=%lld budget_exhausted=%lld deadline_exceeded=%lld "
      "degraded_retailers=%d backups=%lld backups_won=%lld "
      "breaker_trips=%lld fallbacks_served=%lld",
      static_cast<long long>(evictions),
      static_cast<long long>(eviction_grace_checkpoints),
      static_cast<long long>(hard_evictions),
      static_cast<long long>(priority_escalations),
      static_cast<long long>(preemption_budget_exhausted),
      static_cast<long long>(deadline_exceeded), degraded_retailers,
      static_cast<long long>(map_backup_attempts),
      static_cast<long long>(map_backups_won),
      static_cast<long long>(breaker_trips),
      static_cast<long long>(fallbacks_served));
  out += StrFormat(
      "\n  rollout: canary_promotions=%lld canary_rollbacks=%lld "
      "replica_cutovers=%lld cutovers_skipped=%lld failovers=%lld "
      "hedged_reads=%lld",
      static_cast<long long>(canary_promotions),
      static_cast<long long>(canary_rollbacks),
      static_cast<long long>(replica_cutovers),
      static_cast<long long>(replica_cutovers_skipped),
      static_cast<long long>(replica_failovers),
      static_cast<long long>(hedged_reads));
  out += StrFormat(
      "\n  retrieval: indexes_built=%d promotions=%lld rollbacks=%lld "
      "corrupt_rejected=%lld requests(materialized=%lld "
      "online_retrieval=%lld fallback=%lld)",
      retrieval_indexes_built, static_cast<long long>(retrieval_promotions),
      static_cast<long long>(retrieval_rollbacks),
      static_cast<long long>(corrupt_indexes_rejected),
      static_cast<long long>(requests_materialized),
      static_cast<long long>(requests_online_retrieval),
      static_cast<long long>(requests_fallback));
  out += StrFormat(
      "\n  overload: shed=%lld brownouts=%lld hedges_suppressed=%lld "
      "retry_budget_exhausted=%lld canary_ignored=%lld",
      static_cast<long long>(requests_shed),
      static_cast<long long>(brownout_serves),
      static_cast<long long>(hedges_suppressed),
      static_cast<long long>(retry_budget_exhausted),
      static_cast<long long>(canary_samples_ignored));
  out += StrFormat(
      "\n  dataqual: quarantined=%d feed_quarantines=%lld feed_warns=%lld "
      "releases=%lld",
      quarantined_retailers, static_cast<long long>(feed_quarantines),
      static_cast<long long>(feed_warns),
      static_cast<long long>(quarantine_releases));
  if (!slo_json.empty()) {
    out += StrFormat(
        "\n  slo: firing=%d fired=%lld resolved=%lld",
        slo_objectives_firing, static_cast<long long>(slo_alerts_fired),
        static_cast<long long>(slo_alerts_resolved));
  }
  return out;
}

SigmundService::SigmundService(sfs::SharedFileSystem* fs,
                               const Options& options)
    : fs_(fs), options_(options), monitor_(options.quality) {
  clock_ = options_.clock != nullptr ? options_.clock : RealClock::Get();
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.tracer != nullptr) {
    tracer_ = options_.tracer;
  } else {
    owned_tracer_ = std::make_unique<obs::Tracer>(clock_);
    tracer_ = owned_tracer_.get();
  }
  io_.SetMetrics(metrics_, clock_);
  monitor_.set_metrics(metrics_);
  if (options_.dataqual.enabled) {
    sentry_ = std::make_unique<dataqual::DataSentry>(
        options_.dataqual.sentry, metrics_);
  }
  store_group_ = std::make_unique<serving::ReplicatedStoreGroup>(
      options_.serving, metrics_);
  canary_ = std::make_unique<CanaryController>(options_.canary, metrics_);
  retrieval_reader_ = std::make_unique<retrieval::OnlineRetrievalReader>(
      options_.retrieval.reader, metrics_);
  if (options_.retrieval.enabled) {
    // The retrieval canary inherits the batch canary's thresholds and
    // oracle but gates the other plane: its canary arm reads the staged
    // ANN index, its control arm the live materialized plane — exactly
    // the comparison the A/B route will serve if the index activates.
    CanaryController::Options retrieval_canary = options_.canary;
    retrieval_canary.plane = "retrieval";
    retrieval_canary.serve_hook =
        [this](data::RetailerId retailer, const core::Context& context,
               int64_t version) {
          CanaryController::CanaryServe serve;
          StatusOr<std::vector<core::ScoredItem>> result =
              version != 0 ? retrieval_reader_->ServeContextAtVersion(
                                 retailer, context, version)
                           : store_group_->primary()->ServeContext(retailer,
                                                                   context);
          serve.status = result.status();
          if (result.ok()) serve.items = *std::move(result);
          return serve;
        };
    retrieval_canary_ =
        std::make_unique<CanaryController>(retrieval_canary, metrics_);
  }
}

void SigmundService::UpsertRetailer(const data::RetailerData* data) {
  registry_.Upsert(data);
}

Status SigmundService::SelectBestModels(
    const std::vector<ConfigRecord>& results, DailyReport* report,
    std::map<data::RetailerId, double>* best_map,
    std::set<data::RetailerId>* degraded) {
  std::map<data::RetailerId, const ConfigRecord*> best;
  for (const ConfigRecord& record : results) {
    if (!record.trained) continue;
    auto [it, inserted] = best.emplace(record.retailer, &record);
    if (!inserted && record.map_at_10 > it->second->map_at_10) {
      it->second = &record;
    }
  }
  double map_sum = 0.0;
  for (const auto& [retailer, record] : best) {
    if (record->degraded) degraded->insert(retailer);
    // Unwrap + CRC-check the trained model, then re-frame it at the best-
    // model path with a read-back-verified write: a torn copy can never
    // become the model inference loads.
    StatusOr<std::string> bytes = sfs::ReadChecksummedFile(
        fs_, record->model_path, options_.sfs_retry, &io_);
    if (!bytes.ok()) return bytes.status();
    SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
        fs_, BestModelPath(retailer), *bytes, options_.sfs_retry, &io_));
    map_sum += record->map_at_10;
    (*best_map)[retailer] = record->map_at_10;
  }
  if (!best.empty()) {
    report->mean_best_map = map_sum / static_cast<double>(best.size());
  }
  return OkStatus();
}

StatusOr<DailyReport> SigmundService::RunDaily() {
  DailyReport report;
  report.retailers = registry_.size();
  if (registry_.size() == 0) {
    return FailedPreconditionError("no retailers registered");
  }

  // The report's counter fields are per-run deltas of registry counters:
  // snapshot now, instrument everything, snapshot again at the end.
  const obs::RegistrySnapshot before = metrics_->Snapshot();
  obs::Span day_span =
      tracer_->StartSpan(StrFormat("run_daily/day%d", days_run_));
  // Ends a stage span and records its wall time in the report and in the
  // pipeline_stage_micros{stage=...} histogram.
  auto end_stage = [&](obs::Span& span, const char* stage) {
    span.End();
    report.stage_wall_micros.emplace_back(stage, span.DurationMicros());
    metrics_->GetHistogram("pipeline_stage_micros", {{"stage", stage}})
        ->Observe(static_cast<double>(span.DurationMicros()));
  };

  // --- Data placement: rebalance shards across cells and account the
  // migrated bytes (§IV-B1).
  if (!options_.placement.cells.empty()) {
    obs::Span span = tracer_->StartSpan("placement");
    DataPlacementPlanner placement_planner(fs_, options_.placement);
    DataPlacementPlanner::Plan placement =
        placement_planner.PlanPlacement(registry_);
    int64_t bytes_before = transfer_ledger_.total_bytes();
    SIGMUND_RETURN_IF_ERROR(placement_planner.Materialize(
        registry_, placement, shard_homes_, &transfer_ledger_,
        options_.sfs_retry, &io_));
    report.shard_bytes_moved = transfer_ledger_.total_bytes() - bytes_before;
    shard_homes_ = std::move(placement.home_cell);
    end_stage(span, "placement");
  }

  // --- Data-plane sentry (DESIGN.md §12): profile every retailer's feed
  // and judge it before any training is planned. Quarantined retailers
  // are cut out of the sweep, inference, and index rebuild below; they
  // keep serving their last-known-good batch/index until a later feed
  // passes.
  std::set<data::RetailerId> quarantined;
  std::string dataqual_json;
  if (sentry_ != nullptr) {
    obs::Span span = tracer_->StartSpan("dataqual");
    std::string retailers_json;
    for (data::RetailerId id : registry_.Ids()) {
      StatusOr<const data::RetailerData*> data = registry_.Get(id);
      if (!data.ok()) continue;
      const dataqual::FeedProfile feed_profile =
          dataqual::BuildFeedProfile(**data);
      const dataqual::DataSentry::Observation observation =
          sentry_->Observe(feed_profile);
      if (observation.verdict == dataqual::DataSentry::Verdict::kQuarantine) {
        quarantined.insert(id);
        SIGLOG(WARNING) << "dataqual quarantined retailer " << id << " ("
                        << feed_profile.ToString() << ")";
        for (const dataqual::DataSentry::Finding& finding :
             observation.findings) {
          SIGLOG(WARNING) << "  " << finding.ToString();
        }
      } else if (observation.released) {
        SIGLOG(INFO) << "dataqual released retailer " << id
                     << " from quarantine";
      }
      // The profile JSON only carries non-pass verdicts: at 10k retailers
      // a per-retailer dump would dwarf the rest of the profile.
      if (observation.verdict != dataqual::DataSentry::Verdict::kPass ||
          observation.released) {
        std::string findings_json;
        for (const dataqual::DataSentry::Finding& finding :
             observation.findings) {
          if (!findings_json.empty()) findings_json += ",";
          findings_json += StrFormat(
              "{\"check\":\"%s\",\"severity\":\"%s\",\"value\":%.6f,"
              "\"threshold\":%.6f}",
              obs::JsonEscape(finding.check).c_str(),
              dataqual::VerdictName(finding.severity), finding.value,
              finding.threshold);
        }
        if (!retailers_json.empty()) retailers_json += ",";
        retailers_json += StrFormat(
            "\"%d\":{\"verdict\":\"%s\",\"released\":%s,\"findings\":[%s]}",
            id, dataqual::VerdictName(observation.verdict),
            observation.released ? "true" : "false", findings_json.c_str());
      }
    }
    report.quarantined_retailers = sentry_->QuarantinedCount();
    dataqual_json = StrFormat(
        "{\"quarantined_retailers\":%d,\"retailers\":{%s}}",
        report.quarantined_retailers, retailers_json.c_str());
    end_stage(span, "dataqual");
  }

  // --- Plan the sweep.
  const bool periodic_restart =
      options_.full_sweep_every_days > 0 && days_run_ > 0 &&
      days_run_ % options_.full_sweep_every_days == 0;
  const bool full =
      previous_results_.empty() || force_full_sweep_ || periodic_restart;
  force_full_sweep_ = false;
  report.full_sweep = full;

  SweepPlanner planner(options_.sweep);
  std::vector<ConfigRecord> plan;
  {
    obs::Span span = tracer_->StartSpan("plan_sweep");
    if (full) {
      plan = planner.PlanFullSweep(registry_);
    } else {
      plan = planner.PlanIncrementalSweep(registry_, previous_results_);
    }
    // Quarantined retailers train nothing today: their last-good models
    // keep serving, and their previous sweep results are carried forward
    // (below) so the release day warm-starts instead of re-gridding.
    if (!quarantined.empty()) {
      std::erase_if(plan, [&](const ConfigRecord& record) {
        return quarantined.count(record.retailer) > 0;
      });
    }
    if (!full) {
      // Count retailers that got a full grid (new sign-ups).
      std::map<data::RetailerId, int> per_retailer;
      for (const ConfigRecord& record : plan) ++per_retailer[record.retailer];
      for (const auto& [retailer, count] : per_retailer) {
        if (count > options_.sweep.incremental_top_k) ++report.new_retailers;
      }
    }
    end_stage(span, "plan_sweep");
  }

  // --- Train: one MapReduce, or one per cell when data placement routes
  // each retailer's work to the cell holding its shard (§IV-B1).
  obs::Span train_span = tracer_->StartSpan("train");
  StatusOr<std::vector<ConfigRecord>> results = [&] {
    // All training counters (checkpoints, preemptions, restores, retries,
    // corruptions, ...) reach the report through the registry mirrors the
    // jobs maintain — no per-job bookkeeping here.
    if (!options_.placement.cells.empty()) {
      MultiCellTrainingJob::Options multi_options;
      multi_options.cells = options_.placement.cells;
      multi_options.per_cell = options_.training;
      multi_options.per_cell.metrics = metrics_;
      multi_options.per_cell.tracer = tracer_;
      multi_options.per_cell.clock = clock_;
      MultiCellTrainingJob training(fs_, &registry_, multi_options);
      return training.Run(plan, shard_homes_);
    }
    TrainingJob::Options training_options = options_.training;
    training_options.metrics = metrics_;
    training_options.tracer = tracer_;
    training_options.clock = clock_;
    TrainingJob training(fs_, &registry_, training_options);
    return training.Run(plan);
  }();
  end_stage(train_span, "train");
  if (!results.ok()) return results.status();
  report.models_trained = static_cast<int>(results->size());

  // Persist sweep results per retailer (debuggability).
  {
    obs::Span span = tracer_->StartSpan("persist_sweep_results");
    std::map<data::RetailerId, std::string> blobs;
    for (const ConfigRecord& record : *results) {
      blobs[record.retailer] += record.Serialize();
      blobs[record.retailer] += '\n';
    }
    for (const auto& [retailer, blob] : blobs) {
      // Debug artifact: plain text (not framed) so it stays greppable, but
      // still retried through transient storage errors.
      const std::string path = SweepResultPath(retailer);
      const std::string& data = blob;
      SIGMUND_RETURN_IF_ERROR(
          RetryWithPolicy(options_.sfs_retry, &io_.retry, [&] {
            return fs_->Write(path, data);
          }));
    }
    end_stage(span, "persist_sweep_results");
  }

  // --- Model selection + quality guardrail.
  std::map<data::RetailerId, double> best_map;
  std::set<data::RetailerId> degraded;
  {
    obs::Span span = tracer_->StartSpan("select_models");
    SIGMUND_RETURN_IF_ERROR(
        SelectBestModels(*results, &report, &best_map, &degraded));
    report.degraded_retailers = static_cast<int>(degraded.size());
    // Mirrored so the degradation shows up in RunProfile snapshots.
    if (!degraded.empty()) {
      metrics_->GetCounter("pipeline_degraded_retailers_total")
          ->Add(static_cast<int64_t>(degraded.size()));
    }
    end_stage(span, "select_models");
  }
  // Quarantined retailers trained nothing, so today's results carry no
  // records for them. Splice their previous records forward: without
  // them, the release day would plan a full grid (cold start) instead of
  // warm-starting from the last-good checkpoint.
  std::vector<ConfigRecord> carried;
  if (!quarantined.empty()) {
    for (const ConfigRecord& record : previous_results_) {
      if (quarantined.count(record.retailer) > 0) carried.push_back(record);
    }
  }
  previous_results_ = std::move(results).value();
  previous_results_.insert(previous_results_.end(),
                           std::make_move_iterator(carried.begin()),
                           std::make_move_iterator(carried.end()));
  // A quarantined retailer is degraded for rollout purposes: even if a
  // fresh artifact for it existed, the serving planes below would keep
  // its previous version.
  degraded.insert(quarantined.begin(), quarantined.end());

  std::set<data::RetailerId> hold_back;
  if (options_.guard_quality) {
    obs::Span span = tracer_->StartSpan("quality_guard");
    for (const auto& [retailer, map_at_10] : best_map) {
      if (monitor_.Record(retailer, map_at_10) ==
          QualityMonitor::Verdict::kRegressed) {
        hold_back.insert(retailer);
        SIGLOG(WARNING) << "retailer " << retailer
                        << " regressed: map=" << map_at_10
                        << " trailing best=" << monitor_.TrailingBest(retailer)
                        << "; keeping previous recommendations";
      }
    }
    report.quality_regressions = static_cast<int>(hold_back.size());
    end_stage(span, "quality_guard");
  }

  // --- Inference. Counters flow through the registry, like training.
  obs::Span inference_span = tracer_->StartSpan("inference");
  InferenceJob::Options inference_options = options_.inference;
  inference_options.metrics = metrics_;
  inference_options.tracer = tracer_;
  inference_options.clock = clock_;
  InferenceJob inference(fs_, &registry_, inference_options);
  // Quarantined retailers are excluded: no fresh batch is materialized,
  // so the store and retrieval loops below never see them and their
  // last-known-good versions keep serving untouched.
  std::vector<data::RetailerId> serve_ids = registry_.Ids();
  if (!quarantined.empty()) {
    std::erase_if(serve_ids, [&](data::RetailerId id) {
      return quarantined.count(id) > 0;
    });
  }
  auto recommendations = inference.Run(serve_ids);
  end_stage(inference_span, "inference");
  if (!recommendations.ok()) return recommendations.status();

  // --- Safe rollout into the serving plane (DESIGN.md §7). For each
  // retailer that passed the offline gates: stage the new batch on the
  // primary replica (previous version keeps serving), canary it on
  // simulated live traffic when configured, then either activate
  // (pointer flip) and cut the follower replicas over one at a time, or
  // discard the staged version. Regressed and degraded retailers keep
  // serving the previous batch — a degraded retailer with no previous
  // batch still loads its fresh one, so availability never drops below
  // 100%. A batch that fails its checksum is rejected and the retailer
  // keeps its previous recommendations; a bad refresh never takes down
  // serving.
  obs::Span store_span = tracer_->StartSpan("store_load");
  serving::RecommendationStore* primary = store_group_->primary();
  if (store_group_->num_replicas() > 1) {
    // Refresh replica health before cutting over: live replicas
    // heartbeat through the (possibly fault-injected) SFS, probes read
    // the heartbeats back.
    SIGMUND_RETURN_IF_ERROR(
        store_group_->WriteHeartbeats(fs_, options_.sfs_retry));
    store_group_->ProbeReplicas(*fs_, options_.sfs_retry);
  }
  for (const auto& [retailer, recs] : *recommendations) {
    (void)recs;
    if ((hold_back.count(retailer) > 0 || degraded.count(retailer) > 0) &&
        primary->RetailerVersion(retailer) > 0) {
      continue;
    }
    const std::string path = RecommendationPath(retailer);
    StatusOr<int64_t> staged = primary->StageRetailerFromFile(
        retailer, *fs_, path, options_.sfs_retry, &io_);
    if (!staged.ok()) {
      if (staged.status().code() == StatusCode::kDataLoss) {
        // Counted through serving_batch_loads_total{outcome=rejected}.
        SIGLOG(WARNING) << "rejecting corrupt recommendation batch for "
                        << "retailer " << retailer << ": "
                        << staged.status().ToString();
        continue;
      }
      return staged.status();
    }
    if (options_.canary.enabled && primary->RetailerVersion(retailer) > 0) {
      StatusOr<const data::RetailerData*> retailer_data =
          registry_.Get(retailer);
      if (retailer_data.ok()) {
        const CanaryController::Outcome canary = canary_->Evaluate(
            retailer, *primary, *staged, **retailer_data, days_run_);
        if (canary.verdict == CanaryController::Verdict::kRolledBack) {
          SIGLOG(WARNING) << "canary rolled back batch v" << *staged
                          << " for retailer " << retailer
                          << ": canary_ctr=" << canary.CanaryCtr()
                          << " control_ctr=" << canary.ControlCtr()
                          << "; keeping previous recommendations";
          SIGMUND_RETURN_IF_ERROR(
              primary->DiscardVersion(retailer, *staged));
          continue;
        }
      }
    }
    SIGMUND_RETURN_IF_ERROR(primary->ActivateVersion(retailer, *staged));
    SIGMUND_RETURN_IF_ERROR(store_group_->CutoverFollowersFromFile(
        retailer, *fs_, path, *staged, options_.sfs_retry, &io_));
  }
  end_stage(store_span, "store_load");

  // --- Online retrieval plane (DESIGN.md §11): snapshot each retailer's
  // best model into a versioned ANN index artifact, publish it CRC-framed
  // through the same Stage/Activate flow as recommendation batches, and
  // gate activation with a retrieval-plane canary against the live
  // materialized plane. A corrupt artifact is rejected at stage time and
  // the previous index (or the materialized-only route) keeps serving.
  if (options_.retrieval.enabled) {
    obs::Span retrieval_span = tracer_->StartSpan("retrieval_index");
    for (const auto& [retailer, recs] : *recommendations) {
      (void)recs;
      if ((hold_back.count(retailer) > 0 || degraded.count(retailer) > 0) &&
          retrieval_reader_->RetailerVersion(retailer) > 0) {
        continue;
      }
      StatusOr<const data::RetailerData*> retailer_data =
          registry_.Get(retailer);
      if (!retailer_data.ok()) continue;
      StatusOr<std::string> model_bytes = sfs::ReadChecksummedFile(
          fs_, BestModelPath(retailer), options_.sfs_retry, &io_);
      if (!model_bytes.ok()) {
        // No (readable) best model — e.g. corrupt frame or a retailer
        // served purely from a previous day. The index just isn't
        // refreshed; never fail the run over it.
        if (model_bytes.status().code() == StatusCode::kDataLoss ||
            model_bytes.status().code() == StatusCode::kNotFound) {
          continue;
        }
        return model_bytes.status();
      }
      StatusOr<core::BprModel> model = core::BprModel::Deserialize(
          *model_bytes, &(*retailer_data)->catalog);
      if (!model.ok()) {
        SIGLOG(WARNING) << "retailer " << retailer
                        << ": best model undecodable, skipping index build: "
                        << model.status().ToString();
        continue;
      }
      retrieval::IndexArtifact artifact = retrieval::BuildArtifactFromModel(
          retailer, *model, options_.retrieval.ann);
      if (options_.retrieval.build_hook_for_testing) {
        options_.retrieval.build_hook_for_testing(retailer, &artifact);
      }
      const std::string index_path = retrieval::IndexArtifactPath(retailer);
      SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
          fs_, index_path, artifact.Serialize(), options_.sfs_retry, &io_));
      StatusOr<int64_t> staged = retrieval_reader_->StageFromFile(
          retailer, *fs_, index_path, options_.sfs_retry, &io_);
      if (!staged.ok()) {
        if (staged.status().code() == StatusCode::kDataLoss) {
          SIGLOG(WARNING) << "rejecting corrupt retrieval index for retailer "
                          << retailer << ": " << staged.status().ToString();
          metrics_
              ->GetCounter("retrieval_index_builds_total",
                           {{"outcome", "rejected"}})
              ->Add(1);
          continue;
        }
        return staged.status();
      }
      ++report.retrieval_indexes_built;
      metrics_
          ->GetCounter("retrieval_index_builds_total", {{"outcome", "ok"}})
          ->Add(1);
      if (retrieval_canary_ != nullptr) {
        const CanaryController::Outcome canary = retrieval_canary_->Evaluate(
            retailer, *primary, *staged, **retailer_data, days_run_);
        if (canary.verdict == CanaryController::Verdict::kRolledBack) {
          SIGLOG(WARNING) << "retrieval canary rolled back index v" << *staged
                          << " for retailer " << retailer
                          << ": canary_ctr=" << canary.CanaryCtr()
                          << " control_ctr=" << canary.ControlCtr()
                          << "; retailer stays on the materialized plane";
          SIGMUND_RETURN_IF_ERROR(
              retrieval_reader_->DiscardVersion(retailer, *staged));
          continue;
        }
      }
      SIGMUND_RETURN_IF_ERROR(
          retrieval_reader_->ActivateVersion(retailer, *staged));
    }
    end_stage(retrieval_span, "retrieval_index");
  }

  // --- Mirror chaos-layer fault totals into the registry. Self-
  // correcting: only the portion not already recorded (e.g. by a fault
  // injector wired live via SetMetrics) is added, so the registry's sum
  // across label sets always equals the injector's own total.
  if (options_.injected_faults != nullptr) {
    const int64_t recorded =
        metrics_->Snapshot().CounterValue("sfs_faults_injected_total");
    metrics_->GetCounter("sfs_faults_injected_total")
        ->Add(options_.injected_faults->total() - recorded);
  }

  day_span.End();
  report.total_wall_micros = day_span.DurationMicros();

  // --- The report's counters are the run's registry deltas: everything
  // the jobs and I/O layers recorded between the two snapshots.
  const obs::RegistrySnapshot after = metrics_->Snapshot();
  auto delta = [&](std::string_view name, const obs::Labels& labels) {
    return after.CounterValue(name, labels) -
           before.CounterValue(name, labels);
  };
  const obs::Labels none;
  report.checkpoints_written = delta("training_checkpoints_written_total", none);
  report.preemptions = delta("training_preemptions_total", none);
  report.restored_from_checkpoint = delta("training_restores_total", none);
  report.corrupt_checkpoints_skipped =
      delta("training_corrupt_checkpoints_skipped_total", none);
  report.simulated_train_micros = delta("training_simulated_micros_total", none);
  report.model_loads = delta("inference_model_loads_total", none);
  report.items_scored = delta("inference_items_scored_total", none);
  report.map_attempts =
      delta("mapreduce_task_attempts_total", {{"phase", "map"}});
  report.map_failures =
      delta("mapreduce_task_failures_total", {{"phase", "map"}});
  report.reduce_attempts =
      delta("mapreduce_task_attempts_total", {{"phase", "reduce"}});
  report.reduce_failures =
      delta("mapreduce_task_failures_total", {{"phase", "reduce"}});
  report.sfs_retries = delta("sfs_retries_total", none);
  report.corruptions_detected = delta("sfs_corruptions_detected_total", none);
  report.corruptions_healed = delta("sfs_corruptions_healed_total", none);
  report.corrupt_batches_rejected =
      delta("serving_batch_loads_total", {{"outcome", "rejected"}});
  report.faults_injected = delta("sfs_faults_injected_total", none);
  report.evictions = delta("training_evictions_total", none);
  report.eviction_grace_checkpoints =
      delta("training_eviction_grace_checkpoints_total", none);
  report.hard_evictions = delta("training_hard_evictions_total", none);
  report.priority_escalations =
      delta("training_priority_escalations_total", none);
  report.preemption_budget_exhausted =
      delta("training_preemption_budget_exhausted_total", none);
  report.deadline_exceeded = delta("training_deadline_exceeded_total", none);
  report.map_backup_attempts =
      delta("mapreduce_backup_attempts_total", none);
  report.map_backups_won = delta("mapreduce_backups_won_total", none);
  // Canary verdicts are split by plane: the batch ladder and the online
  // retrieval ladder roll out (and back) independently.
  report.canary_promotions = delta(
      "canary_verdicts_total", {{"plane", "batch"}, {"verdict", "promoted"}});
  report.canary_rollbacks =
      delta("canary_verdicts_total",
            {{"plane", "batch"}, {"verdict", "rolled_back"}});
  report.retrieval_promotions =
      delta("canary_verdicts_total",
            {{"plane", "retrieval"}, {"verdict", "promoted"}});
  report.retrieval_rollbacks =
      delta("canary_verdicts_total",
            {{"plane", "retrieval"}, {"verdict", "rolled_back"}});
  report.corrupt_indexes_rejected =
      delta("retrieval_index_builds_total", {{"outcome", "rejected"}});
  report.replica_cutovers =
      delta("serving_replica_cutovers_total", {{"outcome", "ok"}});
  report.replica_cutovers_skipped =
      delta("serving_replica_cutovers_total", {{"outcome", "skipped_dead"}});
  // Serving health is cumulative at snapshot time: requests arrive
  // between daily runs, so a per-run delta would always read zero.
  report.breaker_trips = after.CounterValue("serving_breaker_trips_total", none);
  report.fallbacks_served = after.CounterValue("serving_fallbacks_total", none);
  report.replica_failovers =
      after.CounterValue("serving_replica_failovers_total", none);
  report.hedged_reads =
      after.CounterValue("serving_hedged_reads_total", none);
  report.requests_shed = after.CounterValue("serving_shed_total", none);
  report.brownout_serves =
      after.CounterValue("serving_brownout_total", none);
  report.hedges_suppressed =
      after.CounterValue("serving_hedges_suppressed_total", none);
  report.retry_budget_exhausted =
      after.CounterValue("serving_retry_budget_exhausted_total", none);
  report.canary_samples_ignored =
      delta("canary_samples_ignored_total", none);
  // Data-plane sentry verdicts, per-run deltas like the rest of the
  // pipeline counters.
  report.feed_quarantines =
      delta("dataqual_verdicts_total", {{"verdict", "quarantine"}});
  report.feed_warns = delta("dataqual_verdicts_total", {{"verdict", "warn"}});
  report.quarantine_releases = delta("dataqual_releases_total", none);
  // Per-path request counts: cumulative like the rest of serving health
  // (traffic arrives between runs, so per-run deltas would read zero).
  report.requests_materialized =
      after.CounterValue("serving_requests_total", {{"path", "materialized"}});
  report.requests_online_retrieval = after.CounterValue(
      "serving_requests_total", {{"path", "online_retrieval"}});
  report.requests_fallback =
      after.CounterValue("serving_requests_total", {{"path", "fallback"}});

  // --- SLO evaluation: burn rates over the run-end snapshot. Runs after
  // the pipeline finished, so it is passive by construction.
  if (options_.slo != nullptr) {
    options_.slo->Evaluate(after, clock_->NowMicros());
    report.slo_alerts_fired = options_.slo->FiredTotal();
    report.slo_alerts_resolved = options_.slo->ResolvedTotal();
    report.slo_objectives_firing = options_.slo->FiringCount();
    report.slo_json = options_.slo->ToJson();
  }

  // --- Machine-readable run profile: this run's span tree + the full
  // metrics snapshot.
  obs::RunProfile profile = obs::BuildRunProfile(
      StrFormat("day%d", days_run_), *tracer_, day_span.id(), after);
  profile.stages = report.stage_wall_micros;
  if (!report.slo_json.empty()) profile.slo_json = report.slo_json;
  if (!dataqual_json.empty()) profile.dataqual_json = dataqual_json;
  report.profile_json = profile.ToJson();

  ++days_run_;
  return report;
}

}  // namespace sigmund::pipeline
