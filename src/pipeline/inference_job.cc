#include "pipeline/inference_job.h"

#include <memory>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/candidate_selector.h"
#include "core/cooccurrence.h"
#include "pipeline/binpack.h"
#include "pipeline/config_record.h"

namespace sigmund::pipeline {

namespace {

// Per-retailer state an inference mapper keeps loaded while it processes
// that retailer's contiguous run of item records.
struct LoadedRetailer {
  data::RetailerId id = -1;
  const data::RetailerData* data = nullptr;
  std::unique_ptr<core::BprModel> model;
  std::unique_ptr<core::CooccurrenceModel> cooccurrence;
  std::unique_ptr<core::RepurchaseEstimator> repurchase;
  std::unique_ptr<core::CandidateSelector> selector;
  std::unique_ptr<core::InferenceEngine> engine;
};

class InferenceMapper : public mapreduce::Mapper {
 public:
  // `model_load_micros` is the optional model-load latency histogram
  // (null = observability off).
  InferenceMapper(sfs::SharedFileSystem* fs, const RetailerRegistry* registry,
                  const InferenceJob::Options* options,
                  InferenceJob::Stats* stats,
                  obs::Histogram* model_load_micros)
      : fs_(fs),
        registry_(registry),
        options_(options),
        stats_(stats),
        model_load_micros_(model_load_micros) {}

  Status Map(const mapreduce::Record& input,
             const mapreduce::Emitter& emit) override {
    // Key: "r<retailer>/i<item>".
    data::RetailerId retailer = 0;
    data::ItemIndex item = 0;
    if (!ParseKey(input.key, &retailer, &item)) {
      return InvalidArgumentError("bad inference key: " + input.key);
    }

    if (retailer != loaded_.id) {
      // "A load should only get triggered if this is the first record
      // being processed by the mapper or if it is processing an input
      // split that contains the boundary between two retailers" (§IV-C2).
      SIGMUND_RETURN_IF_ERROR(LoadRetailer(retailer));
    }

    core::ItemRecommendations recs =
        loaded_.engine->RecommendForItem(item, options_->inference);
    stats_->items_scored.fetch_add(1);
    emit(mapreduce::Record{input.key, recs.Serialize()});
    return OkStatus();
  }

 private:
  static bool ParseKey(const std::string& key, data::RetailerId* retailer,
                       data::ItemIndex* item) {
    if (key.empty() || key[0] != 'r') return false;
    size_t slash = key.find("/i");
    if (slash == std::string::npos) return false;
    int64_t r = 0, i = 0;
    if (!ParseInt64(key.substr(1, slash - 1), &r)) return false;
    if (!ParseInt64(key.substr(slash + 2), &i)) return false;
    *retailer = static_cast<data::RetailerId>(r);
    *item = static_cast<data::ItemIndex>(i);
    return true;
  }

  Status LoadRetailer(data::RetailerId retailer) {
    // The configured clock keeps load-latency samples deterministic under
    // SimClock; only consulted when the histogram is wired.
    const Clock* clock =
        model_load_micros_ != nullptr
            ? (options_->clock != nullptr ? options_->clock
                                          : RealClock::Get())
            : nullptr;
    const int64_t load_start =
        clock != nullptr ? clock->NowMicros() : 0;
    StatusOr<const data::RetailerData*> data = registry_->Get(retailer);
    if (!data.ok()) return data.status();

    StatusOr<std::string> bytes = sfs::ReadChecksummedFile(
        fs_, BestModelPath(retailer), options_->sfs_retry, &stats_->io);
    if (!bytes.ok()) return bytes.status();
    StatusOr<core::BprModel> model =
        core::BprModel::Deserialize(*bytes, &(*data)->catalog);
    if (!model.ok()) return model.status();

    loaded_.id = retailer;
    loaded_.data = *data;
    loaded_.model =
        std::make_unique<core::BprModel>(std::move(model).value());
    // Candidate-selection inputs are rebuilt from the retailer's full
    // histories (they are cheap relative to training).
    loaded_.cooccurrence = std::make_unique<core::CooccurrenceModel>(
        core::CooccurrenceModel::Build((*data)->histories,
                                       (*data)->catalog.num_items(), {}));
    loaded_.repurchase = std::make_unique<core::RepurchaseEstimator>(
        core::RepurchaseEstimator::Build((*data)->histories, (*data)->catalog,
                                         {}));
    loaded_.selector = std::make_unique<core::CandidateSelector>(
        &(*data)->catalog, loaded_.cooccurrence.get(),
        loaded_.repurchase.get());
    loaded_.engine = std::make_unique<core::InferenceEngine>(
        loaded_.model.get(), loaded_.selector.get());
    stats_->model_loads.fetch_add(1);
    if (model_load_micros_ != nullptr) {
      model_load_micros_->Observe(
          static_cast<double>(clock->NowMicros() - load_start));
    }
    return OkStatus();
  }

  sfs::SharedFileSystem* fs_;
  const RetailerRegistry* registry_;
  const InferenceJob::Options* options_;
  InferenceJob::Stats* stats_;
  obs::Histogram* model_load_micros_;
  LoadedRetailer loaded_;
};

}  // namespace

StatusOr<std::map<data::RetailerId, std::vector<core::ItemRecommendations>>>
InferenceJob::Run(const std::vector<data::RetailerId>& retailers) {
  obs::Span job_span;
  if (options_.tracer != nullptr) {
    job_span = options_.tracer->StartSpan(options_.job_label);
  }
  obs::Histogram* model_load_micros =
      options_.metrics != nullptr
          ? options_.metrics->GetHistogram("inference_model_load_micros")
          : nullptr;
  stats_.io.SetMetrics(options_.metrics, options_.clock);

  // Mirror the final counters into the registry exactly once per Run, on
  // every exit path (including errors).
  struct MirrorOnExit {
    InferenceJob* job;
    ~MirrorOnExit() { job->MirrorStatsToRegistry(); }
  } mirror_on_exit{this};

  // --- Partition retailers across cells, weighted by inventory size.
  std::vector<PackItem> items;
  for (data::RetailerId id : retailers) {
    StatusOr<const data::RetailerData*> data = registry_->Get(id);
    if (!data.ok()) return data.status();
    items.push_back(PackItem{id, static_cast<double>((*data)->num_items())});
  }
  std::vector<std::vector<PackItem>> cells =
      options_.use_first_fit_decreasing
          ? FirstFitDecreasing(items, options_.num_cells)
          : RoundRobinPack(items, options_.num_cells);
  stats_.cell_weights.clear();
  for (const auto& cell : cells) stats_.cell_weights.push_back(BinWeight(cell));

  // --- One MapReduce per cell; input contiguous per retailer.
  std::map<data::RetailerId, std::vector<core::ItemRecommendations>> results;
  int cell_index = -1;
  for (const auto& cell : cells) {
    ++cell_index;
    if (cell.empty()) continue;
    std::vector<mapreduce::Record> input;
    for (const PackItem& pack : cell) {
      data::RetailerId id = static_cast<data::RetailerId>(pack.id);
      StatusOr<const data::RetailerData*> data = registry_->Get(id);
      if (!data.ok()) return data.status();
      for (data::ItemIndex item = 0; item < (*data)->num_items(); ++item) {
        input.push_back(
            mapreduce::Record{StrFormat("r%d/i%d", id, item), ""});
      }
    }

    mapreduce::MapReduceSpec spec;
    spec.num_map_tasks =
        std::max(1, std::min<int>(options_.map_tasks_per_cell,
                                  static_cast<int>(input.size())));
    spec.num_reduce_tasks = 0;  // map-only; order preserved per retailer
    spec.max_parallel_tasks = options_.max_parallel_tasks;
    spec.map_task_failure_prob = options_.map_task_failure_prob;
    spec.max_attempts_per_task = options_.max_attempts_per_task;
    spec.speculative_backups = options_.speculative_backups;
    spec.speculation_commit_fraction = options_.speculation_commit_fraction;
    spec.seed = options_.seed;
    spec.metrics = options_.metrics;
    spec.tracer = options_.tracer;
    spec.clock = options_.clock;
    spec.label = options_.job_label + "/cell" + std::to_string(cell_index);

    mapreduce::MapReduceJob job(
        spec,
        [this, model_load_micros] {
          return std::make_unique<InferenceMapper>(fs_, registry_, &options_,
                                                   &stats_, model_load_micros);
        },
        [] { return mapreduce::IdentityReducer(); });
    StatusOr<std::vector<mapreduce::Record>> output = job.Run(input);
    if (!output.ok()) return output.status();
    stats_.mapreduce.map_attempts += job.stats().map_attempts;
    stats_.mapreduce.map_failures += job.stats().map_failures;
    stats_.mapreduce.reduce_attempts += job.stats().reduce_attempts;
    stats_.mapreduce.reduce_failures += job.stats().reduce_failures;
    stats_.mapreduce.input_records += job.stats().input_records;
    stats_.mapreduce.mapped_records += job.stats().mapped_records;
    stats_.mapreduce.output_records += job.stats().output_records;

    for (const mapreduce::Record& record : *output) {
      StatusOr<core::ItemRecommendations> recs =
          core::ItemRecommendations::Deserialize(record.value);
      if (!recs.ok()) return recs.status();
      size_t slash = record.key.find('/');
      int64_t retailer = 0;
      SIGCHECK(ParseInt64(record.key.substr(1, slash - 1), &retailer));
      results[static_cast<data::RetailerId>(retailer)].push_back(
          std::move(recs).value());
    }
  }

  // --- Persist per-retailer recommendation files (newline-separated) for
  // the serving batch loader.
  for (auto& [retailer, recs] : results) {
    // Order by query item for deterministic, item-indexed loading.
    std::sort(recs.begin(), recs.end(),
              [](const core::ItemRecommendations& a,
                 const core::ItemRecommendations& b) {
                return a.query < b.query;
              });
    std::string blob;
    for (const core::ItemRecommendations& rec : recs) {
      blob += rec.Serialize();
      blob += '\n';
    }
    // Checksummed + read-back-verified: the serving loader must never see
    // a torn recommendation batch.
    SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
        fs_, RecommendationPath(retailer), blob, options_.sfs_retry,
        &stats_.io));
  }
  return results;
}

void InferenceJob::MirrorStatsToRegistry() {
  if (options_.metrics == nullptr) return;
  options_.metrics->GetCounter("inference_model_loads_total")
      ->Add(stats_.model_loads.load());
  options_.metrics->GetCounter("inference_items_scored_total")
      ->Add(stats_.items_scored.load());
}

}  // namespace sigmund::pipeline
