#ifndef SIGMUND_PIPELINE_QUALITY_MONITOR_H_
#define SIGMUND_PIPELINE_QUALITY_MONITOR_H_

#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "data/types.h"

namespace sigmund::pipeline {

// Per-retailer quality guardrail. The paper's introduction promises that
// "recommendation quality is monitored and maintained" (§I, §III): with
// thousands of unattended models retraining daily, a silent regression —
// bad data day, diverged trial, catalog mishap — must not reach serving.
//
// The monitor keeps a trailing window of each retailer's best hold-out
// MAP@10 and flags a daily result that falls too far below the trailing
// best; the service then keeps serving yesterday's recommendations for
// that retailer instead of loading the regressed batch.
class QualityMonitor {
 public:
  struct Options {
    // A day regresses if its MAP < (1 - max_relative_drop) * trailing best.
    double max_relative_drop = 0.5;
    // Days of history kept per retailer.
    int history_days = 7;
    // Below this MAP the trailing best is considered noise and everything
    // passes (tiny retailers bounce around 0).
    double min_meaningful_map = 0.01;
  };

  enum class Verdict {
    kFirstObservation = 0,  // no history yet — always accepted
    kOk = 1,
    kRegressed = 2,
  };

  explicit QualityMonitor(const Options& options) : options_(options) {}
  QualityMonitor() : QualityMonitor(Options()) {}

  // Optional observability: when set, every Record() call also bumps
  // quality_verdicts_total{verdict=...} in `registry` (borrowed; null =
  // off). Verdicts never depend on the registry, only feed it.
  void set_metrics(obs::MetricRegistry* registry) { metrics_ = registry; }

  // Records today's best hold-out MAP for a retailer and returns the
  // verdict. Regressed observations are recorded too (so a persistent
  // new plateau eventually becomes the baseline once the old history
  // ages out).
  Verdict Record(data::RetailerId retailer, double map_at_10);

  // Best MAP in the trailing window (0 if unknown retailer).
  double TrailingBest(data::RetailerId retailer) const;

  int days_observed(data::RetailerId retailer) const;

  // Crash-recovery snapshot of the trailing-MAP history (DESIGN.md §13):
  // a guardrail that forgets its baselines on restart would wave a
  // regressed batch straight into serving. Deterministic encoding; the
  // restored monitor produces bit-identical verdicts.
  std::string SerializeState() const;
  Status RestoreState(std::string_view bytes);

 private:
  Options options_;
  obs::MetricRegistry* metrics_ = nullptr;
  std::map<data::RetailerId, std::deque<double>> history_;
};

const char* VerdictName(QualityMonitor::Verdict verdict);

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_QUALITY_MONITOR_H_
