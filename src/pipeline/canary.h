#ifndef SIGMUND_PIPELINE_CANARY_H_
#define SIGMUND_PIPELINE_CANARY_H_

#include <functional>

#include "common/metrics.h"
#include "data/ctr_simulator.h"
#include "data/retailer_data.h"
#include "data/world_generator.h"
#include "serving/store.h"

namespace sigmund::pipeline {

// Canary rollout with live-signal rollback — the rung of the safe-rollout
// ladder between the offline MAP gate and full promotion (DESIGN.md §7).
// The offline gate catches models that regressed on hold-out data; it
// cannot catch a batch that *evaluates* well but *serves* badly (poisoned
// materialization, corrupt candidate set, catalog mishap downstream of
// training). The canary catches those with live signal: a configurable
// fraction of simulated traffic is routed to the staged batch while the
// rest keeps hitting the active one, clicks are drawn from the
// ground-truth CTR oracle (data::CtrSimulator — the stand-in for the
// paper's online experiments, Fig. 6), and a simple sequential test
// compares the two arms. The batch is promoted only if canary CTR holds
// up against control; otherwise it is rolled back before it ever serves
// 100% of traffic.
//
// Deterministic: every impression, arm assignment and click is drawn from
// an Rng seeded by (options.seed, day, retailer), so same-seed reruns
// produce byte-identical verdicts.
class CanaryController {
 public:
  // What one canary impression was served, when routed through a serving
  // path that can shed or degrade (the Frontend). `status` with
  // kResourceExhausted = the request was shed by admission control;
  // `degraded` = the items came from a fallback (last-known-good,
  // popularity, brownout), not the batch under evaluation.
  struct CanaryServe {
    Status status;
    std::vector<core::ScoredItem> items;
    bool degraded = false;
  };

  struct Options {
    // Master switch; off = every staged batch promotes unexamined (the
    // pre-canary behavior).
    bool enabled = false;
    // Fraction of simulated impressions routed to the staged batch.
    double canary_fraction = 0.1;
    // Total simulated impressions per (retailer, day) evaluation.
    int max_impressions = 600;
    // Run the sequential check every this many impressions.
    int check_every = 50;
    // Promote iff canary CTR >= min_relative_ctr * control CTR (once
    // control has at least min_clicks clicks; below that the comparison
    // is noise and the batch promotes).
    double min_relative_ctr = 0.8;
    int min_clicks = 8;
    // Sequential early stop: |z| of the two-proportion test at which the
    // verdict is called before max_impressions (<= 0 disables).
    double early_stop_z = 3.0;
    uint64_t seed = 1;
    // Which rollout plane this controller gates — "batch" (materialized
    // recommendation batches) or "retrieval" (online ANN indexes). Pure
    // labeling: every canary_* counter carries plane=<this>, so the two
    // ladders stay separable in RunProfile and the daily report.
    std::string plane = "batch";
    // Click model of the simulated users.
    data::CtrSimulator::Config ctr;
    // Ground-truth oracle per retailer (the hidden preference model that
    // generated the data; used only for evaluation, never training).
    // Returning null skips the canary for that retailer.
    std::function<const data::GroundTruthModel*(data::RetailerId)> oracle;
    // Optional serve hook routing canary impressions through the full
    // serving plane (admission control + degradation ladder) instead of
    // straight off the store. `version` is the canary version for the
    // canary arm, 0 (active) for control. Shed (kResourceExhausted) and
    // degraded serves are EXCLUDED from both arms — an overloaded plane
    // sheds or falls back regardless of which batch is staged, so letting
    // those samples count as "impression, no click" would tank canary CTR
    // and auto-roll-back perfectly good batches during load spikes.
    // Excluded samples are counted in
    // canary_samples_ignored_total{reason=shed|degraded}.
    std::function<CanaryServe(data::RetailerId, const core::Context&,
                              int64_t version)>
        serve_hook;
  };

  enum class Verdict {
    kPromoted = 0,
    kRolledBack = 1,
    kSkipped = 2,  // canary off, no oracle, or nothing to compare against
  };

  struct Outcome {
    Verdict verdict = Verdict::kSkipped;
    int canary_impressions = 0;
    int control_impressions = 0;
    int canary_clicks = 0;
    int control_clicks = 0;
    bool early_stopped = false;
    // Impressions excluded from both arms because the serving plane shed
    // or degraded them (only nonzero when a serve_hook is installed).
    int ignored_samples = 0;

    double CanaryCtr() const {
      return canary_impressions > 0
                 ? static_cast<double>(canary_clicks) / canary_impressions
                 : 0.0;
    }
    double ControlCtr() const {
      return control_impressions > 0
                 ? static_cast<double>(control_clicks) / control_impressions
                 : 0.0;
    }
  };

  // `metrics` borrowed, may be null: verdicts/impressions/clicks land in
  // canary_* counters.
  CanaryController(const Options& options, obs::MetricRegistry* metrics);

  // Evaluates staged version `canary_version` of `retailer` against the
  // store's active version, simulating `data`'s users. `day` salts the
  // RNG so each day's traffic differs deterministically. Never mutates
  // the store: the caller activates or discards based on the verdict.
  Outcome Evaluate(data::RetailerId retailer,
                   const serving::RecommendationStore& store,
                   int64_t canary_version, const data::RetailerData& data,
                   int day) const;

  const Options& options() const { return options_; }

 private:
  void Count(const Outcome& outcome) const;

  Options options_;
  obs::MetricRegistry* metrics_;
};

const char* VerdictName(CanaryController::Verdict verdict);

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_CANARY_H_
