#ifndef SIGMUND_PIPELINE_CONFIG_RECORD_H_
#define SIGMUND_PIPELINE_CONFIG_RECORD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/hyperparams.h"
#include "data/types.h"

namespace sigmund::pipeline {

// One model-training work item, flowing through the pipeline exactly as in
// §IV-A: "the sweep step ... outputs a set of config records containing
// the model number, training and validation dataset locations, and the
// values assigned to each of the hyperparameters. These config records
// form the input to the training step." The training job fills in the
// output metrics and emits the record again.
struct ConfigRecord {
  data::RetailerId retailer = 0;
  int model_number = 0;
  core::HyperParams params;

  // SFS location the trained model is written to (and read from for
  // warm starts / inference).
  std::string model_path;

  // Incremental run: initialize from the model currently at model_path.
  bool warm_start = false;

  // --- Output fields, filled by the training job.
  bool trained = false;
  // Training finished early — deadline budget or preemption budget
  // exhausted. The (partially trained) model is still committed so the
  // retailer stays servable, but model selection treats the retailer as
  // degraded: freshness suffers, availability never does.
  bool degraded = false;
  double map_at_10 = -1.0;
  double auc = -1.0;
  int epochs_run = 0;
  int64_t sgd_steps = 0;

  // Key used for MapReduce records ("r<retailer>/m<model>").
  std::string Key() const;

  std::string Serialize() const;
  static StatusOr<ConfigRecord> Deserialize(const std::string& text);
};

// Canonical SFS path layout for the pipeline.
std::string ModelPath(data::RetailerId retailer, int model_number);
std::string BestModelPath(data::RetailerId retailer);
std::string CheckpointDir(data::RetailerId retailer, int model_number);
std::string RecommendationPath(data::RetailerId retailer);
std::string SweepResultPath(data::RetailerId retailer);
// Immutable per-version copy of a recommendation batch (ledger mode,
// DESIGN.md §13): RecommendationPath is overwritten by every day's
// inference, but crash rehydration and rollback need each retained
// version's bytes as they were staged. The "." separator keeps prefix
// listings of one retailer from matching another (r1. vs r10.).
std::string RecommendationVersionPath(data::RetailerId retailer,
                                      int64_t version);
// Scratch name for write-tmp-then-rename sequences; anything matching
// this suffix at startup is debris from a crash mid-write.
std::string TmpPath(const std::string& path);

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_CONFIG_RECORD_H_
