#include "pipeline/canary.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stats.h"

namespace sigmund::pipeline {

const char* VerdictName(CanaryController::Verdict verdict) {
  switch (verdict) {
    case CanaryController::Verdict::kPromoted:
      return "promoted";
    case CanaryController::Verdict::kRolledBack:
      return "rolled_back";
    case CanaryController::Verdict::kSkipped:
      return "skipped";
  }
  return "unknown";
}

CanaryController::CanaryController(const Options& options,
                                   obs::MetricRegistry* metrics)
    : options_(options), metrics_(metrics) {}

void CanaryController::Count(const Outcome& outcome) const {
  if (metrics_ == nullptr) return;
  const std::string& plane = options_.plane;
  metrics_
      ->GetCounter("canary_verdicts_total",
                   {{"plane", plane},
                    {"verdict", VerdictName(outcome.verdict)}})
      ->Add(1);
  if (outcome.canary_impressions + outcome.control_impressions == 0) return;
  metrics_
      ->GetCounter("canary_impressions_total",
                   {{"arm", "canary"}, {"plane", plane}})
      ->Add(outcome.canary_impressions);
  metrics_
      ->GetCounter("canary_impressions_total",
                   {{"arm", "control"}, {"plane", plane}})
      ->Add(outcome.control_impressions);
  metrics_
      ->GetCounter("canary_clicks_total",
                   {{"arm", "canary"}, {"plane", plane}})
      ->Add(outcome.canary_clicks);
  metrics_
      ->GetCounter("canary_clicks_total",
                   {{"arm", "control"}, {"plane", plane}})
      ->Add(outcome.control_clicks);
  if (outcome.early_stopped) {
    metrics_->GetCounter("canary_early_stops_total", {{"plane", plane}})
        ->Add(1);
  }
}

namespace {

// Two-proportion z statistic of canary vs. control CTR (the shared
// sequential-test math in common/stats.h, also used by the data sentry's
// drift checks).
double CtrZ(int canary_clicks, int canary_n, int control_clicks,
            int control_n) {
  return TwoProportionZ(canary_clicks, canary_n, control_clicks, control_n);
}

}  // namespace

CanaryController::Outcome CanaryController::Evaluate(
    data::RetailerId retailer, const serving::RecommendationStore& store,
    int64_t canary_version, const data::RetailerData& data, int day) const {
  Outcome outcome;
  const data::GroundTruthModel* truth =
      options_.oracle ? options_.oracle(retailer) : nullptr;
  // Nothing to canary against: no oracle, an empty world, or no active
  // batch yet (the first batch ships straight to 100%).
  if (!options_.enabled || truth == nullptr || data.num_users() == 0 ||
      data.num_items() == 0 || store.RetailerVersion(retailer) == 0) {
    outcome.verdict = Verdict::kSkipped;
    Count(outcome);
    return outcome;
  }

  data::CtrSimulator simulator(truth, options_.ctr);
  // Seeded per (seed, day, retailer): each day's traffic differs but
  // same-seed reruns are byte-identical.
  Rng rng(SplitMix64(options_.seed * 0x9E3779B97F4A7C15ULL ^
                     SplitMix64((static_cast<uint64_t>(day) << 32) ^
                                static_cast<uint64_t>(retailer))));

  bool decided = false;
  for (int i = 0; i < options_.max_impressions && !decided; ++i) {
    const bool canary_arm = rng.UniformDouble() < options_.canary_fraction;
    const data::UserIndex user =
        static_cast<data::UserIndex>(rng.Uniform(data.num_users()));
    const std::vector<data::Interaction>& history = data.histories[user];
    const data::ItemIndex context_item =
        history.empty()
            ? static_cast<data::ItemIndex>(rng.Uniform(data.num_items()))
            : history[rng.Uniform(history.size())].item;
    const core::Context context{{context_item, data::ActionType::kView}};
    std::vector<data::ItemIndex> ranked;
    if (options_.serve_hook) {
      // Serving-plane path: impressions the plane shed or answered from a
      // fallback say nothing about the staged batch — exclude them from
      // both arms so overload cannot masquerade as a bad canary.
      CanaryServe served = options_.serve_hook(
          retailer, context, canary_arm ? canary_version : 0);
      const bool shed =
          served.status.code() == StatusCode::kResourceExhausted;
      if (shed || (served.status.ok() && served.degraded)) {
        ++outcome.ignored_samples;
        if (metrics_ != nullptr) {
          metrics_
              ->GetCounter("canary_samples_ignored_total",
                           {{"plane", options_.plane},
                            {"reason", shed ? "shed" : "degraded"}})
              ->Add(1);
        }
        continue;
      }
      if (served.status.ok()) {
        ranked.reserve(served.items.size());
        for (const core::ScoredItem& item : served.items) {
          ranked.push_back(item.item);
        }
      }
    } else {
      StatusOr<std::vector<core::ScoredItem>> list =
          store.ServeContextAtVersion(retailer, context,
                                      canary_arm ? canary_version : 0);
      if (list.ok()) {
        ranked.reserve(list->size());
        for (const core::ScoredItem& item : *list) {
          ranked.push_back(item.item);
        }
      }
    }
    const bool clicked =
        !ranked.empty() &&
        simulator.SimulateImpression(user, ranked, &rng) >= 0;
    if (canary_arm) {
      ++outcome.canary_impressions;
      if (clicked) ++outcome.canary_clicks;
    } else {
      ++outcome.control_impressions;
      if (clicked) ++outcome.control_clicks;
    }

    // Sequential check: call the verdict early once the z boundary is
    // crossed, so a clearly bad batch stops burning canary traffic.
    if (options_.early_stop_z > 0.0 && options_.check_every > 0 &&
        (i + 1) % options_.check_every == 0) {
      const double z = CtrZ(outcome.canary_clicks, outcome.canary_impressions,
                            outcome.control_clicks,
                            outcome.control_impressions);
      if (z <= -options_.early_stop_z &&
          outcome.control_clicks >= options_.min_clicks) {
        outcome.verdict = Verdict::kRolledBack;
        outcome.early_stopped = true;
        decided = true;
      } else if (z >= options_.early_stop_z) {
        outcome.verdict = Verdict::kPromoted;
        outcome.early_stopped = true;
        decided = true;
      }
    }
  }

  if (!decided) {
    // Final call: too little control signal passes (tiny retailers bounce
    // around zero clicks); otherwise the canary must hold its CTR. An
    // empty canary arm also passes: when every canary sample was excluded
    // (the whole plane shed or fell back, e.g. during a load spike) there
    // is no signal about the batch at all, and rolling back on a measured
    // CTR of 0/0 would be exactly the spurious-overload-rollback this
    // exclusion exists to prevent.
    if (outcome.control_clicks < options_.min_clicks ||
        outcome.canary_impressions == 0) {
      outcome.verdict = Verdict::kPromoted;
    } else {
      outcome.verdict = outcome.CanaryCtr() >=
                                options_.min_relative_ctr * outcome.ControlCtr()
                            ? Verdict::kPromoted
                            : Verdict::kRolledBack;
    }
  }
  Count(outcome);
  return outcome;
}

}  // namespace sigmund::pipeline
