#include "pipeline/binpack.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace sigmund::pipeline {

std::vector<std::vector<PackItem>> FirstFitDecreasing(
    std::vector<PackItem> items, int num_bins) {
  SIGCHECK_GT(num_bins, 0);
  std::sort(items.begin(), items.end(),
            [](const PackItem& a, const PackItem& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.id < b.id;
            });
  std::vector<std::vector<PackItem>> bins(num_bins);
  // Min-heap over (bin weight, bin index): place each item in the
  // currently lightest bin.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int b = 0; b < num_bins; ++b) heap.push({0.0, b});
  for (const PackItem& item : items) {
    auto [weight, bin] = heap.top();
    heap.pop();
    bins[bin].push_back(item);
    heap.push({weight + item.weight, bin});
  }
  return bins;
}

std::vector<std::vector<PackItem>> RoundRobinPack(
    const std::vector<PackItem>& items, int num_bins) {
  SIGCHECK_GT(num_bins, 0);
  std::vector<std::vector<PackItem>> bins(num_bins);
  for (size_t i = 0; i < items.size(); ++i) {
    bins[i % num_bins].push_back(items[i]);
  }
  return bins;
}

double BinWeight(const std::vector<PackItem>& bin) {
  double total = 0.0;
  for (const PackItem& item : bin) total += item.weight;
  return total;
}

double MaxBinWeight(const std::vector<std::vector<PackItem>>& bins) {
  double max_weight = 0.0;
  for (const auto& bin : bins) {
    max_weight = std::max(max_weight, BinWeight(bin));
  }
  return max_weight;
}

}  // namespace sigmund::pipeline
