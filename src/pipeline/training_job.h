#ifndef SIGMUND_PIPELINE_TRAINING_JOB_H_
#define SIGMUND_PIPELINE_TRAINING_JOB_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "cluster/lease.h"
#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "mapreduce/mapreduce.h"
#include "pipeline/config_record.h"
#include "pipeline/registry.h"
#include "sfs/reliable_io.h"
#include "sfs/shared_filesystem.h"

namespace sigmund::pipeline {

// The training MapReduce (§IV-B): input is a randomly permuted collection
// of config records; the map phase runs Train() on each — loading the
// retailer's data, training one model on one "machine" with Hogwild
// threads, checkpointing on a time interval to the shared filesystem, and
// recovering from (injected) preemptions by restoring the latest
// checkpoint. The reduce phase writes out the output config records, now
// carrying hold-out metrics.
class TrainingJob {
 public:
  struct Options {
    // MapReduce shape. One map task models one machine working through a
    // chunk of config records ("workers assigned small retailers process
    // more training tasks", §IV-B1).
    int num_map_tasks = 8;
    int max_parallel_tasks = 2;

    // Hogwild threads for each model (§IV-B2: one retailer per machine,
    // multiple threads managed in user code).
    int threads_per_model = 1;

    // Time-based checkpointing (§IV-B3). Time is simulated: each epoch
    // advances a per-task clock by simulated_seconds_per_step * steps, so
    // checkpoint cadence depends on retailer size exactly as in
    // production, without wall-clock waits.
    double checkpoint_interval_seconds = 300.0;
    double simulated_seconds_per_step = 1e-3;

    // Mid-training preemption injection: probability that a training run
    // is killed at each epoch boundary. The task restores the latest
    // checkpoint and continues — re-doing any work since it.
    double preemption_prob_per_epoch = 0.0;

    // Lease-based churn (§IV-B: training runs in preemptible cells). When
    // churn.preemption_rate_per_hour > 0, every model trains under a
    // revocable machine lease from a PreemptibleExecutor: eviction times
    // follow an exponential schedule on the task's simulated clock; a
    // lease checked inside the grace window flushes a final
    // ForceCheckpoint before the machine disappears; a task evicted
    // churn.escalate_after_evictions times is escalated to regular
    // (non-revocable) priority so it can still meet the daily deadline.
    cluster::ChurnConfig churn;

    // Forward-progress guard: total preemptions + evictions a single
    // model may absorb before injection is disabled for it. Exhaustion is
    // counted (training_preemption_budget_exhausted_total) and marks the
    // output record degraded.
    int preemption_budget = 50;

    // Deadline on each model's simulated training clock (seconds);
    // 0 = none. A model that overruns stops early, is committed as-is so
    // the retailer stays servable, and its record is marked degraded.
    double per_model_deadline_seconds = 0.0;

    // Whole-task failure injection at the MapReduce layer (the task's
    // buffered output is discarded and the task retried; durable SFS
    // checkpoints survive, so retries resume rather than restart).
    double map_task_failure_prob = 0.0;
    double reduce_task_failure_prob = 0.0;
    int max_attempts_per_task = 10;

    // Retry policy for all SFS access (models, checkpoints): transient
    // kUnavailable errors are retried with backoff before a task attempt
    // is declared failed.
    RetryPolicy sfs_retry;

    // Large-retailer MAP estimation (§III-C2): retailers with more items
    // than the threshold are evaluated on a sampled item fraction.
    int sampled_eval_threshold_items = 2000;
    double sampled_eval_fraction = 0.1;

    uint64_t seed = 42;

    // --- Observability (all borrowed; null = off; never affects
    // training results). When wired, the job registers training_* counters
    // and latency histograms in `metrics`, opens a `job_label` span with
    // per-model child spans in `tracer`, and labels its MapReduce metrics
    // with `job_label`. `clock` drives the sfs_op_micros latency samples
    // so they are deterministic under SimClock; null = RealClock.
    obs::MetricRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    const Clock* clock = nullptr;
    std::string job_label = "training";
  };

  // Counters aggregated across all map tasks and attempts.
  struct Stats {
    std::atomic<int64_t> models_trained{0};
    std::atomic<int64_t> checkpoints_written{0};
    std::atomic<int64_t> preemptions{0};
    std::atomic<int64_t> restored_from_checkpoint{0};
    std::atomic<int64_t> epochs_recovered{0};  // epochs NOT redone thanks
                                               // to checkpoints
    std::atomic<int64_t> corrupt_checkpoints_skipped{0};
    // Lease churn: revocations suffered, final checkpoints flushed inside
    // the eviction-grace window, revocations that missed the window, and
    // tasks escalated from preemptible to regular priority.
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> eviction_grace_checkpoints{0};
    std::atomic<int64_t> hard_evictions{0};
    std::atomic<int64_t> priority_escalations{0};
    // Degradation ladder: models whose preemption budget ran out, whose
    // deadline passed, and output records marked degraded for any reason.
    std::atomic<int64_t> preemption_budget_exhausted{0};
    std::atomic<int64_t> deadline_exceeded{0};
    std::atomic<int64_t> degraded_records{0};
    // Total simulated training time across all model-training attempts
    // (each map task runs its own SimClock; see
    // Options::simulated_seconds_per_step).
    std::atomic<int64_t> simulated_train_micros{0};
    mapreduce::MapReduceStats mapreduce;
    // Retry + corruption counters for all SFS I/O done by the mappers.
    sfs::ReliableIoCounters io;
  };

  // `fs` and `registry` are borrowed.
  TrainingJob(sfs::SharedFileSystem* fs, const RetailerRegistry* registry,
              const Options& options)
      : fs_(fs), registry_(registry), options_(options) {}

  // Trains every record in `plan`; returns the output config records with
  // metrics filled, sorted by key. Models are written to each record's
  // model_path in the shared filesystem.
  StatusOr<std::vector<ConfigRecord>> Run(
      const std::vector<ConfigRecord>& plan);

  const Stats& stats() const { return stats_; }

 private:
  // Adds this run's counters to options_.metrics (no-op when
  // observability is off). Called once per Run, success or failure.
  void MirrorStatsToRegistry();

  sfs::SharedFileSystem* fs_;
  const RetailerRegistry* registry_;
  Options options_;
  Stats stats_;
};

// Splits the training plan into one independent MapReduce per cell
// (§IV-B1: "We identify data centers that have unused resources, and
// break down the job into several independent MapReduces so that there is
// one for each data center"). Each config record runs in the cell that
// holds its retailer's data shard (`data_homes`, from the
// DataPlacementPlanner); records for unplaced retailers go to the first
// cell.
class MultiCellTrainingJob {
 public:
  struct Options {
    std::vector<std::string> cells;  // must be non-empty
    TrainingJob::Options per_cell;
  };

  struct CellReport {
    std::string cell;
    int models_trained = 0;
    int64_t checkpoints_written = 0;
    int64_t preemptions = 0;
    int64_t map_attempts = 0;
    int64_t map_failures = 0;
    int64_t reduce_attempts = 0;
    int64_t reduce_failures = 0;
    int64_t sfs_retries = 0;
    int64_t corruptions_detected = 0;
    int64_t evictions = 0;
    int64_t priority_escalations = 0;
  };

  MultiCellTrainingJob(sfs::SharedFileSystem* fs,
                       const RetailerRegistry* registry,
                       const Options& options)
      : fs_(fs), registry_(registry), options_(options) {}

  // Runs every cell's MapReduce and returns the merged output records,
  // sorted by key (same contract as TrainingJob::Run).
  StatusOr<std::vector<ConfigRecord>> Run(
      const std::vector<ConfigRecord>& plan,
      const std::map<data::RetailerId, std::string>& data_homes);

  const std::vector<CellReport>& cell_reports() const {
    return cell_reports_;
  }

 private:
  sfs::SharedFileSystem* fs_;
  const RetailerRegistry* registry_;
  Options options_;
  std::vector<CellReport> cell_reports_;
};

}  // namespace sigmund::pipeline

#endif  // SIGMUND_PIPELINE_TRAINING_JOB_H_
