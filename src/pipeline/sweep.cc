#include "pipeline/sweep.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace sigmund::pipeline {

std::vector<ConfigRecord> SweepPlanner::GridFor(
    data::RetailerId retailer, const data::Catalog& catalog) const {
  std::vector<core::HyperParams> grid = core::BuildGrid(
      options_.grid, catalog,
      SplitMix64(options_.seed) ^ static_cast<uint64_t>(retailer));
  std::vector<ConfigRecord> records;
  records.reserve(grid.size());
  for (size_t m = 0; m < grid.size(); ++m) {
    ConfigRecord record;
    record.retailer = retailer;
    record.model_number = static_cast<int>(m);
    record.params = grid[m];
    record.model_path = ModelPath(retailer, record.model_number);
    record.warm_start = false;
    records.push_back(std::move(record));
  }
  return records;
}

void SweepPlanner::FinishPlan(std::vector<ConfigRecord>* plan) const {
  if (options_.shuffle) {
    // "The input config records are randomly permuted before being
    // written so that training tasks are randomly divided across
    // different MapReduces" and balanced within one (§IV-B1).
    Rng rng(SplitMix64(options_.seed) ^ 0xB417ULL);
    rng.Shuffle(plan);
  }
}

std::vector<ConfigRecord> SweepPlanner::PlanFullSweep(
    const RetailerRegistry& registry) const {
  std::vector<ConfigRecord> plan;
  for (data::RetailerId id : registry.Ids()) {
    StatusOr<const data::RetailerData*> data = registry.Get(id);
    SIGCHECK(data.ok());
    std::vector<ConfigRecord> grid = GridFor(id, (*data)->catalog);
    plan.insert(plan.end(), grid.begin(), grid.end());
  }
  FinishPlan(&plan);
  return plan;
}

std::vector<ConfigRecord> SweepPlanner::PlanIncrementalSweep(
    const RetailerRegistry& registry,
    const std::vector<ConfigRecord>& previous_results) const {
  // Latest trained metrics per (retailer, model_number).
  std::map<data::RetailerId, std::map<int, ConfigRecord>> latest;
  for (const ConfigRecord& record : previous_results) {
    if (!record.trained) continue;
    latest[record.retailer][record.model_number] = record;
  }

  std::vector<ConfigRecord> plan;
  for (data::RetailerId id : registry.Ids()) {
    auto it = latest.find(id);
    if (it == latest.end()) {
      // New retailer: "an incremental sweep may include a new retailer
      // ... in which case Sigmund trains all possible combinations of
      // hyper-parameters for that retailer alone" (§IV-A).
      StatusOr<const data::RetailerData*> data = registry.Get(id);
      SIGCHECK(data.ok());
      std::vector<ConfigRecord> grid = GridFor(id, (*data)->catalog);
      plan.insert(plan.end(), grid.begin(), grid.end());
      continue;
    }
    // Existing retailer: top-K previous models by MAP@10, warm-started.
    std::vector<ConfigRecord> candidates;
    for (const auto& [model_number, record] : it->second) {
      candidates.push_back(record);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const ConfigRecord& a, const ConfigRecord& b) {
                if (a.map_at_10 != b.map_at_10) {
                  return a.map_at_10 > b.map_at_10;
                }
                return a.model_number < b.model_number;
              });
    const int keep = std::min<int>(options_.incremental_top_k,
                                   static_cast<int>(candidates.size()));
    for (int k = 0; k < keep; ++k) {
      ConfigRecord record = candidates[k];
      record.warm_start = true;
      record.trained = false;
      record.map_at_10 = -1.0;
      record.auc = -1.0;
      record.epochs_run = 0;
      record.sgd_steps = 0;
      plan.push_back(std::move(record));
    }
  }
  FinishPlan(&plan);
  return plan;
}

}  // namespace sigmund::pipeline
