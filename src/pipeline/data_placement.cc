#include "pipeline/data_placement.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "pipeline/binpack.h"

namespace sigmund::pipeline {

std::string DataPlacementPlanner::ShardPath(const std::string& cell,
                                            data::RetailerId retailer) {
  return StrFormat("cells/%s/data/r%d", cell.c_str(), retailer);
}

DataPlacementPlanner::Plan DataPlacementPlanner::PlanPlacement(
    const RetailerRegistry& registry) const {
  SIGCHECK(!options_.cells.empty());
  std::vector<PackItem> items;
  for (data::RetailerId id : registry.Ids()) {
    StatusOr<const data::RetailerData*> data = registry.Get(id);
    SIGCHECK(data.ok());
    items.push_back(
        PackItem{id, static_cast<double>((*data)->TotalInteractions())});
  }
  auto bins =
      FirstFitDecreasing(items, static_cast<int>(options_.cells.size()));

  Plan plan;
  for (size_t cell = 0; cell < bins.size(); ++cell) {
    const std::string& name = options_.cells[cell];
    int64_t work = 0;
    for (const PackItem& item : bins[cell]) {
      plan.home_cell[static_cast<data::RetailerId>(item.id)] = name;
      work += static_cast<int64_t>(item.weight);
    }
    plan.cell_work[name] = work;
  }
  return plan;
}

Status DataPlacementPlanner::Materialize(
    const RetailerRegistry& registry, const Plan& plan,
    const std::map<data::RetailerId, std::string>& previous,
    sfs::FileTransferLedger* ledger, const RetryPolicy& policy,
    sfs::ReliableIoCounters* io) const {
  RetryStats* retry_stats = io != nullptr ? &io->retry : nullptr;
  for (const auto& [retailer, cell] : plan.home_cell) {
    StatusOr<const data::RetailerData*> data = registry.Get(retailer);
    if (!data.ok()) return data.status();

    auto it = previous.find(retailer);
    const std::string previous_cell =
        it == previous.end() ? std::string() : it->second;
    const std::string path = ShardPath(cell, retailer);
    if (previous_cell == cell && fs_->Exists(path)) {
      continue;  // already local to the compute cell
    }

    std::string shard = data::SerializeRetailerData(**data);
    const int64_t bytes = static_cast<int64_t>(shard.size());
    SIGMUND_RETURN_IF_ERROR(
        sfs::WriteChecksummedFile(fs_, path, shard, policy, io));
    if (!previous_cell.empty() && previous_cell != cell) {
      // Cross-cell copy; drop the stale replica (best effort with retry:
      // a leftover replica wastes space but is never read).
      ledger->RecordTransfer(previous_cell, cell, bytes);
      Status s = RetryWithPolicy(policy, retry_stats, [&] {
        Status d = fs_->Delete(ShardPath(previous_cell, retailer));
        if (d.code() == StatusCode::kNotFound) return OkStatus();
        return d;
      });
      if (!s.ok()) return s;
    } else if (previous_cell.empty()) {
      // First upload from the ingestion system (outside any cell).
      ledger->RecordTransfer("ingest", cell, bytes);
    }
  }
  return OkStatus();
}

double DataPlacementPlanner::MigrationCost(
    const sfs::FileTransferLedger& ledger) const {
  return options_.dollars_per_gb *
         (static_cast<double>(ledger.total_bytes()) / (1024.0 * 1024.0 *
                                                       1024.0));
}

}  // namespace sigmund::pipeline
