#include "pipeline/ledger.h"

#include <algorithm>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/string_util.h"

namespace sigmund::pipeline {
namespace {

constexpr char kEntryMagic[4] = {'S', 'G', 'L', '1'};
constexpr size_t kEntryHeaderSize = 4 + 4 + 8;

// Parses the numeric suffix of "<prefix><NNNNNN>" names; -1 on mismatch.
int ParseDaySuffix(std::string_view name, std::string_view prefix) {
  if (name.size() <= prefix.size() ||
      name.substr(0, prefix.size()) != prefix) {
    return -1;
  }
  int64_t day = 0;
  if (!ParseInt64(std::string(name.substr(prefix.size())), &day) || day < 0) {
    return -1;
  }
  return static_cast<int>(day);
}

void WriteChain(BinaryWriter* writer, const VersionChainState& chain) {
  writer->Write<int64_t>(chain.active);
  writer->Write<int64_t>(chain.next_version);
  writer->WriteVector(chain.retained);
}

bool ReadChain(BinaryReader* reader, VersionChainState* chain) {
  return reader->Read(&chain->active) && reader->Read(&chain->next_version) &&
         reader->ReadVector(&chain->retained);
}

void WriteChainMap(BinaryWriter* writer,
                   const std::map<data::RetailerId, VersionChainState>& map) {
  writer->Write<uint64_t>(map.size());
  for (const auto& [retailer, chain] : map) {
    writer->Write<int32_t>(retailer);
    WriteChain(writer, chain);
  }
}

bool ReadChainMap(BinaryReader* reader,
                  std::map<data::RetailerId, VersionChainState>* map) {
  uint64_t count = 0;
  if (!reader->Read(&count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    int32_t retailer = 0;
    VersionChainState chain;
    if (!reader->Read(&retailer) || !ReadChain(reader, &chain)) return false;
    (*map)[retailer] = std::move(chain);
  }
  return true;
}

}  // namespace

RunLedger::RunLedger(sfs::SharedFileSystem* fs, const Options& options,
                     const RetryPolicy& retry, sfs::ReliableIoCounters* io,
                     obs::MetricRegistry* metrics)
    : fs_(fs), options_(options), retry_(retry), io_(io) {
  if (metrics != nullptr) {
    appends_counter_ = metrics->GetCounter("pipeline_ledger_appends_total");
  }
}

void RunLedger::StartDay(int day) {
  day_ = day;
  buffer_.clear();
}

void RunLedger::ResumeDay(int day, const std::vector<Entry>& entries) {
  day_ = day;
  buffer_.clear();
  for (const Entry& entry : entries) buffer_ += EncodeEntry(entry);
}

Status RunLedger::Append(const Entry& entry) {
  if (day_ < 0) return FailedPreconditionError("ledger day not started");
  buffer_ += EncodeEntry(entry);
  const std::string path = DayPath(day_);
  RetryStats* stats = io_ != nullptr ? &io_->retry : nullptr;
  RetryStats local;
  SIGMUND_RETURN_IF_ERROR(
      RetryWithPolicy(retry_, stats != nullptr ? stats : &local,
                      [&] { return fs_->Write(path, buffer_); }));
  ++appends_;
  bytes_written_ += static_cast<int64_t>(buffer_.size());
  if (appends_counter_ != nullptr) appends_counter_->Add(1);
  return OkStatus();
}

std::string RunLedger::EncodeEntry(const Entry& entry) {
  BinaryWriter body;
  body.Write<uint8_t>(static_cast<uint8_t>(entry.op));
  body.Write<int32_t>(entry.day);
  body.Write<int32_t>(entry.retailer);
  body.Write<int64_t>(entry.version);
  body.WriteString(entry.tag);
  body.WriteString(entry.payload);

  std::string frame;
  frame.reserve(kEntryHeaderSize + body.buffer().size());
  frame.append(kEntryMagic, sizeof(kEntryMagic));
  const uint32_t crc = Crc32(body.buffer());
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  const uint64_t size = body.buffer().size();
  frame.append(reinterpret_cast<const char*>(&size), sizeof(size));
  frame += body.buffer();
  return frame;
}

RunLedger::DecodeResult RunLedger::DecodeLog(std::string_view bytes) {
  DecodeResult result;
  size_t offset = 0;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kEntryHeaderSize ||
        bytes.compare(offset, sizeof(kEntryMagic),
                      std::string_view(kEntryMagic, sizeof(kEntryMagic))) !=
            0) {
      break;
    }
    uint32_t crc = 0;
    uint64_t size = 0;
    std::memcpy(&crc, bytes.data() + offset + 4, sizeof(crc));
    std::memcpy(&size, bytes.data() + offset + 8, sizeof(size));
    if (size > bytes.size() - offset - kEntryHeaderSize) break;
    const std::string_view body =
        bytes.substr(offset + kEntryHeaderSize, size);
    if (Crc32(body) != crc) break;

    BinaryReader reader(body);
    Entry entry;
    uint8_t op = 0;
    if (!reader.Read(&op) || op > static_cast<uint8_t>(Op::kDayComplete) ||
        !reader.Read(&entry.day) || !reader.Read(&entry.retailer) ||
        !reader.Read(&entry.version) || !reader.ReadString(&entry.tag) ||
        !reader.ReadString(&entry.payload) || !reader.Done()) {
      break;
    }
    entry.op = static_cast<Op>(op);
    result.entries.push_back(std::move(entry));
    offset += kEntryHeaderSize + size;
  }
  result.valid_bytes = offset;
  result.torn_tail = offset < bytes.size();
  return result;
}

std::string RunLedger::DayPath(int day) const {
  return StrFormat("%s/day%06d.log", options_.dir.c_str(), day);
}

StatusOr<RunLedger::DecodeResult> RunLedger::ReadDay(int day) const {
  RetryStats local;
  RetryStats* stats = io_ != nullptr ? &io_->retry : &local;
  StatusOr<std::string> bytes = RetryWithPolicy<std::string>(
      retry_, stats, [&] { return fs_->Read(DayPath(day)); });
  if (!bytes.ok()) return bytes.status();
  return DecodeLog(*bytes);
}

Status RunLedger::RetireOldDays(int current_day, int64_t* deleted) {
  RetryStats local;
  RetryStats* stats = io_ != nullptr ? &io_->retry : &local;
  StatusOr<std::vector<std::string>> names = RetryWithPolicy<
      std::vector<std::string>>(
      retry_, stats, [&] { return fs_->List(options_.dir + "/day"); });
  if (!names.ok()) return names.status();
  const int keep_from = current_day - std::max(1, options_.retain_days) + 1;
  for (const std::string& name : *names) {
    std::string_view stem = name;
    if (stem.size() < 4 || stem.substr(stem.size() - 4) != ".log") continue;
    stem.remove_suffix(4);
    const int day = ParseDaySuffix(stem, options_.dir + "/day");
    if (day < 0 || day >= keep_from) continue;
    SIGMUND_RETURN_IF_ERROR(
        RetryWithPolicy(retry_, stats, [&] { return fs_->Delete(name); }));
    if (deleted != nullptr) ++*deleted;
  }
  return OkStatus();
}

std::string RunLedger::SnapshotPath(int day) const {
  return StrFormat("%s/snapshot.v%06d", options_.state_dir.c_str(), day);
}

std::string RunLedger::SnapshotTmpPath() const {
  return options_.state_dir + "/snapshot.tmp";
}

Status RunLedger::WriteSnapshotTmp(std::string_view payload) {
  return sfs::WriteChecksummedFile(fs_, SnapshotTmpPath(), payload, retry_,
                                   io_);
}

Status RunLedger::CommitSnapshot(int day) {
  RetryStats local;
  RetryStats* stats = io_ != nullptr ? &io_->retry : &local;
  return RetryWithPolicy(retry_, stats, [&] {
    return fs_->Rename(SnapshotTmpPath(), SnapshotPath(day));
  });
}

StatusOr<std::pair<int, std::string>> RunLedger::ReadLatestSnapshot() const {
  RetryStats local;
  RetryStats* stats = io_ != nullptr ? &io_->retry : &local;
  const std::string prefix = options_.state_dir + "/snapshot.v";
  StatusOr<std::vector<std::string>> names =
      RetryWithPolicy<std::vector<std::string>>(
          retry_, stats, [&] { return fs_->List(prefix); });
  if (!names.ok()) return names.status();
  std::vector<int> days;
  for (const std::string& name : *names) {
    const int day = ParseDaySuffix(name, prefix);
    if (day >= 0) days.push_back(day);
  }
  std::sort(days.rbegin(), days.rend());
  for (int day : days) {
    StatusOr<std::string> payload =
        sfs::ReadChecksummedFile(fs_, SnapshotPath(day), retry_, io_);
    if (payload.ok()) return std::make_pair(day, *std::move(payload));
    if (payload.status().code() != StatusCode::kDataLoss) {
      return payload.status();
    }
    // Corrupt snapshot (already counted through io_): fall back to the
    // next older one — losing a day of control state degrades warm
    // starts, never correctness of what is served.
  }
  return NotFoundError("no readable state snapshot");
}

Status RunLedger::RetireOldSnapshots(int current_day, int64_t* deleted) {
  RetryStats local;
  RetryStats* stats = io_ != nullptr ? &io_->retry : &local;
  const std::string prefix = options_.state_dir + "/snapshot.v";
  StatusOr<std::vector<std::string>> names =
      RetryWithPolicy<std::vector<std::string>>(
          retry_, stats, [&] { return fs_->List(prefix); });
  if (!names.ok()) return names.status();
  const int keep_from =
      current_day - std::max(1, options_.retain_snapshots) + 1;
  for (const std::string& name : *names) {
    const int day = ParseDaySuffix(name, prefix);
    if (day < 0 || day >= keep_from) continue;
    SIGMUND_RETURN_IF_ERROR(
        RetryWithPolicy(retry_, stats, [&] { return fs_->Delete(name); }));
    if (deleted != nullptr) ++*deleted;
  }
  return OkStatus();
}

std::string ServiceSnapshot::Serialize() const {
  BinaryWriter writer;
  writer.Write<int32_t>(days_run);
  writer.Write<uint64_t>(previous_results.size());
  for (const std::string& record : previous_results) {
    writer.WriteString(record);
  }
  writer.Write<uint64_t>(shard_homes.size());
  for (const auto& [retailer, cell] : shard_homes) {
    writer.Write<int32_t>(retailer);
    writer.WriteString(cell);
  }
  writer.WriteString(monitor_state);
  writer.WriteString(sentry_state);
  WriteChainMap(&writer, store_versions);
  WriteChainMap(&writer, index_versions);
  return writer.Take();
}

StatusOr<ServiceSnapshot> ServiceSnapshot::Deserialize(
    std::string_view bytes) {
  BinaryReader reader(bytes);
  ServiceSnapshot snapshot;
  uint64_t count = 0;
  if (!reader.Read(&snapshot.days_run) || !reader.Read(&count)) {
    return DataLossError("truncated service snapshot");
  }
  snapshot.previous_results.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string record;
    if (!reader.ReadString(&record)) {
      return DataLossError("truncated service snapshot (results)");
    }
    snapshot.previous_results.push_back(std::move(record));
  }
  if (!reader.Read(&count)) {
    return DataLossError("truncated service snapshot (placement)");
  }
  for (uint64_t i = 0; i < count; ++i) {
    int32_t retailer = 0;
    std::string cell;
    if (!reader.Read(&retailer) || !reader.ReadString(&cell)) {
      return DataLossError("truncated service snapshot (placement)");
    }
    snapshot.shard_homes[retailer] = std::move(cell);
  }
  if (!reader.ReadString(&snapshot.monitor_state) ||
      !reader.ReadString(&snapshot.sentry_state) ||
      !ReadChainMap(&reader, &snapshot.store_versions) ||
      !ReadChainMap(&reader, &snapshot.index_versions) || !reader.Done()) {
    return DataLossError("truncated service snapshot (state)");
  }
  return snapshot;
}

}  // namespace sigmund::pipeline
