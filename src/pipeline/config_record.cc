#include "pipeline/config_record.h"

#include "common/string_util.h"

namespace sigmund::pipeline {

std::string ConfigRecord::Key() const {
  return StrFormat("r%d/m%03d", retailer, model_number);
}

std::string ConfigRecord::Serialize() const {
  // Hyperparams already use ';' and '='; separate top-level fields with
  // '&' to stay unambiguous.
  return StrFormat(
      "retailer=%d&model=%d&path=%s&warm=%d&trained=%d&deg=%d&map=%.17g&"
      "auc=%.17g&epochs=%d&steps=%lld&hp=%s",
      retailer, model_number, model_path.c_str(), warm_start ? 1 : 0,
      trained ? 1 : 0, degraded ? 1 : 0, map_at_10, auc, epochs_run,
      static_cast<long long>(sgd_steps), params.Serialize().c_str());
}

StatusOr<ConfigRecord> ConfigRecord::Deserialize(const std::string& text) {
  ConfigRecord record;
  for (const std::string& piece : StrSplit(text, '&')) {
    if (piece.empty()) continue;
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("malformed config piece: " + piece);
    }
    std::string key = piece.substr(0, eq);
    std::string value = piece.substr(eq + 1);
    int64_t i = 0;
    double d = 0.0;
    bool ok = true;
    if (key == "retailer") {
      ok = ParseInt64(value, &i);
      record.retailer = static_cast<data::RetailerId>(i);
    } else if (key == "model") {
      ok = ParseInt64(value, &i);
      record.model_number = static_cast<int>(i);
    } else if (key == "path") {
      record.model_path = value;
    } else if (key == "warm") {
      ok = ParseInt64(value, &i);
      record.warm_start = i != 0;
    } else if (key == "trained") {
      ok = ParseInt64(value, &i);
      record.trained = i != 0;
    } else if (key == "deg") {
      ok = ParseInt64(value, &i);
      record.degraded = i != 0;
    } else if (key == "map") {
      ok = ParseDouble(value, &d);
      record.map_at_10 = d;
    } else if (key == "auc") {
      ok = ParseDouble(value, &d);
      record.auc = d;
    } else if (key == "epochs") {
      ok = ParseInt64(value, &i);
      record.epochs_run = static_cast<int>(i);
    } else if (key == "steps") {
      ok = ParseInt64(value, &i);
      record.sgd_steps = i;
    } else if (key == "hp") {
      StatusOr<core::HyperParams> params =
          core::HyperParams::Deserialize(value);
      if (!params.ok()) return params.status();
      record.params = *params;
    } else {
      return InvalidArgumentError("unknown config key: " + key);
    }
    if (!ok) {
      return InvalidArgumentError("unparseable config value: " + piece);
    }
  }
  return record;
}

std::string ModelPath(data::RetailerId retailer, int model_number) {
  return StrFormat("models/r%d/m%03d", retailer, model_number);
}

std::string BestModelPath(data::RetailerId retailer) {
  return StrFormat("models/r%d/best", retailer);
}

std::string CheckpointDir(data::RetailerId retailer, int model_number) {
  return StrFormat("checkpoints/r%d/m%03d", retailer, model_number);
}

std::string RecommendationPath(data::RetailerId retailer) {
  return StrFormat("recommendations/r%d", retailer);
}

std::string SweepResultPath(data::RetailerId retailer) {
  return StrFormat("sweep_results/r%d", retailer);
}

std::string RecommendationVersionPath(data::RetailerId retailer,
                                      int64_t version) {
  return StrFormat("recommendations/r%d.v%06lld", retailer,
                   static_cast<long long>(version));
}

std::string TmpPath(const std::string& path) { return path + ".tmp"; }

}  // namespace sigmund::pipeline
