#include "pipeline/training_job.h"

#include <memory>

#include "cluster/executor.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/evaluator.h"
#include "core/grid_search.h"
#include "core/negative_sampler.h"
#include "core/trainer.h"
#include "pipeline/checkpoint.h"

namespace sigmund::pipeline {

namespace {

// The Train() function of §IV-B, as a Mapper: one config record in, one
// trained model in SFS + one output config record out.
class TrainMapper : public mapreduce::Mapper {
 public:
  // `model_micros` (simulated per-model training latency histogram) and
  // `parent_span_id` wire observability; both are optional. Map tasks run
  // on pool threads, so per-model spans attach to the job span by
  // explicit parent id rather than the tracer's thread-local stack.
  // `executor` (shared by every map task of the run) hands out the
  // revocable machine leases each model trains under; never null, but
  // inert unless churn is configured.
  TrainMapper(sfs::SharedFileSystem* fs, const RetailerRegistry* registry,
              const TrainingJob::Options* options, TrainingJob::Stats* stats,
              cluster::PreemptibleExecutor* executor,
              obs::Histogram* model_micros, int64_t parent_span_id)
      : fs_(fs),
        registry_(registry),
        options_(options),
        stats_(stats),
        executor_(executor),
        model_micros_(model_micros),
        parent_span_id_(parent_span_id) {}

  Status Map(const mapreduce::Record& input,
             const mapreduce::Emitter& emit) override {
    StatusOr<ConfigRecord> parsed = ConfigRecord::Deserialize(input.value);
    if (!parsed.ok()) return parsed.status();
    ConfigRecord record = std::move(parsed).value();

    obs::Span model_span;
    if (options_->tracer != nullptr) {
      model_span = options_->tracer->StartSpan(
          "train/retailer" + std::to_string(record.retailer) + "/m" +
              std::to_string(record.model_number),
          parent_span_id_);
    }

    StatusOr<const data::RetailerData*> retailer =
        registry_->Get(record.retailer);
    if (!retailer.ok()) return retailer.status();
    const data::RetailerData& data = **retailer;
    const data::Catalog* catalog = &data.catalog;

    // Build the per-model training state.
    data::TrainTestSplit split = data::SplitLeaveLastOut(data);
    core::TrainingData training_data(&split.train, catalog->num_items());
    core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
        split.train, catalog->num_items(), {});

    Rng rng(SplitMix64(record.params.seed) ^
            SplitMix64(static_cast<uint64_t>(record.retailer) * 131 +
                       record.model_number));
    Rng preempt_rng(SplitMix64(options_->seed) ^
                    SplitMix64(static_cast<uint64_t>(record.retailer) * 977 +
                               record.model_number));

    // Per-task simulated clock: checkpoint cadence follows simulated
    // training time, which scales with retailer size.
    SimClock clock;
    CheckpointManager checkpoints(
        fs_, &clock, CheckpointDir(record.retailer, record.model_number),
        options_->checkpoint_interval_seconds, options_->sfs_retry,
        &stats_->io);

    core::BprModel model(catalog, record.params);
    int start_epoch = 0;
    if (checkpoints.HasCheckpoint()) {
      // A previous (preempted) attempt left a durable checkpoint: resume.
      // Restore reports a corrupt checkpoint as kNotFound, so the task
      // falls through to a clean restart instead of crashing.
      StatusOr<CheckpointManager::Restored> restored =
          checkpoints.Restore(catalog);
      if (restored.ok() &&
          restored->model.params() == record.params) {
        model = std::move(restored->model);
        model.ResizeForCatalog(&rng);
        start_epoch = restored->epoch + 1;
        stats_->restored_from_checkpoint.fetch_add(1);
        stats_->epochs_recovered.fetch_add(start_epoch);
      } else {
        if (!restored.ok() &&
            restored.status().code() != StatusCode::kNotFound) {
          return restored.status();  // transient; task attempt retried
        }
        model.InitRandom(&rng);
      }
    } else if (record.warm_start && fs_->Exists(record.model_path)) {
      // Incremental run: warm-start from yesterday's model (§III-C3).
      StatusOr<std::string> bytes = sfs::ReadChecksummedFile(
          fs_, record.model_path, options_->sfs_retry, &stats_->io);
      if (!bytes.ok() &&
          bytes.status().code() != StatusCode::kDataLoss) {
        return bytes.status();  // transient; task attempt retried
      }
      StatusOr<core::BprModel> previous =
          bytes.ok() ? core::BprModel::Deserialize(*bytes, catalog)
                     : StatusOr<core::BprModel>(bytes.status());
      if (previous.ok()) {
        StatusOr<core::BprModel> warm = core::WarmStartFrom(
            *previous, catalog, record.params, &rng);
        if (warm.ok()) {
          model = std::move(warm).value();
        } else {
          model.InitRandom(&rng);
        }
      } else {
        model.InitRandom(&rng);
      }
    } else {
      model.InitRandom(&rng);
    }

    std::unique_ptr<core::NegativeSampler> sampler =
        core::MakeNegativeSampler(record.params, catalog, &training_data,
                                  &model, &cooccurrence);
    core::BprTrainer trainer(&model, &training_data, sampler.get());

    // Training loop with mid-training preemption injection: a preemption
    // throws away everything since the last durable checkpoint, exactly
    // like losing the machine.
    const double epoch_seconds = options_->simulated_seconds_per_step *
                                 static_cast<double>(
                                     training_data.num_positions());
    // Acquire the machine this model trains on. With churn configured the
    // lease is revocable on the task's simulated clock; otherwise it is a
    // stable machine and Check() below always reports kHeld.
    const std::string task_key = record.Key();
    const bool lease_revocable = executor_->churn_enabled();
    cluster::MachineLease lease =
        executor_->Acquire(task_key, clock.NowSeconds());

    int64_t total_steps = 0;
    Status checkpoint_error;
    // Forward-progress guard for pathological configs (preemption
    // probability ~1 with checkpointing disabled, or churn so aggressive
    // the inter-eviction time is shorter than an epoch). Shared by both
    // injection paths: Bernoulli preemptions and lease evictions.
    int preemption_budget = options_->preemption_budget;
    bool budget_exhausted = false;
    bool deadline_hit = false;
    bool injection_disabled = false;
    auto note_budget_exhausted = [&] {
      if (!budget_exhausted) {
        budget_exhausted = true;
        injection_disabled = true;
        stats_->preemption_budget_exhausted.fetch_add(1);
      }
    };
    while (start_epoch < record.params.num_epochs) {
      bool preempted = false;
      bool evicted = false;
      core::BprTrainer::Options train_options;
      train_options.num_threads = options_->threads_per_model;
      train_options.num_epochs = record.params.num_epochs - start_epoch;
      train_options.epoch_callback =
          [&](int epoch, const core::TrainStats&) {
            clock.AdvanceSeconds(epoch_seconds);
            StatusOr<bool> wrote =
                checkpoints.MaybeCheckpoint(model, start_epoch + epoch);
            if (!wrote.ok()) {
              checkpoint_error = wrote.status();
              return false;
            }
            if (*wrote) stats_->checkpoints_written.fetch_add(1);
            // Deadline budget: a model that overruns its share of the
            // daily window stops here; the partial model is still
            // committed (availability) but the record is marked degraded
            // (freshness).
            if (options_->per_model_deadline_seconds > 0.0 &&
                clock.NowSeconds() >= options_->per_model_deadline_seconds) {
              deadline_hit = true;
              stats_->deadline_exceeded.fetch_add(1);
              return false;
            }
            // Lease revocation: the machine is going away. Caught inside
            // the grace window there is time to flush one final
            // checkpoint; past it, everything since the last periodic
            // checkpoint is lost with the machine.
            if (lease_revocable && !injection_disabled) {
              const cluster::MachineLease::State lease_state =
                  lease.Check(clock.NowSeconds());
              if (lease_state != cluster::MachineLease::State::kHeld) {
                if (preemption_budget <= 0) {
                  note_budget_exhausted();
                } else {
                  --preemption_budget;
                  const bool within_grace =
                      lease_state ==
                      cluster::MachineLease::State::kEvictionNotice;
                  if (within_grace) {
                    // A failed grace flush is not fatal: the machine is
                    // gone either way, and restore falls back to the last
                    // periodic checkpoint.
                    Status flushed = checkpoints.ForceCheckpoint(
                        model, start_epoch + epoch);
                    if (flushed.ok()) {
                      stats_->checkpoints_written.fetch_add(1);
                      stats_->eviction_grace_checkpoints.fetch_add(1);
                    }
                  }
                  executor_->OnEviction(task_key, within_grace);
                  evicted = true;
                  return false;
                }
              }
            }
            const bool preempt_draw =
                preempt_rng.Bernoulli(options_->preemption_prob_per_epoch);
            if (preempt_draw && !injection_disabled) {
              if (preemption_budget > 0) {
                --preemption_budget;
                preempted = true;
                stats_->preemptions.fetch_add(1);
                return false;
              }
              note_budget_exhausted();
            }
            return true;
          };
      core::TrainStats train_stats = trainer.Train(train_options);
      total_steps += train_stats.sgd_steps;
      if (!checkpoint_error.ok()) return checkpoint_error;
      if (deadline_hit) {
        start_epoch += train_stats.epochs_run;
        break;
      }
      if (!preempted && !evicted) {
        start_epoch += train_stats.epochs_run;
        break;
      }
      // Rescheduled on a fresh machine: restore the latest checkpoint, or
      // restart from scratch if none was ever written — or if the one that
      // was written turns out to be corrupt (Restore reports kNotFound).
      StatusOr<CheckpointManager::Restored> restored =
          checkpoints.HasCheckpoint()
              ? checkpoints.Restore(catalog)
              : StatusOr<CheckpointManager::Restored>(
                    NotFoundError("no checkpoint"));
      if (restored.ok()) {
        model = std::move(restored->model);
        start_epoch = restored->epoch + 1;
        stats_->restored_from_checkpoint.fetch_add(1);
      } else if (restored.status().code() == StatusCode::kNotFound) {
        model.InitRandom(&rng);
        start_epoch = 0;
      } else {
        return restored.status();  // transient; task attempt retried
      }
      if (evicted) {
        // Rescheduling is not free: pay the restart overhead, then lease
        // the next machine. A task escalated to regular priority comes
        // back on a stable machine (its new lease never expires).
        clock.AdvanceSeconds(
            std::max(0.0, options_->churn.restart_overhead_seconds));
        lease = executor_->Acquire(task_key, clock.NowSeconds());
      }
    }

    // Evaluate on the hold-out set; big retailers use sampled MAP
    // estimation (§III-C2).
    core::Evaluator::Options eval_options;
    if (catalog->num_items() > options_->sampled_eval_threshold_items) {
      eval_options.item_sample_fraction = options_->sampled_eval_fraction;
    }
    core::MetricSet metrics = core::Evaluator::Evaluate(
        model, training_data, split.holdout, eval_options);

    // Commit the final model atomically, then GC the checkpoints. The
    // checksummed write verifies the stored bytes before the rename makes
    // them visible, so a torn write can never publish a corrupt model.
    const std::string tmp = record.model_path + ".tmp";
    SIGMUND_RETURN_IF_ERROR(sfs::WriteChecksummedFile(
        fs_, tmp, model.Serialize(), options_->sfs_retry, &stats_->io));
    SIGMUND_RETURN_IF_ERROR(
        RetryWithPolicy(options_->sfs_retry, &stats_->io.retry, [&] {
          return fs_->Rename(tmp, record.model_path);
        }));
    SIGMUND_RETURN_IF_ERROR(checkpoints.Clear());

    stats_->corrupt_checkpoints_skipped.fetch_add(
        checkpoints.corrupt_checkpoints_detected());
    record.trained = true;
    // Degradation ladder, rung 1: the model shipped, but the training run
    // blew its deadline or its preemption budget. Selection downstream
    // treats the retailer as degraded and keeps serving yesterday's batch
    // when one exists.
    if (deadline_hit || budget_exhausted) {
      record.degraded = true;
      stats_->degraded_records.fetch_add(1);
    }
    record.map_at_10 = metrics.map_at_k;
    record.auc = metrics.auc;
    record.epochs_run = start_epoch;
    record.sgd_steps = total_steps;
    stats_->models_trained.fetch_add(1);
    stats_->simulated_train_micros.fetch_add(clock.NowMicros());
    if (model_micros_ != nullptr) {
      model_micros_->Observe(static_cast<double>(clock.NowMicros()));
    }
    emit(mapreduce::Record{record.Key(), record.Serialize()});
    return OkStatus();
  }

 private:
  sfs::SharedFileSystem* fs_;
  const RetailerRegistry* registry_;
  const TrainingJob::Options* options_;
  TrainingJob::Stats* stats_;
  cluster::PreemptibleExecutor* executor_;
  obs::Histogram* model_micros_;
  int64_t parent_span_id_;
};

}  // namespace

StatusOr<std::vector<ConfigRecord>> TrainingJob::Run(
    const std::vector<ConfigRecord>& plan) {
  obs::Span job_span;
  if (options_.tracer != nullptr) {
    job_span = options_.tracer->StartSpan(options_.job_label);
  }
  obs::Histogram* model_micros =
      options_.metrics != nullptr
          ? options_.metrics->GetHistogram("training_model_simulated_micros")
          : nullptr;
  stats_.io.SetMetrics(options_.metrics, options_.clock);

  std::vector<mapreduce::Record> input;
  input.reserve(plan.size());
  for (const ConfigRecord& record : plan) {
    input.push_back(mapreduce::Record{record.Key(), record.Serialize()});
  }

  mapreduce::MapReduceSpec spec;
  spec.num_map_tasks =
      std::max(1, std::min<int>(options_.num_map_tasks,
                                static_cast<int>(input.size())));
  spec.num_reduce_tasks = 1;  // "the reduce phase writes out the output
                              // config records" (§IV-B)
  spec.max_parallel_tasks = options_.max_parallel_tasks;
  spec.map_task_failure_prob = options_.map_task_failure_prob;
  spec.reduce_task_failure_prob = options_.reduce_task_failure_prob;
  spec.max_attempts_per_task = options_.max_attempts_per_task;
  spec.seed = options_.seed;
  spec.metrics = options_.metrics;
  spec.tracer = options_.tracer;
  spec.clock = options_.clock;
  spec.label = options_.job_label;

  // One lease executor per run: map tasks on pool threads share it, and
  // per-task eviction schedules depend only on (churn seed, record key,
  // incarnation), so churn outcomes are independent of thread scheduling.
  cluster::PreemptibleExecutor::Options executor_options;
  executor_options.churn = options_.churn;
  cluster::PreemptibleExecutor executor(executor_options);

  const int64_t parent_span_id = job_span.id();
  mapreduce::MapReduceJob job(
      spec,
      [this, &executor, model_micros, parent_span_id] {
        return std::make_unique<TrainMapper>(fs_, registry_, &options_,
                                             &stats_, &executor,
                                             model_micros, parent_span_id);
      },
      [] { return mapreduce::IdentityReducer(); });
  StatusOr<std::vector<mapreduce::Record>> output = job.Run(input);
  stats_.mapreduce = job.stats();  // populated even when the job failed
  stats_.evictions.fetch_add(executor.stats().evictions.load());
  stats_.hard_evictions.fetch_add(executor.stats().hard_evictions.load());
  stats_.priority_escalations.fetch_add(
      executor.stats().escalations.load());
  MirrorStatsToRegistry();
  if (!output.ok()) return output.status();

  std::vector<ConfigRecord> results;
  results.reserve(output->size());
  for (const mapreduce::Record& record : *output) {
    StatusOr<ConfigRecord> parsed = ConfigRecord::Deserialize(record.value);
    if (!parsed.ok()) return parsed.status();
    results.push_back(std::move(parsed).value());
  }
  return results;
}

void TrainingJob::MirrorStatsToRegistry() {
  if (options_.metrics == nullptr) return;
  obs::MetricRegistry* m = options_.metrics;
  m->GetCounter("training_models_trained_total")
      ->Add(stats_.models_trained.load());
  m->GetCounter("training_checkpoints_written_total")
      ->Add(stats_.checkpoints_written.load());
  m->GetCounter("training_preemptions_total")
      ->Add(stats_.preemptions.load());
  m->GetCounter("training_restores_total")
      ->Add(stats_.restored_from_checkpoint.load());
  m->GetCounter("training_epochs_recovered_total")
      ->Add(stats_.epochs_recovered.load());
  m->GetCounter("training_corrupt_checkpoints_skipped_total")
      ->Add(stats_.corrupt_checkpoints_skipped.load());
  m->GetCounter("training_simulated_micros_total")
      ->Add(stats_.simulated_train_micros.load());
  m->GetCounter("training_evictions_total")->Add(stats_.evictions.load());
  m->GetCounter("training_eviction_grace_checkpoints_total")
      ->Add(stats_.eviction_grace_checkpoints.load());
  m->GetCounter("training_hard_evictions_total")
      ->Add(stats_.hard_evictions.load());
  m->GetCounter("training_priority_escalations_total")
      ->Add(stats_.priority_escalations.load());
  m->GetCounter("training_preemption_budget_exhausted_total")
      ->Add(stats_.preemption_budget_exhausted.load());
  m->GetCounter("training_deadline_exceeded_total")
      ->Add(stats_.deadline_exceeded.load());
  m->GetCounter("training_degraded_records_total")
      ->Add(stats_.degraded_records.load());
}

StatusOr<std::vector<ConfigRecord>> MultiCellTrainingJob::Run(
    const std::vector<ConfigRecord>& plan,
    const std::map<data::RetailerId, std::string>& data_homes) {
  if (options_.cells.empty()) {
    return InvalidArgumentError("MultiCellTrainingJob needs >= 1 cell");
  }
  cell_reports_.clear();

  // Route each record to its retailer's data cell, preserving the plan's
  // (shuffled) order within each cell.
  std::map<std::string, std::vector<ConfigRecord>> per_cell;
  for (const ConfigRecord& record : plan) {
    auto it = data_homes.find(record.retailer);
    const std::string& cell =
        it != data_homes.end() ? it->second : options_.cells.front();
    per_cell[cell].push_back(record);
  }

  std::vector<ConfigRecord> merged;
  for (const std::string& cell : options_.cells) {
    auto it = per_cell.find(cell);
    if (it == per_cell.end()) continue;
    TrainingJob::Options cell_options = options_.per_cell;
    // Decorrelate failure/preemption draws across cells.
    cell_options.seed =
        SplitMix64(options_.per_cell.seed) ^ std::hash<std::string>()(cell);
    cell_options.job_label = options_.per_cell.job_label + "/" + cell;
    TrainingJob job(fs_, registry_, cell_options);
    StatusOr<std::vector<ConfigRecord>> results = job.Run(it->second);
    if (!results.ok()) return results.status();
    merged.insert(merged.end(), results->begin(), results->end());
    const TrainingJob::Stats& stats = job.stats();
    cell_reports_.push_back(CellReport{
        cell, static_cast<int>(results->size()),
        stats.checkpoints_written.load(),
        stats.preemptions.load(),
        stats.mapreduce.map_attempts,
        stats.mapreduce.map_failures,
        stats.mapreduce.reduce_attempts,
        stats.mapreduce.reduce_failures,
        stats.io.retry.retries.load(),
        stats.io.corruptions_detected.load(),
        stats.evictions.load(),
        stats.priority_escalations.load()});
  }
  std::sort(merged.begin(), merged.end(),
            [](const ConfigRecord& a, const ConfigRecord& b) {
              return a.Key() < b.Key();
            });
  return merged;
}

}  // namespace sigmund::pipeline
