#include "pipeline/registry.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::pipeline {

void RetailerRegistry::Upsert(const data::RetailerData* data) {
  SIGCHECK(data != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  retailers_[data->id] = data;
}

StatusOr<const data::RetailerData*> RetailerRegistry::Get(
    data::RetailerId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = retailers_.find(id);
  if (it == retailers_.end()) {
    return NotFoundError(StrFormat("retailer %d not registered", id));
  }
  return it->second;
}

bool RetailerRegistry::Contains(data::RetailerId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return retailers_.count(id) > 0;
}

std::vector<data::RetailerId> RetailerRegistry::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<data::RetailerId> ids;
  ids.reserve(retailers_.size());
  for (const auto& [id, data] : retailers_) ids.push_back(id);
  return ids;
}

int RetailerRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(retailers_.size());
}

}  // namespace sigmund::pipeline
