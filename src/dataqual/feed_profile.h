#ifndef SIGMUND_DATAQUAL_FEED_PROFILE_H_
#define SIGMUND_DATAQUAL_FEED_PROFILE_H_

#include <stdint.h>

#include <array>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "data/retailer_data.h"
#include "data/types.h"

namespace sigmund::dataqual {

// Log2 buckets for the interactions-per-active-user histogram: bucket b
// counts users whose event count falls in [2^b, 2^(b+1)); the last bucket
// is open-ended. 12 buckets cover 1 .. 4096+ events per user.
inline constexpr int kUserHistBuckets = 12;

// One retailer's daily feed, summarised (DESIGN.md §12): everything the
// DataSentry needs to judge a feed, and nothing else — profiles are tiny
// (O(1) per retailer), so keeping yesterday's around for drift tests is
// free even at the paper's 10k-retailer scale.
struct FeedProfile {
  data::RetailerId retailer = 0;

  // Volume.
  int64_t events = 0;        // total interactions across all users
  int num_users = 0;         // history slots (including empty ones)
  int active_users = 0;      // users with >= 1 event
  int num_items = 0;         // catalog size
  int distinct_items = 0;    // items with >= 1 valid event

  // Action mix, indexed by data::ActionType.
  std::array<int64_t, data::kNumActionTypes> action_counts = {};

  // Integrity. A duplicate is an event identical to its predecessor in
  // the same user's history (same item, action, timestamp) — the
  // signature of a replayed partition. Out-of-order events violate the
  // ascending-timestamp contract of RetailerData::histories. Invalid-item
  // events reference an item outside [0, num_items).
  int64_t duplicate_events = 0;
  int64_t out_of_order_events = 0;
  int64_t invalid_item_events = 0;

  // Timestamps (over valid events; 0/0 when the feed is empty).
  int64_t min_timestamp = 0;
  int64_t max_timestamp = 0;

  // Concentration: the single busiest user's event count. A bot flood
  // shows up as one user owning an outsized share of the feed.
  int64_t max_user_events = 0;

  // Interactions-per-active-user histogram (log2 buckets, see above).
  std::array<int64_t, kUserHistBuckets> user_events_hist = {};

  // --- Derived views -----------------------------------------------------

  double ActionFraction(data::ActionType action) const;
  // max_user_events / events (0 when empty).
  double TopUserShare() const;
  // The two histograms the drift tests run PSI over.
  std::vector<double> UserHistDistribution() const;
  std::vector<double> ActionMix() const;

  // One-line human-readable summary (for logs and the demo).
  std::string ToString() const;

  // Binary codec for the crash-recovery state snapshot (DESIGN.md §13):
  // last-good baselines must survive a coordinator restart or the first
  // post-crash day would run without drift tests.
  void SerializeTo(BinaryWriter* writer) const;
  // False on truncation; never aborts.
  bool ReadFrom(BinaryReader* reader);

  bool operator==(const FeedProfile&) const = default;
};

// Profiles one retailer's feed in a single pass over the histories.
FeedProfile BuildFeedProfile(const data::RetailerData& data);

}  // namespace sigmund::dataqual

#endif  // SIGMUND_DATAQUAL_FEED_PROFILE_H_
