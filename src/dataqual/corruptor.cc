#include "dataqual/corruptor.h"

#include <algorithm>
#include <utility>

#include "common/random.h"

namespace sigmund::dataqual {

namespace {

// One RNG per (seed, retailer, day[, mode]): the same keying discipline as
// the CTR canary and sfs::FaultInjectingFileSystem, so chaos schedules are
// byte-identical across same-seed reruns regardless of call order.
Rng MakeRng(uint64_t seed, data::RetailerId retailer, int day,
            uint64_t salt) {
  return Rng(SplitMix64(seed * 0x9E3779B97F4A7C15ULL ^
                        SplitMix64((static_cast<uint64_t>(day) << 32) ^
                                   static_cast<uint64_t>(retailer) ^
                                   (salt << 56))));
}

void DuplicateEvents(data::RetailerData* data, double fraction, Rng* rng) {
  for (std::vector<data::Interaction>& history : data->histories) {
    if (history.empty()) continue;
    std::vector<data::Interaction> poisoned;
    poisoned.reserve(history.size() * 2);
    for (const data::Interaction& event : history) {
      poisoned.push_back(event);
      if (rng->Bernoulli(fraction)) poisoned.push_back(event);
    }
    history = std::move(poisoned);
  }
}

void DropPartition(data::RetailerData* data, double fraction, Rng* rng) {
  const int num_users = data->num_users();
  if (num_users == 0) return;
  const int span = std::max(1, static_cast<int>(num_users * fraction));
  const int start = static_cast<int>(rng->Uniform(num_users));
  for (int i = 0; i < span; ++i) {
    data->histories[(start + i) % num_users].clear();
  }
}

void BotFlood(data::RetailerData* data, double multiple, Rng* rng) {
  const int num_users = data->num_users();
  const int num_items = data->num_items();
  if (num_users == 0 || num_items == 0) return;
  int64_t organic = data->TotalInteractions();
  if (organic == 0) organic = 64;
  const int64_t flood = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(organic) * multiple));
  std::vector<data::Interaction>& bot =
      data->histories[rng->Uniform(num_users)];
  int64_t t = bot.empty() ? 0 : bot.back().timestamp;
  for (int64_t i = 0; i < flood; ++i) {
    data::Interaction event;
    event.user = 0;  // unused by consumers; history index is the user
    event.item = static_cast<data::ItemIndex>(rng->Uniform(num_items));
    event.action = data::ActionType::kView;
    event.timestamp = ++t;
    bot.push_back(event);
  }
}

void TimestampScramble(data::RetailerData* data, double fraction, Rng* rng) {
  for (std::vector<data::Interaction>& history : data->histories) {
    if (history.size() < 2 || !rng->Bernoulli(fraction)) continue;
    std::vector<int64_t> timestamps;
    timestamps.reserve(history.size());
    for (const data::Interaction& event : history) {
      timestamps.push_back(event.timestamp);
    }
    rng->Shuffle(&timestamps);
    for (size_t i = 0; i < history.size(); ++i) {
      history[i].timestamp = timestamps[i];
    }
  }
}

void CatalogTruncation(data::RetailerData* data, double fraction) {
  const int num_items = data->num_items();
  if (num_items <= 1) return;
  const int keep = std::max(
      1, num_items - static_cast<int>(num_items * fraction));
  data::Catalog truncated(data->catalog.taxonomy());
  for (int i = 0; i < keep; ++i) {
    truncated.AddItem(data->catalog.item(i));
  }
  truncated.Finalize();
  data->catalog = std::move(truncated);
  // Histories are left untouched: events past the new catalog end are the
  // dangling references the sentry's invalid-item check exists to catch.
}

void ActionFlip(data::RetailerData* data, double fraction, Rng* rng) {
  for (std::vector<data::Interaction>& history : data->histories) {
    for (data::Interaction& event : history) {
      if (rng->Bernoulli(fraction)) {
        event.action = data::ActionType::kConversion;
      }
    }
  }
}

}  // namespace

const char* CorruptionName(Corruption corruption) {
  switch (corruption) {
    case Corruption::kNone:
      return "none";
    case Corruption::kDuplicateEvents:
      return "duplicate_events";
    case Corruption::kDropPartition:
      return "drop_partition";
    case Corruption::kBotFlood:
      return "bot_flood";
    case Corruption::kTimestampScramble:
      return "timestamp_scramble";
    case Corruption::kCatalogTruncation:
      return "catalog_truncation";
    case Corruption::kActionFlip:
      return "action_flip";
  }
  return "unknown";
}

Corruption FeedCorruptor::Plan(data::RetailerId retailer, int day) const {
  if (options_.corruption_probability <= 0.0) return Corruption::kNone;
  Rng rng = MakeRng(options_.seed, retailer, day, /*salt=*/1);
  if (!rng.Bernoulli(options_.corruption_probability)) {
    return Corruption::kNone;
  }
  if (!options_.enabled.empty()) {
    return options_.enabled[rng.Uniform(options_.enabled.size())];
  }
  // All real modes, excluding kNone.
  return static_cast<Corruption>(1 + rng.Uniform(kNumCorruptions - 1));
}

data::RetailerData FeedCorruptor::Corrupt(const data::RetailerData& data,
                                          int day) {
  if (!enabled_) return data;
  return Apply(data, Plan(data.id, day), data.id, day);
}

data::RetailerData FeedCorruptor::Apply(const data::RetailerData& data,
                                        Corruption mode,
                                        data::RetailerId retailer, int day) {
  data::RetailerData poisoned = data;
  if (mode == Corruption::kNone || !enabled_) return poisoned;
  Rng rng = MakeRng(options_.seed, retailer, day,
                    /*salt=*/2 + static_cast<uint64_t>(mode));
  switch (mode) {
    case Corruption::kNone:
      break;
    case Corruption::kDuplicateEvents:
      DuplicateEvents(&poisoned, options_.duplicate_fraction, &rng);
      break;
    case Corruption::kDropPartition:
      DropPartition(&poisoned, options_.drop_fraction, &rng);
      break;
    case Corruption::kBotFlood:
      BotFlood(&poisoned, options_.bot_flood_multiple, &rng);
      break;
    case Corruption::kTimestampScramble:
      TimestampScramble(&poisoned, options_.scramble_fraction, &rng);
      break;
    case Corruption::kCatalogTruncation:
      CatalogTruncation(&poisoned, options_.truncate_fraction);
      break;
    case Corruption::kActionFlip:
      ActionFlip(&poisoned, options_.flip_fraction, &rng);
      break;
  }
  ++counters_.total;
  ++counters_.per_mode[static_cast<int>(mode)];
  return poisoned;
}

}  // namespace sigmund::dataqual
