#include "dataqual/feed_profile.h"

#include <algorithm>

#include "common/string_util.h"

namespace sigmund::dataqual {

namespace {

int Log2Bucket(int64_t count) {
  int bucket = 0;
  while (count > 1 && bucket < kUserHistBuckets - 1) {
    count >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

double FeedProfile::ActionFraction(data::ActionType action) const {
  if (events == 0) return 0.0;
  return static_cast<double>(action_counts[static_cast<int>(action)]) /
         static_cast<double>(events);
}

double FeedProfile::TopUserShare() const {
  if (events == 0) return 0.0;
  return static_cast<double>(max_user_events) / static_cast<double>(events);
}

std::vector<double> FeedProfile::UserHistDistribution() const {
  std::vector<double> out(user_events_hist.begin(), user_events_hist.end());
  return out;
}

std::vector<double> FeedProfile::ActionMix() const {
  std::vector<double> out(action_counts.begin(), action_counts.end());
  return out;
}

std::string FeedProfile::ToString() const {
  return StrFormat(
      "retailer=%d events=%lld active_users=%d/%d items=%d/%d "
      "mix=[v=%lld s=%lld c=%lld b=%lld] dups=%lld ooo=%lld invalid=%lld "
      "top_user_share=%.3f",
      retailer, static_cast<long long>(events), active_users, num_users,
      distinct_items, num_items,
      static_cast<long long>(action_counts[0]),
      static_cast<long long>(action_counts[1]),
      static_cast<long long>(action_counts[2]),
      static_cast<long long>(action_counts[3]),
      static_cast<long long>(duplicate_events),
      static_cast<long long>(out_of_order_events),
      static_cast<long long>(invalid_item_events), TopUserShare());
}

FeedProfile BuildFeedProfile(const data::RetailerData& data) {
  FeedProfile profile;
  profile.retailer = data.id;
  profile.num_users = data.num_users();
  profile.num_items = data.num_items();

  std::vector<char> item_seen(
      static_cast<size_t>(std::max(0, data.num_items())), 0);
  bool first_event = true;
  for (const std::vector<data::Interaction>& history : data.histories) {
    if (history.empty()) continue;
    ++profile.active_users;
    profile.events += static_cast<int64_t>(history.size());
    profile.max_user_events =
        std::max(profile.max_user_events,
                 static_cast<int64_t>(history.size()));
    ++profile.user_events_hist[Log2Bucket(
        static_cast<int64_t>(history.size()))];
    for (size_t i = 0; i < history.size(); ++i) {
      const data::Interaction& event = history[i];
      ++profile.action_counts[static_cast<int>(event.action) &
                              (data::kNumActionTypes - 1)];
      if (event.item < 0 || event.item >= data.num_items()) {
        ++profile.invalid_item_events;
      } else if (!item_seen[static_cast<size_t>(event.item)]) {
        item_seen[static_cast<size_t>(event.item)] = 1;
        ++profile.distinct_items;
      }
      if (i > 0) {
        const data::Interaction& prev = history[i - 1];
        if (event.timestamp < prev.timestamp) ++profile.out_of_order_events;
        if (event.item == prev.item && event.action == prev.action &&
            event.timestamp == prev.timestamp) {
          ++profile.duplicate_events;
        }
      }
      if (first_event) {
        profile.min_timestamp = profile.max_timestamp = event.timestamp;
        first_event = false;
      } else {
        profile.min_timestamp = std::min(profile.min_timestamp,
                                         event.timestamp);
        profile.max_timestamp = std::max(profile.max_timestamp,
                                         event.timestamp);
      }
    }
  }
  return profile;
}

void FeedProfile::SerializeTo(BinaryWriter* writer) const {
  writer->Write<int32_t>(retailer);
  writer->Write<int64_t>(events);
  writer->Write<int32_t>(num_users);
  writer->Write<int32_t>(active_users);
  writer->Write<int32_t>(num_items);
  writer->Write<int32_t>(distinct_items);
  for (int64_t count : action_counts) writer->Write<int64_t>(count);
  writer->Write<int64_t>(duplicate_events);
  writer->Write<int64_t>(out_of_order_events);
  writer->Write<int64_t>(invalid_item_events);
  writer->Write<int64_t>(min_timestamp);
  writer->Write<int64_t>(max_timestamp);
  writer->Write<int64_t>(max_user_events);
  for (int64_t count : user_events_hist) writer->Write<int64_t>(count);
}

bool FeedProfile::ReadFrom(BinaryReader* reader) {
  bool ok = reader->Read(&retailer) && reader->Read(&events) &&
            reader->Read(&num_users) && reader->Read(&active_users) &&
            reader->Read(&num_items) && reader->Read(&distinct_items);
  for (int64_t& count : action_counts) ok = ok && reader->Read(&count);
  ok = ok && reader->Read(&duplicate_events) &&
       reader->Read(&out_of_order_events) &&
       reader->Read(&invalid_item_events) && reader->Read(&min_timestamp) &&
       reader->Read(&max_timestamp) && reader->Read(&max_user_events);
  for (int64_t& count : user_events_hist) ok = ok && reader->Read(&count);
  return ok;
}

}  // namespace sigmund::dataqual
