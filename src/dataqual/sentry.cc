#include "dataqual/sentry.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/string_util.h"
#include "data/types.h"

namespace sigmund::dataqual {

namespace {

// Hard integrity checks quarantine even below the noise floor: a feed
// referencing items outside its catalog crashes training at any size.
bool IsHardCheck(const std::string& check) {
  return check == "invalid_item_fraction";
}

DataSentry::Verdict MaxVerdict(DataSentry::Verdict a, DataSentry::Verdict b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace

const char* VerdictName(DataSentry::Verdict verdict) {
  switch (verdict) {
    case DataSentry::Verdict::kPass:
      return "pass";
    case DataSentry::Verdict::kWarn:
      return "warn";
    case DataSentry::Verdict::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

std::string DataSentry::Finding::ToString() const {
  return StrFormat("%s[%s]: %.4f vs %.4f", check.c_str(),
                   VerdictName(severity), value, threshold);
}

DataSentry::DataSentry(const Options& options, obs::MetricRegistry* metrics)
    : options_(options), metrics_(metrics) {}

const FeedProfile* DataSentry::LastGoodProfile(
    data::RetailerId retailer) const {
  auto it = last_good_.find(retailer);
  return it == last_good_.end() ? nullptr : &it->second;
}

std::string DataSentry::SerializeState() const {
  BinaryWriter writer;
  writer.Write<uint64_t>(last_good_.size());
  for (const auto& [retailer, profile] : last_good_) {
    writer.Write<int32_t>(retailer);
    profile.SerializeTo(&writer);
  }
  writer.Write<uint64_t>(quarantined_.size());
  for (data::RetailerId retailer : quarantined_) {
    writer.Write<int32_t>(retailer);
  }
  return writer.Take();
}

Status DataSentry::RestoreState(std::string_view bytes) {
  BinaryReader reader(bytes);
  uint64_t count = 0;
  if (!reader.Read(&count)) return DataLossError("truncated sentry state");
  std::map<data::RetailerId, FeedProfile> last_good;
  for (uint64_t i = 0; i < count; ++i) {
    int32_t retailer = 0;
    FeedProfile profile;
    if (!reader.Read(&retailer) || !profile.ReadFrom(&reader)) {
      return DataLossError("truncated sentry state (baselines)");
    }
    last_good[retailer] = profile;
  }
  if (!reader.Read(&count)) {
    return DataLossError("truncated sentry state (quarantine)");
  }
  std::set<data::RetailerId> quarantined;
  for (uint64_t i = 0; i < count; ++i) {
    int32_t retailer = 0;
    if (!reader.Read(&retailer)) {
      return DataLossError("truncated sentry state (quarantine)");
    }
    quarantined.insert(retailer);
  }
  if (!reader.Done()) return DataLossError("trailing bytes in sentry state");
  last_good_ = std::move(last_good);
  quarantined_ = std::move(quarantined);
  return OkStatus();
}

void DataSentry::CheckInvariants(const FeedProfile& profile,
                                 std::vector<Finding>* findings) const {
  if (profile.events == 0) return;
  const double events = static_cast<double>(profile.events);
  auto fail = [&](const char* check, Verdict severity, double value,
                  double threshold) {
    findings->push_back(Finding{check, severity, value, threshold});
  };

  const double duplicate_fraction =
      static_cast<double>(profile.duplicate_events) / events;
  if (duplicate_fraction > options_.max_duplicate_fraction) {
    fail("duplicate_fraction", Verdict::kQuarantine, duplicate_fraction,
         options_.max_duplicate_fraction);
  }
  const double out_of_order_fraction =
      static_cast<double>(profile.out_of_order_events) / events;
  if (out_of_order_fraction > options_.max_out_of_order_fraction) {
    fail("out_of_order_fraction", Verdict::kQuarantine, out_of_order_fraction,
         options_.max_out_of_order_fraction);
  }
  const double invalid_item_fraction =
      static_cast<double>(profile.invalid_item_events) / events;
  if (invalid_item_fraction > options_.max_invalid_item_fraction) {
    fail("invalid_item_fraction", Verdict::kQuarantine, invalid_item_fraction,
         options_.max_invalid_item_fraction);
  }
  // Bot flood: one "user" owning the feed. Only meaningful once there are
  // several active users — with one or two users the share is trivially
  // large.
  if (profile.active_users >= 4 &&
      profile.TopUserShare() > options_.max_top_user_share) {
    fail("top_user_share", Verdict::kQuarantine, profile.TopUserShare(),
         options_.max_top_user_share);
  }
  // Funnel shape: views dominate every legitimate implicit-feedback feed.
  // Each stronger tier is compared against views only (repurchase
  // synthesis legitimately emits conversions with no cart).
  const double views =
      static_cast<double>(profile.action_counts[0]);
  for (int a = 1; a < data::kNumActionTypes; ++a) {
    const double count = static_cast<double>(profile.action_counts[a]);
    if (count > options_.max_funnel_ratio * views) {
      fail("funnel_inversion", Verdict::kQuarantine,
           views > 0.0 ? count / views : count, options_.max_funnel_ratio);
      break;
    }
  }
}

void DataSentry::CheckDrift(const FeedProfile& profile,
                            const FeedProfile& baseline,
                            std::vector<Finding>* findings) const {
  auto fail = [&](const char* check, Verdict severity, double value,
                  double threshold) {
    findings->push_back(Finding{check, severity, value, threshold});
  };

  if (baseline.events > 0) {
    const double event_ratio = static_cast<double>(profile.events) /
                               static_cast<double>(baseline.events);
    if (event_ratio < options_.min_event_ratio) {
      fail("event_collapse", Verdict::kQuarantine, event_ratio,
           options_.min_event_ratio);
    } else if (event_ratio > options_.max_event_ratio) {
      fail("event_spike", Verdict::kQuarantine, event_ratio,
           options_.max_event_ratio);
    }
  }
  if (baseline.active_users > 0) {
    const double user_ratio = static_cast<double>(profile.active_users) /
                              static_cast<double>(baseline.active_users);
    if (user_ratio < options_.min_active_user_ratio) {
      fail("active_user_collapse", Verdict::kQuarantine, user_ratio,
           options_.min_active_user_ratio);
    }
  }
  if (baseline.num_items > 0) {
    const double catalog_ratio = static_cast<double>(profile.num_items) /
                                 static_cast<double>(baseline.num_items);
    if (catalog_ratio < options_.min_catalog_ratio) {
      fail("catalog_truncation", Verdict::kQuarantine, catalog_ratio,
           options_.min_catalog_ratio);
    }
  }
  // Clock skew: the feed's newest event running far ahead of the last
  // good feed's newest event.
  if (baseline.max_timestamp > 0 &&
      profile.max_timestamp >
          baseline.max_timestamp + options_.max_future_skew_seconds) {
    fail("timestamp_skew", Verdict::kQuarantine,
         static_cast<double>(profile.max_timestamp - baseline.max_timestamp),
         static_cast<double>(options_.max_future_skew_seconds));
  }
  // Engagement-shape drift: PSI over the interactions-per-user histogram.
  const double psi = PopulationStabilityIndex(baseline.UserHistDistribution(),
                                              profile.UserHistDistribution());
  if (psi > options_.quarantine_psi) {
    fail("user_hist_psi", Verdict::kQuarantine, psi, options_.quarantine_psi);
  } else if (psi > options_.warn_psi) {
    fail("user_hist_psi", Verdict::kWarn, psi, options_.warn_psi);
  }
  // Action-mix drift: one two-proportion z-test per action type, the same
  // sequential-test math the CTR canary runs (common/stats.h). |z| alone
  // grows with volume, so a finding also requires an absolute mix shift.
  for (int a = 0; a < data::kNumActionTypes; ++a) {
    const double z = std::fabs(TwoProportionZ(
        profile.action_counts[a], profile.events, baseline.action_counts[a],
        baseline.events));
    const double shift =
        std::fabs(profile.ActionFraction(static_cast<data::ActionType>(a)) -
                  baseline.ActionFraction(static_cast<data::ActionType>(a)));
    if (shift < options_.min_action_shift) continue;
    if (z > options_.quarantine_z) {
      fail("action_mix_z", Verdict::kQuarantine, z, options_.quarantine_z);
      break;
    }
    if (z > options_.warn_z) {
      fail("action_mix_z", Verdict::kWarn, z, options_.warn_z);
      break;
    }
  }
}

DataSentry::Observation DataSentry::Observe(const FeedProfile& profile) {
  Observation observation;
  const FeedProfile* baseline = LastGoodProfile(profile.retailer);
  observation.first_observation = baseline == nullptr;

  CheckInvariants(profile, &observation.findings);
  if (baseline != nullptr) {
    CheckDrift(profile, *baseline, &observation.findings);
  }

  // Noise floor: tiny feeds cap statistical findings at kWarn. Hard
  // integrity findings keep their severity at any size.
  const bool below_floor = profile.events < options_.min_events ||
                           profile.active_users < options_.min_active_users;
  for (Finding& finding : observation.findings) {
    if (below_floor && finding.severity == Verdict::kQuarantine &&
        !IsHardCheck(finding.check)) {
      finding.severity = Verdict::kWarn;
    }
    observation.verdict = MaxVerdict(observation.verdict, finding.severity);
  }

  const bool was_quarantined = quarantined_.count(profile.retailer) > 0;
  if (observation.verdict == Verdict::kQuarantine) {
    quarantined_.insert(profile.retailer);
  } else {
    if (was_quarantined) {
      quarantined_.erase(profile.retailer);
      observation.released = true;
    }
    // Pass and warn both promote the baseline; a quarantined day never
    // becomes the reference tomorrow's feed is judged against.
    last_good_[profile.retailer] = profile;
  }

  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("dataqual_verdicts_total",
                     {{"verdict", VerdictName(observation.verdict)}})
        ->Add(1);
    for (const Finding& finding : observation.findings) {
      metrics_
          ->GetCounter("dataqual_checks_failed_total",
                       {{"check", finding.check}})
          ->Add(1);
    }
    if (observation.released) {
      metrics_->GetCounter("dataqual_releases_total")->Add(1);
    }
    metrics_->GetGauge("dataqual_quarantined_retailers")
        ->Set(static_cast<double>(quarantined_.size()));
  }
  return observation;
}

}  // namespace sigmund::dataqual
