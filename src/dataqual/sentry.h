#ifndef SIGMUND_DATAQUAL_SENTRY_H_
#define SIGMUND_DATAQUAL_SENTRY_H_

#include <stdint.h>

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "dataqual/feed_profile.h"

namespace sigmund::dataqual {

// The data-plane sentry (DESIGN.md §12): judges each retailer's daily
// feed before any training happens. Verdicts are severity-tiered —
//
//   kPass        feed is healthy; it becomes the retailer's last-good
//                baseline for tomorrow's drift tests.
//   kWarn        suspicious but plausible; train normally, surface the
//                findings, and still promote the baseline.
//   kQuarantine  the feed is not trustworthy; the retailer skips
//                retraining and the retrieval-index rebuild and keeps
//                serving its last-known-good batch. The last-good
//                baseline is NOT updated, so a poisoned day can never
//                become tomorrow's reference. Auto-releases as soon as a
//                later feed passes.
//
// Two layers of checks produce findings:
//
//   Absolute invariants — violated by no legitimate feed at any size:
//   duplicate/out-of-order/invalid-item-reference fractions, a single
//   user owning an outsized share of the feed (bot flood), an inverted
//   funnel (more of any stronger action than views), timestamps running
//   far ahead of the last-good feed.
//
//   Cross-day drift vs. the last-good profile — PSI over the
//   interactions-per-user histogram, two-proportion z-tests per action
//   type (the canary's sequential-test math from common/stats.h), event
//   volume collapse/spike, active-user collapse, and catalog truncation.
//
// A noise floor keeps legitimately tiny retailers out of quarantine:
// below `min_events`/`min_active_users`, statistical findings are capped
// at kWarn (hard integrity findings — invalid item references — still
// quarantine, since they crash training regardless of feed size).
class DataSentry {
 public:
  enum class Verdict { kPass = 0, kWarn = 1, kQuarantine = 2 };

  struct Options {
    // --- Noise floor. Feeds below either bound never quarantine on
    // statistical evidence (see class comment).
    int64_t min_events = 200;
    int min_active_users = 20;

    // --- Absolute invariants.
    // Fraction of events that exactly repeat their predecessor.
    double max_duplicate_fraction = 0.05;
    // Fraction of events violating ascending-timestamp order.
    double max_out_of_order_fraction = 0.01;
    // Fraction of events referencing items outside the catalog. Any
    // violation is serious (training indexes factors by item id), so the
    // default tolerance is one event in ten thousand.
    double max_invalid_item_fraction = 1e-4;
    // Max share of the feed owned by the single busiest user.
    double max_top_user_share = 0.25;
    // Funnel shape: each non-view action count must stay below
    // `max_funnel_ratio` * views. Repurchase synthesis emits conversions
    // without carts, so tiers are only compared against views, and the
    // bound is deliberately loose — legitimate mixes put views at ~60%+.
    double max_funnel_ratio = 0.9;
    // Max seconds the feed's newest timestamp may run ahead of the
    // last-good feed's newest timestamp (clock-skew detector).
    int64_t max_future_skew_seconds = 30LL * 86400;

    // --- Cross-day drift vs. the last-good profile. Histories are
    // cumulative (each day appends), so bounds tolerate healthy growth.
    // Event volume outside [min_event_ratio, max_event_ratio] x last-good
    // quarantines: a collapse means dropped partitions, a spike means
    // duplication/bot floods.
    double min_event_ratio = 0.5;
    double max_event_ratio = 3.0;
    // Active users below this ratio of last-good quarantines.
    double min_active_user_ratio = 0.5;
    // Catalog shrinking below this ratio of last-good quarantines
    // (truncation; healthy catalogs only grow in this world).
    double min_catalog_ratio = 0.75;
    // PSI of the interactions-per-user histogram vs. last-good:
    // warn above `warn_psi`, quarantine above `quarantine_psi`.
    double warn_psi = 0.25;
    double quarantine_psi = 0.8;
    // Action-mix drift: per action type, a two-proportion z-test of
    // today's mix vs. last-good. |z| above `warn_z` warns, above
    // `quarantine_z` quarantines — but only when the absolute mix shift
    // also exceeds `min_action_shift` (z alone explodes with volume).
    double warn_z = 8.0;
    double quarantine_z = 20.0;
    double min_action_shift = 0.05;
  };

  struct Finding {
    std::string check;    // e.g. "duplicate_fraction", "event_collapse"
    Verdict severity = Verdict::kWarn;
    double value = 0.0;
    double threshold = 0.0;

    std::string ToString() const;
  };

  struct Observation {
    Verdict verdict = Verdict::kPass;
    // True when this retailer had no last-good baseline yet (first feed
    // ever, or first since construction): drift checks were skipped.
    bool first_observation = false;
    // True when this feed released the retailer from quarantine.
    bool released = false;
    std::vector<Finding> findings;
  };

  // `metrics` is borrowed and may be null.
  explicit DataSentry(const Options& options,
                      obs::MetricRegistry* metrics = nullptr);

  // Judges one feed, updates quarantine state and (on pass/warn) the
  // last-good baseline, and mirrors the verdict into dataqual_* metrics.
  Observation Observe(const FeedProfile& profile);

  bool IsQuarantined(data::RetailerId retailer) const {
    return quarantined_.count(retailer) > 0;
  }
  int QuarantinedCount() const { return static_cast<int>(quarantined_.size()); }
  const std::set<data::RetailerId>& quarantined() const { return quarantined_; }

  // The retailer's last feed that passed (or warned); null before one.
  const FeedProfile* LastGoodProfile(data::RetailerId retailer) const;

  // Crash-recovery snapshot of the sentry's durable control state
  // (DESIGN.md §13): the last-good baselines and the quarantine set. A
  // restarted coordinator that forgot either would treat a poisoned feed
  // as its new baseline, or silently release a quarantined retailer.
  // Deterministic encoding; Observe() on the restored state produces
  // bit-identical verdicts.
  std::string SerializeState() const;
  Status RestoreState(std::string_view bytes);

 private:
  void CheckInvariants(const FeedProfile& profile,
                       std::vector<Finding>* findings) const;
  void CheckDrift(const FeedProfile& profile, const FeedProfile& baseline,
                  std::vector<Finding>* findings) const;

  Options options_;
  obs::MetricRegistry* metrics_;
  std::map<data::RetailerId, FeedProfile> last_good_;
  std::set<data::RetailerId> quarantined_;
};

const char* VerdictName(DataSentry::Verdict verdict);

}  // namespace sigmund::dataqual

#endif  // SIGMUND_DATAQUAL_SENTRY_H_
