#ifndef SIGMUND_DATAQUAL_CORRUPTOR_H_
#define SIGMUND_DATAQUAL_CORRUPTOR_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "data/retailer_data.h"
#include "data/types.h"

namespace sigmund::dataqual {

// The feed corruption modes the chaos layer can inject. Each mimics a
// real upstream pathology (DESIGN.md §12 threat model).
enum class Corruption {
  kNone = 0,
  // A replayed ingest partition: runs of events duplicated in place.
  kDuplicateEvents,
  // A dropped ingest partition: a contiguous slice of users lose their
  // entire history.
  kDropPartition,
  // A scraper/bot session: one user flooded with a huge synthetic
  // history that dwarfs the organic feed.
  kBotFlood,
  // A mis-parsed timestamp column: event times shuffled within users.
  kTimestampScramble,
  // A catalog mishap: the item file truncated, leaving events referencing
  // items past the new end.
  kCatalogTruncation,
  // A mis-mapped action column: event types flipped toward conversions,
  // inverting the funnel.
  kActionFlip,
};

inline constexpr int kNumCorruptions = 7;  // including kNone

const char* CorruptionName(Corruption corruption);

// Seeded deterministic feed poisoner, in the style of
// sfs::FaultInjectingFileSystem: all randomness is derived from
// (seed, retailer, day), so the same schedule — and byte-identical
// corrupted feeds — come out of every same-seed rerun, independent of
// call order. The corruptor never mutates the input; it returns a
// poisoned copy.
class FeedCorruptor {
 public:
  struct Options {
    uint64_t seed = 42;
    // Probability that a given (retailer, day) is poisoned at all.
    double corruption_probability = 0.0;
    // The modes to draw from when poisoning (uniformly). Empty = all.
    std::vector<Corruption> enabled;

    // --- Severity knobs (fractions of the organic feed).
    double duplicate_fraction = 0.3;    // events duplicated in place
    double drop_fraction = 0.6;         // users whose history is dropped
    double bot_flood_multiple = 1.0;    // bot events as a multiple of feed
    double scramble_fraction = 0.5;     // users whose timestamps shuffle
    double truncate_fraction = 0.5;     // catalog tail removed
    double flip_fraction = 0.5;         // events flipped to conversions
  };

  // Running totals of injections, mirroring sfs::FaultCounters.
  struct Counters {
    int64_t total = 0;
    int64_t per_mode[kNumCorruptions] = {};
  };

  explicit FeedCorruptor(const Options& options) : options_(options) {}

  // The corruption this (retailer, day) draws — kNone when the coin says
  // healthy. Pure function of (seed, retailer, day).
  Corruption Plan(data::RetailerId retailer, int day) const;

  // Returns `data` poisoned per Plan(retailer, day); an untouched copy
  // when the plan is kNone or the corruptor is disabled.
  data::RetailerData Corrupt(const data::RetailerData& data, int day);

  // Applies one specific corruption (for targeted tests and the demo).
  data::RetailerData Apply(const data::RetailerData& data, Corruption mode,
                           data::RetailerId retailer, int day);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  const Counters& counters() const { return counters_; }

 private:
  Options options_;
  bool enabled_ = true;
  Counters counters_;
};

}  // namespace sigmund::dataqual

#endif  // SIGMUND_DATAQUAL_CORRUPTOR_H_
