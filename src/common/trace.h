#ifndef SIGMUND_COMMON_TRACE_H_
#define SIGMUND_COMMON_TRACE_H_

#include <stdint.h>

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"

namespace sigmund::obs {

// ---------------------------------------------------------------------------
// Dapper-style span tracing for the daily pipeline.
//
//   obs::Tracer tracer;                       // RealClock by default
//   {
//     obs::Span day = tracer.StartSpan("run_daily");
//     {
//       obs::Span train = tracer.StartSpan("train");  // child of run_daily
//       ...
//     }                                       // train ends here
//   }                                         // run_daily ends here
//   std::printf("%s", tracer.DumpTree().c_str());
//
// Parenthood is tracked per thread: a span started while another span of
// the same tracer is open on the same thread becomes its child. Work
// running on pool threads passes an explicit parent id instead
// (StartSpan(name, parent_id)).
//
// Time comes from the Clock handed to the tracer, so traces are
// deterministic under SimClock and real under RealClock. Span collection
// is thread-safe.
// ---------------------------------------------------------------------------

// One finished (or still open) span.
struct SpanRecord {
  int64_t id = 0;         // ids start at 1 and increase in start order
  int64_t parent_id = 0;  // 0 = root
  std::string name;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  // Key/value notes attached while the span was open, in attach order
  // (e.g. {"shed_reason", "queue_full"}). Duplicate keys allowed.
  std::vector<std::pair<std::string, std::string>> annotations;

  int64_t DurationMicros() const { return end_micros - start_micros; }
  // First value recorded under `key`, or "" when absent.
  std::string Annotation(const std::string& key) const;
};

class Tracer;

// RAII handle: the span ends when End() is called or the handle is
// destroyed, whichever comes first. Move-only.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  void End();

  // Attaches a key/value note to the span (no-op on a no-op span or
  // after End()).
  void Annotate(const std::string& key, const std::string& value);

  // 0 for a default-constructed (or moved-from) no-op span. Stays valid
  // after End(), like DurationMicros().
  int64_t id() const { return id_; }
  // Valid after End(): how long the span lasted.
  int64_t DurationMicros() const { return duration_micros_; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, int64_t id, bool on_stack)
      : tracer_(tracer), id_(id), on_stack_(on_stack) {}

  Tracer* tracer_ = nullptr;
  int64_t id_ = 0;
  bool on_stack_ = false;
  int64_t duration_micros_ = 0;
};

class Tracer {
 public:
  // `clock` is borrowed; nullptr = RealClock.
  explicit Tracer(const Clock* clock = nullptr);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Starts a span. With kInheritParent (default) the parent is the
  // innermost open span of this tracer on the calling thread; pass an
  // explicit parent id to attach work running on another thread, or
  // kNoParent to force a root span.
  static constexpr int64_t kInheritParent = -1;
  static constexpr int64_t kNoParent = 0;
  Span StartSpan(std::string name, int64_t parent_id = kInheritParent);

  // Innermost open span of this tracer on the calling thread (0 = none).
  int64_t CurrentSpanId() const;

  // Snapshot of every span started so far, in start order. Spans still
  // open have end_micros == start time at the moment they were started
  // ... they report end_micros = 0 until ended.
  std::vector<SpanRecord> Spans() const;

  // The subtree rooted at `root_id` (root first, then descendants in
  // start order).
  std::vector<SpanRecord> Subtree(int64_t root_id) const;

  // Indented rendering of all recorded spans; a span that has not ended
  // yet shows "open" in place of a duration:
  //   run_daily                          12345us
  //     train                             9876us
  //     inference                           open
  std::string DumpTree() const;

  // Drops all recorded spans (open spans still end cleanly; they are
  // simply no longer reported).
  void Clear();

  // Attaches a key/value note to span `id` (no-op for unknown/cleared
  // ids). Prefer Span::Annotate when a handle is in scope.
  void Annotate(int64_t id, const std::string& key, const std::string& value);

  const Clock* clock() const { return clock_; }

 private:
  friend class Span;
  // Ends the span and returns its duration in microseconds.
  int64_t EndSpan(int64_t id, bool on_stack);

  const Clock* clock_;
  mutable std::mutex mu_;
  int64_t next_id_ = 1;
  std::vector<SpanRecord> spans_;  // index by id - id_base_
  int64_t id_base_ = 1;            // id of spans_[0] (advances on Clear)
};

// ---------------------------------------------------------------------------
// Request-scoped tracing with tail-based sampling.
//
// The pipeline Tracer above records *every* span of a run; per-request
// tracing cannot afford that at serving rates. Instead each request
// builds its own small span tree in a RequestTrace (no locks — a request
// is handled on one thread) and hands it to the RequestTracer at the
// end, which decides *then* whether to keep it: 100% of traces whose
// verdict is shed / error / deadline-overrun, plus a deterministic
// hash-sampled fraction of healthy ones. Because the keep decision is a
// pure function of (trace id, seed), tracing is seed-stable under
// SimClock and provably passive: it never touches request RNG or
// control decisions.
//
//   obs::RequestTracer tracer(options, &registry, &clock);
//   obs::RequestTrace trace = tracer.StartRequest("handle");
//   { auto id = trace.StartSpan("admission");
//     trace.Annotate(id, "outcome", "shed");
//     trace.EndSpan(id); }
//   trace.SetVerdict(obs::TraceVerdict::kShed);
//   bool kept = tracer.Submit(std::move(trace));
// ---------------------------------------------------------------------------

// Terminal classification of one request; anything but kHealthy is
// always kept by the tail sampler.
enum class TraceVerdict {
  kHealthy = 0,
  kShed = 1,
  kError = 2,
  kDeadlineOverrun = 3,
};

// "healthy" / "shed" / "error" / "deadline_overrun".
const char* TraceVerdictName(TraceVerdict verdict);

class RequestTrace;

// Lightweight propagation handle threaded through the serving stack
// (Frontend -> admission -> store lookup). Copyable; inactive (default)
// contexts make every tracing call a no-op, so callers without a tracer
// pay nothing.
struct TraceContext {
  RequestTrace* trace = nullptr;  // borrowed; owned by the request
  int64_t span_id = 0;            // parent span for spans started below

  bool active() const { return trace != nullptr; }
  // Starts a child span / annotates the context's span / records the
  // request verdict. No-ops when inactive.
  int64_t StartSpan(const std::string& name) const;
  void EndSpan(int64_t id) const;
  void Annotate(const std::string& key, const std::string& value) const;
  void SetVerdict(TraceVerdict verdict) const;
};

// Finished, kept request trace: the whole span tree plus the verdict.
struct RequestTraceRecord {
  uint64_t trace_id = 0;
  std::string name;
  TraceVerdict verdict = TraceVerdict::kHealthy;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  std::vector<SpanRecord> spans;  // root (span id 1) first, start order

  // First span (in start order) carrying `key`, value returned; "" when
  // no span has it. Spans' own Annotation() for per-span lookup.
  std::string Annotation(const std::string& key) const;
  // {"trace_id": ..., "verdict": ..., "spans": [...]}.
  std::string ToJson() const;
};

// One request's in-flight span tree. Move-only, single-threaded (a
// request is handled on one thread; no locks). Inactive (default
// constructed or moved-from) instances no-op every call, so disabled
// tracing costs one branch per call site.
class RequestTrace {
 public:
  RequestTrace() = default;
  RequestTrace(RequestTrace&&) noexcept = default;
  RequestTrace& operator=(RequestTrace&&) noexcept = default;
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  bool active() const { return record_ != nullptr; }
  uint64_t trace_id() const { return record_ ? record_->trace_id : 0; }
  // The root span every trace starts with (id 1); parent for
  // request-level annotations.
  int64_t root_span_id() const { return active() ? 1 : 0; }

  // Starts a span under `parent_id` (0 = the root span) and returns its
  // id (0 when inactive).
  int64_t StartSpan(const std::string& name, int64_t parent_id = 0);
  void EndSpan(int64_t id);
  void Annotate(int64_t id, const std::string& key, const std::string& value);

  // Worst-verdict-wins: upgrades kHealthy -> anything; a shed verdict is
  // never downgraded back to healthy by a later fallback success.
  void SetVerdict(TraceVerdict verdict);
  TraceVerdict verdict() const {
    return record_ ? record_->verdict : TraceVerdict::kHealthy;
  }

  // Context rooted at `span_id` (0 = root span) for handing downstream.
  TraceContext Context(int64_t span_id = 0);

 private:
  friend class RequestTracer;
  RequestTrace(uint64_t trace_id, std::string name, const Clock* clock);

  const Clock* clock_ = nullptr;
  std::unique_ptr<RequestTraceRecord> record_;
};

// Hands out per-request traces and applies the tail-based keep policy
// on Submit. Thread-safe; kept traces live in a bounded ring buffer.
class RequestTracer {
 public:
  struct Options {
    // Fraction of *healthy* traces kept, decided by a deterministic
    // hash of (trace id, seed). Shed / error / deadline-overrun traces
    // are always kept. 0 disables healthy sampling; 1 keeps everything.
    double sample_rate = 0.01;
    // Ring-buffer bound on kept traces (oldest evicted first).
    int max_kept_traces = 4096;
    // Seed for the healthy-sampling hash; same seed => same decisions.
    uint64_t seed = 0;
  };

  // `metrics` and `clock` are borrowed; nullptr = no counters / RealClock.
  explicit RequestTracer(const Options& options,
                         MetricRegistry* metrics = nullptr,
                         const Clock* clock = nullptr);
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  // Starts a new trace (sequential trace ids from 1).
  RequestTrace StartRequest(const std::string& name);

  // Ends the trace's root span, applies the keep policy, and (when kept)
  // stores the record. Returns whether the trace was kept. Inactive
  // traces return false.
  bool Submit(RequestTrace trace);

  // Pure keep decision for a healthy trace with this id (what Submit
  // would do); exposed so tests can pre-compute sampling.
  bool WouldKeepHealthy(uint64_t trace_id) const;

  std::vector<RequestTraceRecord> KeptTraces() const;
  bool HasTrace(uint64_t trace_id) const;
  int64_t KeptCount() const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  MetricRegistry* metrics_;
  const Clock* clock_;
  uint64_t sample_threshold_ = 0;  // healthy kept iff hash < threshold

  mutable std::mutex mu_;
  uint64_t next_trace_id_ = 1;
  std::vector<RequestTraceRecord> kept_;  // ring buffer
  size_t kept_head_ = 0;                  // index of oldest entry
};

// ---------------------------------------------------------------------------
// RunProfile: the machine-readable record of one pipeline run — the span
// tree under one root plus a metrics snapshot — written next to the daily
// report so every day leaves a comparable profile trail.
// ---------------------------------------------------------------------------

struct RunProfile {
  std::string name;           // e.g. "day_3"
  int64_t total_micros = 0;   // duration of the root span
  std::vector<SpanRecord> spans;  // root first
  // Per-stage wall time, in stage order (e.g. {"training", 1234}).
  std::vector<std::pair<std::string, int64_t>> stages;
  // SLO engine state as JSON ("{}" when no engine is wired in).
  std::string slo_json;
  // Data-plane sentry verdicts as JSON ("{}" when the sentry is off;
  // see DESIGN.md §12).
  std::string dataqual_json;
  RegistrySnapshot metrics;

  // {"name": ..., "total_micros": ..., "spans": [...], "stages": {...},
  //  "overload": {...}, "slo": {...}, "dataqual": {...}, "metrics": {...}}
  // Span durations nest: every span's duration is <= its parent's, and
  // the root's equals total_micros. The overload section summarises the
  // serving plane's shed/brownout/hedge/retry-budget counters from the
  // metrics snapshot.
  std::string ToJson() const;
};

// Builds the profile for the run whose root span is `root_id`.
RunProfile BuildRunProfile(std::string name, const Tracer& tracer,
                           int64_t root_id, RegistrySnapshot metrics);

}  // namespace sigmund::obs

#endif  // SIGMUND_COMMON_TRACE_H_
