#ifndef SIGMUND_COMMON_TRACE_H_
#define SIGMUND_COMMON_TRACE_H_

#include <stdint.h>

#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"

namespace sigmund::obs {

// ---------------------------------------------------------------------------
// Dapper-style span tracing for the daily pipeline.
//
//   obs::Tracer tracer;                       // RealClock by default
//   {
//     obs::Span day = tracer.StartSpan("run_daily");
//     {
//       obs::Span train = tracer.StartSpan("train");  // child of run_daily
//       ...
//     }                                       // train ends here
//   }                                         // run_daily ends here
//   std::printf("%s", tracer.DumpTree().c_str());
//
// Parenthood is tracked per thread: a span started while another span of
// the same tracer is open on the same thread becomes its child. Work
// running on pool threads passes an explicit parent id instead
// (StartSpan(name, parent_id)).
//
// Time comes from the Clock handed to the tracer, so traces are
// deterministic under SimClock and real under RealClock. Span collection
// is thread-safe.
// ---------------------------------------------------------------------------

// One finished (or still open) span.
struct SpanRecord {
  int64_t id = 0;         // ids start at 1 and increase in start order
  int64_t parent_id = 0;  // 0 = root
  std::string name;
  int64_t start_micros = 0;
  int64_t end_micros = 0;

  int64_t DurationMicros() const { return end_micros - start_micros; }
};

class Tracer;

// RAII handle: the span ends when End() is called or the handle is
// destroyed, whichever comes first. Move-only.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  void End();

  // 0 for a default-constructed (or moved-from) no-op span. Stays valid
  // after End(), like DurationMicros().
  int64_t id() const { return id_; }
  // Valid after End(): how long the span lasted.
  int64_t DurationMicros() const { return duration_micros_; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, int64_t id, bool on_stack)
      : tracer_(tracer), id_(id), on_stack_(on_stack) {}

  Tracer* tracer_ = nullptr;
  int64_t id_ = 0;
  bool on_stack_ = false;
  int64_t duration_micros_ = 0;
};

class Tracer {
 public:
  // `clock` is borrowed; nullptr = RealClock.
  explicit Tracer(const Clock* clock = nullptr);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Starts a span. With kInheritParent (default) the parent is the
  // innermost open span of this tracer on the calling thread; pass an
  // explicit parent id to attach work running on another thread, or
  // kNoParent to force a root span.
  static constexpr int64_t kInheritParent = -1;
  static constexpr int64_t kNoParent = 0;
  Span StartSpan(std::string name, int64_t parent_id = kInheritParent);

  // Innermost open span of this tracer on the calling thread (0 = none).
  int64_t CurrentSpanId() const;

  // Snapshot of every span started so far, in start order. Spans still
  // open have end_micros == start time at the moment they were started
  // ... they report end_micros = 0 until ended.
  std::vector<SpanRecord> Spans() const;

  // The subtree rooted at `root_id` (root first, then descendants in
  // start order).
  std::vector<SpanRecord> Subtree(int64_t root_id) const;

  // Indented rendering of all recorded spans; a span that has not ended
  // yet shows "open" in place of a duration:
  //   run_daily                          12345us
  //     train                             9876us
  //     inference                           open
  std::string DumpTree() const;

  // Drops all recorded spans (open spans still end cleanly; they are
  // simply no longer reported).
  void Clear();

  const Clock* clock() const { return clock_; }

 private:
  friend class Span;
  // Ends the span and returns its duration in microseconds.
  int64_t EndSpan(int64_t id, bool on_stack);

  const Clock* clock_;
  mutable std::mutex mu_;
  int64_t next_id_ = 1;
  std::vector<SpanRecord> spans_;  // index by id - id_base_
  int64_t id_base_ = 1;            // id of spans_[0] (advances on Clear)
};

// ---------------------------------------------------------------------------
// RunProfile: the machine-readable record of one pipeline run — the span
// tree under one root plus a metrics snapshot — written next to the daily
// report so every day leaves a comparable profile trail.
// ---------------------------------------------------------------------------

struct RunProfile {
  std::string name;           // e.g. "day_3"
  int64_t total_micros = 0;   // duration of the root span
  std::vector<SpanRecord> spans;  // root first
  RegistrySnapshot metrics;

  // {"name": ..., "total_micros": ..., "spans": [...], "metrics": {...}}
  // Span durations nest: every span's duration is <= its parent's, and
  // the root's equals total_micros.
  std::string ToJson() const;
};

// Builds the profile for the run whose root span is `root_id`.
RunProfile BuildRunProfile(std::string name, const Tracer& tracer,
                           int64_t root_id, RegistrySnapshot metrics);

}  // namespace sigmund::obs

#endif  // SIGMUND_COMMON_TRACE_H_
