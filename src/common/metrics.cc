#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace sigmund::obs {

namespace {

// Relaxed atomic min/max via CAS loop (observations race benignly).
void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

// Escapes a label value for the Prometheus text exposition. The format
// defines exactly three escapes inside a quoted label value — backslash,
// double quote, and line feed — and a raw carriage return would also
// split the sample line, so it is folded into the \n escape.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
      case '\r':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// Renders a double without trailing noise ("12", "0.5", "1.25e+10").
std::string RenderNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%g", value);
}

// Bucket bounds implied by `options` — shared by the Histogram
// constructor and the GetHistogram layout-consistency check.
std::vector<double> BoundsFromOptions(const HistogramOptions& options) {
  const int n = std::max(1, options.num_buckets);
  const double growth = options.growth > 1.0 ? options.growth : 2.0;
  double bound = options.smallest_bucket > 0 ? options.smallest_bucket : 1.0;
  std::vector<double> bounds;
  bounds.reserve(n);
  for (int i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= growth;
  }
  return bounds;
}

// Estimates the value at rank `target` (1-based) from bucket counts by
// linear interpolation inside the containing bucket.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<int64_t>& buckets, int64_t count,
                           double min_seen, double max_seen, double q) {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const int64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative) + static_cast<double>(in_bucket) >=
        target) {
      // Bucket bounds, clamped to the actually observed range so tiny
      // samples do not report values outside [min, max].
      double lo = i == 0 ? min_seen : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max_seen;
      lo = std::max(lo, min_seen);
      hi = std::min(hi, max_seen);
      if (hi < lo) return hi;
      const double into =
          (target - static_cast<double>(cumulative)) / in_bucket;
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return max_seen;
}

}  // namespace

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(const HistogramOptions& options)
    : bounds_(BoundsFromOptions(options)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  buckets_ = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
  exemplar_ids_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  exemplar_values_ = std::vector<std::atomic<double>>(bounds_.size() + 1);
  // Not every standard library value-initializes atomics (pre-P0883
  // behavior); zero them explicitly so "no exemplar yet" reads as 0.
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& id : exemplar_ids_) id.store(0, std::memory_order_relaxed);
  for (auto& v : exemplar_values_) v.store(0.0, std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  // Upper-bound binary search: first bound >= value.
  const size_t index =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

void Histogram::AttachExemplar(double value, uint64_t trace_id) {
  if (trace_id == 0) return;
  const size_t index =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  // Last writer wins; the id and value race benignly (an exemplar is a
  // sample, not an invariant).
  exemplar_ids_[index].store(trace_id, std::memory_order_relaxed);
  exemplar_values_[index].store(value, std::memory_order_relaxed);
}

double Histogram::Min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<uint64_t> Histogram::ExemplarIds() const {
  std::vector<uint64_t> ids(exemplar_ids_.size());
  for (size_t i = 0; i < exemplar_ids_.size(); ++i) {
    ids[i] = exemplar_ids_[i].load(std::memory_order_relaxed);
  }
  return ids;
}

std::vector<double> Histogram::ExemplarValues() const {
  std::vector<double> values(exemplar_values_.size());
  for (size_t i = 0; i < exemplar_values_.size(); ++i) {
    values[i] = exemplar_values_[i].load(std::memory_order_relaxed);
  }
  return values;
}

double Histogram::Quantile(double q) const {
  return QuantileFromBuckets(bounds_, BucketCounts(), Count(), Min(), Max(),
                             q);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  for (auto& id : exemplar_ids_) id.store(0, std::memory_order_relaxed);
  for (auto& v : exemplar_values_) v.store(0.0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  return QuantileFromBuckets(bounds, buckets, count, min, max, q);
}

uint64_t HistogramSnapshot::ExemplarForQuantile(double q) const {
  if (count <= 0 || exemplar_ids.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Bucket containing the target rank.
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  size_t index = buckets.size() - 1;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && buckets[i] > 0) {
      index = i;
      break;
    }
  }
  if (exemplar_ids[index] != 0) return exemplar_ids[index];
  // Nearest exemplar-carrying bucket, lower buckets preferred (they hold
  // observations the quantile actually dominates).
  for (size_t step = 1; step < exemplar_ids.size(); ++step) {
    if (index >= step && exemplar_ids[index - step] != 0) {
      return exemplar_ids[index - step];
    }
    if (index + step < exemplar_ids.size() &&
        exemplar_ids[index + step] != 0) {
      return exemplar_ids[index + step];
    }
  }
  return 0;
}

// --- MetricRegistry --------------------------------------------------------

MetricRegistry* MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry;
  return registry;
}

MetricRegistry::Entry* MetricRegistry::FindOrCreate(std::string_view name,
                                                    const Labels& labels,
                                                    MetricKind kind) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += RenderLabels(sorted);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    SIGCHECK(it->second.kind == kind)
        << "metric " << key << " re-registered with a different kind";
    return &it->second;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.labels = std::move(sorted);
  entry.kind = kind;
  return &entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter* MetricRegistry::GetCounter(std::string_view name,
                                    const Labels& labels) {
  Entry* entry = FindOrCreate(name, labels, MetricKind::kCounter);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name, const Labels& labels) {
  Entry* entry = FindOrCreate(name, labels, MetricKind::kGauge);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        const Labels& labels,
                                        const HistogramOptions& options) {
  Entry* entry = FindOrCreate(name, labels, MetricKind::kHistogram);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Histogram>(options);
  } else {
    // Same guarantee as the kind check in FindOrCreate: two call sites
    // must not silently share a histogram while asking for different
    // bucket layouts.
    SIGCHECK(entry->histogram->BucketBounds() == BoundsFromOptions(options))
        << "histogram " << entry->name << RenderLabels(entry->labels)
        << " re-requested with a different bucket layout";
  }
  return entry->histogram.get();
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.metrics.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot m;
    m.name = entry.name;
    m.labels = entry.labels;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        m.counter = entry.counter != nullptr ? entry.counter->Value() : 0;
        break;
      case MetricKind::kGauge:
        m.gauge = entry.gauge != nullptr ? entry.gauge->Value() : 0.0;
        break;
      case MetricKind::kHistogram:
        if (entry.histogram != nullptr) {
          m.histogram.bounds = entry.histogram->BucketBounds();
          m.histogram.buckets = entry.histogram->BucketCounts();
          m.histogram.exemplar_ids = entry.histogram->ExemplarIds();
          m.histogram.exemplar_values = entry.histogram->ExemplarValues();
          m.histogram.count = entry.histogram->Count();
          m.histogram.sum = entry.histogram->Sum();
          m.histogram.min = entry.histogram->Min();
          m.histogram.max = entry.histogram->Max();
        }
        break;
    }
    snapshot.metrics.push_back(std::move(m));
  }
  return snapshot;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

// --- RegistrySnapshot ------------------------------------------------------

namespace {

// True when `labels` contains every pair of `want`.
bool LabelsMatch(const Labels& labels, const Labels& want) {
  for (const auto& pair : want) {
    if (std::find(labels.begin(), labels.end(), pair) == labels.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int64_t RegistrySnapshot::CounterValue(std::string_view name,
                                       const Labels& labels) const {
  int64_t total = 0;
  for (const MetricSnapshot& m : metrics) {
    if (m.kind == MetricKind::kCounter && m.name == name &&
        LabelsMatch(m.labels, labels)) {
      total += m.counter;
    }
  }
  return total;
}

double RegistrySnapshot::GaugeValue(std::string_view name,
                                    const Labels& labels) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.kind == MetricKind::kGauge && m.name == name &&
        LabelsMatch(m.labels, labels)) {
      return m.gauge;
    }
  }
  return 0.0;
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(
    std::string_view name, const Labels& labels) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.kind == MetricKind::kHistogram && m.name == name &&
        LabelsMatch(m.labels, labels)) {
      return &m.histogram;
    }
  }
  return nullptr;
}

std::string RegistrySnapshot::ToText() const {
  std::string out;
  std::string last_name;
  for (const MetricSnapshot& m : metrics) {
    if (m.name != last_name) {
      const char* type = m.kind == MetricKind::kCounter   ? "counter"
                         : m.kind == MetricKind::kGauge   ? "gauge"
                                                          : "histogram";
      out += StrFormat("# TYPE %s %s\n", m.name.c_str(), type);
      last_name = m.name;
    }
    const std::string labels = RenderLabels(m.labels);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += StrFormat("%s%s %lld\n", m.name.c_str(), labels.c_str(),
                         static_cast<long long>(m.counter));
        break;
      case MetricKind::kGauge:
        out += StrFormat("%s%s %s\n", m.name.c_str(), labels.c_str(),
                         RenderNumber(m.gauge).c_str());
        break;
      case MetricKind::kHistogram: {
        int64_t cumulative = 0;
        for (size_t i = 0; i < m.histogram.buckets.size(); ++i) {
          cumulative += m.histogram.buckets[i];
          Labels with_le = m.labels;
          with_le.emplace_back(
              "le", i < m.histogram.bounds.size()
                        ? RenderNumber(m.histogram.bounds[i])
                        : "+Inf");
          out += StrFormat("%s_bucket%s %lld", m.name.c_str(),
                           RenderLabels(with_le).c_str(),
                           static_cast<long long>(cumulative));
          // OpenMetrics-style exemplar: the last kept trace observed in
          // this bucket, so a hot bucket links straight to a trace.
          if (i < m.histogram.exemplar_ids.size() &&
              m.histogram.exemplar_ids[i] != 0) {
            out += StrFormat(
                " # {trace_id=\"%llu\"} %s",
                static_cast<unsigned long long>(m.histogram.exemplar_ids[i]),
                RenderNumber(m.histogram.exemplar_values[i]).c_str());
          }
          out += "\n";
        }
        out += StrFormat("%s_sum%s %s\n", m.name.c_str(), labels.c_str(),
                         RenderNumber(m.histogram.sum).c_str());
        out += StrFormat("%s_count%s %lld\n", m.name.c_str(), labels.c_str(),
                         static_cast<long long>(m.histogram.count));
        break;
      }
    }
  }
  return out;
}

std::string RegistrySnapshot::ToJson() const {
  std::string counters, gauges, histograms;
  for (const MetricSnapshot& m : metrics) {
    const std::string key =
        JsonEscape(m.name + RenderLabels(m.labels));
    switch (m.kind) {
      case MetricKind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += StrFormat("\"%s\":%lld", key.c_str(),
                              static_cast<long long>(m.counter));
        break;
      case MetricKind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += StrFormat("\"%s\":%s", key.c_str(),
                            RenderNumber(m.gauge).c_str());
        break;
      case MetricKind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        histograms += StrFormat(
            "\"%s\":{\"count\":%lld,\"sum\":%s,\"min\":%s,\"max\":%s,"
            "\"p50\":%s,\"p95\":%s,\"p99\":%s",
            key.c_str(), static_cast<long long>(m.histogram.count),
            RenderNumber(m.histogram.count > 0 ? m.histogram.sum : 0)
                .c_str(),
            RenderNumber(m.histogram.count > 0 ? m.histogram.min : 0)
                .c_str(),
            RenderNumber(m.histogram.count > 0 ? m.histogram.max : 0)
                .c_str(),
            RenderNumber(m.histogram.Quantile(0.5)).c_str(),
            RenderNumber(m.histogram.Quantile(0.95)).c_str(),
            RenderNumber(m.histogram.Quantile(0.99)).c_str());
        const uint64_t exemplar = m.histogram.ExemplarForQuantile(0.99);
        if (exemplar != 0) {
          histograms +=
              StrFormat(",\"p99_exemplar\":\"%llu\"",
                        static_cast<unsigned long long>(exemplar));
        }
        histograms += "}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

std::string RegistrySnapshot::SummaryText() const {
  std::string out;
  for (const MetricSnapshot& m : metrics) {
    const std::string id = m.name + RenderLabels(m.labels);
    switch (m.kind) {
      case MetricKind::kCounter:
        if (m.counter != 0) {
          out += StrFormat("  %-58s %lld\n", id.c_str(),
                           static_cast<long long>(m.counter));
        }
        break;
      case MetricKind::kGauge:
        if (m.gauge != 0.0) {
          out += StrFormat("  %-58s %s\n", id.c_str(),
                           RenderNumber(m.gauge).c_str());
        }
        break;
      case MetricKind::kHistogram:
        if (m.histogram.count > 0) {
          out += StrFormat(
              "  %-58s n=%lld p50=%s p95=%s p99=%s max=%s\n", id.c_str(),
              static_cast<long long>(m.histogram.count),
              RenderNumber(m.histogram.Quantile(0.5)).c_str(),
              RenderNumber(m.histogram.Quantile(0.95)).c_str(),
              RenderNumber(m.histogram.Quantile(0.99)).c_str(),
              RenderNumber(m.histogram.max).c_str());
        }
        break;
    }
  }
  return out;
}

}  // namespace sigmund::obs
