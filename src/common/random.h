#ifndef SIGMUND_COMMON_RANDOM_H_
#define SIGMUND_COMMON_RANDOM_H_

#include <stdint.h>

#include <cmath>
#include <vector>

namespace sigmund {

// Fast, reproducible PRNG (xoshiro256**, public-domain algorithm by
// Blackman & Vigna), seeded via SplitMix64. Deterministic for a given seed
// across platforms, which Sigmund relies on for reproducible grid-search
// trials and tests. Not thread-safe; use one instance per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Standard normal via Box-Muller.
  double Gaussian();
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Samples an index from unnormalized non-negative `weights`.
  // Returns weights.size() if all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Derives a new independent seed (for spawning per-thread RNGs).
  uint64_t Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// SplitMix64 step; useful for stateless hashing of ids into seeds.
uint64_t SplitMix64(uint64_t x);

}  // namespace sigmund

#endif  // SIGMUND_COMMON_RANDOM_H_
