#include "common/random.h"

#include "common/logging.h"

namespace sigmund {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  // Seed expansion per the xoshiro authors' recommendation.
  uint64_t s = seed;
  for (int i = 0; i < 4; ++i) {
    s = SplitMix64(s);
    state_[i] = s;
  }
  // All-zero state is invalid for xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  SIGCHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SIGCHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full range
  return lo + static_cast<int64_t>(Uniform(range));
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SIGCHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge
}

uint64_t Rng::Fork() { return SplitMix64(Next()); }

}  // namespace sigmund
