#ifndef SIGMUND_COMMON_LOGGING_H_
#define SIGMUND_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sigmund {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global minimum severity that is actually emitted. Defaults to kInfo, or
// to $SIGMUND_LOG_LEVEL when set at startup (DEBUG|INFO|WARNING|ERROR|
// FATAL, or 0-4). Thread-safe to read; set once at startup (tests lower
// it to silence logs). kFatal is always emitted.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

// True when `severity` should be emitted. The SIGLOG macro checks this
// BEFORE constructing a LogMessage, so a suppressed call site costs one
// relaxed atomic load — no stream, no formatting, no allocation.
bool IsEnabled(LogSeverity severity);

// Stream-style log sink. Emits on destruction; aborts for kFatal. Lines
// carry a timestamp, severity tag, and thread id:
//   [I 2026-08-06 12:34:56.789 t=1a2b service.cc:42] trained 12 models
// Use via the SIGLOG / SIGCHECK macros below.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Turns a streamed LogMessage expression into void so it can be the
// second arm of the short-circuit ternary in SIGLOG. operator& binds
// looser than operator<<, so the whole streamed chain is evaluated first.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace sigmund

#define SIGMUND_LOG_SEVERITY_DEBUG ::sigmund::LogSeverity::kDebug
#define SIGMUND_LOG_SEVERITY_INFO ::sigmund::LogSeverity::kInfo
#define SIGMUND_LOG_SEVERITY_WARNING ::sigmund::LogSeverity::kWarning
#define SIGMUND_LOG_SEVERITY_ERROR ::sigmund::LogSeverity::kError
#define SIGMUND_LOG_SEVERITY_FATAL ::sigmund::LogSeverity::kFatal

// Leveled logging: SIGLOG(INFO) << "trained " << n << " models";
// A below-threshold severity short-circuits before the LogMessage (and
// everything streamed into it) is evaluated.
#define SIGLOG(severity)                                                  \
  !::sigmund::internal_logging::IsEnabled(SIGMUND_LOG_SEVERITY_##severity) \
      ? (void)0                                                           \
      : ::sigmund::internal_logging::Voidify() &                          \
            ::sigmund::internal_logging::LogMessage(                      \
                SIGMUND_LOG_SEVERITY_##severity, __FILE__, __LINE__)      \
                .stream()

// Internal-invariant checks; these abort the process on failure (the
// condition represents a programming error, not a recoverable state).
#define SIGCHECK(condition)                                        \
  while (!(condition))                                             \
  SIGLOG(FATAL) << "Check failed: " #condition " "
#define SIGCHECK_OK(expr)                                          \
  do {                                                             \
    ::sigmund::Status _s = (expr);                                 \
    while (!_s.ok()) SIGLOG(FATAL) << "Status not OK: " << _s.ToString(); \
  } while (0)
#define SIGCHECK_EQ(a, b) SIGCHECK((a) == (b))
#define SIGCHECK_NE(a, b) SIGCHECK((a) != (b))
#define SIGCHECK_LT(a, b) SIGCHECK((a) < (b))
#define SIGCHECK_LE(a, b) SIGCHECK((a) <= (b))
#define SIGCHECK_GT(a, b) SIGCHECK((a) > (b))
#define SIGCHECK_GE(a, b) SIGCHECK((a) >= (b))

#endif  // SIGMUND_COMMON_LOGGING_H_
