#ifndef SIGMUND_COMMON_LOGGING_H_
#define SIGMUND_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sigmund {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global minimum severity that is actually emitted. Defaults to kInfo.
// Thread-safe to read; set once at startup (tests lower it to silence logs).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

// Stream-style log sink. Emits on destruction; aborts for kFatal.
// Use via the SIGLOG / SIGCHECK macros below.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the severity is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace sigmund

// Leveled logging: SIGLOG(INFO) << "trained " << n << " models";
#define SIGLOG(severity) SIGLOG_##severity
#define SIGLOG_DEBUG                                                  \
  ::sigmund::internal_logging::LogMessage(                            \
      ::sigmund::LogSeverity::kDebug, __FILE__, __LINE__)             \
      .stream()
#define SIGLOG_INFO                                                   \
  ::sigmund::internal_logging::LogMessage(                            \
      ::sigmund::LogSeverity::kInfo, __FILE__, __LINE__)              \
      .stream()
#define SIGLOG_WARNING                                                \
  ::sigmund::internal_logging::LogMessage(                            \
      ::sigmund::LogSeverity::kWarning, __FILE__, __LINE__)           \
      .stream()
#define SIGLOG_ERROR                                                  \
  ::sigmund::internal_logging::LogMessage(                            \
      ::sigmund::LogSeverity::kError, __FILE__, __LINE__)             \
      .stream()
#define SIGLOG_FATAL                                                  \
  ::sigmund::internal_logging::LogMessage(                            \
      ::sigmund::LogSeverity::kFatal, __FILE__, __LINE__)             \
      .stream()

// Internal-invariant checks; these abort the process on failure (the
// condition represents a programming error, not a recoverable state).
#define SIGCHECK(condition)                                        \
  while (!(condition))                                             \
  SIGLOG(FATAL) << "Check failed: " #condition " "
#define SIGCHECK_OK(expr)                                          \
  do {                                                             \
    ::sigmund::Status _s = (expr);                                 \
    while (!_s.ok()) SIGLOG(FATAL) << "Status not OK: " << _s.ToString(); \
  } while (0)
#define SIGCHECK_EQ(a, b) SIGCHECK((a) == (b))
#define SIGCHECK_NE(a, b) SIGCHECK((a) != (b))
#define SIGCHECK_LT(a, b) SIGCHECK((a) < (b))
#define SIGCHECK_LE(a, b) SIGCHECK((a) <= (b))
#define SIGCHECK_GT(a, b) SIGCHECK((a) > (b))
#define SIGCHECK_GE(a, b) SIGCHECK((a) >= (b))

#endif  // SIGMUND_COMMON_LOGGING_H_
