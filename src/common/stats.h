#ifndef SIGMUND_COMMON_STATS_H_
#define SIGMUND_COMMON_STATS_H_

#include <stdint.h>

#include <vector>

namespace sigmund {

// Two-proportion z statistic of arm 1 vs. arm 0 (pooled variance): the
// sequential test behind the CTR canary (DESIGN.md §7) and the data-plane
// sentry's action-mix drift checks (DESIGN.md §12). Returns 0 when the
// statistic cannot be computed yet (an empty arm or zero pooled variance).
double TwoProportionZ(int64_t hits1, int64_t n1, int64_t hits0, int64_t n0);

// Population stability index between two histograms over the same buckets
// (any non-negative weights; each side is normalized to a distribution
// internally, with epsilon smoothing so empty buckets stay finite).
// PSI < 0.1 is conventionally "no shift", 0.1-0.25 "moderate", > 0.25
// "significant". Returns 0 when either histogram sums to zero or the
// bucket counts differ.
double PopulationStabilityIndex(const std::vector<double>& expected,
                                const std::vector<double>& observed);

}  // namespace sigmund

#endif  // SIGMUND_COMMON_STATS_H_
