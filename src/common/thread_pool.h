#ifndef SIGMUND_COMMON_THREAD_POOL_H_
#define SIGMUND_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sigmund {

// Fixed-size worker pool. Used by the Hogwild trainer, the MapReduce
// runtime and the inference engine. Tasks are plain std::function<void()>;
// error reporting is the task's own responsibility (capture a Status).
//
// Thread-safe. Destruction waits for queued tasks to drain.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution on some worker thread.
  void Schedule(std::function<void()> task);

  // Blocks until every task scheduled so far has completed.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  // Convenience for data-parallel loops.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace sigmund

#endif  // SIGMUND_COMMON_THREAD_POOL_H_
