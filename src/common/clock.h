#ifndef SIGMUND_COMMON_CLOCK_H_
#define SIGMUND_COMMON_CLOCK_H_

#include <stdint.h>

namespace sigmund {

// Time source abstraction. Production code uses RealClock; the cluster
// simulator and the fault-tolerance tests use SimClock so that experiments
// over hours of simulated training complete in milliseconds and are
// deterministic.
class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic time in microseconds.
  virtual int64_t NowMicros() const = 0;

  double NowSeconds() const { return NowMicros() * 1e-6; }
};

// Wall-clock backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  int64_t NowMicros() const override;

  // Process-wide instance (no destruction-order issues: leaked singleton).
  static RealClock* Get();
};

// Manually advanced clock for simulations and tests.
class SimClock : public Clock {
 public:
  SimClock() = default;
  explicit SimClock(int64_t start_micros) : now_micros_(start_micros) {}

  int64_t NowMicros() const override { return now_micros_; }

  void AdvanceMicros(int64_t delta_micros);
  void AdvanceSeconds(double seconds) {
    AdvanceMicros(static_cast<int64_t>(seconds * 1e6));
  }
  void SetMicros(int64_t t);

 private:
  int64_t now_micros_ = 0;
};

}  // namespace sigmund

#endif  // SIGMUND_COMMON_CLOCK_H_
