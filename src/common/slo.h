#ifndef SIGMUND_COMMON_SLO_H_
#define SIGMUND_COMMON_SLO_H_

#include <stdint.h>

#include <deque>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace sigmund::obs {

// ---------------------------------------------------------------------------
// SLO burn-rate alerting over MetricRegistry deltas (Google-SRE-workbook
// multi-window multi-burn-rate policy).
//
// An objective declares what fraction of events must be good (e.g.
// availability 99.9%, or p99-style "latency under 50ms for 99% of
// requests"). The engine is fed periodic registry snapshots; for each
// objective it keeps a short history of (total, bad) counter values and
// computes the burn rate over a short and a long trailing window:
//
//   burn = (delta_bad / delta_total) / (1 - objective)
//
// burn == 1 means the error budget is being consumed exactly at the rate
// that exhausts it over the SLO period; burn >> 1 pages. An alert fires
// when BOTH windows exceed fire_burn_rate (the long window keeps blips
// from paging, the short window makes the alert resolve fast once the
// incident ends) and resolves when both fall back under
// resolve_burn_rate. Fire/resolve transitions append to the alert log
// and are surfaced in DailyReport / RunProfile JSON.
//
// Evaluation is pure bookkeeping over snapshots the caller already takes
// — the engine never touches the serving path, so wiring it in is
// provably passive (chaos_test asserts byte-identical outputs).
// ---------------------------------------------------------------------------

// One declared objective. Exactly one of the two modes is used:
//  * counter mode: bad_counter / total_counter (availability-style);
//  * latency mode: latency_histogram + threshold_micros — "good" events
//    landed in buckets whose upper bound is <= the threshold.
struct SloObjective {
  std::string name;  // e.g. "availability", "latency_user_facing"

  // Counter mode. Labels select instruments the way
  // RegistrySnapshot::CounterValue does: every label combination
  // carrying all of the given labels is summed.
  std::string total_counter;
  Labels total_labels;
  std::string bad_counter;
  Labels bad_labels;

  // Latency mode (used when latency_histogram is non-empty).
  std::string latency_histogram;
  Labels latency_labels;
  double threshold_micros = 0;

  // Fraction of events that must be good (0.999 = 99.9%).
  double objective = 0.999;
};

// One fire/resolve transition.
struct AlertEvent {
  int64_t time_micros = 0;
  std::string objective;
  bool firing = false;  // true = fired, false = resolved
  double burn_short = 0;
  double burn_long = 0;
};

class SloEngine {
 public:
  struct Options {
    std::vector<SloObjective> objectives;
    // Trailing evaluation windows. Defaults are scaled for simulated
    // serving scenarios; production values would be 5m/1h.
    int64_t short_window_micros = 5'000'000;
    int64_t long_window_micros = 60'000'000;
    // Fire when both windows burn at >= this rate...
    double fire_burn_rate = 2.0;
    // ...resolve when both are back at <= this rate.
    double resolve_burn_rate = 1.0;
  };

  // `metrics` is borrowed; nullptr = no burn-rate gauges/alert counters.
  explicit SloEngine(const Options& options,
                     MetricRegistry* metrics = nullptr);
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  // Ingests one snapshot taken at `now_micros` (monotonic, same clock
  // domain across calls) and updates burn rates + alert states. Returns
  // the number of state transitions (fires + resolves) this evaluation.
  int Evaluate(const RegistrySnapshot& snapshot, int64_t now_micros);

  // Current state, per objective in declaration order.
  struct ObjectiveState {
    std::string name;
    bool firing = false;
    double burn_short = 0;
    double burn_long = 0;
  };
  std::vector<ObjectiveState> States() const;

  // Every fire/resolve transition so far, in time order.
  const std::vector<AlertEvent>& alert_log() const { return alert_log_; }
  int FiringCount() const;
  int64_t FiredTotal() const { return fired_total_; }
  int64_t ResolvedTotal() const { return resolved_total_; }

  // {"objectives": [...], "alerts": [...]} — the RunProfile "slo"
  // section.
  std::string ToJson() const;

  const Options& options() const { return options_; }

 private:
  struct Sample {
    int64_t time_micros = 0;
    int64_t total = 0;
    int64_t bad = 0;
  };
  struct Tracker {
    std::deque<Sample> samples;  // time-ordered
    bool firing = false;
    double burn_short = 0;
    double burn_long = 0;
  };

  // (total, bad) for objective `o` out of `snapshot`.
  static Sample Measure(const SloObjective& o,
                        const RegistrySnapshot& snapshot,
                        int64_t now_micros);
  // Burn rate over the trailing window ending at the newest sample.
  static double Burn(const SloObjective& o, const Tracker& tracker,
                     int64_t window_micros);

  Options options_;
  MetricRegistry* metrics_;
  std::vector<Tracker> trackers_;  // parallel to options_.objectives
  std::vector<AlertEvent> alert_log_;
  int64_t fired_total_ = 0;
  int64_t resolved_total_ = 0;
};

}  // namespace sigmund::obs

#endif  // SIGMUND_COMMON_SLO_H_
