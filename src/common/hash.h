#ifndef SIGMUND_COMMON_HASH_H_
#define SIGMUND_COMMON_HASH_H_

#include <stdint.h>

#include <string_view>

namespace sigmund {

// Deterministic, platform-stable hashing shared by every subsystem that
// needs reproducible decisions: the load generator's decision hash, trace
// tail-sampling, fault-injection schedules, cluster churn schedules, and
// A/B arm assignment. std::hash is implementation-defined, so anything
// that must stay byte-identical across standard libraries lives here.

// --- FNV-1a -----------------------------------------------------------------

inline constexpr uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv64Prime = 0x100000001b3ULL;

// FNV-1a over a byte string, continuing from `h` (chainable).
inline constexpr uint64_t Fnv1a64(std::string_view bytes,
                                  uint64_t h = kFnv64OffsetBasis) {
  for (char c : bytes) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= kFnv64Prime;
  }
  return h;
}

// Folds one 64-bit word into a running FNV-1a hash (word-at-a-time
// variant; the loadgen decision hash chains these per decision).
inline constexpr uint64_t Fnv1a64Mix(uint64_t h, uint64_t value) {
  h ^= value;
  h *= kFnv64Prime;
  return h;
}

// --- SplitMix64 finalizer ---------------------------------------------------

// Stateless 64-bit mixer (the SplitMix64 step): bijective, avalanching,
// identical to common/random.h's SplitMix64 — duplicated as a constexpr
// so hash-only call sites need no RNG dependency. Used for trace
// tail-sampling and hash-split decisions.
inline constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// --- Deterministic splits ---------------------------------------------------

// Maps (seed, key) to [0, 1) and returns true when it falls below
// `fraction` — the canonical sticky A/B split: a given key lands in the
// same arm on every call with the same seed, changing the seed reshuffles
// arms, and raising `fraction` only ever moves keys *into* the treatment
// arm (monotone ramp-up, so a 5% -> 20% rollout keeps the 5%).
inline constexpr bool HashSplit(uint64_t seed, uint64_t key,
                                double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  // 2^64 as a double; the product is clamped by the comparisons above.
  const double scaled = fraction * 18446744073709551616.0;
  return static_cast<double>(Mix64(key ^ Mix64(seed))) < scaled;
}

}  // namespace sigmund

#endif  // SIGMUND_COMMON_HASH_H_
