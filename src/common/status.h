#ifndef SIGMUND_COMMON_STATUS_H_
#define SIGMUND_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace sigmund {

// Canonical error space, modeled after absl::StatusCode / rocksdb::Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,   // transient failure; retry may succeed (e.g. preemption)
  kDataLoss,
  kInternal,
  // The serving plane shed this request on purpose (admission control,
  // rate limit, queue overflow). Distinct from kUnavailable: retrying an
  // overloaded server amplifies the overload, so shed responses are not
  // retried by the generic retry loop.
  kResourceExhausted,
};

// Returns a stable human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// Value-type result of an operation that can fail. Sigmund does not use
// exceptions (per the style guide); fallible functions return Status or
// StatusOr<T>.
//
// Example:
//   Status s = fs->Write(path, payload);
//   if (!s.ok()) return s;
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such file".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Factory helpers, mirroring absl's.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);

// A Status or a value of type T. Accessing value() on a non-OK StatusOr
// aborts the process (there are no exceptions to throw).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so `return value;` and `return status;` both work.
  StatusOr(const T& value) : status_(), value_(value) {}          // NOLINT
  StatusOr(T&& value) : status_(), value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}         // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
// Aborts the process with `status` printed to stderr. Out of line to keep
// StatusOr header-light.
[[noreturn]] void DieBecauseNotOk(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal_status::DieBecauseNotOk(status_);
}

}  // namespace sigmund

// Propagates a non-OK Status from an expression, RocksDB/absl style.
#define SIGMUND_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::sigmund::Status _sigmund_status = (expr);        \
    if (!_sigmund_status.ok()) return _sigmund_status; \
  } while (0)

#endif  // SIGMUND_COMMON_STATUS_H_
