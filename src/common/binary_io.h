#ifndef SIGMUND_COMMON_BINARY_IO_H_
#define SIGMUND_COMMON_BINARY_IO_H_

#include <stdint.h>

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sigmund {

// Little helpers for length-prefixed binary encoding of pipeline payloads
// (retailer data shards, model checkpoints). Host-endian: the simulated
// cluster is homogeneous, as Borg cells are.
class BinaryWriter {
 public:
  template <typename T>
  void Write(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    buffer_.append(reinterpret_cast<const char*>(&value), sizeof(value));
  }

  void WriteString(std::string_view text) {
    Write<uint64_t>(text.size());
    buffer_.append(text.data(), text.size());
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(values.size());
    if (!values.empty()) {
      buffer_.append(reinterpret_cast<const char*>(values.data()),
                     values.size() * sizeof(T));
    }
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Reads values back; every method returns false on truncation, never
// aborts — corrupted shards must surface as Status, not crashes.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + sizeof(T) > data_.size()) return false;
    std::memcpy(value, data_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* text) {
    uint64_t size = 0;
    // Compare against the remaining bytes, not offset_ + size: a hostile
    // or torn length prefix near UINT64_MAX would overflow the addition
    // and pass the old check, then read far out of bounds.
    if (!Read(&size) || size > data_.size() - offset_) return false;
    text->assign(data_.data() + offset_, size);
    offset_ += size;
    return true;
  }

  template <typename T>
  bool ReadVector(std::vector<T>* values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Read(&count)) return false;
    // Divide instead of multiplying: count * sizeof(T) can wrap uint64.
    if (count > (data_.size() - offset_) / sizeof(T)) return false;
    values->resize(count);
    if (count > 0) {
      std::memcpy(values->data(), data_.data() + offset_,
                  count * sizeof(T));
    }
    offset_ += count * sizeof(T);
    return true;
  }

  bool Done() const { return offset_ == data_.size(); }
  size_t offset() const { return offset_; }

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

// --- Checksummed framing ----------------------------------------------------
//
// Durable pipeline payloads (model checkpoints, training-data shards,
// materialized recommendation batches) are wrapped in a CRC32-checksummed
// frame so a torn write — a crash mid-write leaving a truncated or
// garbage blob — is *detected* at read time instead of being deserialized
// into a silently wrong model:
//
//   magic "SGF1" (4) | crc32(payload) (4) | payload size (8) | payload
//
// Host-endian like the rest of binary_io (homogeneous simulated cluster).

// True if `frame` starts with the frame magic (cheap sniff; does not
// validate the checksum).
bool LooksLikeChecksummedFrame(std::string_view frame);

// Wraps `payload` in a checksummed frame.
std::string WriteChecksummedFrame(std::string_view payload);

// Unwraps and validates a frame; kDataLoss on bad magic, bad length, or
// checksum mismatch (i.e. any torn/corrupted blob).
StatusOr<std::string> ReadChecksummedFrame(std::string_view frame);

}  // namespace sigmund

#endif  // SIGMUND_COMMON_BINARY_IO_H_
