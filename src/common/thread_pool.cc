#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace sigmund {

ThreadPool::ThreadPool(int num_threads) {
  SIGCHECK_GT(num_threads, 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    SIGCHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  // Block-partition the index space: one task per worker keeps scheduling
  // overhead negligible for tight numeric loops.
  const int64_t workers = num_threads();
  std::atomic<int64_t> next{0};
  const int64_t block = (n + workers - 1) / workers;
  for (int64_t w = 0; w < workers; ++w) {
    Schedule([&next, block, n, &fn] {
      for (;;) {
        int64_t start = next.fetch_add(block);
        if (start >= n) return;
        int64_t end = std::min(start + block, n);
        for (int64_t i = start; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sigmund
