#include "common/binary_io.h"

#include "common/crc32.h"
#include "common/string_util.h"

namespace sigmund {

namespace {

constexpr char kFrameMagic[4] = {'S', 'G', 'F', '1'};
constexpr size_t kFrameHeaderBytes =
    sizeof(kFrameMagic) + sizeof(uint32_t) + sizeof(uint64_t);

}  // namespace

bool LooksLikeChecksummedFrame(std::string_view frame) {
  return frame.size() >= sizeof(kFrameMagic) &&
         std::memcmp(frame.data(), kFrameMagic, sizeof(kFrameMagic)) == 0;
}

std::string WriteChecksummedFrame(std::string_view payload) {
  std::string frame(kFrameMagic, sizeof(kFrameMagic));
  const uint32_t crc = Crc32(payload);
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  const uint64_t size = payload.size();
  frame.append(reinterpret_cast<const char*>(&size), sizeof(size));
  frame.append(payload.data(), payload.size());
  return frame;
}

StatusOr<std::string> ReadChecksummedFrame(std::string_view frame) {
  if (frame.size() < kFrameHeaderBytes) {
    return DataLossError(
        StrFormat("frame truncated: %zu bytes < %zu-byte header",
                  frame.size(), kFrameHeaderBytes));
  }
  if (!LooksLikeChecksummedFrame(frame)) {
    return DataLossError("frame magic mismatch");
  }
  uint32_t stored_crc = 0;
  uint64_t stored_size = 0;
  std::memcpy(&stored_crc, frame.data() + sizeof(kFrameMagic),
              sizeof(stored_crc));
  std::memcpy(&stored_size,
              frame.data() + sizeof(kFrameMagic) + sizeof(stored_crc),
              sizeof(stored_size));
  if (stored_size != frame.size() - kFrameHeaderBytes) {
    return DataLossError(StrFormat(
        "frame length mismatch: header says %llu, blob carries %zu",
        static_cast<unsigned long long>(stored_size),
        frame.size() - kFrameHeaderBytes));
  }
  std::string_view payload = frame.substr(kFrameHeaderBytes);
  const uint32_t actual_crc = Crc32(payload);
  if (actual_crc != stored_crc) {
    return DataLossError(StrFormat("frame checksum mismatch: %08x != %08x",
                                   actual_crc, stored_crc));
  }
  return std::string(payload);
}

}  // namespace sigmund
