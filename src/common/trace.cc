#include "common/trace.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/string_util.h"

namespace sigmund::obs {

namespace {

// Per-thread stack of open spans, shared across tracers (each entry
// remembers which tracer it belongs to). Thread-local so parenthood needs
// no locks and never crosses threads by accident.
thread_local std::vector<std::pair<const Tracer*, int64_t>> tls_open_spans;

}  // namespace

// --- Span ------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    id_ = other.id_;
    on_stack_ = other.on_stack_;
    duration_micros_ = other.duration_micros_;
    other.tracer_ = nullptr;
    other.id_ = 0;
    other.on_stack_ = false;
  }
  return *this;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  duration_micros_ = tracer_->EndSpan(id_, on_stack_);
  // id_ is kept: like DurationMicros(), it stays readable after End() so
  // callers can still key Subtree()/BuildRunProfile on the ended span.
  tracer_ = nullptr;
}

// --- Tracer ----------------------------------------------------------------

Tracer::Tracer(const Clock* clock)
    : clock_(clock != nullptr ? clock : RealClock::Get()) {}

Span Tracer::StartSpan(std::string name, int64_t parent_id) {
  if (parent_id == kInheritParent) parent_id = CurrentSpanId();
  const int64_t now = clock_->NowMicros();
  SpanRecord record;
  record.parent_id = parent_id;
  record.name = std::move(name);
  record.start_micros = now;
  int64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    record.id = id;
    spans_.push_back(std::move(record));
  }
  tls_open_spans.emplace_back(this, id);
  return Span(this, id, /*on_stack=*/true);
}

int64_t Tracer::CurrentSpanId() const {
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  return 0;
}

int64_t Tracer::EndSpan(int64_t id, bool on_stack) {
  const int64_t now = clock_->NowMicros();
  int64_t duration = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t index = id - id_base_;
    if (index >= 0 && index < static_cast<int64_t>(spans_.size())) {
      spans_[index].end_micros = now;
      duration = spans_[index].DurationMicros();
    }
  }
  if (on_stack) {
    // Normally the innermost entry; a span ended out of order is removed
    // from wherever it sits.
    for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend();
         ++it) {
      if (it->first == this && it->second == id) {
        tls_open_spans.erase(std::next(it).base());
        break;
      }
    }
  }
  return duration;
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<SpanRecord> Tracer::Subtree(int64_t root_id) const {
  std::vector<SpanRecord> all = Spans();
  std::vector<SpanRecord> out;
  std::vector<int64_t> frontier = {root_id};
  // Spans are in start order and children always start after parents, so
  // one forward pass collects the whole subtree.
  for (const SpanRecord& span : all) {
    const bool is_root = span.id == root_id;
    const bool child = std::find(frontier.begin(), frontier.end(),
                                 span.parent_id) != frontier.end();
    if (is_root || child) {
      if (!is_root) frontier.push_back(span.id);
      out.push_back(span);
    }
  }
  return out;
}

std::string Tracer::DumpTree() const {
  const std::vector<SpanRecord> all = Spans();
  std::map<int64_t, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& span : all) {
    children[span.parent_id].push_back(&span);
  }
  std::string out;
  // Recursive lambda over the forest in start order.
  auto render = [&](auto&& self, int64_t parent, int depth) -> void {
    auto it = children.find(parent);
    if (it == children.end()) return;
    for (const SpanRecord* span : it->second) {
      if (span->end_micros == 0) {
        // Still open: no end time yet, so render a marker instead of a
        // (negative) duration.
        out += StrFormat("%*s%-*s %12s\n", depth * 2, "", 40 - depth * 2,
                         span->name.c_str(), "open");
      } else {
        out += StrFormat("%*s%-*s %10lldus\n", depth * 2, "",
                         40 - depth * 2, span->name.c_str(),
                         static_cast<long long>(span->DurationMicros()));
      }
      self(self, span->id, depth + 1);
    }
  };
  render(render, 0, 0);
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  id_base_ = next_id_;
  spans_.clear();
}

// --- RunProfile ------------------------------------------------------------

RunProfile BuildRunProfile(std::string name, const Tracer& tracer,
                           int64_t root_id, RegistrySnapshot metrics) {
  RunProfile profile;
  profile.name = std::move(name);
  profile.spans = tracer.Subtree(root_id);
  if (!profile.spans.empty()) {
    profile.total_micros = profile.spans.front().DurationMicros();
  }
  profile.metrics = std::move(metrics);
  return profile;
}

std::string RunProfile::ToJson() const {
  std::string spans_json;
  for (const SpanRecord& span : spans) {
    if (!spans_json.empty()) spans_json += ",";
    spans_json += StrFormat(
        "{\"id\":%lld,\"parent_id\":%lld,\"name\":\"%s\","
        "\"start_micros\":%lld,\"duration_micros\":%lld}",
        static_cast<long long>(span.id),
        static_cast<long long>(span.parent_id), span.name.c_str(),
        static_cast<long long>(span.start_micros),
        static_cast<long long>(span.DurationMicros()));
  }
  return StrFormat("{\"name\":\"%s\",\"total_micros\":%lld,\"spans\":[%s],"
                   "\"metrics\":%s}",
                   name.c_str(), static_cast<long long>(total_micros),
                   spans_json.c_str(), metrics.ToJson().c_str());
}

}  // namespace sigmund::obs
