#include "common/trace.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"

namespace sigmund::obs {

namespace {

// Per-thread stack of open spans, shared across tracers (each entry
// remembers which tracer it belongs to). Thread-local so parenthood needs
// no locks and never crosses threads by accident.
thread_local std::vector<std::pair<const Tracer*, int64_t>> tls_open_spans;

}  // namespace

// --- SpanRecord ------------------------------------------------------------

std::string SpanRecord::Annotation(const std::string& key) const {
  for (const auto& [k, v] : annotations) {
    if (k == key) return v;
  }
  return "";
}

// --- Span ------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    id_ = other.id_;
    on_stack_ = other.on_stack_;
    duration_micros_ = other.duration_micros_;
    other.tracer_ = nullptr;
    other.id_ = 0;
    other.on_stack_ = false;
  }
  return *this;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  duration_micros_ = tracer_->EndSpan(id_, on_stack_);
  // id_ is kept: like DurationMicros(), it stays readable after End() so
  // callers can still key Subtree()/BuildRunProfile on the ended span.
  tracer_ = nullptr;
}

void Span::Annotate(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  tracer_->Annotate(id_, key, value);
}

// --- Tracer ----------------------------------------------------------------

Tracer::Tracer(const Clock* clock)
    : clock_(clock != nullptr ? clock : RealClock::Get()) {}

Span Tracer::StartSpan(std::string name, int64_t parent_id) {
  if (parent_id == kInheritParent) parent_id = CurrentSpanId();
  const int64_t now = clock_->NowMicros();
  SpanRecord record;
  record.parent_id = parent_id;
  record.name = std::move(name);
  record.start_micros = now;
  int64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    record.id = id;
    spans_.push_back(std::move(record));
  }
  tls_open_spans.emplace_back(this, id);
  return Span(this, id, /*on_stack=*/true);
}

int64_t Tracer::CurrentSpanId() const {
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  return 0;
}

int64_t Tracer::EndSpan(int64_t id, bool on_stack) {
  const int64_t now = clock_->NowMicros();
  int64_t duration = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t index = id - id_base_;
    if (index >= 0 && index < static_cast<int64_t>(spans_.size())) {
      spans_[index].end_micros = now;
      duration = spans_[index].DurationMicros();
    }
  }
  if (on_stack) {
    // Normally the innermost entry; a span ended out of order is removed
    // from wherever it sits.
    for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend();
         ++it) {
      if (it->first == this && it->second == id) {
        tls_open_spans.erase(std::next(it).base());
        break;
      }
    }
  }
  return duration;
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<SpanRecord> Tracer::Subtree(int64_t root_id) const {
  std::vector<SpanRecord> all = Spans();
  std::vector<SpanRecord> out;
  std::vector<int64_t> frontier = {root_id};
  // Spans are in start order and children always start after parents, so
  // one forward pass collects the whole subtree.
  for (const SpanRecord& span : all) {
    const bool is_root = span.id == root_id;
    const bool child = std::find(frontier.begin(), frontier.end(),
                                 span.parent_id) != frontier.end();
    if (is_root || child) {
      if (!is_root) frontier.push_back(span.id);
      out.push_back(span);
    }
  }
  return out;
}

std::string Tracer::DumpTree() const {
  const std::vector<SpanRecord> all = Spans();
  std::map<int64_t, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& span : all) {
    children[span.parent_id].push_back(&span);
  }
  std::string out;
  // Recursive lambda over the forest in start order.
  auto render = [&](auto&& self, int64_t parent, int depth) -> void {
    auto it = children.find(parent);
    if (it == children.end()) return;
    for (const SpanRecord* span : it->second) {
      if (span->end_micros == 0) {
        // Still open: no end time yet, so render a marker instead of a
        // (negative) duration.
        out += StrFormat("%*s%-*s %12s\n", depth * 2, "", 40 - depth * 2,
                         span->name.c_str(), "open");
      } else {
        out += StrFormat("%*s%-*s %10lldus\n", depth * 2, "",
                         40 - depth * 2, span->name.c_str(),
                         static_cast<long long>(span->DurationMicros()));
      }
      self(self, span->id, depth + 1);
    }
  };
  render(render, 0, 0);
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  id_base_ = next_id_;
  spans_.clear();
}

void Tracer::Annotate(int64_t id, const std::string& key,
                      const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t index = id - id_base_;
  if (index >= 0 && index < static_cast<int64_t>(spans_.size())) {
    spans_[index].annotations.emplace_back(key, value);
  }
}

// --- Request-scoped tracing ------------------------------------------------

const char* TraceVerdictName(TraceVerdict verdict) {
  switch (verdict) {
    case TraceVerdict::kHealthy:
      return "healthy";
    case TraceVerdict::kShed:
      return "shed";
    case TraceVerdict::kError:
      return "error";
    case TraceVerdict::kDeadlineOverrun:
      return "deadline_overrun";
  }
  return "unknown";
}

int64_t TraceContext::StartSpan(const std::string& name) const {
  if (trace == nullptr) return 0;
  return trace->StartSpan(name, span_id);
}

void TraceContext::EndSpan(int64_t id) const {
  if (trace != nullptr) trace->EndSpan(id);
}

void TraceContext::Annotate(const std::string& key,
                            const std::string& value) const {
  if (trace != nullptr) trace->Annotate(span_id, key, value);
}

void TraceContext::SetVerdict(TraceVerdict verdict) const {
  if (trace != nullptr) trace->SetVerdict(verdict);
}

std::string RequestTraceRecord::Annotation(const std::string& key) const {
  for (const SpanRecord& span : spans) {
    for (const auto& [k, v] : span.annotations) {
      if (k == key) return v;
    }
  }
  return "";
}

std::string RequestTraceRecord::ToJson() const {
  std::string spans_json;
  for (const SpanRecord& span : spans) {
    if (!spans_json.empty()) spans_json += ",";
    std::string annotations_json;
    for (const auto& [k, v] : span.annotations) {
      if (!annotations_json.empty()) annotations_json += ",";
      annotations_json += StrFormat("\"%s\":\"%s\"", JsonEscape(k).c_str(),
                                    JsonEscape(v).c_str());
    }
    spans_json += StrFormat(
        "{\"id\":%lld,\"parent_id\":%lld,\"name\":\"%s\","
        "\"start_micros\":%lld,\"duration_micros\":%lld",
        static_cast<long long>(span.id),
        static_cast<long long>(span.parent_id),
        JsonEscape(span.name).c_str(),
        static_cast<long long>(span.start_micros),
        static_cast<long long>(span.DurationMicros()));
    if (!annotations_json.empty()) {
      spans_json += StrFormat(",\"annotations\":{%s}",
                              annotations_json.c_str());
    }
    spans_json += "}";
  }
  return StrFormat(
      "{\"trace_id\":%llu,\"name\":\"%s\",\"verdict\":\"%s\","
      "\"start_micros\":%lld,\"duration_micros\":%lld,\"spans\":[%s]}",
      static_cast<unsigned long long>(trace_id), JsonEscape(name).c_str(),
      TraceVerdictName(verdict), static_cast<long long>(start_micros),
      static_cast<long long>(end_micros - start_micros), spans_json.c_str());
}

RequestTrace::RequestTrace(uint64_t trace_id, std::string name,
                           const Clock* clock)
    : clock_(clock), record_(std::make_unique<RequestTraceRecord>()) {
  record_->trace_id = trace_id;
  record_->name = name;
  record_->start_micros = clock_->NowMicros();
  SpanRecord root;
  root.id = 1;
  root.parent_id = 0;
  root.name = std::move(name);
  root.start_micros = record_->start_micros;
  record_->spans.push_back(std::move(root));
}

int64_t RequestTrace::StartSpan(const std::string& name, int64_t parent_id) {
  if (!active()) return 0;
  SpanRecord span;
  span.id = static_cast<int64_t>(record_->spans.size()) + 1;
  span.parent_id = parent_id == 0 ? root_span_id() : parent_id;
  span.name = name;
  span.start_micros = clock_->NowMicros();
  record_->spans.push_back(std::move(span));
  return record_->spans.back().id;
}

void RequestTrace::EndSpan(int64_t id) {
  if (!active()) return;
  const int64_t index = id - 1;
  if (index < 0 || index >= static_cast<int64_t>(record_->spans.size())) {
    return;
  }
  record_->spans[index].end_micros = clock_->NowMicros();
}

void RequestTrace::Annotate(int64_t id, const std::string& key,
                            const std::string& value) {
  if (!active()) return;
  if (id == 0) id = root_span_id();
  const int64_t index = id - 1;
  if (index < 0 || index >= static_cast<int64_t>(record_->spans.size())) {
    return;
  }
  record_->spans[index].annotations.emplace_back(key, value);
}

void RequestTrace::SetVerdict(TraceVerdict verdict) {
  if (!active()) return;
  // Worst-verdict-wins: never downgrade back to healthy.
  if (verdict == TraceVerdict::kHealthy &&
      record_->verdict != TraceVerdict::kHealthy) {
    return;
  }
  record_->verdict = verdict;
}

TraceContext RequestTrace::Context(int64_t span_id) {
  TraceContext context;
  if (active()) {
    context.trace = this;
    context.span_id = span_id == 0 ? root_span_id() : span_id;
  }
  return context;
}

RequestTracer::RequestTracer(const Options& options, MetricRegistry* metrics,
                             const Clock* clock)
    : options_(options),
      metrics_(metrics),
      clock_(clock != nullptr ? clock : RealClock::Get()) {
  double rate = options_.sample_rate;
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  // hash < threshold keeps; threshold = rate scaled to the u64 range.
  if (rate >= 1.0) {
    sample_threshold_ = ~0ULL;
  } else {
    sample_threshold_ = static_cast<uint64_t>(
        rate * 18446744073709551616.0 /* 2^64 */);
  }
}

RequestTrace RequestTracer::StartRequest(const std::string& name) {
  uint64_t trace_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    trace_id = next_trace_id_++;
  }
  return RequestTrace(trace_id, name, clock_);
}

bool RequestTracer::WouldKeepHealthy(uint64_t trace_id) const {
  if (sample_threshold_ == ~0ULL) return true;
  // Mix64 is the healthy-sampling hash: a pure function of the input, so
  // keep decisions are reproducible across runs and platforms.
  return Mix64(trace_id ^ options_.seed) < sample_threshold_;
}

bool RequestTracer::Submit(RequestTrace trace) {
  if (!trace.active()) return false;
  RequestTraceRecord record = std::move(*trace.record_);
  trace.record_.reset();
  record.end_micros = clock_->NowMicros();
  // Close the root span (and any spans left open) at submit time.
  for (SpanRecord& span : record.spans) {
    if (span.end_micros == 0) span.end_micros = record.end_micros;
  }
  const bool keep = record.verdict != TraceVerdict::kHealthy ||
                    WouldKeepHealthy(record.trace_id);
  if (metrics_ != nullptr) {
    const Labels labels = {{"verdict", TraceVerdictName(record.verdict)}};
    metrics_->GetCounter("trace_requests_total", labels)->Add(1);
    if (keep) metrics_->GetCounter("trace_kept_total", labels)->Add(1);
  }
  if (!keep) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t capacity =
      options_.max_kept_traces > 0
          ? static_cast<size_t>(options_.max_kept_traces)
          : 1;
  if (kept_.size() < capacity) {
    kept_.push_back(std::move(record));
  } else {
    // Ring buffer: overwrite the oldest entry.
    kept_[kept_head_] = std::move(record);
    kept_head_ = (kept_head_ + 1) % capacity;
  }
  return true;
}

std::vector<RequestTraceRecord> RequestTracer::KeptTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestTraceRecord> out;
  out.reserve(kept_.size());
  // Oldest first.
  for (size_t i = 0; i < kept_.size(); ++i) {
    out.push_back(kept_[(kept_head_ + i) % kept_.size()]);
  }
  return out;
}

bool RequestTracer::HasTrace(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RequestTraceRecord& record : kept_) {
    if (record.trace_id == trace_id) return true;
  }
  return false;
}

int64_t RequestTracer::KeptCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(kept_.size());
}

// --- RunProfile ------------------------------------------------------------

RunProfile BuildRunProfile(std::string name, const Tracer& tracer,
                           int64_t root_id, RegistrySnapshot metrics) {
  RunProfile profile;
  profile.name = std::move(name);
  profile.spans = tracer.Subtree(root_id);
  if (!profile.spans.empty()) {
    profile.total_micros = profile.spans.front().DurationMicros();
  }
  profile.metrics = std::move(metrics);
  return profile;
}

std::string RunProfile::ToJson() const {
  std::string spans_json;
  for (const SpanRecord& span : spans) {
    if (!spans_json.empty()) spans_json += ",";
    spans_json += StrFormat(
        "{\"id\":%lld,\"parent_id\":%lld,\"name\":\"%s\","
        "\"start_micros\":%lld,\"duration_micros\":%lld",
        static_cast<long long>(span.id),
        static_cast<long long>(span.parent_id),
        JsonEscape(span.name).c_str(),
        static_cast<long long>(span.start_micros),
        static_cast<long long>(span.DurationMicros()));
    std::string annotations_json;
    for (const auto& [k, v] : span.annotations) {
      if (!annotations_json.empty()) annotations_json += ",";
      annotations_json += StrFormat("\"%s\":\"%s\"", JsonEscape(k).c_str(),
                                    JsonEscape(v).c_str());
    }
    if (!annotations_json.empty()) {
      spans_json += StrFormat(",\"annotations\":{%s}",
                              annotations_json.c_str());
    }
    spans_json += "}";
  }
  std::string stages_json;
  for (const auto& [stage, micros] : stages) {
    if (!stages_json.empty()) stages_json += ",";
    stages_json += StrFormat("\"%s\":%lld", JsonEscape(stage).c_str(),
                             static_cast<long long>(micros));
  }
  // Serving-plane overload summary, pulled from the metrics snapshot so
  // the profile answers "did this run shed / brown out?" without
  // spelunking the full registry dump.
  const std::string overload_json = StrFormat(
      "{\"shed_total\":%lld,\"brownout_total\":%lld,"
      "\"hedges_suppressed_total\":%lld,\"retry_budget_exhausted_total\":"
      "%lld}",
      static_cast<long long>(metrics.CounterValue("serving_shed_total")),
      static_cast<long long>(
          metrics.CounterValue("serving_brownout_total")),
      static_cast<long long>(
          metrics.CounterValue("serving_hedges_suppressed_total")),
      static_cast<long long>(
          metrics.CounterValue("serving_retry_budget_exhausted_total")));
  return StrFormat(
      "{\"name\":\"%s\",\"total_micros\":%lld,\"spans\":[%s],"
      "\"stages\":{%s},\"overload\":%s,\"slo\":%s,\"dataqual\":%s,"
      "\"metrics\":%s}",
      JsonEscape(name).c_str(), static_cast<long long>(total_micros),
      spans_json.c_str(), stages_json.c_str(), overload_json.c_str(),
      slo_json.empty() ? "{}" : slo_json.c_str(),
      dataqual_json.empty() ? "{}" : dataqual_json.c_str(),
      metrics.ToJson().c_str());
}

}  // namespace sigmund::obs
