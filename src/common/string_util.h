#ifndef SIGMUND_COMMON_STRING_UTIL_H_
#define SIGMUND_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sigmund {

// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

// Joins `pieces` with `separator`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Parses a decimal integer / double; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* value);
bool ParseDouble(std::string_view text, double* value);

}  // namespace sigmund

#endif  // SIGMUND_COMMON_STRING_UTIL_H_
