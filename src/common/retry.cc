#include "common/retry.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/random.h"

namespace sigmund {

bool IsRetryableError(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

double BackoffSeconds(const RetryPolicy& policy, int retry) {
  double delay = policy.initial_backoff_seconds;
  for (int i = 0; i < retry; ++i) delay *= policy.backoff_multiplier;
  return std::min(delay, policy.max_backoff_seconds);
}

Status RetryWithPolicy(const RetryPolicy& policy, RetryStats* stats,
                       const std::function<Status()>& op) {
  const int max_attempts = std::max(1, policy.max_attempts);
  Rng jitter_rng(SplitMix64(policy.seed));
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (stats != nullptr) {
      stats->attempts.fetch_add(1);
      if (attempt > 0) {
        stats->retries.fetch_add(1);
        if (stats->retries_counter != nullptr) stats->retries_counter->Add(1);
      }
    }
    last = op();
    if (last.ok() || !IsRetryableError(last)) return last;
    if (attempt + 1 >= max_attempts) break;
    double delay = BackoffSeconds(policy, attempt);
    const double jitter = std::clamp(policy.jitter_fraction, 0.0, 1.0);
    delay *= jitter_rng.UniformDouble(1.0 - jitter, 1.0 + jitter);
    if (stats != nullptr) {
      stats->backoff_micros.fetch_add(static_cast<int64_t>(delay * 1e6));
    }
  }
  if (stats != nullptr) {
    stats->exhaustions.fetch_add(1);
    if (stats->exhaustions_counter != nullptr) {
      stats->exhaustions_counter->Add(1);
    }
  }
  return last;
}

}  // namespace sigmund
