#ifndef SIGMUND_COMMON_CRC32_H_
#define SIGMUND_COMMON_CRC32_H_

#include <stdint.h>

#include <string_view>

namespace sigmund {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum GFS-era
// storage systems use to detect torn writes and bit rot. Software
// table-driven implementation; fast enough for checkpoint/shard-sized
// payloads and fully portable.
uint32_t Crc32(std::string_view data);

// Incremental form: feed `crc` the result of the previous call (start
// from kCrc32Init) and finalize with Crc32Finalize.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t crc, std::string_view data);
inline uint32_t Crc32Finalize(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

}  // namespace sigmund

#endif  // SIGMUND_COMMON_CRC32_H_
