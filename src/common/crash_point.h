#ifndef SIGMUND_COMMON_CRASH_POINT_H_
#define SIGMUND_COMMON_CRASH_POINT_H_

#include <stdint.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sigmund {

// Thrown by CrashInjector::Hit when an armed kill-point fires. Tests
// catch it at the RunDaily call site and abandon the service object: the
// simulated "process" dies mid-stage with every byte of in-memory state
// lost, while everything already written to the SharedFileSystem
// survives — exactly the wreckage a machine crash leaves behind.
// Deliberately not derived from std::exception so no generic handler in
// the stack can swallow a simulated machine death.
struct CrashException {
  std::string point;   // the kill-point that fired
  int64_t global_hit;  // 1-based index among all Hit() calls so far
};

// Named, deterministic kill-points threaded through the daily pipeline's
// stage boundaries and the Stage/Activate seams (DESIGN.md §13) — the
// crash-simulation sibling of sfs::FaultInjectingFileSystem, which
// models I/O faults rather than process death. Disarmed (the default),
// Hit() only counts and records, so the production overhead of an
// instrumented seam is one null-pointer branch.
//
// Three arming modes:
//   ArmAt(point, nth)  crash the nth time `point` is hit (kill a specific
//                      seam — "between snapshot tmp-write and rename").
//   ArmGlobal(nth)     crash at the nth Hit() overall, regardless of
//                      name. The kill-anywhere harness first records a
//                      clean run's hit sequence, then replays the run
//                      once per index — every instrumented point dies
//                      exactly once.
//   ArmSeeded(seed, p) crash each hit independently with probability p,
//                      derived deterministically from (seed, point, nth)
//                      like FaultProfile's fault schedule.
//
// Firing is one-shot: the injector disarms itself as it throws, so the
// recovered run resumes through the same seams without dying again.
// Thread-safe, though the pipeline only hits points from the coordinator
// thread.
class CrashInjector {
 public:
  void ArmAt(std::string_view point, int64_t nth = 1);
  void ArmGlobal(int64_t nth);
  void ArmSeeded(uint64_t seed, double probability);
  void Disarm();

  // Records the hit and throws CrashException when the armed condition
  // is met.
  void Hit(const char* point);

  // Total Hit() calls since construction / the last ResetCounts.
  int64_t hits() const;
  // Every point name in hit order (the kill-anywhere harness enumerates
  // this from a clean run to know how many scenarios to replay).
  std::vector<std::string> Sequence() const;
  // Clears counts and the recorded sequence; arming is untouched.
  void ResetCounts();

 private:
  enum class Mode { kDisarmed, kAt, kGlobal, kSeeded };

  mutable std::mutex mu_;
  Mode mode_ = Mode::kDisarmed;
  std::string armed_point_;
  int64_t armed_nth_ = 0;
  uint64_t seed_ = 0;
  double probability_ = 0.0;
  int64_t hits_ = 0;
  std::map<std::string, int64_t, std::less<>> per_point_;
  std::vector<std::string> sequence_;
};

// Null-tolerant helper for call sites holding a borrowed injector.
inline void MaybeCrash(CrashInjector* injector, const char* point) {
  if (injector != nullptr) injector->Hit(point);
}

}  // namespace sigmund

#endif  // SIGMUND_COMMON_CRASH_POINT_H_
