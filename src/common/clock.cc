#include "common/clock.h"

#include <chrono>

#include "common/logging.h"

namespace sigmund {

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock* RealClock::Get() {
  static RealClock* clock = new RealClock;
  return clock;
}

void SimClock::AdvanceMicros(int64_t delta_micros) {
  SIGCHECK_GE(delta_micros, 0);
  now_micros_ += delta_micros;
}

void SimClock::SetMicros(int64_t t) {
  SIGCHECK_GE(t, now_micros_);
  now_micros_ = t;
}

}  // namespace sigmund
