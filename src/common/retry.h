#ifndef SIGMUND_COMMON_RETRY_H_
#define SIGMUND_COMMON_RETRY_H_

#include <stdint.h>

#include <atomic>
#include <functional>
#include <string>

#include "common/status.h"

namespace sigmund {

namespace obs {
class Counter;
}  // namespace obs

// Retry policy for operations against shared infrastructure (the SFS
// stand-in for GFS). The paper's pipeline lives almost entirely on
// pre-emptible resources (§IV-B3), so every layer must treat transient
// kUnavailable errors as routine: retry with exponential backoff, give up
// only after max_attempts, and never retry errors that won't heal
// (kNotFound, kDataLoss, ...).
//
// Backoff is *simulated*: the pipeline runs against in-process fakes with
// no real latency, so delays are computed (deterministically, including
// jitter) and accounted in RetryStats rather than slept.
struct RetryPolicy {
  int max_attempts = 5;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  // Each delay is scaled by a factor drawn uniformly from
  // [1 - jitter_fraction, 1 + jitter_fraction], deterministically per
  // (seed, attempt) so runs are reproducible.
  double jitter_fraction = 0.2;
  uint64_t seed = 42;
};

// Counters shared across many retried call sites (thread-safe).
struct RetryStats {
  std::atomic<int64_t> attempts{0};
  std::atomic<int64_t> retries{0};          // attempts beyond the first
  std::atomic<int64_t> exhaustions{0};      // gave up after max_attempts
  std::atomic<int64_t> backoff_micros{0};   // simulated backoff total

  // Optional registry mirrors (borrowed, may be null): when set, every
  // retry / exhaustion event is also counted into these obs instruments,
  // so a MetricRegistry snapshot sees exactly the events these atomics
  // see. Wired by sfs::ReliableIoCounters::SetMetrics().
  obs::Counter* retries_counter = nullptr;
  obs::Counter* exhaustions_counter = nullptr;

  double backoff_seconds() const {
    return static_cast<double>(backoff_micros.load()) * 1e-6;
  }
};

// True for errors a retry can plausibly heal (transient unavailability,
// e.g. an injected fault or a preempted storage server).
bool IsRetryableError(const Status& status);

// The (pre-jitter) delay before retry number `retry` (0-based).
double BackoffSeconds(const RetryPolicy& policy, int retry);

// Runs `op` until it returns OK, a non-retryable error, or max_attempts
// is reached (the last error is returned, after recording an
// exhaustion). `stats` may be nullptr.
Status RetryWithPolicy(const RetryPolicy& policy, RetryStats* stats,
                       const std::function<Status()>& op);

// StatusOr flavor: same loop, returns the last attempt's result.
template <typename T>
StatusOr<T> RetryWithPolicy(const RetryPolicy& policy, RetryStats* stats,
                            const std::function<StatusOr<T>()>& op) {
  StatusOr<T> result = InternalError("retry loop never ran");
  (void)RetryWithPolicy(policy, stats, [&]() -> Status {
    result = op();
    return result.status();
  });
  return result;
}

}  // namespace sigmund

#endif  // SIGMUND_COMMON_RETRY_H_
