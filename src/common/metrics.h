#ifndef SIGMUND_COMMON_METRICS_H_
#define SIGMUND_COMMON_METRICS_H_

#include <stdint.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sigmund::obs {

// ---------------------------------------------------------------------------
// sigmund::obs — process-wide metrics (see also trace.h for span tracing).
//
// A MetricRegistry hands out named, labelable instruments:
//
//   obs::MetricRegistry registry;
//   obs::Counter* retries =
//       registry.GetCounter("sfs_retries_total", {{"op", "read"}});
//   retries->Add(1);
//
//   obs::Histogram* latency = registry.GetHistogram("sfs_op_micros");
//   latency->Observe(elapsed_micros);
//   double p99 = latency->Quantile(0.99);
//
// Instruments are owned by the registry, live as long as it does, and are
// safe to update concurrently from any thread without holding registry
// locks (updates are lock-free atomics). Lookup (GetCounter/...) takes a
// mutex; cache the returned pointer on hot paths.
//
// Naming conventions (see DESIGN.md "Observability"):
//   <domain>_<what>[_<unit>]   e.g. sfs_op_micros, training_preemptions_total
//   counters end in _total; durations are histograms in _micros.
// ---------------------------------------------------------------------------

// Sorted (key, value) pairs identifying one instrument of a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count. Thread-safe, lock-free.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-written instantaneous value. Thread-safe, lock-free.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Exponential bucket layout: bucket i spans (bound[i-1], bound[i]] with
// bound[i] = smallest_bucket * growth^i, plus a final +Inf bucket.
struct HistogramOptions {
  double smallest_bucket = 1.0;  // upper bound of the first bucket
  double growth = 2.0;           // ratio between consecutive bounds
  int num_buckets = 32;          // finite buckets (an +Inf bucket is added)
};

// Distribution of observed values (typically latencies in microseconds).
// Observe() is thread-safe and lock-free; quantiles are estimated by
// linear interpolation inside the bucket containing the target rank.
//
// Exemplars: each bucket can retain the id of the last *kept* trace whose
// observation landed in it (OpenMetrics-style), so the exposition's p99
// bucket links straight to a request trace. AttachExemplar is called only
// for traces the tail sampler decided to keep — every exemplar resolves.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options);

  void Observe(double value);

  // Records `trace_id` as the exemplar of the bucket containing `value`
  // (last writer wins). Does not count as an observation — call Observe
  // separately. trace_id 0 is ignored (reserved for "no exemplar").
  void AttachExemplar(double value, uint64_t trace_id);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;  // +inf when empty
  double Max() const;  // -inf when empty

  // Estimated value at quantile q in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  // Upper bounds of the finite buckets (the +Inf bucket is implicit at the
  // back of BucketCounts()).
  const std::vector<double>& BucketBounds() const { return bounds_; }
  std::vector<int64_t> BucketCounts() const;
  // Per-bucket exemplar trace ids (0 = none) and the values they came in
  // with; same length as BucketCounts().
  std::vector<uint64_t> ExemplarIds() const;
  std::vector<double> ExemplarValues() const;

  void Reset();

 private:
  std::vector<double> bounds_;                         // ascending
  std::vector<std::atomic<int64_t>> buckets_;          // bounds_.size() + 1
  std::vector<std::atomic<uint64_t>> exemplar_ids_;    // 0 = no exemplar
  std::vector<std::atomic<double>> exemplar_values_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// Point-in-time copy of one histogram (value type; no atomics).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> buckets;  // bounds.size() + 1 (last = +Inf bucket)
  std::vector<uint64_t> exemplar_ids;  // per bucket; 0 = none
  std::vector<double> exemplar_values;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Quantile(double q) const;

  // Trace id exemplifying the bucket that contains quantile q: that
  // bucket's own exemplar when set, else the nearest bucket's (lower
  // buckets preferred). 0 = no exemplar anywhere in the histogram.
  uint64_t ExemplarForQuantile(double q) const;
};

enum class MetricKind { kCounter = 0, kGauge = 1, kHistogram = 2 };

// Point-in-time copy of one instrument.
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  int64_t counter = 0;
  double gauge = 0.0;
  HistogramSnapshot histogram;
};

// Point-in-time copy of a whole registry. Value semantics: later updates
// to the registry do not affect an already-taken snapshot.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;  // sorted by (name, labels)

  // Counter value summed over every label combination of `name` that
  // carries all of `labels` (empty = every combination). 0 when absent.
  int64_t CounterValue(std::string_view name, const Labels& labels = {}) const;
  double GaugeValue(std::string_view name, const Labels& labels = {}) const;
  // First histogram matching name+labels, or nullptr.
  const HistogramSnapshot* FindHistogram(std::string_view name,
                                         const Labels& labels = {}) const;

  // Prometheus-style text exposition.
  std::string ToText() const;
  // One JSON object: {"counters": {...}, "gauges": {...}, "histograms": ...}.
  std::string ToJson() const;
  // Human-oriented digest: one line per histogram with count/p50/p95/p99,
  // one per non-zero counter. What the examples print after a run.
  std::string SummaryText() const;
};

// Thread-safe owner of named instruments.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Process-wide default registry (leaked singleton). Library code that
  // is not handed an explicit registry may record here.
  static MetricRegistry* Default();

  // Get-or-create. The same (name, labels) always returns the same
  // instrument; a name must keep one kind (getting an existing name with
  // a different kind aborts — it is a programming error). Likewise, every
  // GetHistogram call for an existing (name, labels) must request the
  // same bucket layout as the call that created it.
  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  Histogram* GetHistogram(std::string_view name, const Labels& labels = {},
                          const HistogramOptions& options = {});

  RegistrySnapshot Snapshot() const;

  // Zeroes every instrument; registrations (and handed-out pointers)
  // stay valid.
  void Reset();

  std::string TextExposition() const { return Snapshot().ToText(); }
  std::string JsonExposition() const { return Snapshot().ToJson(); }

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, const Labels& labels,
                      MetricKind kind);

  mutable std::mutex mu_;
  // Key: name + rendered labels. std::map keeps exposition sorted.
  std::map<std::string, Entry> entries_;
};

// Renders labels as {k="v",...} (empty string for no labels).
std::string RenderLabels(const Labels& labels);

// Escapes a string for embedding inside a JSON string literal (quotes,
// backslashes, and all control characters). Shared by every hand-rolled
// JSON emitter in obs so span names / label values can never produce
// invalid JSON.
std::string JsonEscape(const std::string& value);

}  // namespace sigmund::obs

#endif  // SIGMUND_COMMON_METRICS_H_
