#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sigmund {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

// Serializes writes so concurrent log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const bool emit =
      static_cast<int>(severity_) >=
          g_min_severity.load(std::memory_order_relaxed) ||
      severity_ == LogSeverity::kFatal;
  if (emit) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_),
                 Basename(file_), line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging

}  // namespace sigmund
