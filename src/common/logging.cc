#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <thread>

namespace sigmund {

namespace {

// Parses $SIGMUND_LOG_LEVEL (name or 0-4); falls back to kInfo.
int InitialSeverity() {
  const char* env = std::getenv("SIGMUND_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogSeverity::kInfo);
  }
  if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0') return env[0] - '0';
  struct Name {
    const char* name;
    LogSeverity severity;
  };
  static constexpr Name kNames[] = {
      {"DEBUG", LogSeverity::kDebug},     {"INFO", LogSeverity::kInfo},
      {"WARNING", LogSeverity::kWarning}, {"WARN", LogSeverity::kWarning},
      {"ERROR", LogSeverity::kError},     {"FATAL", LogSeverity::kFatal},
  };
  for (const Name& candidate : kNames) {
    if (std::strcmp(env, candidate.name) == 0) {
      return static_cast<int>(candidate.severity);
    }
  }
  std::fprintf(stderr, "[W logging.cc] unrecognized SIGMUND_LOG_LEVEL=%s\n",
               env);
  return static_cast<int>(LogSeverity::kInfo);
}

std::atomic<int> g_min_severity{InitialSeverity()};

// Serializes writes so concurrent log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// Compact per-thread id: small integers handed out in first-log order
// (stable within a run, unlike the opaque std::thread::id hash).
int ThisThreadLogId() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1);
  return id;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

namespace internal_logging {

bool IsEnabled(LogSeverity severity) {
  return severity == LogSeverity::kFatal ||
         static_cast<int>(severity) >=
             g_min_severity.load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // The SIGLOG macro already filtered, but LogMessage can be constructed
  // directly; re-check so a suppressed direct construction stays silent.
  if (IsEnabled(severity_)) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
    const int millis = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count() %
        1000);
    std::tm tm_buf;
    localtime_r(&seconds, &tm_buf);
    char when[32];
    std::strftime(when, sizeof(when), "%Y-%m-%d %H:%M:%S", &tm_buf);

    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "[%s %s.%03d t=%d %s:%d] %s\n",
                 SeverityTag(severity_), when, millis, ThisThreadLogId(),
                 Basename(file_), line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging

}  // namespace sigmund
