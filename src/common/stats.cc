#include "common/stats.h"

#include <cmath>

namespace sigmund {

double TwoProportionZ(int64_t hits1, int64_t n1, int64_t hits0, int64_t n0) {
  if (n1 <= 0 || n0 <= 0) return 0.0;
  const double p1 = static_cast<double>(hits1) / static_cast<double>(n1);
  const double p0 = static_cast<double>(hits0) / static_cast<double>(n0);
  const double pooled = static_cast<double>(hits1 + hits0) /
                        static_cast<double>(n1 + n0);
  const double se =
      std::sqrt(pooled * (1.0 - pooled) *
                (1.0 / static_cast<double>(n1) + 1.0 / static_cast<double>(n0)));
  return se > 0.0 ? (p1 - p0) / se : 0.0;
}

double PopulationStabilityIndex(const std::vector<double>& expected,
                                const std::vector<double>& observed) {
  if (expected.size() != observed.size() || expected.empty()) return 0.0;
  double expected_sum = 0.0, observed_sum = 0.0;
  for (size_t i = 0; i < expected.size(); ++i) {
    expected_sum += expected[i];
    observed_sum += observed[i];
  }
  if (expected_sum <= 0.0 || observed_sum <= 0.0) return 0.0;
  // Epsilon-smooth each bucket so a bucket that is empty on one side
  // contributes a large-but-finite term instead of infinity.
  constexpr double kEpsilon = 1e-4;
  double psi = 0.0;
  for (size_t i = 0; i < expected.size(); ++i) {
    const double e = std::max(expected[i] / expected_sum, kEpsilon);
    const double o = std::max(observed[i] / observed_sum, kEpsilon);
    psi += (o - e) * std::log(o / e);
  }
  return psi;
}

}  // namespace sigmund
