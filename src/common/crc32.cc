#include "common/crc32.h"

#include <array>

namespace sigmund {

namespace {

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32(std::string_view data) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data));
}

}  // namespace sigmund
