#include "common/slo.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace sigmund::obs {

SloEngine::SloEngine(const Options& options, MetricRegistry* metrics)
    : options_(options), metrics_(metrics) {
  trackers_.resize(options_.objectives.size());
}

SloEngine::Sample SloEngine::Measure(const SloObjective& o,
                                     const RegistrySnapshot& snapshot,
                                     int64_t now_micros) {
  Sample sample;
  sample.time_micros = now_micros;
  if (!o.latency_histogram.empty()) {
    // Latency mode: good = observations in buckets with bound <=
    // threshold; everything slower (including +Inf) is bad. Summed over
    // every matching label combination.
    for (const MetricSnapshot& m : snapshot.metrics) {
      if (m.kind != MetricKind::kHistogram) continue;
      if (m.name != o.latency_histogram) continue;
      bool match = true;
      for (const auto& want : o.latency_labels) {
        if (std::find(m.labels.begin(), m.labels.end(), want) ==
            m.labels.end()) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      int64_t good = 0;
      for (size_t i = 0; i < m.histogram.bounds.size(); ++i) {
        if (m.histogram.bounds[i] > o.threshold_micros) break;
        good += m.histogram.buckets[i];
      }
      sample.total += m.histogram.count;
      sample.bad += m.histogram.count - good;
    }
  } else {
    sample.total = snapshot.CounterValue(o.total_counter, o.total_labels);
    sample.bad = snapshot.CounterValue(o.bad_counter, o.bad_labels);
  }
  return sample;
}

double SloEngine::Burn(const SloObjective& o, const Tracker& tracker,
                       int64_t window_micros) {
  if (tracker.samples.size() < 2) return 0;
  const Sample& now = tracker.samples.back();
  // Delta anchor: the newest sample at-or-before the window start, so
  // the measured interval covers at least the requested window (falls
  // back to the oldest sample early in a run).
  const int64_t window_start = now.time_micros - window_micros;
  const Sample* anchor = &tracker.samples.front();
  for (const Sample& s : tracker.samples) {
    if (s.time_micros <= window_start) {
      anchor = &s;
    } else {
      break;
    }
  }
  const int64_t delta_total = now.total - anchor->total;
  if (delta_total <= 0) return 0;
  const int64_t delta_bad = now.bad - anchor->bad;
  const double bad_ratio =
      static_cast<double>(delta_bad) / static_cast<double>(delta_total);
  const double budget = 1.0 - o.objective;
  if (budget <= 0) return bad_ratio > 0 ? 1e9 : 0;
  return bad_ratio / budget;
}

int SloEngine::Evaluate(const RegistrySnapshot& snapshot,
                        int64_t now_micros) {
  int transitions = 0;
  for (size_t i = 0; i < options_.objectives.size(); ++i) {
    const SloObjective& o = options_.objectives[i];
    Tracker& tracker = trackers_[i];
    tracker.samples.push_back(Measure(o, snapshot, now_micros));
    // Drop history older than the long window, keeping one sample
    // at-or-before the window start as the delta anchor.
    const int64_t horizon = now_micros - options_.long_window_micros;
    while (tracker.samples.size() > 2 &&
           tracker.samples[1].time_micros <= horizon) {
      tracker.samples.pop_front();
    }

    tracker.burn_short = Burn(o, tracker, options_.short_window_micros);
    tracker.burn_long = Burn(o, tracker, options_.long_window_micros);
    if (metrics_ != nullptr) {
      metrics_
          ->GetGauge("slo_burn_rate",
                     {{"objective", o.name}, {"window", "short"}})
          ->Set(tracker.burn_short);
      metrics_
          ->GetGauge("slo_burn_rate",
                     {{"objective", o.name}, {"window", "long"}})
          ->Set(tracker.burn_long);
    }

    const bool should_fire = tracker.burn_short >= options_.fire_burn_rate &&
                             tracker.burn_long >= options_.fire_burn_rate;
    const bool should_resolve =
        tracker.burn_short <= options_.resolve_burn_rate &&
        tracker.burn_long <= options_.resolve_burn_rate;
    if (!tracker.firing && should_fire) {
      tracker.firing = true;
      ++fired_total_;
      ++transitions;
      alert_log_.push_back({now_micros, o.name, /*firing=*/true,
                            tracker.burn_short, tracker.burn_long});
      if (metrics_ != nullptr) {
        metrics_
            ->GetCounter("slo_alerts_total",
                         {{"event", "fire"}, {"objective", o.name}})
            ->Add(1);
      }
    } else if (tracker.firing && should_resolve) {
      tracker.firing = false;
      ++resolved_total_;
      ++transitions;
      alert_log_.push_back({now_micros, o.name, /*firing=*/false,
                            tracker.burn_short, tracker.burn_long});
      if (metrics_ != nullptr) {
        metrics_
            ->GetCounter("slo_alerts_total",
                         {{"event", "resolve"}, {"objective", o.name}})
            ->Add(1);
      }
    }
  }
  return transitions;
}

std::vector<SloEngine::ObjectiveState> SloEngine::States() const {
  std::vector<ObjectiveState> out;
  out.reserve(options_.objectives.size());
  for (size_t i = 0; i < options_.objectives.size(); ++i) {
    out.push_back({options_.objectives[i].name, trackers_[i].firing,
                   trackers_[i].burn_short, trackers_[i].burn_long});
  }
  return out;
}

int SloEngine::FiringCount() const {
  int firing = 0;
  for (const Tracker& tracker : trackers_) {
    if (tracker.firing) ++firing;
  }
  return firing;
}

std::string SloEngine::ToJson() const {
  std::string objectives_json;
  for (size_t i = 0; i < options_.objectives.size(); ++i) {
    if (!objectives_json.empty()) objectives_json += ",";
    objectives_json += StrFormat(
        "{\"name\":\"%s\",\"objective\":%.6f,\"firing\":%s,"
        "\"burn_short\":%.4f,\"burn_long\":%.4f}",
        JsonEscape(options_.objectives[i].name).c_str(),
        options_.objectives[i].objective,
        trackers_[i].firing ? "true" : "false", trackers_[i].burn_short,
        trackers_[i].burn_long);
  }
  std::string alerts_json;
  for (const AlertEvent& event : alert_log_) {
    if (!alerts_json.empty()) alerts_json += ",";
    alerts_json += StrFormat(
        "{\"time_micros\":%lld,\"objective\":\"%s\",\"event\":\"%s\","
        "\"burn_short\":%.4f,\"burn_long\":%.4f}",
        static_cast<long long>(event.time_micros),
        JsonEscape(event.objective).c_str(),
        event.firing ? "fire" : "resolve", event.burn_short,
        event.burn_long);
  }
  return StrFormat(
      "{\"fired_total\":%lld,\"resolved_total\":%lld,\"objectives\":[%s],"
      "\"alerts\":[%s]}",
      static_cast<long long>(fired_total_),
      static_cast<long long>(resolved_total_), objectives_json.c_str(),
      alerts_json.c_str());
}

}  // namespace sigmund::obs
