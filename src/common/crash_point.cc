#include "common/crash_point.h"

namespace sigmund {
namespace {

// FNV-1a over the point name and ordinal, finished with a splitmix64
// avalanche: the same hash-not-RNG construction FaultInjectingFileSystem
// uses, so a given (seed, point, nth) fires identically on every run.
uint64_t MixHit(uint64_t seed, std::string_view point, int64_t nth) {
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= static_cast<uint64_t>(nth);
  h *= 1099511628211ULL;
  h += 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

void CrashInjector::ArmAt(std::string_view point, int64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kAt;
  armed_point_ = std::string(point);
  armed_nth_ = nth;
}

void CrashInjector::ArmGlobal(int64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kGlobal;
  armed_nth_ = nth;
}

void CrashInjector::ArmSeeded(uint64_t seed, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kSeeded;
  seed_ = seed;
  probability_ = probability;
}

void CrashInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kDisarmed;
}

void CrashInjector::Hit(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  ++hits_;
  const int64_t nth = ++per_point_[point];
  sequence_.emplace_back(point);
  bool fire = false;
  switch (mode_) {
    case Mode::kDisarmed:
      break;
    case Mode::kAt:
      fire = armed_point_ == point && nth == armed_nth_;
      break;
    case Mode::kGlobal:
      fire = hits_ == armed_nth_;
      break;
    case Mode::kSeeded:
      fire = ToUnit(MixHit(seed_, point, nth)) < probability_;
      break;
  }
  if (fire) {
    mode_ = Mode::kDisarmed;  // one-shot: the recovered run must survive
    throw CrashException{point, hits_};
  }
}

int64_t CrashInjector::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::vector<std::string> CrashInjector::Sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sequence_;
}

void CrashInjector::ResetCounts() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  per_point_.clear();
  sequence_.clear();
}

}  // namespace sigmund
