#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sigmund {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(pieces[i]);
  }
  return result;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(needed);
    std::vsnprintf(result.data(), needed + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *value = v;
  return true;
}

bool ParseDouble(std::string_view text, double* value) {
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *value = v;
  return true;
}

}  // namespace sigmund
